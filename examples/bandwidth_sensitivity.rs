//! SRAM bandwidth sensitivity (extension experiment).
//!
//! §V of the paper notes: "To exploit the full sparsity speedup, SRAM BW
//! should be equal or more than the multiplication of the normalized
//! speedup and the baseline bandwidth." The evaluation therefore
//! provisions bandwidth to the speedup — this example shows what happens
//! when it doesn't: the borrowing schedule is increasingly floored by
//! operand traffic until the sparse core is no faster than dense.
//!
//! Run with: `cargo run --release --example bandwidth_sensitivity`

use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::sim::bandwidth::BwPolicy;
use griffin::sim::config::SimConfig;
use griffin::sim::pipeline::simulate_network;
use griffin::workloads::synth::synthetic_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wl = synthetic_workload("pruned", DnnCategory::B, 4, 9)?;
    let spec = ArchSpec::sparse_b_star();
    let mode = spec.mode_for(DnnCategory::B);

    println!("Sparse.B* on a DNN.B workload under scaled SRAM bandwidth:");
    println!();
    println!(
        "{:>9} {:>10} {:>12} {:>9}",
        "BW scale", "speedup", "bw-floored?", "stall %"
    );
    for scale in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
        let cfg = SimConfig {
            bw: BwPolicy::paper_scaled(scale),
            ..SimConfig::default()
        };
        let net = simulate_network(&wl.layers, mode, &cfg);
        let floored = net
            .layers
            .iter()
            .filter(|l| l.bw_floor_cycles > l.schedule_cycles)
            .count();
        let stall: f64 = net
            .layers
            .iter()
            .map(|l| (l.cycles - l.schedule_cycles).max(0.0))
            .sum::<f64>()
            / net.cycles()
            * 100.0;
        println!(
            "{:>8.1}x {:>9.2}x {:>9}/{:<2} {:>8.1}%",
            scale,
            net.speedup(),
            floored,
            net.layers.len(),
            stall
        );
    }
    println!();
    println!("At 1x (the dense baseline's budget) the A stream caps the run near");
    println!("1x speedup; provisioning ~2.5x recovers the full borrowing gain —");
    println!("the provisioning rule the paper states in Section V.");
    Ok(())
}
