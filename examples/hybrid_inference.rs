//! Griffin's hybrid morphing across all four DNN categories (Figure 4).
//!
//! Runs ResNet-50 in each of the paper's four execution modes and shows
//! how Griffin reconfigures — conf.AB for dual-sparse and dense models,
//! conf.B(8,0,1) for weight-only sparsity, conf.A(2,1,1) for
//! activation-only sparsity — while the fixed `Sparse.AB*` hardware
//! pays the single-sparse penalty of Table III.
//!
//! Run with: `cargo run --release --example hybrid_inference`

use griffin::core::accelerator::Accelerator;
use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::workloads::suite::{build_workload, Benchmark};

fn main() {
    let griffin = Accelerator::with_defaults(ArchSpec::griffin());
    let dual = Accelerator::with_defaults(ArchSpec::sparse_ab_star());

    println!("ResNet-50 under the four execution modes (Table I):");
    println!();
    println!(
        "{:<12} {:<28} {:>9} {:>12} {:>9}",
        "category", "Griffin configuration", "speedup", "AB* speedup", "gain"
    );

    for cat in DnnCategory::ALL {
        let wl = build_workload(Benchmark::ResNet50, cat, 7);
        let g = griffin.run(&wl);
        let d = dual.run(&wl);
        let config = match cat {
            DnnCategory::Dense | DnnCategory::AB => "conf.AB = Sparse.AB(2,0,0,2,0,1)",
            DnnCategory::B => "conf.B  = Sparse.B(8,0,1)",
            DnnCategory::A => "conf.A  = Sparse.A(2,1,1)",
        };
        println!(
            "{:<12} {:<28} {:>8.2}x {:>11.2}x {:>8.1}%",
            cat.to_string(),
            config,
            g.speedup,
            d.speedup,
            (g.speedup / d.speedup - 1.0) * 100.0
        );
    }

    println!();
    println!("Morphing re-purposes the dual-sparse overheads (nine-entry ABUF,");
    println!("extra adder tree, BBUF) instead of letting them idle — the gain");
    println!("shows on the single-sparse categories, at ~zero hardware cost.");
}
