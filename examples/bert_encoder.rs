//! BERT-base (MNLI, sequence length 64) with movement-pruned weights —
//! the paper's transformer benchmark (Table IV: 82% weight sparsity,
//! dense GeLU activations, i.e. a pure `DNN.B` workload).
//!
//! Shows per-layer-kind behaviour: the six weight GEMMs per encoder
//! layer accelerate; the two attention matmuls (activation×activation)
//! cannot, since their "B" operand is not a weight tensor.
//!
//! Run with: `cargo run --release --example bert_encoder`

use griffin::core::accelerator::Accelerator;
use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::sim::pipeline::simulate_layer;
use griffin::workloads::suite::{build_workload, Benchmark};

fn main() {
    let wl = build_workload(Benchmark::Bert, DnnCategory::B, 11);
    let info = Benchmark::Bert.info();
    println!(
        "BERT-base MNLI, seq len {}: weight sparsity {:.0}%, accuracy {}",
        griffin::workloads::bert::SEQ_LEN,
        info.b_sparsity * 100.0,
        info.accuracy
    );

    // Per-GEMM view of encoder layer 0 on Griffin (morphed to conf.B).
    let griffin_acc = Accelerator::with_defaults(ArchSpec::griffin());
    let mode = griffin_acc.spec().mode_for(DnnCategory::B);
    let names = [
        "q", "k", "v", "scores", "context", "attn_out", "ffn_up", "ffn_down",
    ];
    println!();
    println!("encoder layer 0, per GEMM (Griffin conf.B):");
    println!(
        "{:<10} {:>7} {:>7} {:>9} {:>9}",
        "gemm", "Bdens", "reps", "cycles", "speedup"
    );
    for (i, name) in names.iter().enumerate() {
        let l = &wl.layers[i];
        let r = simulate_layer(l, mode, griffin_acc.config());
        println!(
            "{:<10} {:>6.2} {:>7} {:>9.0} {:>8.2}x",
            name,
            l.b_density(),
            l.replicas,
            r.cycles,
            r.speedup()
        );
    }

    // End-to-end comparison.
    println!();
    println!("end-to-end (12 encoder layers):");
    for spec in [
        ArchSpec::dense(),
        ArchSpec::sparse_b_star(),
        ArchSpec::griffin(),
    ] {
        let acc = Accelerator::with_defaults(spec);
        let r = acc.run(&wl);
        println!(
            "{:<12} {:>8.2}x speedup   {:>6.2} effective TOPS/W",
            r.arch, r.speedup, r.effective_tops_per_w
        );
    }
    println!();
    println!("Attention matmuls stay at ~1x (their operands are activations),");
    println!("which is why BERT's end-to-end gain trails its weight sparsity.");
}
