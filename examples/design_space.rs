//! Miniature design-space exploration (§VI), driven by the
//! `griffin-sweep` campaign engine from a declarative **scenario
//! file**: sweep every `Sparse.B` routing configuration on a pruned
//! workload *and* on its dense-category twin in one parallel campaign,
//! then report the Pareto front between sparse-category efficiency and
//! dense-category efficiency, and verify the simulator against the
//! closed-form analytic model.
//!
//! Run with: `cargo run --release --example design_space`

use griffin::core::analytic::estimate_speedup;
use griffin::core::category::DnnCategory;
use griffin::sweep::{
    default_workers, pareto_designs, per_arch, run_campaign, summarize, ResultCache, Scenario,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The campaign is data, not code: scenarios/design-space.toml
    // defines both metric axes — DNN.B (the home category) and
    // DNN.dense (the sparsity-tax axis) — over the whole Sparse.B
    // family.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/design-space.toml");
    let scenario = Scenario::load(path)?;
    println!(
        "loaded scenario `{}` from {path} (fingerprint {})",
        scenario.name,
        scenario.fingerprint()
    );
    let spec = scenario.to_spec();

    let workers = default_workers();
    let cache = ResultCache::in_memory();
    let report = run_campaign(&spec, &cache, workers)?;
    let s = summarize(&report);
    println!(
        "campaign `{}`: {} cells over {} architectures in {} ms on {} workers",
        report.campaign, s.cells, s.archs, report.elapsed_ms, report.workers
    );

    // Shuffled configurations, with the analytic cross-check (§V).
    println!();
    println!(
        "{:<22} {:>8} {:>9} {:>10} {:>10}",
        "config", "sim", "analytic", "TOPS/W.B", "TOPS/W.den"
    );
    let on_b = per_arch(&report, Some(DnnCategory::B));
    let on_dense = per_arch(&report, Some(DnnCategory::Dense));
    for (b, d) in on_b.iter().zip(&on_dense) {
        let spec_of = spec
            .archs
            .iter()
            .find(|a| a.name == b.arch)
            .expect("arch from spec");
        if !spec_of.shuffle {
            continue; // keep the example output short
        }
        let ana = estimate_speedup(spec_of.mode_for(DnnCategory::B), 1.0, 0.19);
        println!(
            "{:<22} {:>7.2}x {:>8.2}x {:>10.2} {:>10.2}",
            b.arch, b.speedup, ana, b.tops_per_w, d.tops_per_w
        );
    }

    println!();
    println!("Pareto front (TOPS/W on DNN.B vs TOPS/W on DNN.dense):");
    for p in pareto_designs(&report, &spec.archs, DnnCategory::B, DnnCategory::Dense) {
        println!(
            "  {:<22} sparse {:>6.2}  dense {:>6.2}",
            p.spec.name, p.sparse_metric, p.dense_metric
        );
    }

    // The cache makes the re-run free: every cell hits.
    let rerun = run_campaign(&spec, &cache, workers)?;
    println!();
    println!(
        "re-run: {} hits / {} misses ({:.0}% hit rate) in {} ms",
        rerun.cache.hits,
        rerun.cache.misses,
        rerun.cache.hit_rate() * 100.0,
        rerun.elapsed_ms
    );
    Ok(())
}
