//! Miniature design-space exploration (§VI): sweep `Sparse.B` routing
//! configurations on a pruned workload, report the Pareto front between
//! sparse-category efficiency and dense-category efficiency, and verify
//! the simulator against the closed-form analytic model.
//!
//! Run with: `cargo run --release --example design_space`

use griffin::core::accelerator::Accelerator;
use griffin::core::analytic::estimate_speedup;
use griffin::core::category::DnnCategory;
use griffin::core::cost::{CostModel, Provision};
use griffin::core::dse::{enumerate_sparse_b, pareto_front, ScoredDesign};
use griffin::core::efficiency::Efficiency;
use griffin::workloads::synth::synthetic_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wl = synthetic_workload("pruned", DnnCategory::B, 4, 3)?;

    println!("{:<22} {:>8} {:>9} {:>10} {:>10}", "config", "sim", "analytic", "TOPS/W.B", "TOPS/W.den");
    let mut scored = Vec::new();
    for spec in enumerate_sparse_b(8) {
        if !spec.shuffle {
            continue; // keep the example output short
        }
        let acc = Accelerator::with_defaults(spec.clone());
        let r = acc.run(&wl);
        let ana = estimate_speedup(spec.mode_for(DnnCategory::B), 1.0, 0.19);
        let cost = CostModel::parametric(
            &spec,
            acc.config().core,
            Provision { speedup: r.speedup, b_stream_factor: 0.3 },
        );
        let dense = Efficiency::new(acc.config().core, &cost, 1.0);
        println!(
            "{:<22} {:>7.2}x {:>8.2}x {:>10.2} {:>10.2}",
            spec.name, r.speedup, ana, r.effective_tops_per_w, dense.tops_per_w
        );
        scored.push(ScoredDesign {
            spec,
            sparse_metric: r.effective_tops_per_w,
            dense_metric: dense.tops_per_w,
        });
    }

    println!();
    println!("Pareto front (TOPS/W on DNN.B vs TOPS/W on DNN.dense):");
    for p in pareto_front(scored) {
        println!("  {:<22} sparse {:>6.2}  dense {:>6.2}", p.spec.name, p.sparse_metric, p.dense_metric);
    }
    Ok(())
}
