//! Quickstart: simulate one pruned ResNet-50-style layer on the dense
//! baseline, the paper's three optimal sparse design points, and the
//! Griffin hybrid.
//!
//! Run with: `cargo run --release --example quickstart`

use griffin::core::accelerator::Accelerator;
use griffin::core::arch::ArchSpec;
use griffin::workloads::synth::synthetic_layer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // conv4_x of ResNet-50: M = 14x14, K = 256*3*3, N = 256, with the
    // Table IV densities (weights 19% nonzero, activations 57%).
    let layer = synthetic_layer(196, 2304, 256, 0.19, 0.57, 42)?;
    println!(
        "layer: M={} K={} N={}  A density {:.2}  B density {:.2}",
        layer.shape.m,
        layer.shape.k,
        layer.shape.n,
        layer.a_density(),
        layer.b_density()
    );
    println!();
    println!(
        "{:<14} {:>10} {:>9} {:>12}",
        "architecture", "cycles", "speedup", "utilization"
    );

    for spec in [
        ArchSpec::dense(),
        ArchSpec::sparse_b_star(),
        ArchSpec::sparse_a_star(),
        ArchSpec::sparse_ab_star(),
        ArchSpec::griffin(),
    ] {
        let acc = Accelerator::with_defaults(spec);
        let r = acc.run_layer(&layer)?;
        println!(
            "{:<14} {:>10.0} {:>8.2}x {:>11.1}%",
            acc.spec().name,
            r.cycles,
            r.speedup(),
            r.utilization(acc.config().core) * 100.0
        );
    }

    println!();
    println!("Griffin exploits both operands' zeros (dual sparsity) and wins.");
    Ok(())
}
