//! Allocation telemetry for the benchmark harness.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (and reallocation) with relaxed atomics, so
//! `griffin-cli bench` can *prove* the zero-alloc steady-state contract
//! of the scheduler scratch (`griffin_sim::scratch`) instead of
//! asserting it rhetorically. The library only defines the type; a
//! binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: griffin::telemetry::CountingAlloc = griffin::telemetry::CountingAlloc;
//! ```
//!
//! Counting costs two relaxed atomic adds per allocation — negligible
//! next to the allocation itself — and is a no-op for programs that do
//! not install the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts allocations and bytes.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counters carry no allocator
// state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Snapshot of the counters: `(allocations, bytes_requested)` since
/// process start. Zeros unless [`CountingAlloc`] is installed as the
/// global allocator.
pub fn allocation_counts() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Allocations and bytes requested while running `f`.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let (a0, b0) = allocation_counts();
    let out = f();
    let (a1, b1) = allocation_counts();
    (out, a1 - a0, b1 - b0)
}
