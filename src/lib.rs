//! # Griffin
//!
//! A full Rust reproduction of *"Griffin: Rethinking Sparse Optimization
//! for Deep Learning Architectures"* (HPCA 2022). This façade crate
//! re-exports the workspace's public API:
//!
//! * [`tensor`] — matrices, GEMM shapes, sparsity generation
//!   ([`griffin_tensor`]),
//! * [`sim`] — the cycle-accurate borrowing simulator ([`griffin_sim`]),
//! * [`core`] — architecture configurations, hardware overhead and cost
//!   models, the Griffin hybrid, DSE ([`griffin_core`]),
//! * [`workloads`] — the six Table-IV benchmark networks
//!   ([`griffin_workloads`]),
//! * [`sweep`] — the parallel scenario-sweep campaign engine with
//!   result caching and CSV/JSON reports ([`griffin_sweep`]),
//! * [`fleet`] — sharded campaign orchestration: shard planning, JSONL
//!   event streaming, journaled resume, cache merging
//!   ([`griffin_fleet`]),
//! * [`watch`] — fleet observability: live event-stream tailing, the
//!   replayable campaign model, terminal dashboards, JSON summaries and
//!   static HTML reports ([`griffin_watch`]),
//! * [`serve`] — the resident campaign daemon: a warm cache and scratch
//!   pool shared across campaigns behind the `griffin-serve-wire/1`
//!   JSONL socket protocol, with fingerprint dedup and event-stream
//!   fan-out ([`griffin_serve`]).
//!
//! # Quickstart
//!
//! Simulate a pruned ResNet-50-style layer on the Griffin hybrid
//! architecture and compare against the dense baseline:
//!
//! ```
//! use griffin::core::arch::ArchSpec;
//! use griffin::core::accelerator::Accelerator;
//! use griffin::workloads::synth::synthetic_layer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layer = synthetic_layer(196, 1152, 256, 0.19, 0.43, 42)?;
//! let griffin = Accelerator::with_defaults(ArchSpec::griffin());
//! let report = griffin.run_layer(&layer)?;
//! assert!(report.speedup() > 1.0); // sparse wins on a pruned layer
//! # Ok(())
//! # }
//! ```

pub mod telemetry;

pub use griffin_core as core;
pub use griffin_fleet as fleet;
pub use griffin_serve as serve;
pub use griffin_sim as sim;
pub use griffin_sweep as sweep;
pub use griffin_tensor as tensor;
pub use griffin_watch as watch;
pub use griffin_workloads as workloads;
