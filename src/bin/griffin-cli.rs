//! `griffin-cli` — command-line front end for the Griffin reproduction.
//!
//! ```console
//! $ griffin-cli list                         # architectures & benchmarks
//! $ griffin-cli run resnet50 ab griffin      # one (benchmark, category, arch)
//! $ griffin-cli compare bert b               # all architectures on one workload
//! $ griffin-cli layer 196 1152 256 0.57 0.19 # ad-hoc layer on the star designs
//! ```
//!
//! Argument parsing is deliberately dependency-free (no clap): the
//! grammar is three fixed subcommands with positional arguments.

use std::env;
use std::process::ExitCode;

use griffin::core::accelerator::Accelerator;
use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::workloads::suite::{build_workload, Benchmark};
use griffin::workloads::synth::synthetic_layer;

fn parse_benchmark(s: &str) -> Option<Benchmark> {
    match s.to_ascii_lowercase().as_str() {
        "alexnet" => Some(Benchmark::AlexNet),
        "googlenet" => Some(Benchmark::GoogleNet),
        "resnet50" | "resnet" => Some(Benchmark::ResNet50),
        "inceptionv3" | "inception" => Some(Benchmark::InceptionV3),
        "mobilenetv2" | "mobilenet" => Some(Benchmark::MobileNetV2),
        "bert" => Some(Benchmark::Bert),
        _ => None,
    }
}

fn parse_category(s: &str) -> Option<DnnCategory> {
    match s.to_ascii_lowercase().as_str() {
        "dense" => Some(DnnCategory::Dense),
        "a" | "dnn.a" => Some(DnnCategory::A),
        "b" | "dnn.b" => Some(DnnCategory::B),
        "ab" | "dnn.ab" => Some(DnnCategory::AB),
        _ => None,
    }
}

fn parse_arch(s: &str) -> Option<ArchSpec> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" | "dense" => Some(ArchSpec::dense()),
        "sparse.a" | "a*" | "sparse.a*" => Some(ArchSpec::sparse_a_star()),
        "sparse.b" | "b*" | "sparse.b*" => Some(ArchSpec::sparse_b_star()),
        "sparse.ab" | "ab*" | "sparse.ab*" => Some(ArchSpec::sparse_ab_star()),
        "griffin" => Some(ArchSpec::griffin()),
        "tcl" | "tcl.b" | "bittactical" => Some(ArchSpec::tcl_b()),
        "tensordash" | "tdash" => Some(ArchSpec::tensordash()),
        "sparten" | "sparten.ab" => Some(ArchSpec::sparten_ab()),
        "sparten.a" => Some(ArchSpec::sparten_a()),
        "sparten.b" => Some(ArchSpec::sparten_b()),
        "cnvlutin" => Some(ArchSpec::cnvlutin()),
        "cambricon" | "cambricon-x" => Some(ArchSpec::cambricon_x()),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!("griffin-cli — Griffin (HPCA 2022) reproduction");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  griffin-cli list");
    eprintln!("  griffin-cli run <benchmark> <category> <arch>");
    eprintln!("  griffin-cli compare <benchmark> <category>");
    eprintln!("  griffin-cli layer <M> <K> <N> <a_density> <b_density>");
    eprintln!();
    eprintln!("  benchmarks: alexnet googlenet resnet50 inceptionv3 mobilenetv2 bert");
    eprintln!("  categories: dense a b ab");
    eprintln!("  archs: baseline sparse.a* sparse.b* sparse.ab* griffin tcl.b");
    eprintln!("         tensordash sparten[.a|.b] cnvlutin cambricon-x");
    ExitCode::from(2)
}

fn cmd_list() -> ExitCode {
    println!("architectures:");
    for spec in ArchSpec::table7_lineup() {
        println!(
            "  {:<12} a={} b={} shuffle={}",
            spec.name, spec.a, spec.b, spec.shuffle
        );
    }
    println!();
    println!("benchmarks (Table IV):");
    for b in Benchmark::ALL {
        let i = b.info();
        println!(
            "  {:<14} B-sparsity {:>3.0}%  A-sparsity {:>3.0}%  dense {:.1e} cycles",
            i.name,
            i.b_sparsity * 100.0,
            i.a_sparsity * 100.0,
            i.paper_dense_cycles
        );
    }
    ExitCode::SUCCESS
}

fn report(acc: &Accelerator, wl: &griffin::core::accelerator::Workload) {
    let r = acc.run(wl);
    println!(
        "{:<12} {:>8.2}x speedup  {:>7.1} mW  {:>6.2} TOPS/W  {:>6.2} TOPS/mm2",
        r.arch,
        r.speedup,
        r.cost.power_mw(),
        r.effective_tops_per_w,
        r.effective_tops_per_mm2
    );
}

fn cmd_run(bench: &str, cat: &str, arch: &str) -> ExitCode {
    let (Some(b), Some(c), Some(a)) =
        (parse_benchmark(bench), parse_category(cat), parse_arch(arch))
    else {
        return usage();
    };
    let wl = build_workload(b, c, 42);
    println!("{} on {} ({c:?} masks, seed 42):", a.name, wl.name);
    report(&Accelerator::with_defaults(a), &wl);
    ExitCode::SUCCESS
}

fn cmd_compare(bench: &str, cat: &str) -> ExitCode {
    let (Some(b), Some(c)) = (parse_benchmark(bench), parse_category(cat)) else {
        return usage();
    };
    let wl = build_workload(b, c, 42);
    println!("{} / {c:?}:", wl.name);
    for spec in ArchSpec::table7_lineup() {
        report(&Accelerator::with_defaults(spec), &wl);
    }
    ExitCode::SUCCESS
}

fn cmd_layer(args: &[String]) -> ExitCode {
    let parsed: Option<(usize, usize, usize, f64, f64)> = (|| {
        Some((
            args.first()?.parse().ok()?,
            args.get(1)?.parse().ok()?,
            args.get(2)?.parse().ok()?,
            args.get(3)?.parse().ok()?,
            args.get(4)?.parse().ok()?,
        ))
    })();
    let Some((m, k, n, da, db)) = parsed else { return usage() };
    let Ok(layer) = synthetic_layer(m, k, n, db, da, 42) else {
        eprintln!("invalid layer dimensions");
        return ExitCode::from(2);
    };
    println!("layer {m}x{k}x{n}, A density {da}, B density {db}:");
    for spec in [
        ArchSpec::dense(),
        ArchSpec::sparse_b_star(),
        ArchSpec::sparse_a_star(),
        ArchSpec::sparse_ab_star(),
        ArchSpec::griffin(),
    ] {
        let acc = Accelerator::with_defaults(spec);
        match acc.run_layer(&layer) {
            Ok(r) => println!(
                "{:<12} {:>10.0} cycles  {:>6.2}x",
                acc.spec().name,
                r.cycles,
                r.speedup()
            ),
            Err(e) => {
                eprintln!("{}: {e}", acc.spec().name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") if args.len() == 4 => cmd_run(&args[1], &args[2], &args[3]),
        Some("compare") if args.len() == 3 => cmd_compare(&args[1], &args[2]),
        Some("layer") => cmd_layer(&args[1..]),
        _ => usage(),
    }
}
