//! `griffin-cli` — command-line front end for the Griffin reproduction.
//!
//! ```console
//! $ griffin-cli list                         # architectures & benchmarks
//! $ griffin-cli run resnet50 ab griffin      # one (benchmark, category, arch)
//! $ griffin-cli compare bert b               # all architectures on one workload
//! $ griffin-cli layer 196 1152 256 0.57 0.19 # ad-hoc layer on the star designs
//! $ griffin-cli sweep bert b --workers 8 --cache .sweep-cache --csv out.csv
//! $ griffin-cli pareto resnet50 b            # §VI Pareto front of a family
//! $ griffin-cli fleet bert b --shards 4      # sharded campaign + journal
//! $ griffin-cli fleet bert b --shards 4 --spawn --resume
//! $ griffin-cli bench --out BENCH_sched.json # scheduler perf telemetry
//! $ griffin-cli cache stats .sweep-cache     # on-disk result cache usage
//! $ griffin-cli cache prune .sweep-cache --max-bytes 64m
//! ```
//!
//! Argument parsing is deliberately dependency-free (no clap): fixed
//! subcommands with positional arguments plus `--flag value` options
//! for the campaign commands. (`shard-worker` is the internal
//! subprocess behind `fleet --spawn`; it speaks the fleet JSONL event
//! protocol on stdout.)

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use griffin::core::accelerator::Accelerator;
use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::fleet::coordinator::{
    default_events_path, run_fleet, run_fleet_spawned, run_shard_worker, FleetConfig, FleetError,
    WorkerConfig, WorkerSpawn,
};
use griffin::fleet::events::JsonlSink;
use griffin::fleet::fault::{self, Fault};
use griffin::sim::config::{Fidelity, SimConfig};
use griffin::sweep::report::{to_csv, to_json, write_file};
use griffin::sweep::{
    default_workers, disk_stats, pareto_designs, per_arch, prune_dir, run_campaign, summarize,
    ArchFamily, Fingerprint, ResultCache, SweepSpec,
};
use griffin::workloads::suite::{build_workload, Benchmark};
use griffin::workloads::synth::synthetic_layer;

#[path = "griffin-cli/bench.rs"]
mod bench;

/// Count every allocation so `griffin-cli bench` can report the
/// scheduler's steady-state allocation behaviour (see
/// [`griffin::telemetry`]).
#[global_allocator]
static ALLOC: griffin::telemetry::CountingAlloc = griffin::telemetry::CountingAlloc;

fn parse_benchmark(s: &str) -> Option<Benchmark> {
    match s.to_ascii_lowercase().as_str() {
        "alexnet" => Some(Benchmark::AlexNet),
        "googlenet" => Some(Benchmark::GoogleNet),
        "resnet50" | "resnet" => Some(Benchmark::ResNet50),
        "inceptionv3" | "inception" => Some(Benchmark::InceptionV3),
        "mobilenetv2" | "mobilenet" => Some(Benchmark::MobileNetV2),
        "bert" => Some(Benchmark::Bert),
        _ => None,
    }
}

fn parse_category(s: &str) -> Option<DnnCategory> {
    match s.to_ascii_lowercase().as_str() {
        "dense" => Some(DnnCategory::Dense),
        "a" | "dnn.a" => Some(DnnCategory::A),
        "b" | "dnn.b" => Some(DnnCategory::B),
        "ab" | "dnn.ab" => Some(DnnCategory::AB),
        _ => None,
    }
}

fn parse_arch(s: &str) -> Option<ArchSpec> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" | "dense" => Some(ArchSpec::dense()),
        "sparse.a" | "a*" | "sparse.a*" => Some(ArchSpec::sparse_a_star()),
        "sparse.b" | "b*" | "sparse.b*" => Some(ArchSpec::sparse_b_star()),
        "sparse.ab" | "ab*" | "sparse.ab*" => Some(ArchSpec::sparse_ab_star()),
        "griffin" => Some(ArchSpec::griffin()),
        "tcl" | "tcl.b" | "bittactical" => Some(ArchSpec::tcl_b()),
        "tensordash" | "tdash" => Some(ArchSpec::tensordash()),
        "sparten" | "sparten.ab" => Some(ArchSpec::sparten_ab()),
        "sparten.a" => Some(ArchSpec::sparten_a()),
        "sparten.b" => Some(ArchSpec::sparten_b()),
        "cnvlutin" => Some(ArchSpec::cnvlutin()),
        "cambricon" | "cambricon-x" => Some(ArchSpec::cambricon_x()),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!("griffin-cli — Griffin (HPCA 2022) reproduction");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  griffin-cli list");
    eprintln!("  griffin-cli run <benchmark> <category> <arch>");
    eprintln!("  griffin-cli compare <benchmark> <category>");
    eprintln!("  griffin-cli layer <M> <K> <N> <a_density> <b_density>");
    eprintln!("  griffin-cli sweep <benchmark|synth> <category> [sweep options]");
    eprintln!("  griffin-cli pareto <benchmark|synth> <family> [sweep options]");
    eprintln!("  griffin-cli fleet <benchmark|synth> <category> --shards N [fleet/sweep options]");
    eprintln!("  griffin-cli bench [--quick] [--out PATH]     (default BENCH_sched.json)");
    eprintln!("  griffin-cli cache stats <DIR>");
    eprintln!("  griffin-cli cache prune <DIR> --max-bytes N[k|m|g]");
    eprintln!();
    eprintln!("  benchmarks: alexnet googlenet resnet50 inceptionv3 mobilenetv2 bert");
    eprintln!("  categories: dense a b ab");
    eprintln!("  archs: baseline sparse.a* sparse.b* sparse.ab* griffin tcl.b");
    eprintln!("         tensordash sparten[.a|.b] cnvlutin cambricon-x");
    eprintln!();
    eprintln!("SWEEP OPTIONS:");
    eprintln!("  --family a|b|ab     design family axis (default: from category, else b)");
    eprintln!("  --fanin N           mux fan-in bound for the family (default: 8)");
    eprintln!("  --lineup            sweep the Table VII lineup instead of a family");
    eprintln!("  --workers N         simulation worker threads (default: all cores;");
    eprintln!("                      workload builds use all cores except in shard workers)");
    eprintln!("  --seeds a,b,c       mask seeds (default: 42,43)");
    eprintln!("  --tiles N           sampled tiles per layer (default: 12)");
    eprintln!("  --cache DIR         on-disk result cache shared across runs");
    eprintln!("  --csv PATH          write the per-cell report as CSV");
    eprintln!("  --json PATH         write the per-cell report as JSON");
    eprintln!();
    eprintln!("FLEET OPTIONS (with any sweep option; --workers applies per shard):");
    eprintln!("  --shards N          shard count (required)");
    eprintln!("  --spawn             one shard-worker subprocess per shard (default in-process)");
    eprintln!("  --dir DIR           state dir: journal, shard caches, merged cache");
    eprintln!("                      (default .griffin-fleet)");
    eprintln!("  --events PATH|-     JSONL event stream (default DIR/events.jsonl, - = stdout)");
    eprintln!("  --resume            resume from the journal (spec fingerprint verified)");
    eprintln!("  --heartbeat N       heartbeat every N cells per shard (default 32, 0 = off)");
    eprintln!("  --max-shard-retries N  retries per failed shard before giving up (default 2)");
    eprintln!("  --heartbeat-timeout MS with --spawn: kill + retry a worker silent for MS");
    eprintln!("                      milliseconds (default 0 = off; must exceed the");
    eprintln!("                      slowest single cell — completions are the signal)");
    eprintln!();
    eprintln!("  GRIFFIN_FAULT       deterministic fault injection for chaos tests, e.g.");
    eprintln!("                      kill:shard=1:after=2;corrupt-cache:shard=1 (see docs)");
    ExitCode::from(2)
}

/// Options shared by `sweep` and `pareto`.
struct SweepArgs {
    family: Option<ArchFamily>,
    lineup: bool,
    fanin: usize,
    workers: usize,
    seeds: Vec<u64>,
    tiles: usize,
    cache_dir: Option<String>,
    csv: Option<String>,
    json: Option<String>,
}

fn parse_family(s: &str, fanin: usize) -> Option<ArchFamily> {
    match s.to_ascii_lowercase().as_str() {
        "a" | "sparse.a" => Some(ArchFamily::SparseA { max_fanin: fanin }),
        "b" | "sparse.b" => Some(ArchFamily::SparseB { max_fanin: fanin }),
        "ab" | "sparse.ab" => Some(ArchFamily::SparseAB { max_fanin: fanin }),
        _ => None,
    }
}

fn parse_sweep_args(args: &[String]) -> Option<SweepArgs> {
    let mut out = SweepArgs {
        family: None,
        lineup: false,
        fanin: 8,
        workers: default_workers(),
        seeds: vec![42, 43],
        tiles: 12,
        cache_dir: None,
        csv: None,
        json: None,
    };
    let mut family_token: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned();
        match flag.as_str() {
            "--family" => family_token = Some(val()?),
            "--lineup" => out.lineup = true,
            "--fanin" => out.fanin = val()?.parse().ok()?,
            "--workers" => out.workers = val()?.parse::<usize>().ok().filter(|&w| w > 0)?,
            "--seeds" => {
                out.seeds = val()?
                    .split(',')
                    .map(|s| s.trim().parse().ok())
                    .collect::<Option<Vec<u64>>>()?;
                if out.seeds.is_empty() {
                    return None;
                }
            }
            "--tiles" => out.tiles = val()?.parse::<usize>().ok().filter(|&t| t > 0)?,
            "--cache" => out.cache_dir = Some(val()?),
            "--csv" => out.csv = Some(val()?),
            "--json" => out.json = Some(val()?),
            _ => return None,
        }
    }
    if let Some(tok) = family_token {
        out.family = Some(parse_family(&tok, out.fanin)?);
    }
    Some(out)
}

/// Workload token: a Table-IV benchmark name or `synth` (a 4-layer
/// synthetic network, handy for fast smoke campaigns).
fn add_workload(spec: SweepSpec, token: &str) -> Option<SweepSpec> {
    if token.eq_ignore_ascii_case("synth") {
        Some(spec.synthetic("synth", 4))
    } else {
        parse_benchmark(token).map(|b| spec.benchmark(b))
    }
}

fn open_cache(dir: &Option<String>) -> Result<ResultCache, ExitCode> {
    match dir {
        None => Ok(ResultCache::in_memory()),
        Some(d) => ResultCache::at_dir(d).map_err(|e| {
            eprintln!("cannot open cache directory {d}: {e}");
            ExitCode::FAILURE
        }),
    }
}

fn campaign_sim(tiles: usize) -> SimConfig {
    SimConfig {
        fidelity: Fidelity::Sampled {
            tiles,
            seed: 0xBEEF,
        },
        ..SimConfig::default()
    }
}

/// Writes the report files. `quiet` routes the confirmations to stderr
/// — `fleet --events -` gives stdout to the JSONL stream, which must
/// stay pure JSON lines.
fn finish_reports(
    report: &griffin::sweep::CampaignReport,
    csv: &Option<String>,
    json: &Option<String>,
    quiet: bool,
) -> Result<(), ExitCode> {
    for (path, contents) in [(csv, to_csv(report)), (json, to_json(report))] {
        if let Some(p) = path {
            if let Err(e) = write_file(p, &contents) {
                eprintln!("cannot write {p}: {e}");
                return Err(ExitCode::FAILURE);
            }
            if quiet {
                eprintln!("wrote {p}");
            } else {
                println!("wrote {p}");
            }
        }
    }
    Ok(())
}

/// Builds the campaign spec the `sweep` and `fleet` commands share. The
/// spec — including its name — must be identical between them: fleet
/// reports are pinned byte-identical to single-process sweep reports,
/// and shard workers recompute this spec from the same tokens.
fn build_sweep_spec(workload: &str, cat: &str, opts: &SweepArgs) -> Option<SweepSpec> {
    let c = parse_category(cat)?;
    let mut spec = SweepSpec::new(format!("sweep-{workload}-{cat}"))
        .category(c)
        .seeds(opts.seeds.clone())
        .sim(campaign_sim(opts.tiles));
    spec = add_workload(spec, workload)?;
    Some(if opts.lineup {
        spec.archs(ArchSpec::table7_lineup())
    } else {
        // Default family follows the category's home axis.
        let family = opts.family.unwrap_or(match c {
            DnnCategory::A => ArchFamily::SparseA {
                max_fanin: opts.fanin,
            },
            DnnCategory::AB => ArchFamily::SparseAB {
                max_fanin: opts.fanin,
            },
            _ => ArchFamily::SparseB {
                max_fanin: opts.fanin,
            },
        });
        spec.arch(ArchSpec::dense()).family(family)
    })
}

fn cmd_sweep(workload: &str, cat: &str, rest: &[String]) -> ExitCode {
    let Some(opts) = parse_sweep_args(rest) else {
        return usage();
    };
    let Some(spec) = build_sweep_spec(workload, cat, &opts) else {
        return usage();
    };

    let cache = match open_cache(&opts.cache_dir) {
        Ok(c) => c,
        Err(code) => return code,
    };
    println!(
        "campaign `{}`: {} cells on {} workers...",
        spec.name,
        spec.cell_count(),
        opts.workers
    );
    let report = match run_campaign(&spec, &cache, opts.workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Persist the machine-readable reports before any further stdout:
    // a consumer piping through `head` must still get its files.
    if finish_reports(&report, &opts.csv, &opts.json, false).is_err() {
        return ExitCode::FAILURE;
    }

    let s = summarize(&report);
    println!(
        "{} cells in {} ms  (cache: {} hits / {} misses, {:.0}% hit rate)",
        s.cells,
        report.elapsed_ms,
        report.cache.hits,
        report.cache.misses,
        report.cache.hit_rate() * 100.0
    );
    println!(
        "geomean speedup {:.2}x over {} architectures",
        s.geomean_speedup, s.archs
    );
    if let Some((arch, wl, speedup)) = &s.best {
        println!("best cell: {arch} on {wl} at {speedup:.2}x");
    }
    println!();
    println!("top architectures by effective TOPS/W:");
    let mut rollup = per_arch(&report, None);
    rollup.sort_by(|a, b| b.tops_per_w.total_cmp(&a.tops_per_w));
    println!(
        "{:<24} {:>8} {:>10} {:>10}",
        "arch", "speedup", "TOPS/W", "TOPS/mm2"
    );
    for a in rollup.iter().take(10) {
        println!(
            "{:<24} {:>7.2}x {:>10.2} {:>10.2}",
            a.arch, a.speedup, a.tops_per_w, a.tops_per_mm2
        );
    }
    ExitCode::SUCCESS
}

fn cmd_pareto(workload: &str, family_tok: &str, rest: &[String]) -> ExitCode {
    let Some(opts) = parse_sweep_args(rest) else {
        return usage();
    };
    // `pareto` takes its family positionally; silently ignoring a
    // conflicting --family/--lineup would Pareto-reduce the wrong
    // design set.
    if opts.lineup {
        eprintln!("pareto sweeps a design family; --lineup is not applicable");
        return usage();
    }
    if opts.family.is_some() {
        eprintln!("pareto takes its family positionally; drop --family");
        return usage();
    }
    let Some(family) = parse_family(family_tok, opts.fanin) else {
        return usage();
    };
    let sparse_cat = match family {
        ArchFamily::SparseA { .. } => DnnCategory::A,
        ArchFamily::SparseB { .. } => DnnCategory::B,
        ArchFamily::SparseAB { .. } => DnnCategory::AB,
    };
    let mut spec = SweepSpec::new(format!("pareto-{workload}-{family_tok}"))
        .categories([sparse_cat, DnnCategory::Dense])
        .seeds(opts.seeds.clone())
        .sim(campaign_sim(opts.tiles))
        .family(family);
    let Some(with_wl) = add_workload(spec, workload) else {
        return usage();
    };
    spec = with_wl;

    let cache = match open_cache(&opts.cache_dir) {
        Ok(c) => c,
        Err(code) => return code,
    };
    println!(
        "campaign `{}`: {} cells on {} workers...",
        spec.name,
        spec.cell_count(),
        opts.workers
    );
    let report = match run_campaign(&spec, &cache, opts.workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if finish_reports(&report, &opts.csv, &opts.json, false).is_err() {
        return ExitCode::FAILURE;
    }
    println!(
        "{} cells in {} ms  (cache: {} hits / {} misses)",
        report.cells.len(),
        report.elapsed_ms,
        report.cache.hits,
        report.cache.misses
    );
    println!();
    println!(
        "Pareto front (TOPS/W on {} vs TOPS/W on {}):",
        sparse_cat,
        DnnCategory::Dense
    );
    let front = pareto_designs(&report, &spec.archs, sparse_cat, DnnCategory::Dense);
    println!("{:<24} {:>12} {:>12}", "arch", "sparse", "dense");
    for p in &front {
        println!(
            "{:<24} {:>12.2} {:>12.2}",
            p.spec.name, p.sparse_metric, p.dense_metric
        );
    }
    ExitCode::SUCCESS
}

/// Fleet-specific flags, split off before the shared sweep options.
struct FleetCliArgs {
    shards: usize,
    spawn: bool,
    dir: String,
    events: Option<String>,
    resume: bool,
    heartbeat: usize,
    max_shard_retries: usize,
    heartbeat_timeout_ms: u64,
    /// Remaining (sweep) options, preserved verbatim so `--spawn` can
    /// forward them to shard workers unchanged.
    sweep_rest: Vec<String>,
}

/// Forwards a flag the fleet/worker splitters don't recognize into the
/// sweep-option remainder, keeping its value paired — the one shared
/// rule both splitters must agree on: every sweep flag takes a value
/// except the boolean `--lineup` ([`parse_sweep_args`] validates the
/// result).
fn forward_sweep_flag<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
    sweep_rest: &mut Vec<String>,
) -> Option<()> {
    sweep_rest.push(flag.to_string());
    if flag != "--lineup" {
        sweep_rest.push(it.next()?.clone());
    }
    Some(())
}

/// Splits fleet flags from an argument list, leaving sweep options in
/// `sweep_rest`.
fn split_fleet_args(args: &[String]) -> Option<FleetCliArgs> {
    let mut out = FleetCliArgs {
        shards: 0,
        spawn: false,
        dir: ".griffin-fleet".into(),
        events: None,
        resume: false,
        heartbeat: 32,
        max_shard_retries: 2,
        heartbeat_timeout_ms: 0,
        sweep_rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => out.shards = it.next()?.parse().ok().filter(|&n| n > 0)?,
            "--spawn" => out.spawn = true,
            "--dir" => out.dir = it.next()?.clone(),
            "--events" => out.events = Some(it.next()?.clone()),
            "--resume" => out.resume = true,
            "--heartbeat" => out.heartbeat = it.next()?.parse().ok()?,
            "--max-shard-retries" => out.max_shard_retries = it.next()?.parse().ok()?,
            "--heartbeat-timeout" => out.heartbeat_timeout_ms = it.next()?.parse().ok()?,
            other => forward_sweep_flag(other, &mut it, &mut out.sweep_rest)?,
        }
    }
    (out.shards > 0).then_some(out)
}

/// Opens the fleet event sink: a JSONL file in the state dir by
/// default, an explicit path, or stdout (`-`). Returns the sink and
/// whether human chatter must be suppressed (events own stdout).
fn open_event_sink(
    dir: &std::path::Path,
    events: &Option<String>,
    resume: bool,
) -> Result<(JsonlSink<Box<dyn std::io::Write + Send>>, bool), ExitCode> {
    if events.as_deref() == Some("-") {
        return Ok((JsonlSink::new(Box::new(std::io::stdout())), true));
    }
    let path = events
        .as_ref()
        .map_or_else(|| default_events_path(dir), PathBuf::from);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create event stream directory: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    // A fresh campaign starts a fresh stream; a resume appends to it.
    let mut o = std::fs::OpenOptions::new();
    if resume {
        o.append(true).create(true);
    } else {
        o.write(true).create(true).truncate(true);
    }
    match o.open(&path) {
        Ok(f) => Ok((JsonlSink::new(Box::new(f)), false)),
        Err(e) => {
            eprintln!("cannot open event stream {}: {e}", path.display());
            Err(ExitCode::FAILURE)
        }
    }
}

fn cmd_fleet(workload: &str, cat: &str, rest: &[String]) -> ExitCode {
    let Some(fleet_args) = split_fleet_args(rest) else {
        return usage();
    };
    let Some(opts) = parse_sweep_args(&fleet_args.sweep_rest) else {
        return usage();
    };
    if opts.cache_dir.is_some() {
        eprintln!("fleet manages its own caches under --dir; drop --cache");
        return usage();
    }
    let Some(spec) = build_sweep_spec(workload, cat, &opts) else {
        return usage();
    };
    // A typoed chaos experiment must fail loudly, not run clean.
    let fault_plan = match fault::plan_from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", fault::FAULT_ENV);
            return ExitCode::FAILURE;
        }
    };
    let dir = PathBuf::from(&fleet_args.dir);
    let cfg = FleetConfig {
        shards: fleet_args.shards,
        workers: opts.workers,
        dir: dir.clone(),
        resume: fleet_args.resume,
        heartbeat_every: fleet_args.heartbeat,
        max_shard_retries: fleet_args.max_shard_retries,
        heartbeat_timeout_ms: fleet_args.heartbeat_timeout_ms,
        // In spawn mode the workers arm their own faults from the
        // inherited environment; the coordinator only acts on its own
        // (journal) faults either way.
        fault: fault_plan,
    };
    let (mut sink, quiet) = match open_event_sink(&dir, &fleet_args.events, fleet_args.resume) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if !quiet {
        println!(
            "fleet `{}`: {} cells over {} shards ({}){}...",
            spec.name,
            spec.cell_count(),
            cfg.shards,
            if fleet_args.spawn {
                "subprocesses"
            } else {
                "in-process"
            },
            if cfg.resume { ", resuming" } else { "" }
        );
    }

    let report = if fleet_args.spawn {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot locate own executable for --spawn: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Forward the sweep options verbatim so every worker rebuilds
        // the identical spec; pin a per-shard worker count when the
        // user left it defaulted (N concurrent shards would otherwise
        // each grab every core).
        let mut forward = fleet_args.sweep_rest.clone();
        if !forward.iter().any(|a| a == "--workers") {
            let per_shard = (default_workers() / cfg.shards).max(1);
            forward.extend(["--workers".into(), per_shard.to_string()]);
        }
        let make = |w: &WorkerSpawn| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("shard-worker").arg(workload).arg(cat);
            cmd.args(&forward);
            cmd.args([
                "--shards",
                &w.shards.to_string(),
                "--shard",
                &w.shard.to_string(),
                "--expect-fp",
                &w.expect_fp.to_string(),
                "--heartbeat",
                &fleet_args.heartbeat.to_string(),
            ]);
            cmd.arg("--cache").arg(&w.cache_dir);
            cmd.arg("--journal").arg(&w.journal);
            cmd
        };
        run_fleet_spawned(&spec, &cfg, &make, &mut sink)
    } else {
        run_fleet(&spec, &cfg, &mut sink)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if finish_reports(&report, &opts.csv, &opts.json, quiet).is_err() {
        return ExitCode::FAILURE;
    }
    if !quiet {
        let s = summarize(&report);
        println!(
            "{} cells in {} ms across {} shards",
            s.cells, report.elapsed_ms, cfg.shards
        );
        println!(
            "geomean speedup {:.2}x over {} architectures",
            s.geomean_speedup, s.archs
        );
        if fleet_args.events.is_none() {
            println!("event stream: {}", default_events_path(&dir).display());
        }
        println!(
            "journal: {} (resume with --resume)",
            dir.join("journal.jsonl").display()
        );
    }
    ExitCode::SUCCESS
}

/// Worker-specific flags of the internal `shard-worker` subcommand.
struct WorkerCliArgs {
    shards: usize,
    shard: Option<usize>,
    expect_fp: Option<Fingerprint>,
    cache: Option<String>,
    journal: Option<String>,
    heartbeat: usize,
    sweep_rest: Vec<String>,
}

fn split_worker_args(args: &[String]) -> Option<WorkerCliArgs> {
    let mut out = WorkerCliArgs {
        shards: 0,
        shard: None,
        expect_fp: None,
        cache: None,
        journal: None,
        heartbeat: 0,
        sweep_rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => out.shards = it.next()?.parse().ok().filter(|&n| n > 0)?,
            "--shard" => out.shard = Some(it.next()?.parse().ok()?),
            "--expect-fp" => out.expect_fp = Some(Fingerprint::parse(it.next()?)?),
            "--cache" => out.cache = Some(it.next()?.clone()),
            "--journal" => out.journal = Some(it.next()?.clone()),
            "--heartbeat" => out.heartbeat = it.next()?.parse().ok()?,
            other => forward_sweep_flag(other, &mut it, &mut out.sweep_rest)?,
        }
    }
    (out.shards > 0 && out.shard.is_some() && out.cache.is_some()).then_some(out)
}

fn cmd_shard_worker(workload: &str, cat: &str, rest: &[String]) -> ExitCode {
    let Some(w) = split_worker_args(rest) else {
        return usage();
    };
    let Some(opts) = parse_sweep_args(&w.sweep_rest) else {
        return usage();
    };
    let Some(spec) = build_sweep_spec(workload, cat, &opts) else {
        return usage();
    };
    let fault_plan = match fault::plan_from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", fault::FAULT_ENV);
            return ExitCode::FAILURE;
        }
    };
    let cfg = WorkerConfig {
        shards: w.shards,
        shard: w.shard.expect("validated"),
        expect_fp: w.expect_fp,
        journal: w.journal.map(PathBuf::from),
        cache_dir: PathBuf::from(w.cache.expect("validated")),
        workers: opts.workers,
        heartbeat_every: w.heartbeat,
        fault: fault_plan,
        attempt: fault::attempt_from_env(),
    };
    match run_shard_worker(&spec, &cfg, std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        // An injected kill dies the way a real crash does: a torn
        // protocol line, no shard_done, a nonzero exit. An injected
        // stall goes silent while staying alive — the coordinator's
        // heartbeat watchdog must find and kill it.
        Err(FleetError::Injected(f @ Fault::Kill { .. })) => {
            eprintln!("shard-worker: {f} — dying abruptly");
            use std::io::Write as _;
            let mut out = std::io::stdout();
            let _ = out.write_all(b"{\"ev\":\"cell_");
            let _ = out.flush();
            ExitCode::from(3)
        }
        Err(FleetError::Injected(f @ Fault::Stall { .. })) => {
            eprintln!("shard-worker: {f} — going silent");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("shard-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> ExitCode {
    println!("architectures:");
    for spec in ArchSpec::table7_lineup() {
        println!(
            "  {:<12} a={} b={} shuffle={}",
            spec.name, spec.a, spec.b, spec.shuffle
        );
    }
    println!();
    println!("benchmarks (Table IV):");
    for b in Benchmark::ALL {
        let i = b.info();
        println!(
            "  {:<14} B-sparsity {:>3.0}%  A-sparsity {:>3.0}%  dense {:.1e} cycles",
            i.name,
            i.b_sparsity * 100.0,
            i.a_sparsity * 100.0,
            i.paper_dense_cycles
        );
    }
    ExitCode::SUCCESS
}

fn report(acc: &Accelerator, wl: &griffin::core::accelerator::Workload) {
    let r = acc.run(wl);
    println!(
        "{:<12} {:>8.2}x speedup  {:>7.1} mW  {:>6.2} TOPS/W  {:>6.2} TOPS/mm2",
        r.arch,
        r.speedup,
        r.cost.power_mw(),
        r.effective_tops_per_w,
        r.effective_tops_per_mm2
    );
}

fn cmd_run(bench: &str, cat: &str, arch: &str) -> ExitCode {
    let (Some(b), Some(c), Some(a)) = (
        parse_benchmark(bench),
        parse_category(cat),
        parse_arch(arch),
    ) else {
        return usage();
    };
    let wl = build_workload(b, c, 42);
    println!("{} on {} ({c:?} masks, seed 42):", a.name, wl.name);
    report(&Accelerator::with_defaults(a), &wl);
    ExitCode::SUCCESS
}

fn cmd_compare(bench: &str, cat: &str) -> ExitCode {
    let (Some(b), Some(c)) = (parse_benchmark(bench), parse_category(cat)) else {
        return usage();
    };
    let wl = build_workload(b, c, 42);
    println!("{} / {c:?}:", wl.name);
    for spec in ArchSpec::table7_lineup() {
        report(&Accelerator::with_defaults(spec), &wl);
    }
    ExitCode::SUCCESS
}

fn cmd_layer(args: &[String]) -> ExitCode {
    let parsed: Option<(usize, usize, usize, f64, f64)> = (|| {
        Some((
            args.first()?.parse().ok()?,
            args.get(1)?.parse().ok()?,
            args.get(2)?.parse().ok()?,
            args.get(3)?.parse().ok()?,
            args.get(4)?.parse().ok()?,
        ))
    })();
    let Some((m, k, n, da, db)) = parsed else {
        return usage();
    };
    let Ok(layer) = synthetic_layer(m, k, n, db, da, 42) else {
        eprintln!("invalid layer dimensions");
        return ExitCode::from(2);
    };
    println!("layer {m}x{k}x{n}, A density {da}, B density {db}:");
    for spec in [
        ArchSpec::dense(),
        ArchSpec::sparse_b_star(),
        ArchSpec::sparse_a_star(),
        ArchSpec::sparse_ab_star(),
        ArchSpec::griffin(),
    ] {
        let acc = Accelerator::with_defaults(spec);
        match acc.run_layer(&layer) {
            Ok(r) => println!(
                "{:<12} {:>10.0} cycles  {:>6.2}x",
                acc.spec().name,
                r.cycles,
                r.speedup()
            ),
            Err(e) => {
                eprintln!("{}: {e}", acc.spec().name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bench(rest: &[String]) -> ExitCode {
    let Some(opts) = bench::parse_bench_args(rest) else {
        return usage();
    };
    match bench::run_bench(&opts) {
        Ok(json) => {
            let json = bench::merge_unknown_sections(json, &opts.out);
            if let Err(e) = write_file(&opts.out, &json.write()) {
                eprintln!("cannot write {}: {e}", opts.out);
                return ExitCode::FAILURE;
            }
            println!("wrote {}", opts.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses a byte budget with optional `k`/`m`/`g` suffix (powers of
/// 1024).
fn parse_bytes(s: &str) -> Option<u64> {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match lower.as_bytes()[lower.len() - 1] {
                b'k' => 1024u64,
                b'm' => 1024 * 1024,
                _ => 1024 * 1024 * 1024,
            },
        ),
        None => (lower.as_str(), 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

fn cmd_cache(rest: &[String]) -> ExitCode {
    match rest {
        [action, dir] if action == "stats" => match disk_stats(dir) {
            Ok(info) => {
                println!("cache {dir}:");
                println!("  {:>10} entries", info.entries);
                println!(
                    "  {:>10} bytes ({:.2} MiB)",
                    info.total_bytes,
                    info.total_bytes as f64 / (1024.0 * 1024.0)
                );
                if info.stale_tmp > 0 {
                    println!(
                        "  {:>10} stale temp files (run `cache prune` to clean)",
                        info.stale_tmp
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot read cache directory {dir}: {e}");
                ExitCode::FAILURE
            }
        },
        [action, dir, flag, value] if action == "prune" && flag == "--max-bytes" => {
            let Some(max) = parse_bytes(value) else {
                eprintln!("invalid --max-bytes value: {value}");
                return usage();
            };
            match prune_dir(dir, max) {
                Ok(r) => {
                    println!(
                        "pruned {dir}: evicted {} entries ({} bytes), removed {} stale temp files",
                        r.evicted, r.freed_bytes, r.tmp_removed
                    );
                    println!(
                        "kept {} entries, {} bytes (budget {max})",
                        r.kept.entries, r.kept.total_bytes
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot prune cache directory {dir}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") if args.len() == 4 => cmd_run(&args[1], &args[2], &args[3]),
        Some("compare") if args.len() == 3 => cmd_compare(&args[1], &args[2]),
        Some("layer") => cmd_layer(&args[1..]),
        Some("sweep") if args.len() >= 3 => cmd_sweep(&args[1], &args[2], &args[3..]),
        Some("pareto") if args.len() >= 3 => cmd_pareto(&args[1], &args[2], &args[3..]),
        Some("fleet") if args.len() >= 3 => cmd_fleet(&args[1], &args[2], &args[3..]),
        Some("shard-worker") if args.len() >= 3 => cmd_shard_worker(&args[1], &args[2], &args[3..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        _ => usage(),
    }
}
