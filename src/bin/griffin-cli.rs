//! `griffin-cli` — command-line front end for the Griffin reproduction.
//!
//! ```console
//! $ griffin-cli list                         # architectures & benchmarks
//! $ griffin-cli run resnet50 ab griffin      # one (benchmark, category, arch)
//! $ griffin-cli compare bert b               # all architectures on one workload
//! $ griffin-cli layer 196 1152 256 0.57 0.19 # ad-hoc layer on the star designs
//! $ griffin-cli sweep bert b --workers 8 --cache .sweep-cache --csv out.csv
//! $ griffin-cli sweep --scenario scenarios/fig5-bert-b.toml --csv out.csv
//! $ griffin-cli pareto resnet50 b            # §VI Pareto front of a family
//! $ griffin-cli fleet bert b --shards 4      # sharded campaign + journal
//! $ griffin-cli fleet --scenario scenarios/fig5-bert-b.toml --shards 4 --spawn
//! $ griffin-cli fleet watch .griffin-fleet   # live dashboard over events.jsonl
//! $ griffin-cli fleet watch .griffin-fleet --json   # one-shot summary
//! $ griffin-cli fleet report .griffin-fleet --html report.html
//! $ griffin-cli serve .griffin-serve         # resident campaign daemon
//! $ griffin-cli serve submit scenarios/fig5-bert-b.toml \
//!       --connect unix:.griffin-serve/serve.sock --csv out.csv
//! $ griffin-cli fleet watch --connect unix:.griffin-serve/serve.sock
//! $ griffin-cli scenario list                # shipped scenario library
//! $ griffin-cli scenario validate scenarios  # parse + validate data files
//! $ griffin-cli bench --out BENCH_sched.json # scheduler perf telemetry
//! $ griffin-cli cache stats .sweep-cache     # on-disk result cache usage
//! $ griffin-cli cache prune .sweep-cache --max-bytes 64m
//! ```
//!
//! Argument parsing is deliberately dependency-free (no clap): fixed
//! subcommands with positional arguments plus `--flag value` options
//! for the campaign commands. Workload / category / architecture /
//! family tokens come from the registry in
//! [`griffin::sweep::scenario`], which also parses the declarative
//! scenario files behind `--scenario`. (`shard-worker` is the internal
//! subprocess behind `fleet --spawn`; it speaks the fleet JSONL event
//! protocol on stdout.)

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use griffin::core::accelerator::Accelerator;
use griffin::core::arch::ArchSpec;
use griffin::core::category::DnnCategory;
use griffin::fleet::coordinator::{
    default_events_path, run_fleet, run_fleet_hosted, run_fleet_spawned, run_shard_worker,
    FleetConfig, FleetError, WorkerConfig, WorkerSpawn,
};
use griffin::fleet::events::JsonlSink;
use griffin::fleet::fault::{self, Fault, FaultPlan};
use griffin::fleet::transport::{ChaosExec, ExecTransport, LocalExec, SshExec, WorkerInvocation};
use griffin::sim::config::{Fidelity, SimConfig};
use griffin::sweep::report::{to_csv, to_json, write_file};
use griffin::sweep::scenario::{self, Scenario};
use griffin::sweep::{
    default_workers, disk_stats, pareto_designs, per_arch, prune_dir, run_campaign, summarize,
    ArchFamily, Fingerprint, ResultCache, ScenarioProvenance, SweepSpec,
};
use griffin::workloads::suite::{build_workload, Benchmark};
use griffin::workloads::synth::synthetic_layer;

#[path = "griffin-cli/bench.rs"]
mod bench;

/// Count every allocation so `griffin-cli bench` can report the
/// scheduler's steady-state allocation behaviour (see
/// [`griffin::telemetry`]).
#[global_allocator]
static ALLOC: griffin::telemetry::CountingAlloc = griffin::telemetry::CountingAlloc;

// Token parsing lives in the scenario registry
// (`griffin::sweep::scenario`), shared with the scenario-file parser so
// the CLI and data files accept the same vocabulary. The `*_or_explain`
// helpers turn an unknown token into a diagnostic naming the valid set
// and the nearest match.

fn parse_benchmark_or_explain(s: &str) -> Result<Benchmark, String> {
    scenario::parse_suite(s)
        .ok_or_else(|| scenario::unknown_token("benchmark", s, scenario::SUITE_TOKENS))
}

fn parse_category_or_explain(s: &str) -> Result<DnnCategory, String> {
    scenario::parse_category(s)
        .ok_or_else(|| scenario::unknown_token("category", s, scenario::CATEGORY_TOKENS))
}

fn parse_arch_or_explain(s: &str) -> Result<ArchSpec, String> {
    scenario::parse_arch(s)
        .ok_or_else(|| scenario::unknown_token("architecture", s, scenario::ARCH_TOKENS))
}

fn usage() -> ExitCode {
    eprintln!("griffin-cli — Griffin (HPCA 2022) reproduction");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  griffin-cli list");
    eprintln!("  griffin-cli run <benchmark> <category> <arch>");
    eprintln!("  griffin-cli compare <benchmark> <category>");
    eprintln!("  griffin-cli layer <M> <K> <N> <a_density> <b_density>");
    eprintln!("  griffin-cli sweep <benchmark|synth> <category> [sweep options]");
    eprintln!("  griffin-cli sweep --scenario <FILE> [--workers N --cache DIR --csv/--json PATH]");
    eprintln!("  griffin-cli pareto <benchmark|synth> <family> [sweep options]");
    eprintln!("  griffin-cli fleet <benchmark|synth> <category> --shards N [fleet/sweep options]");
    eprintln!("  griffin-cli fleet --scenario <FILE> [fleet options override the file's [fleet]]");
    eprintln!("  griffin-cli fleet watch <DIR> [--json | --json-follow | --no-tty]");
    eprintln!("                         [--interval MS --timeout MS --events PATH]");
    eprintln!("  griffin-cli fleet watch --connect <ADDR> [--campaign ID]");
    eprintln!("                         [--json-follow | --no-tty] [--interval MS]");
    eprintln!("  griffin-cli fleet report <DIR> [--html PATH] [--events PATH]");
    eprintln!("  griffin-cli serve <DIR> [--tcp ADDR --workers N --shards N");
    eprintln!("                          --queue N --retain N]   (daemon; ^C drains)");
    eprintln!("  griffin-cli serve submit <FILE> --connect <ADDR> [--csv/--json PATH --quiet]");
    eprintln!("  griffin-cli serve status --connect <ADDR>");
    eprintln!("  griffin-cli serve cancel <ID> --connect <ADDR>");
    eprintln!("      ADDR: unix:<path> or tcp:<host:port>; the daemon always listens");
    eprintln!("      on <DIR>/serve.sock, --tcp adds a TCP listener");
    eprintln!("  griffin-cli scenario list [DIR]              (default scenarios/)");
    eprintln!("  griffin-cli scenario show <FILE>");
    eprintln!("  griffin-cli scenario validate <FILE|DIR>...");
    eprintln!("  griffin-cli bench [--quick] [--out PATH]     (default BENCH_sched.json)");
    eprintln!("  griffin-cli cache stats <DIR>");
    eprintln!("  griffin-cli cache prune <DIR> --max-bytes N[k|m|g]");
    eprintln!();
    eprintln!("  benchmarks: alexnet googlenet resnet50 inceptionv3 mobilenetv2 bert");
    eprintln!("  categories: dense a b ab");
    eprintln!("  archs: baseline sparse.a* sparse.b* sparse.ab* griffin tcl.b");
    eprintln!("         tensordash sparten[.a|.b] cnvlutin cambricon-x");
    eprintln!();
    eprintln!("SWEEP OPTIONS:");
    eprintln!("  --family a|b|ab     design family axis (default: from category, else b)");
    eprintln!("  --fanin N           mux fan-in bound for the family (default: 8)");
    eprintln!("  --lineup            sweep the Table VII lineup instead of a family");
    eprintln!("  --workers N         simulation worker threads (default: all cores;");
    eprintln!("                      workload builds use all cores except in shard workers)");
    eprintln!("  --seeds a,b,c       mask seeds (default: 42,43)");
    eprintln!("  --tiles N           sampled tiles per layer (default: 12)");
    eprintln!("  --cache DIR         on-disk result cache shared across runs");
    eprintln!("  --csv PATH          write the per-cell report as CSV");
    eprintln!("  --json PATH         write the per-cell report as JSON");
    eprintln!();
    eprintln!("FLEET OPTIONS (with any sweep option; --workers applies per shard):");
    eprintln!("  --shards N          shard count (required)");
    eprintln!("  --spawn / --no-spawn one shard-worker subprocess per shard (default");
    eprintln!("                      in-process; overrides a scenario's [fleet] spawn)");
    eprintln!("  --dir DIR           state dir: journal, shard caches, merged cache");
    eprintln!("                      (default .griffin-fleet)");
    eprintln!("  --events PATH|-     JSONL event stream (default DIR/events.jsonl, - = stdout)");
    eprintln!("  --resume            resume from the journal (spec fingerprint verified)");
    eprintln!("  --heartbeat N       heartbeat every N cells per shard (default 32, 0 = off)");
    eprintln!("  --max-shard-retries N  retries per failed shard before giving up (default 2)");
    eprintln!("  --heartbeat-timeout MS with --spawn: kill + retry a worker silent for MS");
    eprintln!("                      milliseconds (default 0 = off; must exceed the");
    eprintln!("                      slowest single cell — completions are the signal)");
    eprintln!("  --hosts H1,H2,...   multi-host fleet, one worker transport per host:");
    eprintln!("                      `local` / `local:<label>` run on this machine,");
    eprintln!("                      anything else is an ssh destination ([user@]host).");
    eprintln!("                      Implies subprocess workers; overrides a scenario's");
    eprintln!("                      [fleet] hosts. A host that keeps failing is declared");
    eprintln!("                      lost and its shards move to the survivors.");
    eprintln!();
    eprintln!("  GRIFFIN_FAULT       deterministic fault injection for chaos tests, e.g.");
    eprintln!("                      kill:shard=1:after=2;corrupt-cache:shard=1 (see docs)");
    ExitCode::from(2)
}

/// Options shared by `sweep` and `pareto`.
struct SweepArgs {
    family: Option<ArchFamily>,
    lineup: bool,
    fanin: usize,
    workers: usize,
    seeds: Vec<u64>,
    tiles: usize,
    cache_dir: Option<String>,
    csv: Option<String>,
    json: Option<String>,
}

fn parse_family_or_explain(s: &str, fanin: usize) -> Result<ArchFamily, String> {
    scenario::parse_family(s, fanin)
        .ok_or_else(|| scenario::unknown_token("family", s, scenario::FAMILY_TOKENS))
}

fn parse_sweep_args(args: &[String]) -> Result<SweepArgs, String> {
    let mut out = SweepArgs {
        family: None,
        lineup: false,
        fanin: 8,
        workers: default_workers(),
        seeds: vec![42, 43],
        tiles: 12,
        cache_dir: None,
        csv: None,
        json: None,
    };
    let mut family_token: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--family" => family_token = Some(val()?),
            "--lineup" => out.lineup = true,
            "--fanin" => {
                out.fanin = val()?
                    .parse()
                    .map_err(|_| "--fanin must be an integer".to_string())?;
            }
            "--workers" => {
                out.workers = val()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w > 0)
                    .ok_or_else(|| "--workers must be a positive integer".to_string())?;
            }
            "--seeds" => {
                let raw = val()?;
                out.seeds = raw
                    .split(',')
                    .map(|s| s.trim().parse().ok())
                    .collect::<Option<Vec<u64>>>()
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| format!("--seeds must be a,b,c integers, got `{raw}`"))?;
            }
            "--tiles" => {
                out.tiles = val()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t > 0)
                    .ok_or_else(|| "--tiles must be a positive integer".to_string())?;
            }
            "--cache" => out.cache_dir = Some(val()?),
            "--csv" => out.csv = Some(val()?),
            "--json" => out.json = Some(val()?),
            other => return Err(format!("unknown sweep option `{other}`")),
        }
    }
    if let Some(tok) = family_token {
        out.family = Some(parse_family_or_explain(&tok, out.fanin)?);
    }
    Ok(out)
}

/// Workload token: a Table-IV benchmark name or `synth` (a 4-layer
/// synthetic network, handy for fast smoke campaigns).
fn add_workload(mut spec: SweepSpec, token: &str) -> Result<SweepSpec, String> {
    let w = scenario::parse_workload(token)
        .ok_or_else(|| scenario::unknown_token("workload", token, scenario::WORKLOAD_TOKENS))?;
    spec.workloads.push(w);
    Ok(spec)
}

fn open_cache(dir: &Option<String>) -> Result<ResultCache, ExitCode> {
    match dir {
        None => Ok(ResultCache::in_memory()),
        Some(d) => ResultCache::at_dir(d).map_err(|e| {
            eprintln!("cannot open cache directory {d}: {e}");
            ExitCode::FAILURE
        }),
    }
}

fn campaign_sim(tiles: usize) -> SimConfig {
    SimConfig {
        fidelity: Fidelity::Sampled {
            tiles,
            seed: 0xBEEF,
        },
        ..SimConfig::default()
    }
}

/// Writes the report files. `quiet` routes the confirmations to stderr
/// — `fleet --events -` gives stdout to the JSONL stream, which must
/// stay pure JSON lines.
fn finish_reports(
    report: &griffin::sweep::CampaignReport,
    csv: &Option<String>,
    json: &Option<String>,
    quiet: bool,
) -> Result<(), ExitCode> {
    for (path, contents) in [(csv, to_csv(report)), (json, to_json(report))] {
        if let Some(p) = path {
            if let Err(e) = write_file(p, &contents) {
                eprintln!("cannot write {p}: {e}");
                return Err(ExitCode::FAILURE);
            }
            if quiet {
                eprintln!("wrote {p}");
            } else {
                println!("wrote {p}");
            }
        }
    }
    Ok(())
}

/// Builds the campaign spec the `sweep` and `fleet` commands share. The
/// spec — including its name — must be identical between them: fleet
/// reports are pinned byte-identical to single-process sweep reports,
/// and shard workers recompute this spec from the same tokens.
fn build_sweep_spec(workload: &str, cat: &str, opts: &SweepArgs) -> Result<SweepSpec, String> {
    let c = parse_category_or_explain(cat)?;
    let mut spec = SweepSpec::new(format!("sweep-{workload}-{cat}"))
        .category(c)
        .seeds(opts.seeds.clone())
        .sim(campaign_sim(opts.tiles));
    spec = add_workload(spec, workload)?;
    Ok(if opts.lineup {
        spec.archs(ArchSpec::table7_lineup())
    } else {
        // Default family follows the category's home axis.
        let family = opts.family.unwrap_or(match c {
            DnnCategory::A => ArchFamily::SparseA {
                max_fanin: opts.fanin,
            },
            DnnCategory::AB => ArchFamily::SparseAB {
                max_fanin: opts.fanin,
            },
            _ => ArchFamily::SparseB {
                max_fanin: opts.fanin,
            },
        });
        spec.arch(ArchSpec::dense()).family(family)
    })
}

/// Prints a diagnostic and returns the usage exit code (2) — for
/// errors where the full usage wall would bury the actual problem.
fn explain(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(2)
}

/// Flags that define campaign *axes* — meaningless together with a
/// scenario file, which defines the axes itself.
const AXIS_FLAGS: &[&str] = &["--family", "--lineup", "--fanin", "--seeds", "--tiles"];

/// Loads a scenario file for `sweep`/`fleet --scenario`, rejecting
/// axis flags in `rest` (runtime flags like `--workers` stay valid).
fn load_scenario(path: &str, rest: &[String]) -> Result<Scenario, ExitCode> {
    for f in rest {
        if AXIS_FLAGS.contains(&f.as_str()) {
            return Err(explain(&format!(
                "{f} conflicts with --scenario: the scenario file defines the campaign axes"
            )));
        }
    }
    Scenario::load(path).map_err(|e| explain(&format!("scenario {path}: {e}")))
}

fn cmd_sweep(workload: &str, cat: &str, rest: &[String]) -> ExitCode {
    // `sweep --scenario <file> [runtime options]`: the campaign comes
    // from a scenario file instead of tokens.
    if workload == "--scenario" {
        let scen = match load_scenario(cat, rest) {
            Ok(s) => s,
            Err(code) => return code,
        };
        let opts = match parse_sweep_args(rest) {
            Ok(o) => o,
            Err(e) => return explain(&e),
        };
        return run_sweep_campaign(&scen.to_spec(), &opts);
    }
    let opts = match parse_sweep_args(rest) {
        Ok(o) => o,
        Err(e) => return explain(&e),
    };
    let spec = match build_sweep_spec(workload, cat, &opts) {
        Ok(s) => s,
        Err(e) => return explain(&e),
    };
    run_sweep_campaign(&spec, &opts)
}

fn run_sweep_campaign(spec: &SweepSpec, opts: &SweepArgs) -> ExitCode {
    let cache = match open_cache(&opts.cache_dir) {
        Ok(c) => c,
        Err(code) => return code,
    };
    println!(
        "campaign `{}`: {} cells on {} workers...",
        spec.name,
        spec.cell_count(),
        opts.workers
    );
    let report = match run_campaign(spec, &cache, opts.workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Persist the machine-readable reports before any further stdout:
    // a consumer piping through `head` must still get its files.
    if finish_reports(&report, &opts.csv, &opts.json, false).is_err() {
        return ExitCode::FAILURE;
    }

    let s = summarize(&report);
    println!(
        "{} cells in {} ms  (cache: {} hits / {} misses, {:.0}% hit rate)",
        s.cells,
        report.elapsed_ms,
        report.cache.hits,
        report.cache.misses,
        report.cache.hit_rate() * 100.0
    );
    println!(
        "geomean speedup {:.2}x over {} architectures",
        s.geomean_speedup, s.archs
    );
    if let Some((arch, wl, speedup)) = &s.best {
        println!("best cell: {arch} on {wl} at {speedup:.2}x");
    }
    println!();
    println!("top architectures by effective TOPS/W:");
    let mut rollup = per_arch(&report, None);
    rollup.sort_by(|a, b| b.tops_per_w.total_cmp(&a.tops_per_w));
    println!(
        "{:<24} {:>8} {:>10} {:>10}",
        "arch", "speedup", "TOPS/W", "TOPS/mm2"
    );
    for a in rollup.iter().take(10) {
        println!(
            "{:<24} {:>7.2}x {:>10.2} {:>10.2}",
            a.arch, a.speedup, a.tops_per_w, a.tops_per_mm2
        );
    }
    ExitCode::SUCCESS
}

fn cmd_pareto(workload: &str, family_tok: &str, rest: &[String]) -> ExitCode {
    let opts = match parse_sweep_args(rest) {
        Ok(o) => o,
        Err(e) => return explain(&e),
    };
    // `pareto` takes its family positionally; silently ignoring a
    // conflicting --family/--lineup would Pareto-reduce the wrong
    // design set.
    if opts.lineup {
        return explain("pareto sweeps a design family; --lineup is not applicable");
    }
    if opts.family.is_some() {
        return explain("pareto takes its family positionally; drop --family");
    }
    let family = match parse_family_or_explain(family_tok, opts.fanin) {
        Ok(f) => f,
        Err(e) => return explain(&e),
    };
    let sparse_cat = match family {
        ArchFamily::SparseA { .. } => DnnCategory::A,
        ArchFamily::SparseB { .. } => DnnCategory::B,
        ArchFamily::SparseAB { .. } => DnnCategory::AB,
    };
    let mut spec = SweepSpec::new(format!("pareto-{workload}-{family_tok}"))
        .categories([sparse_cat, DnnCategory::Dense])
        .seeds(opts.seeds.clone())
        .sim(campaign_sim(opts.tiles))
        .family(family);
    spec = match add_workload(spec, workload) {
        Ok(s) => s,
        Err(e) => return explain(&e),
    };

    let cache = match open_cache(&opts.cache_dir) {
        Ok(c) => c,
        Err(code) => return code,
    };
    println!(
        "campaign `{}`: {} cells on {} workers...",
        spec.name,
        spec.cell_count(),
        opts.workers
    );
    let report = match run_campaign(&spec, &cache, opts.workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if finish_reports(&report, &opts.csv, &opts.json, false).is_err() {
        return ExitCode::FAILURE;
    }
    println!(
        "{} cells in {} ms  (cache: {} hits / {} misses)",
        report.cells.len(),
        report.elapsed_ms,
        report.cache.hits,
        report.cache.misses
    );
    println!();
    println!(
        "Pareto front (TOPS/W on {} vs TOPS/W on {}):",
        sparse_cat,
        DnnCategory::Dense
    );
    let front = pareto_designs(&report, &spec.archs, sparse_cat, DnnCategory::Dense);
    println!("{:<24} {:>12} {:>12}", "arch", "sparse", "dense");
    for p in &front {
        println!(
            "{:<24} {:>12.2} {:>12.2}",
            p.spec.name, p.sparse_metric, p.dense_metric
        );
    }
    ExitCode::SUCCESS
}

/// Fleet-specific flags, split off before the shared sweep options.
/// Tunables are `Option`s so a scenario file's `[fleet]` section can
/// provide defaults without overriding explicit flags.
struct FleetCliArgs {
    shards: Option<usize>,
    /// `--spawn` / `--no-spawn`; `None` = defer to the scenario.
    spawn: Option<bool>,
    dir: String,
    events: Option<String>,
    resume: bool,
    heartbeat: Option<usize>,
    max_shard_retries: Option<usize>,
    heartbeat_timeout_ms: Option<u64>,
    /// `--hosts a,b,c`; `None` = defer to the scenario's `[fleet]`
    /// hosts (an empty list there means single-machine).
    hosts: Option<Vec<String>>,
    /// Remaining (sweep) options, preserved verbatim so `--spawn` can
    /// forward them to shard workers unchanged.
    sweep_rest: Vec<String>,
}

/// Fleet tunables after merging explicit flags over scenario defaults
/// over the built-in defaults.
struct FleetResolved {
    shards: usize,
    spawn: bool,
    heartbeat: usize,
    max_shard_retries: usize,
    heartbeat_timeout_ms: u64,
    /// Host tokens of a multi-host fleet (empty = single machine).
    hosts: Vec<String>,
}

/// The event/fault label of a `--hosts` token: the part after
/// `local:`, or the token itself (ssh destinations and bare `local`).
fn host_label(token: &str) -> &str {
    token.strip_prefix("local:").unwrap_or(token)
}

impl FleetCliArgs {
    /// Explicit flags win; a scenario's `[fleet]` section fills gaps;
    /// built-in defaults cover the rest. Errors when no shard count is
    /// available from either source.
    fn resolve(
        &self,
        scen: Option<&griffin::sweep::FleetSettings>,
    ) -> Result<FleetResolved, String> {
        let shards = self
            .shards
            .or(scen.map(|s| s.shards))
            .ok_or("fleet requires --shards (or a scenario [fleet] section)")?;
        let hosts = match &self.hosts {
            Some(h) => h.clone(),
            None => scen.map(|s| s.hosts.clone()).unwrap_or_default(),
        };
        let mut seen = std::collections::BTreeSet::new();
        for tok in &hosts {
            let label = host_label(tok);
            if label.is_empty() {
                return Err("--hosts entries must not be empty".into());
            }
            if !seen.insert(label.to_string()) {
                return Err(format!("duplicate host `{label}` in --hosts"));
            }
        }
        if !hosts.is_empty() && self.spawn == Some(false) {
            return Err("--no-spawn conflicts with --hosts: host workers are subprocesses".into());
        }
        Ok(FleetResolved {
            shards,
            spawn: self.spawn.unwrap_or_else(|| scen.is_some_and(|s| s.spawn)),
            hosts,
            heartbeat: self
                .heartbeat
                .or(scen.and_then(|s| s.heartbeat_every))
                .unwrap_or(32),
            max_shard_retries: self
                .max_shard_retries
                .or(scen.and_then(|s| s.max_shard_retries))
                .unwrap_or(2),
            heartbeat_timeout_ms: self
                .heartbeat_timeout_ms
                .or(scen.and_then(|s| s.heartbeat_timeout_ms))
                .unwrap_or(0),
        })
    }
}

/// Forwards a flag the fleet/worker splitters don't recognize into the
/// sweep-option remainder, keeping its value paired — the one shared
/// rule both splitters must agree on: every sweep flag takes a value
/// except the boolean `--lineup` ([`parse_sweep_args`] validates the
/// result).
fn forward_sweep_flag<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
    sweep_rest: &mut Vec<String>,
) -> Option<()> {
    sweep_rest.push(flag.to_string());
    if flag != "--lineup" {
        sweep_rest.push(it.next()?.clone());
    }
    Some(())
}

/// Splits fleet flags from an argument list, leaving sweep options in
/// `sweep_rest`.
fn split_fleet_args(args: &[String]) -> Option<FleetCliArgs> {
    let mut out = FleetCliArgs {
        shards: None,
        spawn: None,
        dir: ".griffin-fleet".into(),
        events: None,
        resume: false,
        heartbeat: None,
        max_shard_retries: None,
        heartbeat_timeout_ms: None,
        hosts: None,
        sweep_rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => out.shards = Some(it.next()?.parse().ok().filter(|&n| n > 0)?),
            "--spawn" => out.spawn = Some(true),
            "--no-spawn" => out.spawn = Some(false),
            "--dir" => out.dir = it.next()?.clone(),
            "--events" => out.events = Some(it.next()?.clone()),
            "--resume" => out.resume = true,
            "--heartbeat" => out.heartbeat = Some(it.next()?.parse().ok()?),
            "--max-shard-retries" => out.max_shard_retries = Some(it.next()?.parse().ok()?),
            "--heartbeat-timeout" => out.heartbeat_timeout_ms = Some(it.next()?.parse().ok()?),
            "--hosts" => {
                let toks: Vec<String> = it
                    .next()?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
                (!toks.is_empty()).then_some(())?;
                out.hosts = Some(toks);
            }
            other => forward_sweep_flag(other, &mut it, &mut out.sweep_rest)?,
        }
    }
    Some(out)
}

/// Opens the fleet event sink: a JSONL file in the state dir by
/// default, an explicit path, or stdout (`-`). Returns the sink and
/// whether human chatter must be suppressed (events own stdout).
fn open_event_sink(
    dir: &std::path::Path,
    events: &Option<String>,
    resume: bool,
) -> Result<(JsonlSink<Box<dyn std::io::Write + Send>>, bool), ExitCode> {
    if events.as_deref() == Some("-") {
        return Ok((JsonlSink::new(Box::new(std::io::stdout())), true));
    }
    let path = events
        .as_ref()
        .map_or_else(|| default_events_path(dir), PathBuf::from);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create event stream directory: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    // A fresh campaign starts a fresh stream; a resume appends to it.
    let mut o = std::fs::OpenOptions::new();
    if resume {
        o.append(true).create(true);
    } else {
        o.write(true).create(true).truncate(true);
    }
    match o.open(&path) {
        Ok(f) => Ok((JsonlSink::new(Box::new(f)), false)),
        Err(e) => {
            eprintln!("cannot open event stream {}: {e}", path.display());
            Err(ExitCode::FAILURE)
        }
    }
}

/// The abort flag shared between the SIGINT handler and the fleet
/// coordinator. A handler can only touch async-signal-safe state, so
/// it is a process-global atomic the coordinator polls.
static SIGINT_ABORT: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_sigint(_sig: i32) {
    if let Some(flag) = SIGINT_ABORT.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Installs a SIGINT handler that raises the fleet abort flag: ^C
/// drains running workers and fails the campaign with a terminal
/// `campaign_failed` — journal intact, so `--resume` picks up where
/// the interrupt landed. Returns the flag for [`FleetConfig::abort`].
fn install_sigint_abort() -> Arc<AtomicBool> {
    let flag = SIGINT_ABORT
        .get_or_init(|| Arc::new(AtomicBool::new(false)))
        .clone();
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
    flag
}

/// Wraps a transport in [`ChaosExec`] when the fault plan injects host
/// faults, so chaos campaigns exercise the same transport stack.
fn boxed_transport<T: ExecTransport + 'static>(
    t: T,
    fault: Option<&FaultPlan>,
) -> Box<dyn ExecTransport> {
    match fault {
        Some(p) if p.has_host_faults() => Box::new(ChaosExec::new(t, p.clone())),
        _ => Box::new(t),
    }
}

/// Maps `--hosts` tokens onto exec transports. `local` /
/// `local:<label>` run on this machine; anything else is an ssh
/// destination, which also gets the scenario file (if any) shipped by
/// content before its first launch.
fn build_transports(
    hosts: &[String],
    fault: Option<&FaultPlan>,
    ship: Option<&Path>,
) -> Vec<Box<dyn ExecTransport>> {
    hosts
        .iter()
        .map(|tok| {
            if let Some(label) = tok.strip_prefix("local:") {
                boxed_transport(LocalExec::new(label), fault)
            } else if tok == "local" {
                boxed_transport(LocalExec::default(), fault)
            } else {
                let mut ssh = SshExec::new(tok.clone());
                if let Some(p) = ship {
                    ssh = ssh.with_shipped_file(p);
                }
                boxed_transport(ssh, fault)
            }
        })
        .collect()
}

/// Flags of `fleet watch <dir>`.
struct WatchCliArgs {
    /// `--json`: one-shot summary of the stream as it stands, then exit.
    json_once: bool,
    /// `--json-follow`: stream a summary line whenever the model moves.
    json_follow: bool,
    /// `--no-tty`: line-mode output instead of full-frame redraws.
    no_tty: bool,
    /// `--interval MS`: poll cadence (default 250).
    interval_ms: u64,
    /// `--timeout MS`: give up following after this long (0 = never).
    timeout_ms: u64,
    /// `--events PATH`: explicit stream path (default DIR/events.jsonl).
    events: Option<String>,
}

fn split_watch_args(args: &[String]) -> Option<WatchCliArgs> {
    let mut out = WatchCliArgs {
        json_once: false,
        json_follow: false,
        no_tty: false,
        interval_ms: 250,
        timeout_ms: 0,
        events: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => out.json_once = true,
            "--json-follow" => out.json_follow = true,
            "--no-tty" => out.no_tty = true,
            "--interval" => out.interval_ms = it.next()?.parse().ok().filter(|&n| n > 0)?,
            "--timeout" => out.timeout_ms = it.next()?.parse().ok()?,
            "--events" => out.events = Some(it.next()?.clone()),
            _ => return None,
        }
    }
    (!(out.json_once && out.json_follow)).then_some(out)
}

/// Resolves the stream path for the observability commands: explicit
/// `--events`, else `<dir>/events.jsonl`.
fn watch_events_path(dir: &str, events: &Option<String>) -> PathBuf {
    events.as_ref().map_or_else(
        || default_events_path(PathBuf::from(dir).as_path()),
        PathBuf::from,
    )
}

/// `fleet watch --connect <addr>` — the same dashboard, fed from a
/// resident daemon's subscription stream instead of an events.jsonl
/// file. The daemon replays the campaign from its first event, so a
/// late watcher still folds the complete stream into the same
/// [`CampaignModel`](griffin::watch::CampaignModel).
fn cmd_fleet_watch_connected(addr: &str, rest: &[String]) -> ExitCode {
    use griffin::serve::{Client, Message, ServeAddr, StreamOutcome};
    use griffin::watch::{
        dashboard, fmt_duration_ms, status_line, CampaignModel, RateTracker, DEFAULT_RATE_TAU_MS,
    };

    // `--campaign` is connect-only; everything else is the shared
    // watch flag set.
    let mut campaign: Option<String> = None;
    let mut flags: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--campaign" {
            match it.next() {
                Some(v) => campaign = Some(v.clone()),
                None => return usage(),
            }
        } else {
            flags.push(flag.clone());
        }
    }
    let Some(opts) = split_watch_args(&flags) else {
        return usage();
    };
    if opts.json_once {
        return explain("--json snapshots an events file; with --connect use --json-follow");
    }
    if opts.events.is_some() {
        return explain("--events names a file; with --connect the daemon is the stream");
    }
    if opts.timeout_ms > 0 {
        return explain("--timeout polls a file; with --connect the daemon pushes events");
    }

    let mut client = match Client::connect(&ServeAddr::parse(addr), "fleet-watch") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to serve daemon at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = client.subscribe(campaign.as_deref()) {
        eprintln!("cannot subscribe: {e}");
        return ExitCode::FAILURE;
    }

    let mut model = CampaignModel::new();
    let mut rates = RateTracker::new(DEFAULT_RATE_TAU_MS);
    let started = std::time::Instant::now();
    // Events arrive one per cell; redraw at most once per interval.
    let mut next_render_ms = 0u64;
    loop {
        let item = match client.next_stream_item() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("stream from {addr} broke: {e}");
                return ExitCode::FAILURE;
            }
        };
        let now_ms = started.elapsed().as_millis() as u64;
        match item {
            Message::Event { event, .. } => {
                model.apply_line(&event.write());
                rates.observe(now_ms, model.done());
                if now_ms >= next_render_ms {
                    next_render_ms = now_ms + opts.interval_ms;
                    if opts.json_follow {
                        println!("{}", model.summary().write());
                    } else if opts.no_tty {
                        println!("{}", status_line(&model, &rates));
                    } else {
                        print!("\x1b[2J\x1b[H{}", dashboard(&model, &rates, 80, true));
                        use std::io::Write as _;
                        let _ = std::io::stdout().flush();
                    }
                }
            }
            Message::StreamEnd { outcome, .. } => {
                // Final frame, then the same exit protocol as the
                // file-backed watcher.
                if opts.json_follow {
                    println!("{}", model.summary().write());
                } else if opts.no_tty {
                    println!("{}", status_line(&model, &rates));
                } else {
                    print!("\x1b[2J\x1b[H{}", dashboard(&model, &rates, 80, true));
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
                return match outcome {
                    StreamOutcome::Done => {
                        if !opts.json_follow {
                            eprintln!(
                                "campaign done: {} cells in {}",
                                model.done(),
                                fmt_duration_ms(now_ms)
                            );
                        }
                        ExitCode::SUCCESS
                    }
                    StreamOutcome::Failed => {
                        eprintln!("campaign failed (see the daemon's journal for the cause)");
                        ExitCode::FAILURE
                    }
                };
            }
            _ => unreachable!("next_stream_item filters other variants"),
        }
    }
}

/// `fleet watch <dir>` — attach to a campaign's event stream (live or
/// finished) read-only and render it until the terminal event.
fn cmd_fleet_watch(dir: &str, rest: &[String]) -> ExitCode {
    if dir == "--connect" {
        let Some((addr, rest)) = rest.split_first() else {
            return usage();
        };
        return cmd_fleet_watch_connected(addr, rest);
    }
    let Some(opts) = split_watch_args(rest) else {
        return usage();
    };
    let path = watch_events_path(dir, &opts.events);

    if opts.json_once {
        // One-shot: fold whatever the stream holds right now. Running
        // campaigns summarize too — exit code stays 0; scripts branch
        // on the summary's `state` field.
        let model = match griffin::watch::CampaignModel::from_file(&path) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot read event stream {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        println!("{}", model.summary().write());
        return ExitCode::SUCCESS;
    }

    // Follow mode: poll until the stream reaches its terminal event.
    use griffin::watch::{dashboard, status_line, WatchOutcome, Watcher};
    let mut w = Watcher::new(&path);
    let started = std::time::Instant::now();
    let tick = std::time::Duration::from_millis(opts.interval_ms);
    loop {
        let now_ms = started.elapsed().as_millis() as u64;
        let report = match w.poll(now_ms) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot read event stream {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let moved = report.folded > 0 || report.restarted;
        if moved {
            if opts.json_follow {
                println!("{}", w.model().summary().write());
            } else if opts.no_tty {
                println!("{}", status_line(w.model(), w.rates()));
            } else {
                // Full-frame redraw: clear, home, draw.
                print!("\x1b[2J\x1b[H{}", dashboard(w.model(), w.rates(), 80, true));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
        }
        match w.outcome() {
            Some(WatchOutcome::Done { cells, elapsed_ms }) => {
                if !opts.json_follow {
                    eprintln!(
                        "campaign done: {cells} cells in {}",
                        griffin::watch::fmt_duration_ms(elapsed_ms)
                    );
                }
                return ExitCode::SUCCESS;
            }
            Some(WatchOutcome::Failed { msg }) => {
                eprintln!("campaign failed: {msg}");
                return ExitCode::FAILURE;
            }
            None => {}
        }
        if opts.timeout_ms > 0 && started.elapsed().as_millis() as u64 >= opts.timeout_ms {
            eprintln!(
                "watch timed out after {} without a terminal event",
                griffin::watch::fmt_duration_ms(opts.timeout_ms)
            );
            return ExitCode::FAILURE;
        }
        std::thread::sleep(tick);
    }
}

/// `fleet report <dir> --html PATH` — fold the (finished or in-flight)
/// stream into the self-contained HTML report page.
fn cmd_fleet_report(dir: &str, rest: &[String]) -> ExitCode {
    let mut html_out: Option<String> = None;
    let mut events: Option<String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--html", Some(v)) => html_out = Some(v.clone()),
            ("--events", Some(v)) => events = Some(v.clone()),
            _ => return usage(),
        }
    }
    let path = watch_events_path(dir, &events);
    let model = match griffin::watch::CampaignModel::from_file(&path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read event stream {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let out = html_out.map_or_else(|| PathBuf::from(dir).join("report.html"), PathBuf::from);
    let page = griffin::watch::report_html(&model);
    if let Err(e) = write_file(out.display().to_string(), &page) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

fn cmd_fleet(workload: &str, cat: &str, rest: &[String]) -> ExitCode {
    // Observability subcommands ride under `fleet`: they consume the
    // run directory a campaign wrote (or is writing) instead of tokens.
    if workload == "watch" {
        return cmd_fleet_watch(cat, rest);
    }
    if workload == "report" {
        return cmd_fleet_report(cat, rest);
    }
    let Some(fleet_args) = split_fleet_args(rest) else {
        return usage();
    };
    let opts = match parse_sweep_args(&fleet_args.sweep_rest) {
        Ok(o) => o,
        Err(e) => return explain(&e),
    };
    if opts.cache_dir.is_some() {
        return explain("fleet manages its own caches under --dir; drop --cache");
    }
    // `fleet --scenario <file>`: the campaign (and fleet defaults) come
    // from a scenario file; its provenance is recorded in the journal
    // header and the campaign_start event.
    let mut scenario_loaded = None;
    let spec = if workload == "--scenario" {
        let scen = match load_scenario(cat, &fleet_args.sweep_rest) {
            Ok(s) => s,
            Err(code) => return code,
        };
        let spec = scen.to_spec();
        scenario_loaded = Some(scen);
        spec
    } else {
        match build_sweep_spec(workload, cat, &opts) {
            Ok(s) => s,
            Err(e) => return explain(&e),
        }
    };
    let resolved = match fleet_args.resolve(scenario_loaded.as_ref().and_then(|s| s.fleet.as_ref()))
    {
        Ok(r) => r,
        Err(e) => return explain(&e),
    };
    let provenance: Option<ScenarioProvenance> =
        scenario_loaded.as_ref().map(|s| s.provenance(cat));
    // A typoed chaos experiment must fail loudly, not run clean.
    let fault_plan = match fault::plan_from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", fault::FAULT_ENV);
            return ExitCode::FAILURE;
        }
    };
    let dir = PathBuf::from(&fleet_args.dir);
    let mut cfg = FleetConfig::new(dir.clone(), resolved.shards);
    cfg.workers = opts.workers;
    cfg.resume = fleet_args.resume;
    cfg.heartbeat_every = resolved.heartbeat;
    cfg.max_shard_retries = resolved.max_shard_retries;
    cfg.heartbeat_timeout_ms = resolved.heartbeat_timeout_ms;
    // In spawn mode the workers arm their own faults from the
    // inherited environment; the coordinator only acts on its own
    // (journal) faults either way.
    cfg.fault = fault_plan;
    cfg.scenario = provenance;
    // ^C drains workers and fails the campaign cleanly instead of
    // tearing the stream mid-line; the journal survives for --resume.
    cfg.abort = Some(install_sigint_abort());
    let (mut sink, quiet) = match open_event_sink(&dir, &fleet_args.events, fleet_args.resume) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let hosted = !resolved.hosts.is_empty();
    if !quiet {
        let mode = if hosted {
            format!(
                "{} hosts: {}",
                resolved.hosts.len(),
                resolved.hosts.join(", ")
            )
        } else if resolved.spawn {
            "subprocesses".to_string()
        } else {
            "in-process".to_string()
        };
        println!(
            "fleet `{}`: {} cells over {} shards ({mode}){}...",
            spec.name,
            spec.cell_count(),
            cfg.shards,
            if cfg.resume { ", resuming" } else { "" }
        );
    }

    let report = if hosted || resolved.spawn {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot locate own executable for --spawn: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Workers rebuild the spec from the same source the coordinator
        // used: the positional tokens, or the scenario file (passed as
        // an absolute path so workers resolve it regardless of cwd).
        let source_args: Vec<String> = if workload == "--scenario" {
            let abs = std::fs::canonicalize(cat)
                .map_or_else(|_| cat.to_string(), |p| p.display().to_string());
            vec!["--scenario".into(), abs]
        } else {
            vec![workload.to_string(), cat.to_string()]
        };
        // Forward the sweep options verbatim so every worker rebuilds
        // the identical spec; pin a per-shard worker count when the
        // user left it defaulted (N concurrent shards would otherwise
        // each grab every core).
        let mut forward = fleet_args.sweep_rest.clone();
        if !forward.iter().any(|a| a == "--workers") {
            let per_shard = (default_workers() / cfg.shards).max(1);
            forward.extend(["--workers".into(), per_shard.to_string()]);
        }
        // One argument-list builder for both launch paths, so local
        // subprocesses and remote transports run identical workers.
        let worker_args = |w: &WorkerSpawn| -> Vec<String> {
            let mut args: Vec<String> = vec!["shard-worker".into()];
            args.extend(source_args.iter().cloned());
            args.extend(forward.iter().cloned());
            args.extend([
                "--shards".into(),
                w.shards.to_string(),
                "--shard".into(),
                w.shard.to_string(),
                "--expect-fp".into(),
                w.expect_fp.to_string(),
                "--heartbeat".into(),
                resolved.heartbeat.to_string(),
                "--cache".into(),
                w.cache_dir.display().to_string(),
                "--journal".into(),
                w.journal.display().to_string(),
            ]);
            args
        };
        if hosted {
            // Ssh hosts get the scenario file shipped by content before
            // their first launch (--expect-fp still guards drift).
            let ship = (workload == "--scenario").then(|| PathBuf::from(&source_args[1]));
            let transports = build_transports(&resolved.hosts, cfg.fault.as_ref(), ship.as_deref());
            let exe_str = exe.display().to_string();
            let make = |w: &WorkerSpawn| WorkerInvocation::new(exe_str.clone(), worker_args(w));
            run_fleet_hosted(&spec, &cfg, &transports, &make, &mut sink)
        } else {
            let make = |w: &WorkerSpawn| {
                let mut cmd = std::process::Command::new(&exe);
                cmd.args(worker_args(w));
                cmd
            };
            run_fleet_spawned(&spec, &cfg, &make, &mut sink)
        }
    } else {
        run_fleet(&spec, &cfg, &mut sink)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if finish_reports(&report, &opts.csv, &opts.json, quiet).is_err() {
        return ExitCode::FAILURE;
    }
    if !quiet {
        let s = summarize(&report);
        println!(
            "{} cells in {} ms across {} shards",
            s.cells, report.elapsed_ms, cfg.shards
        );
        println!(
            "geomean speedup {:.2}x over {} architectures",
            s.geomean_speedup, s.archs
        );
        if fleet_args.events.is_none() {
            println!("event stream: {}", default_events_path(&dir).display());
        }
        println!(
            "journal: {} (resume with --resume)",
            dir.join("journal.jsonl").display()
        );
    }
    ExitCode::SUCCESS
}

/// Worker-specific flags of the internal `shard-worker` subcommand.
struct WorkerCliArgs {
    shards: usize,
    shard: Option<usize>,
    expect_fp: Option<Fingerprint>,
    cache: Option<String>,
    journal: Option<String>,
    heartbeat: usize,
    sweep_rest: Vec<String>,
}

fn split_worker_args(args: &[String]) -> Option<WorkerCliArgs> {
    let mut out = WorkerCliArgs {
        shards: 0,
        shard: None,
        expect_fp: None,
        cache: None,
        journal: None,
        heartbeat: 0,
        sweep_rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => out.shards = it.next()?.parse().ok().filter(|&n| n > 0)?,
            "--shard" => out.shard = Some(it.next()?.parse().ok()?),
            "--expect-fp" => out.expect_fp = Some(Fingerprint::parse(it.next()?)?),
            "--cache" => out.cache = Some(it.next()?.clone()),
            "--journal" => out.journal = Some(it.next()?.clone()),
            "--heartbeat" => out.heartbeat = it.next()?.parse().ok()?,
            other => forward_sweep_flag(other, &mut it, &mut out.sweep_rest)?,
        }
    }
    (out.shards > 0 && out.shard.is_some() && out.cache.is_some()).then_some(out)
}

fn cmd_shard_worker(workload: &str, cat: &str, rest: &[String]) -> ExitCode {
    let Some(w) = split_worker_args(rest) else {
        return usage();
    };
    let opts = match parse_sweep_args(&w.sweep_rest) {
        Ok(o) => o,
        Err(e) => return explain(&e),
    };
    let spec = if workload == "--scenario" {
        match load_scenario(cat, &w.sweep_rest) {
            Ok(s) => s.to_spec(),
            Err(code) => return code,
        }
    } else {
        match build_sweep_spec(workload, cat, &opts) {
            Ok(s) => s,
            Err(e) => return explain(&e),
        }
    };
    let fault_plan = match fault::plan_from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", fault::FAULT_ENV);
            return ExitCode::FAILURE;
        }
    };
    let cfg = WorkerConfig {
        shards: w.shards,
        shard: w.shard.expect("validated"),
        expect_fp: w.expect_fp,
        journal: w.journal.map(PathBuf::from),
        cache_dir: PathBuf::from(w.cache.expect("validated")),
        workers: opts.workers,
        heartbeat_every: w.heartbeat,
        fault: fault_plan,
        attempt: fault::attempt_from_env(),
    };
    match run_shard_worker(&spec, &cfg, std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        // An injected kill dies the way a real crash does: a torn
        // protocol line, no shard_done, a nonzero exit. An injected
        // stall goes silent while staying alive — the coordinator's
        // heartbeat watchdog must find and kill it.
        Err(FleetError::Injected(f @ Fault::Kill { .. })) => {
            eprintln!("shard-worker: {f} — dying abruptly");
            use std::io::Write as _;
            let mut out = std::io::stdout();
            let _ = out.write_all(b"{\"ev\":\"cell_");
            let _ = out.flush();
            ExitCode::from(3)
        }
        Err(FleetError::Injected(f @ Fault::Stall { .. })) => {
            eprintln!("shard-worker: {f} — going silent");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("shard-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> ExitCode {
    println!("architectures:");
    for spec in ArchSpec::table7_lineup() {
        println!(
            "  {:<12} a={} b={} shuffle={}",
            spec.name, spec.a, spec.b, spec.shuffle
        );
    }
    println!();
    println!("benchmarks (Table IV):");
    for b in Benchmark::ALL {
        let i = b.info();
        println!(
            "  {:<14} B-sparsity {:>3.0}%  A-sparsity {:>3.0}%  dense {:.1e} cycles",
            i.name,
            i.b_sparsity * 100.0,
            i.a_sparsity * 100.0,
            i.paper_dense_cycles
        );
    }
    ExitCode::SUCCESS
}

fn report(acc: &Accelerator, wl: &griffin::core::accelerator::Workload) {
    let r = acc.run(wl);
    println!(
        "{:<12} {:>8.2}x speedup  {:>7.1} mW  {:>6.2} TOPS/W  {:>6.2} TOPS/mm2",
        r.arch,
        r.speedup,
        r.cost.power_mw(),
        r.effective_tops_per_w,
        r.effective_tops_per_mm2
    );
}

fn cmd_run(bench: &str, cat: &str, arch: &str) -> ExitCode {
    let parsed = parse_benchmark_or_explain(bench).and_then(|b| {
        parse_category_or_explain(cat).and_then(|c| parse_arch_or_explain(arch).map(|a| (b, c, a)))
    });
    let (b, c, a) = match parsed {
        Ok(t) => t,
        Err(e) => return explain(&e),
    };
    let wl = build_workload(b, c, 42);
    println!("{} on {} ({c:?} masks, seed 42):", a.name, wl.name);
    report(&Accelerator::with_defaults(a), &wl);
    ExitCode::SUCCESS
}

fn cmd_compare(bench: &str, cat: &str) -> ExitCode {
    let parsed = parse_benchmark_or_explain(bench)
        .and_then(|b| parse_category_or_explain(cat).map(|c| (b, c)));
    let (b, c) = match parsed {
        Ok(t) => t,
        Err(e) => return explain(&e),
    };
    let wl = build_workload(b, c, 42);
    println!("{} / {c:?}:", wl.name);
    for spec in ArchSpec::table7_lineup() {
        report(&Accelerator::with_defaults(spec), &wl);
    }
    ExitCode::SUCCESS
}

fn cmd_layer(args: &[String]) -> ExitCode {
    let parsed: Option<(usize, usize, usize, f64, f64)> = (|| {
        Some((
            args.first()?.parse().ok()?,
            args.get(1)?.parse().ok()?,
            args.get(2)?.parse().ok()?,
            args.get(3)?.parse().ok()?,
            args.get(4)?.parse().ok()?,
        ))
    })();
    let Some((m, k, n, da, db)) = parsed else {
        return usage();
    };
    let Ok(layer) = synthetic_layer(m, k, n, db, da, 42) else {
        eprintln!("invalid layer dimensions");
        return ExitCode::from(2);
    };
    println!("layer {m}x{k}x{n}, A density {da}, B density {db}:");
    for spec in [
        ArchSpec::dense(),
        ArchSpec::sparse_b_star(),
        ArchSpec::sparse_a_star(),
        ArchSpec::sparse_ab_star(),
        ArchSpec::griffin(),
    ] {
        let acc = Accelerator::with_defaults(spec);
        match acc.run_layer(&layer) {
            Ok(r) => println!(
                "{:<12} {:>10.0} cycles  {:>6.2}x",
                acc.spec().name,
                r.cycles,
                r.speedup()
            ),
            Err(e) => {
                eprintln!("{}: {e}", acc.spec().name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bench(rest: &[String]) -> ExitCode {
    let Some(opts) = bench::parse_bench_args(rest) else {
        return usage();
    };
    match bench::run_bench(&opts) {
        Ok(json) => {
            let json = bench::merge_unknown_sections(json, &opts.out);
            if let Err(e) = write_file(&opts.out, &json.write()) {
                eprintln!("cannot write {}: {e}", opts.out);
                return ExitCode::FAILURE;
            }
            println!("wrote {}", opts.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses a byte budget with optional `k`/`m`/`g` suffix (powers of
/// 1024).
fn parse_bytes(s: &str) -> Option<u64> {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match lower.as_bytes()[lower.len() - 1] {
                b'k' => 1024u64,
                b'm' => 1024 * 1024,
                _ => 1024 * 1024 * 1024,
            },
        ),
        None => (lower.as_str(), 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

fn cmd_cache(rest: &[String]) -> ExitCode {
    match rest {
        [action, dir] if action == "stats" => match disk_stats(dir) {
            Ok(info) => {
                println!("cache {dir}:");
                println!("  {:>10} entries", info.entries);
                println!(
                    "  {:>10} bytes ({:.2} MiB)",
                    info.total_bytes,
                    info.total_bytes as f64 / (1024.0 * 1024.0)
                );
                if info.stale_tmp > 0 {
                    println!(
                        "  {:>10} stale temp files (run `cache prune` to clean)",
                        info.stale_tmp
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot read cache directory {dir}: {e}");
                ExitCode::FAILURE
            }
        },
        [action, dir, flag, value] if action == "prune" && flag == "--max-bytes" => {
            let Some(max) = parse_bytes(value) else {
                eprintln!("invalid --max-bytes value: {value}");
                return usage();
            };
            match prune_dir(dir, max) {
                Ok(r) => {
                    println!(
                        "pruned {dir}: evicted {} entries ({} bytes), removed {} stale temp files",
                        r.evicted, r.freed_bytes, r.tmp_removed
                    );
                    println!(
                        "kept {} entries, {} bytes (budget {max})",
                        r.kept.entries, r.kept.total_bytes
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot prune cache directory {dir}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Scenario files under a path: the file itself, or every `*.toml`
/// directly inside a directory (sorted).
fn scenario_files(path: &str) -> Result<Vec<PathBuf>, String> {
    let p = PathBuf::from(path);
    if p.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&p)
            .map_err(|e| format!("cannot read {path}: {e}"))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no *.toml scenario files under {path}"));
        }
        return Ok(files);
    }
    if !p.exists() {
        return Err(format!("no such file or directory: {path}"));
    }
    Ok(vec![p])
}

/// One-line axis summary of a scenario (`2w x 1c x 43a x 2s`).
fn scenario_shape(s: &Scenario) -> String {
    format!(
        "{}w x {}c x {}a x {}s = {} cells",
        s.workloads.len(),
        s.categories.len(),
        s.expanded_archs().len(),
        s.seeds.len(),
        s.cell_count()
    )
}

fn cmd_scenario(rest: &[String]) -> ExitCode {
    match rest {
        [action] if action == "list" => cmd_scenario_list("scenarios"),
        [action, dir] if action == "list" => cmd_scenario_list(dir),
        [action, file] if action == "show" => cmd_scenario_show(file),
        [action, paths @ ..] if action == "validate" && !paths.is_empty() => {
            cmd_scenario_validate(paths)
        }
        _ => usage(),
    }
}

fn cmd_scenario_list(dir: &str) -> ExitCode {
    let files = match scenario_files(dir) {
        Ok(f) => f,
        Err(e) => return explain(&e),
    };
    println!("{:<28} {:<20} {:<28} fleet", "file", "name", "grid");
    for path in files {
        let file = path.file_name().map_or_else(
            || path.display().to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        match Scenario::load(&path) {
            Ok(s) => {
                let fleet = s.fleet.as_ref().map_or("-".to_string(), |f| {
                    format!(
                        "{} shards{}",
                        f.shards,
                        if f.spawn { ", spawn" } else { "" }
                    )
                });
                println!(
                    "{file:<28} {:<20} {:<28} {fleet}",
                    s.name,
                    scenario_shape(&s)
                );
            }
            Err(e) => println!("{file:<28} INVALID: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_scenario_show(file: &str) -> ExitCode {
    let s = match Scenario::load(file) {
        Ok(s) => s,
        Err(e) => return explain(&format!("scenario {file}: {e}")),
    };
    let spec = s.to_spec();
    println!("scenario `{}` ({file})", s.name);
    println!("  grid:         {}", scenario_shape(&s));
    println!("  scenario fp:  {}", s.fingerprint());
    println!(
        "  spec fp:      {}",
        griffin::fleet::spec_fingerprint(&spec)
    );
    println!(
        "  workloads:    {}",
        spec.workloads
            .iter()
            .map(griffin::sweep::WorkloadSpec::name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "  categories:   {}",
        s.categories
            .iter()
            .map(|c| scenario::category_token(*c))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("  architectures ({}):", spec.archs.len());
    for a in spec.archs.iter().take(12) {
        println!("    {}", a.canonical());
    }
    if spec.archs.len() > 12 {
        println!("    ... and {} more", spec.archs.len() - 12);
    }
    if let Some(f) = &s.fleet {
        println!(
            "  fleet:        {} shards{}",
            f.shards,
            if f.spawn { ", spawn" } else { "" }
        );
    }
    println!();
    println!("canonical form:");
    print!("{}", s.canonical());
    ExitCode::SUCCESS
}

fn cmd_scenario_validate(paths: &[String]) -> ExitCode {
    let mut files = Vec::new();
    for p in paths {
        match scenario_files(p) {
            Ok(f) => files.extend(f),
            Err(e) => return explain(&e),
        }
    }
    let mut failed = 0usize;
    for path in &files {
        match Scenario::load(path) {
            Ok(s) => println!(
                "ok   {} `{}` fp {} ({})",
                path.display(),
                s.name,
                s.fingerprint(),
                scenario_shape(&s)
            ),
            Err(e) => {
                failed += 1;
                eprintln!("FAIL {}: {e}", path.display());
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} of {} scenario file(s) invalid", files.len());
        return ExitCode::FAILURE;
    }
    println!("{} scenario file(s) valid", files.len());
    ExitCode::SUCCESS
}

/// `serve` — the resident campaign daemon and its client verbs.
fn cmd_serve(rest: &[String]) -> ExitCode {
    match rest.first().map(String::as_str) {
        Some("submit") => cmd_serve_submit(&rest[1..]),
        Some("status") => cmd_serve_status(&rest[1..]),
        Some("cancel") => cmd_serve_cancel(&rest[1..]),
        Some(dir) if !dir.starts_with("--") => cmd_serve_daemon(dir, &rest[1..]),
        _ => usage(),
    }
}

/// `serve <dir>` — run the daemon: bind `<dir>/serve.sock` (and an
/// optional TCP listener), accept wire clients until SIGINT, then
/// drain gracefully — queued campaigns get terminal events, the
/// running one aborts onto its journal, every subscriber sees exactly
/// one `stream_end`.
fn cmd_serve_daemon(dir: &str, rest: &[String]) -> ExitCode {
    use griffin::serve::{serve_connections, Daemon, Listener, ServeAddr, ServeConfig};

    let mut cfg = ServeConfig::new(dir);
    let mut tcp: Option<String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let Some(val) = it.next() else {
            return explain(&format!("{flag} requires a value"));
        };
        let parsed = val.parse::<usize>().ok().filter(|&n| n > 0);
        match flag.as_str() {
            "--tcp" => tcp = Some(val.clone()),
            "--workers" => match parsed {
                Some(n) => cfg.workers = n,
                None => return explain("--workers must be a positive integer"),
            },
            "--shards" => match parsed {
                Some(n) => cfg.shards = n,
                None => return explain("--shards must be a positive integer"),
            },
            "--queue" => match parsed {
                Some(n) => cfg.queue_cap = n,
                None => return explain("--queue must be a positive integer"),
            },
            "--retain" => match val.parse::<usize>() {
                Ok(n) => cfg.retain = n,
                Err(_) => return explain("--retain must be an integer"),
            },
            other => return explain(&format!("unknown serve option `{other}`")),
        }
    }

    let sock = PathBuf::from(dir).join("serve.sock");
    let mut listeners = Vec::new();
    match Listener::bind(&ServeAddr::Unix(sock.clone())) {
        Ok(l) => listeners.push(l),
        Err(e) => {
            eprintln!("cannot bind unix:{}: {e}", sock.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(hostport) = &tcp {
        match Listener::bind(&ServeAddr::Tcp(hostport.clone())) {
            Ok(l) => listeners.push(l),
            Err(e) => {
                eprintln!("cannot bind tcp:{hostport}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let daemon = match Daemon::start(cfg) {
        Ok(d) => Arc::new(d),
        Err(e) => {
            eprintln!("cannot start serve daemon in {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{} listening on unix:{}{} — dir {dir}, {} workers, {} shards, queue {}, retain {}",
        daemon.config().server,
        sock.display(),
        tcp.as_ref()
            .map_or(String::new(), |t| format!(" and tcp:{t}")),
        daemon.config().workers,
        daemon.config().shards,
        daemon.config().queue_cap,
        daemon.config().retain,
    );

    // SIGINT raises the flag; the accept loop sees it, but a handler
    // mid-stream blocks on its tee until a terminal event arrives —
    // so the drain (which produces those terminals) must run
    // concurrently, not after serve_connections returns.
    let stop = install_sigint_abort();
    let drainer = {
        let daemon = Arc::clone(&daemon);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            eprintln!("draining: refusing submissions, finishing in-flight campaigns");
            daemon.drain();
        })
    };
    let served = serve_connections(&daemon, listeners, &stop);
    stop.store(true, Ordering::SeqCst); // also unblocks the drainer on error paths
    let _ = drainer.join();
    eprintln!("final status: {}", daemon.status().write());
    match Arc::try_unwrap(daemon) {
        Ok(d) => d.shutdown(),
        Err(d) => {
            d.drain();
            d.wait_idle();
        }
    }
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Splits `--connect ADDR` off a client-verb argument list.
fn split_connect(rest: &[String]) -> Result<(String, Vec<String>), String> {
    let mut addr = None;
    let mut out = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--connect" {
            match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return Err("--connect requires an address".into()),
            }
        } else {
            out.push(flag.clone());
        }
    }
    addr.map(|a| (a, out))
        .ok_or_else(|| "serve client commands need --connect <ADDR>".into())
}

fn serve_client(addr: &str, name: &str) -> Result<griffin::serve::Client, String> {
    griffin::serve::Client::connect(&griffin::serve::ServeAddr::parse(addr), name)
        .map_err(|e| format!("cannot connect to serve daemon at {addr}: {e}"))
}

/// `serve submit <file> --connect ADDR` — ship the scenario text to the
/// daemon, follow its event stream, and optionally fetch the finished
/// reports (byte-identical to a standalone `sweep` of the scenario).
fn cmd_serve_submit(rest: &[String]) -> ExitCode {
    use griffin::serve::{ReportKind, ScenarioSource, StreamOutcome};
    use griffin::watch::{status_line, CampaignModel, RateTracker, DEFAULT_RATE_TAU_MS};

    let (addr, rest) = match split_connect(rest) {
        Ok(split) => split,
        Err(e) => return explain(&e),
    };
    let mut file = None;
    let mut csv = None;
    let mut json = None;
    let mut quiet = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => match it.next() {
                Some(v) => csv = Some(v.clone()),
                None => return explain("--csv requires a path"),
            },
            "--json" => match it.next() {
                Some(v) => json = Some(v.clone()),
                None => return explain("--json requires a path"),
            },
            "--quiet" => quiet = true,
            other if !other.starts_with("--") && file.is_none() => file = Some(other.to_string()),
            other => return explain(&format!("unknown serve submit option `{other}`")),
        }
    }
    let Some(file) = file else {
        return explain("serve submit needs a scenario file");
    };
    // Ship by content, not path: the daemon need not share a
    // filesystem with the client (TCP), and validation errors name
    // the daemon-side parse position either way.
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => return explain(&format!("cannot read scenario {file}: {e}")),
    };
    let mut client = match serve_client(&addr, "serve-submit") {
        Ok(c) => c,
        Err(e) => return explain(&e),
    };
    let mut model = CampaignModel::new();
    let mut rates = RateTracker::new(DEFAULT_RATE_TAU_MS);
    let started = std::time::Instant::now();
    let mut next_print_ms = 0u64;
    let streamed = client.submit_and_stream(&ScenarioSource::Inline(text), None, |_, event| {
        model.apply_line(&event.write());
        let now_ms = started.elapsed().as_millis() as u64;
        rates.observe(now_ms, model.done());
        if !quiet && now_ms >= next_print_ms {
            next_print_ms = now_ms + 250;
            eprintln!("{}", status_line(&model, &rates));
        }
    });
    let (accepted, outcome) = match streamed {
        Ok(r) => r,
        Err(e) => return explain(&format!("serve submit failed: {e}")),
    };
    if !quiet {
        eprintln!(
            "campaign {} ({} cells{}) on {}",
            accepted.campaign,
            accepted.cells,
            if accepted.deduped {
                ", deduplicated onto an in-flight run"
            } else {
                ""
            },
            client.server,
        );
    }
    if outcome == StreamOutcome::Failed {
        eprintln!("campaign {} failed", accepted.campaign);
        return ExitCode::FAILURE;
    }
    for (path, kind) in [(csv, ReportKind::Csv), (json, ReportKind::Json)] {
        let Some(path) = path else { continue };
        let body = match client.report(&accepted.campaign, kind) {
            Ok(b) => b,
            Err(e) => return explain(&format!("cannot fetch report: {e}")),
        };
        if let Err(e) = write_file(&path, &body) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("wrote {path}");
        }
    }
    println!(
        "campaign {} done: {} cells in {}",
        accepted.campaign,
        model.done(),
        griffin::watch::fmt_duration_ms(started.elapsed().as_millis() as u64)
    );
    ExitCode::SUCCESS
}

/// `serve status --connect ADDR` — print the daemon's
/// `griffin-serve-status/1` object.
fn cmd_serve_status(rest: &[String]) -> ExitCode {
    let (addr, extra) = match split_connect(rest) {
        Ok(split) => split,
        Err(e) => return explain(&e),
    };
    if !extra.is_empty() {
        return explain(&format!("unknown serve status option `{}`", extra[0]));
    }
    let mut client = match serve_client(&addr, "serve-status") {
        Ok(c) => c,
        Err(e) => return explain(&e),
    };
    match client.status() {
        Ok(status) => {
            println!("{}", status.write());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("status failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `serve cancel <id> --connect ADDR`.
fn cmd_serve_cancel(rest: &[String]) -> ExitCode {
    let (addr, extra) = match split_connect(rest) {
        Ok(split) => split,
        Err(e) => return explain(&e),
    };
    let [campaign] = extra.as_slice() else {
        return explain("serve cancel needs exactly one campaign id");
    };
    let mut client = match serve_client(&addr, "serve-cancel") {
        Ok(c) => c,
        Err(e) => return explain(&e),
    };
    match client.cancel(campaign) {
        Ok(true) => {
            println!("cancelled {campaign}");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("{campaign} already finished; nothing to cancel");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cancel failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") if args.len() == 4 => cmd_run(&args[1], &args[2], &args[3]),
        Some("compare") if args.len() == 3 => cmd_compare(&args[1], &args[2]),
        Some("layer") => cmd_layer(&args[1..]),
        Some("sweep") if args.len() >= 3 => cmd_sweep(&args[1], &args[2], &args[3..]),
        Some("pareto") if args.len() >= 3 => cmd_pareto(&args[1], &args[2], &args[3..]),
        Some("fleet") if args.len() >= 3 => cmd_fleet(&args[1], &args[2], &args[3..]),
        Some("shard-worker") if args.len() >= 3 => cmd_shard_worker(&args[1], &args[2], &args[3..]),
        Some("scenario") => cmd_scenario(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        _ => usage(),
    }
}
