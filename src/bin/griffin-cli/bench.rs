//! `griffin-cli bench` — machine-readable scheduler performance
//! telemetry (`BENCH_sched.json`).
//!
//! Three probes, designed to track the perf trajectory of the
//! event-driven scheduler core across PRs:
//!
//! * **micro** — representative tile grids (the `Sparse.B*` routing, a
//!   wide lane-reach window, a narrow window, a dense tile) scheduled
//!   by the event-driven core and by the retained naive reference,
//!   reporting ns/call, ns/op and the event/reference speedup;
//! * **multi_window** — a K-window family (one reach, varying depths)
//!   scheduled by [`schedule_multi`] versus K independent
//!   [`schedule_with`] passes, on an iid tile (replay never fires; the
//!   honest no-win overhead) and a structured 2:4 tile (bounded
//!   run-ahead lag, where saturating-depth replay collapses the
//!   family);
//! * **alloc** — allocations per tile in the steady state (grid rebuild
//!   plus schedule with a reused scratch), counted by the process-wide
//!   [`griffin::telemetry::CountingAlloc`] — the zero-alloc contract,
//!   measured rather than asserted;
//! * **campaign** — a small synthetic sweep through the full campaign
//!   engine, reporting cells/second;
//! * **share** — the campaign family run through
//!   [`Accelerator::run_family_batch`] with the sharing counters from
//!   [`SimScratch::share_stats`] reported: windows requested,
//!   event-core passes executed, replays, and window-keyed cache hits
//!   — the share rate on real masks, observable rather than assumed;
//! * **fleet** — the same sweep through the sharded fleet coordinator
//!   (2 in-process shards, journal, merge, assembly), reporting the
//!   orchestration overhead over a plain campaign;
//! * **watch** — a deterministic 54-cell event stream (per-cell events
//!   regenerated through `events::sample`, with v3 host stamps,
//!   scenario provenance, a mid-flight retry episode and non-finite
//!   metric floats) replayed through the observability fold
//!   ([`griffin::watch::CampaignModel`]), reporting events/second
//!   parsed-and-folded — the consumer must stay far ahead of any
//!   realistic producer (target: >10⁵ events/s);
//! * **serve** — the resident daemon's warm-path win: one scenario
//!   submitted twice to an in-process [`griffin::serve::Daemon`] —
//!   cold submit→first-`cell_done` latency and total campaign time,
//!   then the warm rerun answered from the resident cache — next to a
//!   cold one-shot campaign of the same scenario (what a fresh CLI
//!   invocation pays).
//!
//! Regeneration preserves hand-recorded data: top-level sections of an
//! existing output file that this probe set doesn't produce (e.g.
//! machine-measured PR-to-PR comparisons) are carried over verbatim by
//! [`merge_unknown_sections`].

use std::time::Instant;

use griffin::core::accelerator::Accelerator;
use griffin::core::category::DnnCategory;
use griffin::fleet::coordinator::{run_fleet, FleetConfig};
use griffin::fleet::events::NullSink;
use griffin::serve::{Daemon, ScenarioSource, ServeConfig, TeeItem};
use griffin::sim::config::{Fidelity, Priority, SimConfig};
use griffin::sim::engine::{reference, schedule_multi, schedule_with, OpGrid, SchedScratch};
use griffin::sim::grid::build_b_grid;
use griffin::sim::shuffle::LaneMap;
use griffin::sim::window::{BorrowWindow, EffectiveWindow};
use griffin::sim::SimScratch;
use griffin::sweep::json::Json;
use griffin::sweep::scenario::Scenario;
use griffin::sweep::{run_campaign, ResultCache, SweepSpec};
use griffin::telemetry::count_allocations;
use griffin::tensor::block::BTileView;
use griffin::tensor::gen::TensorGen;
use griffin::tensor::shape::CoreDims;

/// Options of the `bench` subcommand.
pub struct BenchArgs {
    /// Output path for the JSON report.
    pub out: String,
    /// Reduced iteration counts for CI smoke runs.
    pub quick: bool,
}

pub fn parse_bench_args(args: &[String]) -> Option<BenchArgs> {
    let mut out = BenchArgs {
        out: "BENCH_sched.json".into(),
        quick: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out.out = it.next()?.clone(),
            "--quick" => out.quick = true,
            _ => return None,
        }
    }
    Some(out)
}

struct MicroCase {
    name: &'static str,
    win: EffectiveWindow,
}

fn tile_grid(t_rows: usize, density: f64, seed: u64) -> OpGrid {
    let core = CoreDims::PAPER;
    let mask = TensorGen::seeded(seed).bernoulli_mask(t_rows * core.k0, core.n0, density);
    let view = BTileView::new(&mask, core, 0);
    let mut grid = OpGrid::default();
    let mut span = Vec::new();
    build_b_grid(&mut grid, &mut span, &view, LaneMap::Rotate);
    grid
}

/// Number of timing chunks `time_per_call` splits its iterations into.
/// The fastest chunk is reported: for deterministic CPU-bound work the
/// minimum is the least-interfered estimate, which keeps the JSON stable
/// across runs on a shared machine (see `machine_variance_note`).
const TIMING_CHUNKS: usize = 8;

fn time_per_call(mut f: impl FnMut(), iters: usize) -> f64 {
    // One untimed call so lazily-built scratch (tap tables, wake
    // buckets) doesn't land in the first chunk.
    f();
    let per_chunk = (iters / TIMING_CHUNKS).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_CHUNKS {
        let start = Instant::now();
        for _ in 0..per_chunk {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / per_chunk as f64);
    }
    best
}

pub fn run_bench(args: &BenchArgs) -> Result<Json, String> {
    let iters = if args.quick { 40 } else { 400 };
    let t_rows = if args.quick { 24 } else { 96 };
    println!(
        "bench: {} iterations/case on {}-row tiles{}",
        iters,
        t_rows,
        if args.quick { " (--quick)" } else { "" }
    );

    // --- micro: event core vs retained reference -----------------------
    let grid = tile_grid(t_rows, 0.19, 1);
    let dense = tile_grid(t_rows, 1.0, 2);
    let cases = [
        MicroCase {
            name: "sparse_b_star", // the paper's Sparse.B*(4,0,1)
            win: EffectiveWindow::for_b(BorrowWindow::new(4, 0, 1)),
        },
        MicroCase {
            name: "lane_reach", // contended arbitration, 9-tap tables
            win: EffectiveWindow::for_b(BorrowWindow::new(2, 2, 2)),
        },
        MicroCase {
            name: "narrow_window", // no reach: the specialized own-only loop
            win: EffectiveWindow::for_b(BorrowWindow::new(1, 0, 0)),
        },
    ];

    let mut scratch = SchedScratch::new();
    let mut micro = Vec::new();
    let mut push_case = |name: &str,
                         g: &OpGrid,
                         win: EffectiveWindow,
                         scratch: &mut SchedScratch| {
        let event_ns = time_per_call(
            || {
                schedule_with(g, win, Priority::OwnFirst, scratch);
            },
            iters,
        );
        let ref_ns = time_per_call(
            || {
                reference::schedule(g, win, Priority::OwnFirst);
            },
            iters,
        );
        let ops = g.total_ops() as f64;
        println!(
            "  {name:<16} event {event_ns:>10.0} ns/tile  ref {ref_ns:>10.0} ns/tile  ({:.2}x, {:.2} ns/op)",
            ref_ns / event_ns,
            event_ns / ops
        );
        micro.push(Json::obj([
            ("name".into(), Json::Str(name.into())),
            ("ops_per_tile".into(), Json::from_f64(ops)),
            ("event_ns_per_tile".into(), Json::from_f64(event_ns)),
            ("reference_ns_per_tile".into(), Json::from_f64(ref_ns)),
            ("event_ns_per_op".into(), Json::from_f64(event_ns / ops)),
            (
                "speedup_vs_reference".into(),
                Json::from_f64(ref_ns / event_ns),
            ),
        ]));
    };
    for case in &cases {
        push_case(case.name, &grid, case.win, &mut scratch);
    }
    push_case("dense_tile", &dense, EffectiveWindow::dense(), &mut scratch);

    // --- multi_window: K-window family vs K independent passes ---------
    // One shared reach (lane 0, cols 1), depths 2..=9 — a depth column
    // of the executor's arch axis after window dedup. On iid masks
    // every slot's run-ahead lag diverges and `schedule_multi` honestly
    // pays a full pass per window; on structured 2:4 masks the lag
    // stays bounded, so the deepest window's tracked pass replays the
    // shallower family members.
    let fam: Vec<EffectiveWindow> = (1..=8)
        .map(|d| EffectiveWindow::for_b(BorrowWindow::new(d, 0, 1)))
        .collect();
    let structured = {
        let core = CoreDims::PAPER;
        OpGrid::from_fn(t_rows, core.k0, 1, core.n0, |t, l, _, c| {
            (t + l * 7 + c * 13) % 4 < 2
        })
    };
    let mut multi_out = Vec::new();
    let mut multi_window = Vec::new();
    for (name, g) in [("iid_tile", &grid), ("structured_2of4", &structured)] {
        let multi_ns = time_per_call(
            || {
                schedule_multi(g, &fam, Priority::OwnFirst, &mut scratch, &mut multi_out);
            },
            iters,
        );
        let singles_ns = time_per_call(
            || {
                for w in &fam {
                    schedule_with(g, *w, Priority::OwnFirst, &mut scratch);
                }
            },
            iters,
        );
        let share = schedule_multi(g, &fam, Priority::OwnFirst, &mut scratch, &mut multi_out);
        println!(
            "  multi_window {name:<16} {} wins: multi {multi_ns:>10.0} ns  singles {singles_ns:>10.0} ns  ({:.2}x, {} replayed)",
            fam.len(),
            singles_ns / multi_ns,
            share.replayed
        );
        multi_window.push(Json::obj([
            ("name".into(), Json::Str(name.into())),
            ("windows".into(), Json::from_f64(fam.len() as f64)),
            ("replayed".into(), Json::from_f64(share.replayed as f64)),
            ("multi_ns_per_family".into(), Json::from_f64(multi_ns)),
            ("singles_ns_per_family".into(), Json::from_f64(singles_ns)),
            (
                "speedup_vs_singles".into(),
                Json::from_f64(singles_ns / multi_ns),
            ),
        ]));
    }

    // --- alloc: the zero-alloc steady-state contract -------------------
    let core = CoreDims::PAPER;
    let mask = TensorGen::seeded(3).bernoulli_mask(t_rows * core.k0, core.n0, 0.19);
    let view = BTileView::new(&mask, core, 0);
    let mut g = OpGrid::default();
    let mut span = Vec::new();
    let win = EffectiveWindow::for_b(BorrowWindow::new(4, 0, 1));
    // Warm up every buffer, then count a steady-state tile loop.
    for _ in 0..3 {
        build_b_grid(&mut g, &mut span, &view, LaneMap::Rotate);
        schedule_with(&g, win, Priority::OwnFirst, &mut scratch);
    }
    let tiles = iters.max(100);
    let (_, allocs, bytes) = count_allocations(|| {
        for _ in 0..tiles {
            build_b_grid(&mut g, &mut span, &view, LaneMap::Rotate);
            schedule_with(&g, win, Priority::OwnFirst, &mut scratch);
        }
    });
    let allocs_per_tile = allocs as f64 / tiles as f64;
    println!(
        "  steady state: {allocs_per_tile:.3} allocations/tile ({} allocs, {} bytes over {} tiles)",
        allocs, bytes, tiles
    );

    // --- campaign: cells/second through the sweep engine ---------------
    // Multiple mask seeds so the executor's seed-variant batching (one
    // word-parallel `run_batch` per arch across all seeds) is on the
    // measured path, exactly as in real sweeps.
    let layers = if args.quick { 2 } else { 4 };
    let seeds: Vec<u64> = if args.quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3]
    };
    let spec = SweepSpec::new("bench")
        .synthetic("bench-synth", layers)
        .category(DnnCategory::B)
        .family(ArchFamilyB { quick: args.quick }.family())
        .seeds(seeds.iter().copied())
        .sim(SimConfig {
            fidelity: Fidelity::Sampled { tiles: 4, seed: 1 },
            ..SimConfig::default()
        });
    // Single-worker baseline — also the denominator of the fleet
    // overhead ratio below, which runs its shards with one worker each.
    let cache = ResultCache::in_memory();
    let report = run_campaign(&spec, &cache, 1).map_err(|e| e.to_string())?;
    let secs_1w = (report.elapsed_ms as f64 / 1e3).max(1e-9);
    let cells_per_sec_1w = report.cells.len() as f64 / secs_1w;
    // Headline throughput: up to 4 workers, clamped to the machine's
    // actual parallelism (spawning more threads than cores only adds
    // scheduling noise on a scheduling-bound workload). The pinned
    // count is recorded in the JSON — compare only like against like.
    let campaign_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    let report_mw = run_campaign(&spec, &ResultCache::in_memory(), campaign_workers)
        .map_err(|e| e.to_string())?;
    let secs_mw = (report_mw.elapsed_ms as f64 / 1e3).max(1e-9);
    let cells_per_sec = report_mw.cells.len() as f64 / secs_mw;
    println!(
        "  campaign: {} cells in {} ms ({cells_per_sec:.1} cells/s, {campaign_workers} workers; \
         {cells_per_sec_1w:.1} cells/s single-worker)",
        report_mw.cells.len(),
        report_mw.elapsed_ms
    );

    // --- share: sharing counters across the campaign arch family ------
    // The same family the campaign sweeps, run as one family batch with
    // the counters read back. On real Bernoulli masks the windows are
    // pairwise distinct and run-ahead lags diverge, so the honest
    // numbers here are passes ≈ windows and replays ≈ 0 — the adaptive
    // multi-window walk wins by shared grid builds and cache locality,
    // not by schedule dedup (see ROADMAP item 4).
    let fam_archs = ArchFamilyB { quick: args.quick }.family().enumerate();
    let share_wl =
        griffin::workloads::synth::synthetic_workload("bench-synth", DnnCategory::B, layers, 1)
            .map_err(|e| e.to_string())?;
    let share_sim = SimConfig {
        fidelity: Fidelity::Sampled { tiles: 4, seed: 1 },
        ..SimConfig::default()
    };
    let accel_objs: Vec<Accelerator> = fam_archs
        .iter()
        .map(|a| Accelerator::new(a.clone(), share_sim))
        .collect();
    let accels: Vec<&Accelerator> = accel_objs.iter().collect();
    let mut sim_scratch = SimScratch::new();
    sim_scratch.begin_reuse_scope(0xBE7C);
    let share_planes = [&share_wl];
    let _ = Accelerator::run_family_batch(&accels, &share_planes, &mut sim_scratch);
    let st = sim_scratch.share_stats();
    let share_rate = st.shared() as f64 / st.multi_windows.max(1) as f64;
    println!(
        "  share: {} archs, {} windows -> {} passes ({} replayed, {} cache hits; {:.1}% shared)",
        fam_archs.len(),
        st.multi_windows,
        st.multi_passes,
        st.multi_replayed,
        st.sched_cache_hits,
        share_rate * 100.0
    );

    // --- fleet: orchestration overhead of the sharded coordinator -----
    let fleet_dir = std::env::temp_dir().join(format!(
        "griffin-bench-fleet-{}-{}",
        std::process::id(),
        if args.quick { "q" } else { "f" }
    ));
    let _ = std::fs::remove_dir_all(&fleet_dir);
    let mut fleet_cfg = FleetConfig::new(&fleet_dir, 2);
    fleet_cfg.workers = 1;
    let fleet_report = run_fleet(&spec, &fleet_cfg, &mut NullSink).map_err(|e| e.to_string())?;
    let _ = std::fs::remove_dir_all(&fleet_dir);
    let fleet_secs = (fleet_report.elapsed_ms as f64 / 1e3).max(1e-9);
    let fleet_cells_per_sec = fleet_report.cells.len() as f64 / fleet_secs;
    let overhead = fleet_report.elapsed_ms as f64 / (report.elapsed_ms as f64).max(1.0);
    println!(
        "  fleet: {} cells in {} ms over 2 shards ({fleet_cells_per_sec:.1} cells/s, \
         {overhead:.2}x of plain campaign incl. journal+merge+assembly)",
        fleet_report.cells.len(),
        fleet_report.elapsed_ms
    );

    // --- watch: the observability fold keeps up with the stream -------
    let stream = watch_stream_lines();
    let passes = if args.quick { 50 } else { 500 };
    let start = Instant::now();
    let mut last_done = 0;
    for _ in 0..passes {
        let mut model = griffin::watch::CampaignModel::new();
        for line in &stream {
            model.apply_line(line);
        }
        // A line the model can't parse folds cheaper than a real one,
        // which would quietly inflate the throughput number.
        assert_eq!(model.parse_errors, 0, "bench stream must parse cleanly");
        last_done = model.done();
    }
    let folded = (stream.len() * passes) as f64;
    let events_per_sec = folded / start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "  watch: {} events x {passes} passes folded at {events_per_sec:.0} events/s \
         ({last_done}-cell campaign model)",
        stream.len()
    );

    // --- serve: warm-daemon latency vs a cold one-shot campaign -------
    let serve_dir = std::env::temp_dir().join(format!(
        "griffin-bench-serve-{}-{}",
        std::process::id(),
        if args.quick { "q" } else { "f" }
    ));
    let _ = std::fs::remove_dir_all(&serve_dir);
    std::fs::create_dir_all(&serve_dir).map_err(|e| e.to_string())?;
    let scenario_text = format!(
        "[scenario]\nname = \"bench-serve\"\nseeds = [1]\ncategories = [\"b\"]\n\n\
         [sim]\ntiles = 4\nsample_seed = 1\n\n\
         [[workload]]\nsynthetic = \"bench-synth\"\nlayers = {layers}\n\n\
         [[arch]]\npreset = \"baseline\"\n\n\
         [[arch]]\nfamily = \"b\"\nfanin = {}\n",
        if args.quick { 3 } else { 6 }
    );

    // What a fresh `griffin-cli sweep` pays: a brand-new disk cache,
    // the whole grid simulated.
    let scen_path = serve_dir.join("bench-serve.toml");
    std::fs::write(&scen_path, &scenario_text).map_err(|e| e.to_string())?;
    let scen = Scenario::load(&scen_path).map_err(|e| e.to_string())?;
    let cold_spec = scen.to_spec();
    let cli_cache = ResultCache::at_dir(serve_dir.join("cli-cache")).map_err(|e| e.to_string())?;
    let t = Instant::now();
    let cli_report = run_campaign(&cold_spec, &cli_cache, 1).map_err(|e| e.to_string())?;
    let cold_cli_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut serve_cfg = ServeConfig::new(serve_dir.join("daemon"));
    serve_cfg.workers = 1;
    serve_cfg.shards = 2;
    let daemon = Daemon::start(serve_cfg).map_err(|e| e.to_string())?;
    let source = ScenarioSource::Inline(scenario_text);
    // One streamed submission: latency to first cell_done, then total.
    let streamed_submit = |label: &str| -> Result<(f64, Option<f64>, usize, usize), String> {
        let t = Instant::now();
        let acc = daemon
            .submit(label, &source, None)
            .map_err(|e| e.to_string())?;
        let (_, rx) = daemon
            .subscribe(Some(&acc.campaign))
            .map_err(|e| e.to_string())?;
        let mut first_cell_ms = None;
        let (mut done_cells, mut cached_cells) = (0usize, 0usize);
        for item in rx {
            match item {
                TeeItem::Line(line) if line.contains("\"ev\":\"cell_done\"") => {
                    first_cell_ms.get_or_insert(t.elapsed().as_secs_f64() * 1e3);
                    done_cells += 1;
                    cached_cells += usize::from(line.contains("\"cached\":true"));
                }
                TeeItem::Line(_) => {}
                TeeItem::End(_) => break,
            }
        }
        Ok((
            t.elapsed().as_secs_f64() * 1e3,
            first_cell_ms,
            done_cells,
            cached_cells,
        ))
    };
    let (cold_total_ms, cold_first_ms, cold_cells, _) = streamed_submit("bench-cold")?;
    let (warm_total_ms, _, warm_cells, warm_cached) = streamed_submit("bench-warm")?;
    drop(daemon);
    let _ = std::fs::remove_dir_all(&serve_dir);
    let warm_speedup = cold_total_ms / warm_total_ms.max(1e-9);
    println!(
        "  serve: cold submit→first cell {:.1} ms, cold total {cold_total_ms:.1} ms \
         (one-shot campaign {cold_cli_ms:.1} ms), warm rerun {warm_total_ms:.1} ms \
         ({warm_speedup:.1}x, {warm_cached}/{warm_cells} cells cached)",
        cold_first_ms.unwrap_or(cold_total_ms)
    );

    Ok(Json::obj([
        ("schema".into(), Json::Str("griffin-bench-sched/1".into())),
        ("quick".into(), Json::Bool(args.quick)),
        ("iters".into(), Json::from_f64(iters as f64)),
        ("timing_chunks".into(), Json::from_f64(TIMING_CHUNKS as f64)),
        (
            "machine_variance_note".into(),
            Json::Str(
                "micro numbers are the fastest of `timing_chunks` chunks of \
                 `iters / timing_chunks` calls each (least-interfered estimate); \
                 wall-clock probes (campaign/fleet/serve) are single runs and can \
                 swing ±15% between machines and runs — compare them only against \
                 numbers produced on the same host. The headline campaign rate is \
                 pinned to `campaign.workers` threads (recorded alongside it); the \
                 single-worker rate and the fleet overhead ratio use one worker"
                    .into(),
            ),
        ),
        ("micro".into(), Json::Arr(micro)),
        ("multi_window".into(), Json::Arr(multi_window)),
        (
            "alloc".into(),
            Json::obj([
                ("tiles".into(), Json::from_f64(tiles as f64)),
                ("allocs_per_tile".into(), Json::from_f64(allocs_per_tile)),
                (
                    "bytes_per_tile".into(),
                    Json::from_f64(bytes as f64 / tiles as f64),
                ),
            ]),
        ),
        (
            "campaign".into(),
            Json::obj([
                ("cells".into(), Json::from_f64(report_mw.cells.len() as f64)),
                ("workers".into(), Json::from_f64(campaign_workers as f64)),
                ("seeds".into(), Json::from_f64(seeds.len() as f64)),
                (
                    "elapsed_ms".into(),
                    Json::from_f64(report_mw.elapsed_ms as f64),
                ),
                ("cells_per_sec".into(), Json::from_f64(cells_per_sec)),
                (
                    "elapsed_ms_1_worker".into(),
                    Json::from_f64(report.elapsed_ms as f64),
                ),
                (
                    "cells_per_sec_1_worker".into(),
                    Json::from_f64(cells_per_sec_1w),
                ),
            ]),
        ),
        (
            "share".into(),
            Json::obj([
                ("archs".into(), Json::from_f64(fam_archs.len() as f64)),
                ("windows".into(), Json::from_f64(st.multi_windows as f64)),
                ("passes".into(), Json::from_f64(st.multi_passes as f64)),
                ("replayed".into(), Json::from_f64(st.multi_replayed as f64)),
                (
                    "sched_cache_hits".into(),
                    Json::from_f64(st.sched_cache_hits as f64),
                ),
                ("shared".into(), Json::from_f64(st.shared() as f64)),
                ("share_rate".into(), Json::from_f64(share_rate)),
            ]),
        ),
        (
            "fleet".into(),
            Json::obj([
                ("shards".into(), Json::from_f64(2.0)),
                (
                    "cells".into(),
                    Json::from_f64(fleet_report.cells.len() as f64),
                ),
                (
                    "elapsed_ms".into(),
                    Json::from_f64(fleet_report.elapsed_ms as f64),
                ),
                ("cells_per_sec".into(), Json::from_f64(fleet_cells_per_sec)),
                ("overhead_vs_campaign".into(), Json::from_f64(overhead)),
            ]),
        ),
        (
            "watch".into(),
            Json::obj([
                ("stream_events".into(), Json::from_f64(stream.len() as f64)),
                ("passes".into(), Json::from_f64(passes as f64)),
                ("events_per_sec".into(), Json::from_f64(events_per_sec)),
            ]),
        ),
        (
            "serve".into(),
            Json::obj([
                (
                    "cells".into(),
                    Json::from_f64(cli_report.cells.len() as f64),
                ),
                ("cold_cli_ms".into(), Json::from_f64(cold_cli_ms)),
                (
                    "cold_first_cell_ms".into(),
                    Json::from_f64(cold_first_ms.unwrap_or(cold_total_ms)),
                ),
                ("cold_total_ms".into(), Json::from_f64(cold_total_ms)),
                ("warm_total_ms".into(), Json::from_f64(warm_total_ms)),
                ("warm_speedup".into(), Json::from_f64(warm_speedup)),
                (
                    "warm_cached_cells".into(),
                    Json::from_f64(warm_cached as f64),
                ),
                ("cold_done_cells".into(), Json::from_f64(cold_cells as f64)),
            ]),
        ),
    ]))
}

/// The recorded stream behind the `watch` probe: a deterministic
/// 54-cell, 2-shard campaign — headers, every cell's start/done pair,
/// heartbeats every 8 completions, a mid-flight shard failure and
/// retry, the shard/merge/campaign footers — serialized exactly as the
/// fleet writes it (one JSON line per event).
///
/// Per-cell and recovery events come from the schema sample generator
/// (`events::sample::build_event`, the same one behind the event and
/// watch-model property tests), so the fold is measured against the
/// full wire surface: escaped strings, occasional non-finite metric
/// floats, and the v3 host/provenance fields the old hand-rolled
/// stream never carried.
fn watch_stream_lines() -> Vec<String> {
    use griffin::fleet::events::sample::build_event;
    use griffin::fleet::events::Event;
    use griffin::sweep::scenario::ScenarioProvenance;
    use griffin::sweep::Fingerprint;

    const CELLS: usize = 54;
    const PLANNED: usize = CELLS / 2;
    let mut evs = vec![Event::CampaignStart {
        campaign: "bench-watch".into(),
        spec_fp: Fingerprint(0xBE, 0xEF),
        cells: CELLS,
        shards: 2,
        resumed: 0,
        scenario: Some(ScenarioProvenance {
            file: "bench-watch.toml".into(),
            fp: Fingerprint(0xF0, 0x0D),
        }),
    }];
    for shard in 0..2usize {
        evs.push(Event::ShardStart {
            shard,
            cells: PLANNED,
            skipped: 0,
            host: Some(format!("host-{shard}")),
        });
        for d in 0..PLANNED {
            let cell = shard * PLANNED + d;
            // `build_event` derives the shard from `a % 100_000` and
            // the cell from `b`, so `a = shard + 100_000·cell` keeps
            // the campaign coherent while the fingerprint and metric
            // draws still vary per cell. Every 13th cell draws a
            // non-finite metric float (the lossless-float wire path).
            let a = (shard + 100_000 * cell) as u64;
            evs.push(build_event(2, a, cell as u64, false, 0));
            evs.push(build_event(
                3,
                a,
                cell as u64,
                cell.is_multiple_of(3),
                u64::from(cell.is_multiple_of(13)),
            ));
            if (d + 1) % 8 == 0 {
                evs.push(Event::Heartbeat {
                    shard,
                    done: d + 1,
                    total: PLANNED,
                    elapsed_ms: (d as u64 + 1) * 11,
                    cached: (d + 1) / 3,
                });
            }
            // Mid-flight recovery on shard 1: its host drops, the
            // remaining cells requeue, the shard retries (the v2/v3
            // recovery variants, via the same sample generator).
            if shard == 1 && d == 12 {
                evs.push(build_event(11, 0, 1, true, 0)); // host_lost
                evs.push(build_event(6, 1, 0, true, 0)); // shard_failed
                evs.push(build_event(7, 1, (PLANNED - d - 1) as u64, false, 0)); // cells_requeued
                evs.push(build_event(8, 1, 0, true, 0)); // shard_retried
                evs.push(build_event(12, 0, 0, true, 0)); // host_retired
            }
        }
        evs.push(Event::ShardDone {
            shard,
            simulated: PLANNED - PLANNED / 3,
            cached: PLANNED / 3,
            elapsed_ms: 321,
            host: Some(format!("host-{shard}")),
        });
    }
    evs.push(Event::MergeDone {
        sources: 2,
        merged: CELLS as u64,
        identical: 0,
        healed: 0,
        conflicts: 0,
    });
    evs.push(Event::CampaignDone {
        cells: CELLS,
        elapsed_ms: 345,
    });
    evs.iter().map(Event::to_line).collect()
}

/// Carries over top-level sections of an existing report file that the
/// fresh report doesn't produce — hand-recorded data (like the measured
/// `sweep_bert_b_workers1` PR comparison) survives regeneration; probe
/// sections are always replaced by their fresh values.
pub fn merge_unknown_sections(fresh: Json, out_path: &str) -> Json {
    let Json::Obj(mut new) = fresh else {
        return fresh;
    };
    if let Ok(Json::Obj(old)) = std::fs::read_to_string(out_path)
        .map_err(|e| e.to_string())
        .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
    {
        for (k, v) in old {
            if let std::collections::btree_map::Entry::Vacant(slot) = new.entry(k) {
                println!(
                    "  keeping section `{}` from existing {out_path}",
                    slot.key()
                );
                slot.insert(v);
            }
        }
    }
    Json::Obj(new)
}

/// Small helper so quick mode sweeps a smaller family.
struct ArchFamilyB {
    quick: bool,
}

impl ArchFamilyB {
    fn family(&self) -> griffin::sweep::ArchFamily {
        griffin::sweep::ArchFamily::SparseB {
            max_fanin: if self.quick { 4 } else { 8 },
        }
    }
}
