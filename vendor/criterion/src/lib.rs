//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the micro-benchmarks use — benchmark groups,
//! `bench_function`, `iter` / `iter_batched` — backed by plain
//! `std::time::Instant` timing: a short warm-up, then a fixed number of
//! timed iterations, reporting the mean per-iteration wall time. No
//! statistics, plotting or CLI; good enough for relative comparisons.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How setup cost is amortized in `iter_batched` (accepted for API
/// compatibility; the stub times every routine invocation separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing driver passed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm-up pass (untimed).
        let mut warm = Bencher {
            iters: self.criterion.warmup_iters,
            total: Duration::ZERO,
        };
        f(&mut warm);

        let mut b = Bencher {
            iters: self.criterion.measure_iters,
            total: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.total.as_secs_f64() / b.iters.max(1) as f64;
        println!(
            "{}/{id:<24} {:>12.3} µs/iter ({} iters)",
            self.name,
            mean * 1e6,
            b.iters
        );
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    warmup_iters: u64,
    measure_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup_iters: 3,
            measure_iters: 15,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Declares a benchmark group function list (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || (0..100u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
