//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API subset the Griffin workspace uses (see
//! `vendor/README.md`): a seedable small RNG, uniform sampling over the
//! ranges the generators draw from, Bernoulli draws and slice
//! shuffling. All draws are deterministic given the seed.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard the half-open contract against rounding at the top end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniform value of an inferable [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A Bernoulli draw with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} not a probability");
        // Strict comparison makes p = 0.0 always false; handle p = 1.0
        // explicitly so it is always true.
        p >= 1.0 || self.next_f64() < p
    }

    /// A uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, the standard xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(-127i16..=127);
            assert!((-127..=127).contains(&v));
            let u = r.gen_range(1usize..=8);
            assert!((1..=8).contains(&u));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut r = SmallRng::seed_from_u64(5);
        let draws: Vec<u8> = (0..200).map(|_| r.gen_range(0u8..=3)).collect();
        for target in 0..=3u8 {
            assert!(draws.contains(&target), "never drew {target}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SmallRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
