//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, range strategies over
//! integers and floats, `proptest::bool::ANY`, tuples of strategies,
//! `proptest::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros. Each test runs its body for
//! `cases` deterministically seeded inputs; there is no shrinking — the
//! failing case's inputs are printed instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: Debug;

    /// Draws one input.
    fn pick(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform over `{false, true}`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn pick(&self, rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

// Tuples of strategies draw componentwise, left to right.
macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn pick(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// The strategy behind [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` of `elem`-generated values whose length is drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut SmallRng) -> Self::Value {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG: the case index is the seed, so failures
/// reproduce exactly and runs are independent of execution order.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a `proptest!` call site needs in scope.
pub mod prelude {
    pub use crate::bool;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Property-test assertion; identical to `assert!` here (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr] $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!("case ", "{}", $(concat!(", ", stringify!($arg), " = {:?}"),)*),
                    case $(, $arg)*
                );
                let result = ::std::panic::catch_unwind(move || -> () {
                    $(let $arg = $arg;)*
                    $body
                });
                if let Err(e) = result {
                    eprintln!("proptest {} failed at {inputs}", stringify!($name));
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their strategies.
        #[test]
        fn values_in_range(
            x in 3u64..10,
            y in 0.25f64..0.5,
            z in -5i16..=-1i16,
            b in crate::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.5).contains(&y));
            prop_assert!((-5..=-1).contains(&z));
            prop_assert_eq!(b, b);
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        /// The default config also works (no header).
        #[test]
        fn default_config_runs(x in 0usize..4) {
            prop_assert!(x < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuple and vec strategies compose and respect their parts.
        #[test]
        fn tuples_and_vecs_draw_componentwise(
            pair in (1u64..5, crate::bool::ANY),
            rows in crate::collection::vec((0usize..3, 10i32..20), 0..7),
        ) {
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!(rows.len() < 7);
            for (a, b) in &rows {
                prop_assert!(*a < 3);
                prop_assert!((10..20).contains(b));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::Rng;
        let a: u64 = crate::case_rng("t", 3).gen();
        let b: u64 = crate::case_rng("t", 3).gen();
        assert_eq!(a, b);
        let c: u64 = crate::case_rng("t", 4).gen();
        assert_ne!(a, c);
    }
}
