//! Seeded random tensor generators.
//!
//! The paper evaluates pruned checkpoints (Table IV); we substitute
//! synthetic tensors with the same densities (see DESIGN.md, substitution
//! table). Two generation flavours match the two sparsity sources the paper
//! names:
//!
//! * **weight pruning** — unstructured magnitude pruning leaves an
//!   (approximately) i.i.d. Bernoulli nonzero pattern over the weight
//!   tensor ([`TensorGen::pruned_weights`]),
//! * **ReLU** — activations are zero wherever the pre-activation was
//!   negative, which for a roughly sign-symmetric distribution is again an
//!   element-wise i.i.d. pattern ([`TensorGen::relu_activations`]).
//!
//! All generators are deterministic given the seed so that experiments are
//! exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::mask::SparsityMask;
use crate::matrix::Matrix;

/// A deterministic tensor generator.
///
/// ```
/// use griffin_tensor::gen::TensorGen;
/// let mut g1 = TensorGen::seeded(42);
/// let mut g2 = TensorGen::seeded(42);
/// let a = g1.pruned_weights(32, 32, 0.25);
/// let b = g2.pruned_weights(32, 32, 0.25);
/// assert_eq!(a, b); // same seed, same tensor
/// ```
#[derive(Debug, Clone)]
pub struct TensorGen {
    rng: SmallRng,
}

impl TensorGen {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        TensorGen {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Clamped density: probabilities are silently clipped into `[0, 1]`
    /// so sweep code can pass computed values without ceremony.
    fn clamp_density(density: f64) -> f64 {
        density.clamp(0.0, 1.0)
    }

    /// A nonzero INT8 value, uniform over `[-127, 127] \ {0}`.
    fn nonzero_value(&mut self) -> i8 {
        loop {
            let v = self.rng.gen_range(-127i16..=127) as i8;
            if v != 0 {
                return v;
            }
        }
    }

    /// An i.i.d. Bernoulli mask with the given nonzero probability.
    pub fn bernoulli_mask(&mut self, rows: usize, cols: usize, density: f64) -> SparsityMask {
        let p = Self::clamp_density(density);
        // `gen_bool` consumes no randomness at p = 1.0 (it
        // short-circuits), so the dense case can skip the element loop
        // without perturbing the RNG stream — workload builders draw
        // many fully-dense operand masks.
        if p >= 1.0 {
            return SparsityMask::ones(rows, cols);
        }
        let mut m = SparsityMask::zeros(rows, cols);
        // Row-major element order is plain linear bit order; accumulate
        // whole words locally instead of read-modify-writing per bit.
        // Draw order is identical to the per-element loop.
        let total = rows * cols;
        let words = m.bits_mut();
        for (wi, word) in words.iter_mut().enumerate() {
            let bits_here = 64.min(total - wi * 64);
            let mut w = 0u64;
            for b in 0..bits_here {
                if self.rng.gen_bool(p) {
                    w |= 1u64 << b;
                }
            }
            *word = w;
        }
        m
    }

    /// Synthetic magnitude-pruned weight matrix (`K × N` for a layer) with
    /// the given density of nonzeros.
    pub fn pruned_weights(&mut self, rows: usize, cols: usize, density: f64) -> Matrix<i8> {
        self.masked_values(rows, cols, density)
    }

    /// Synthetic post-ReLU activation matrix (`M × K`) with the given
    /// density of nonzeros. Nonzero values are positive, as ReLU outputs.
    pub fn relu_activations(&mut self, rows: usize, cols: usize, density: f64) -> Matrix<i8> {
        let p = Self::clamp_density(density);
        let mut m = Matrix::<i8>::zeros(rows, cols).expect("validated dims");
        for r in 0..rows {
            for c in 0..cols {
                if self.rng.gen_bool(p) {
                    m[(r, c)] = self.rng.gen_range(1i16..=127) as i8;
                }
            }
        }
        m
    }

    /// A fully dense random INT8 matrix (every element nonzero) — the
    /// `DNN.dense` case (swish / GeLU activations, unpruned weights).
    pub fn dense(&mut self, rows: usize, cols: usize) -> Matrix<i8> {
        let mut m = Matrix::<i8>::zeros(rows, cols).expect("validated dims");
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = self.nonzero_value();
            }
        }
        m
    }

    /// Matrix whose nonzero pattern is Bernoulli(`density`) and whose
    /// nonzero values are uniform nonzero INT8.
    fn masked_values(&mut self, rows: usize, cols: usize, density: f64) -> Matrix<i8> {
        let p = Self::clamp_density(density);
        let mut m = Matrix::<i8>::zeros(rows, cols).expect("validated dims");
        for r in 0..rows {
            for c in 0..cols {
                if self.rng.gen_bool(p) {
                    m[(r, c)] = self.nonzero_value();
                }
            }
        }
        m
    }

    /// A standard-normal draw (Box–Muller, avoids a rand_distr
    /// dependency).
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A mask whose density varies per row and per column around the
    /// target mean: `p(r, c) = clamp(density · f_r · g_c)` with
    /// log-normal row/column factors of the given spreads.
    ///
    /// This models what real pruned weight and post-ReLU activation
    /// tensors look like: some input channels (`k` indices) are far
    /// denser than others, which is precisely the load imbalance the
    /// paper's shuffler and `d2`/`d3` routing exist to fix (§III "Load
    /// Balancing"). I.i.d. masks have statistically identical lanes and
    /// would make those mechanisms look useless.
    pub fn channel_varied_mask(
        &mut self,
        rows: usize,
        cols: usize,
        density: f64,
        row_spread: f64,
        col_spread: f64,
    ) -> SparsityMask {
        let p = Self::clamp_density(density);
        let row_f: Vec<f64> = (0..rows)
            .map(|_| (self.standard_normal() * row_spread - row_spread * row_spread / 2.0).exp())
            .collect();
        let col_f: Vec<f64> = (0..cols)
            .map(|_| (self.standard_normal() * col_spread - col_spread * col_spread / 2.0).exp())
            .collect();
        let mut m = SparsityMask::zeros(rows, cols);
        for (r, rf) in row_f.iter().enumerate() {
            for (c, cf) in col_f.iter().enumerate() {
                let pp = (p * rf * cf).clamp(0.0, 1.0);
                if self.rng.gen_bool(pp) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// A mask with *block-correlated* density variation along the
    /// reduction (`k`) axis: `k` positions are grouped into contiguous
    /// blocks of `k_block` (one block per filter patch, `R·S` entries for
    /// an `R×S` convolution, or per channel group), and every block draws
    /// one log-normal density factor with standard deviation `k_spread`;
    /// the other axis draws milder per-index factors (`other_spread`).
    ///
    /// This is the structure real magnitude-pruned conv weights and
    /// im2col'd post-ReLU activations exhibit — whole channels are pruned
    /// or dead while others stay dense. Because `R·S` (9) is coprime to
    /// the lane count `K0` (16), dense blocks precess across lanes and
    /// create the *quasi-persistent lane imbalance* that the paper's
    /// shuffler and `d2` routing mitigate (§III "Load Balancing").
    ///
    /// `k_axis_is_rows` is `true` for weight matrices (`K × N`) and
    /// `false` for activation matrices (`M × K`).
    pub fn block_varied_mask(
        &mut self,
        rows: usize,
        cols: usize,
        density: f64,
        k_block: usize,
        k_spread: f64,
        k_axis_is_rows: bool,
    ) -> SparsityMask {
        let p = Self::clamp_density(density);
        let k_len = if k_axis_is_rows { rows } else { cols };
        let other_len = if k_axis_is_rows { cols } else { rows };
        let block = k_block.max(1);
        let other_spread = k_spread * 0.3;

        let lognormal = |g: &mut Self, s: f64| (g.standard_normal() * s - s * s / 2.0).exp();
        let block_f: Vec<f64> = (0..k_len.div_ceil(block))
            .map(|_| lognormal(self, k_spread))
            .collect();
        let other_f: Vec<f64> = (0..other_len)
            .map(|_| lognormal(self, other_spread))
            .collect();

        let mut m = SparsityMask::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let (k_idx, o_idx) = if k_axis_is_rows { (r, c) } else { (c, r) };
                let pp = (p * block_f[k_idx / block] * other_f[o_idx]).clamp(0.0, 1.0);
                if self.rng.gen_bool(pp) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// A mask with *channel-minor* per-channel density variation: the
    /// reduction axis enumerates `k = spatial · Cin + cin` (NHWC /
    /// channels-last im2col, the layout of mobile NPUs including the
    /// paper's), and every input channel `cin` draws one log-normal
    /// density factor with standard deviation `spread`.
    ///
    /// When `Cin` is a multiple of the lane count `K0`, the lane of an
    /// element is `cin mod K0`, so per-channel variation becomes
    /// *persistent per-lane load imbalance* — the precise effect the
    /// paper's rotation shuffler and `d2` routing mitigate (§III "Load
    /// Balancing", observations 3-4 of §VI-A).
    ///
    /// `k_axis_is_rows` is `true` for weight matrices (`K × N`) and
    /// `false` for activation matrices (`M × K`).
    pub fn channel_minor_mask(
        &mut self,
        rows: usize,
        cols: usize,
        density: f64,
        cin: usize,
        spread: f64,
        k_axis_is_rows: bool,
    ) -> SparsityMask {
        let p = Self::clamp_density(density);
        let cin = cin.max(1);
        let lognormal = |g: &mut Self, s: f64| (g.standard_normal() * s - s * s / 2.0).exp();
        let chan_f: Vec<f64> = (0..cin).map(|_| lognormal(self, spread)).collect();
        let other_len = if k_axis_is_rows { cols } else { rows };
        let other_f: Vec<f64> = (0..other_len)
            .map(|_| lognormal(self, spread * 0.3))
            .collect();

        // Clamping per-element probabilities into [0, 1] biases the mean
        // density downward (heavy log-normal tails saturate); calibrate a
        // global gain so the realized mean matches the target. The mean
        // is evaluated on the deterministic factor grid (subsampled along
        // the non-channel axis for speed).
        let stride = (other_len / 512).max(1);
        let mut gain = 1.0f64;
        if p > 0.0 && p < 1.0 {
            for _ in 0..4 {
                let mut sum = 0.0;
                let mut count = 0usize;
                for f in &chan_f {
                    for g in other_f.iter().step_by(stride) {
                        sum += (p * gain * f * g).clamp(0.0, 1.0);
                        count += 1;
                    }
                }
                let mean = sum / count as f64;
                if mean <= 0.0 {
                    break;
                }
                // Saturated (clamped) channels cannot rise further, so
                // the required gain may exceed 1/p; cap only to keep the
                // loop numerically tame.
                gain = (gain * p / mean).min(100.0);
            }
        }

        let mut m = SparsityMask::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let (k_idx, o_idx) = if k_axis_is_rows { (r, c) } else { (c, r) };
                let pp = (p * gain * chan_f[k_idx % cin] * other_f[o_idx]).clamp(0.0, 1.0);
                if self.rng.gen_bool(pp) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// A mask with *clustered* (bursty) sparsity: runs of nonzeros along
    /// rows. Used by robustness tests to show the load-balancing value of
    /// shuffling under a non-i.i.d. distribution, which the paper calls
    /// "unstructured" imbalance.
    pub fn clustered_mask(
        &mut self,
        rows: usize,
        cols: usize,
        density: f64,
        mean_run: usize,
    ) -> SparsityMask {
        let p = Self::clamp_density(density);
        let run = mean_run.max(1);
        let mut m = SparsityMask::zeros(rows, cols);
        for r in 0..rows {
            let mut c = 0;
            while c < cols {
                if self.rng.gen_bool(p) {
                    let len = self.rng.gen_range(1..=2 * run).min(cols - c);
                    for cc in c..c + len {
                        m.set(r, cc, true);
                    }
                    c += len + 1;
                } else {
                    c += run;
                }
            }
        }
        m
    }

    /// A fresh sub-generator whose stream is independent of subsequent
    /// draws on `self`. Handy for per-layer seeding.
    pub fn fork(&mut self) -> TensorGen {
        TensorGen::seeded(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_given_seed() {
        let a = TensorGen::seeded(1).bernoulli_mask(16, 16, 0.5);
        let b = TensorGen::seeded(1).bernoulli_mask(16, 16, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorGen::seeded(1).bernoulli_mask(32, 32, 0.5);
        let b = TensorGen::seeded(2).bernoulli_mask(32, 32, 0.5);
        assert_ne!(a, b);
    }

    #[test]
    fn density_is_respected_in_expectation() {
        let m = TensorGen::seeded(3).bernoulli_mask(128, 128, 0.2);
        let d = m.density();
        assert!((d - 0.2).abs() < 0.02, "density {d} too far from 0.2");
    }

    #[test]
    fn pruned_weights_have_target_density() {
        let w = TensorGen::seeded(4).pruned_weights(100, 100, 0.11);
        assert!((w.density() - 0.11).abs() < 0.03);
    }

    #[test]
    fn relu_activations_are_nonnegative() {
        let a = TensorGen::seeded(5).relu_activations(64, 64, 0.5);
        assert!(a.as_slice().iter().all(|&v| v >= 0));
        assert!((a.density() - 0.5).abs() < 0.05);
    }

    #[test]
    fn dense_matrix_has_no_zeros() {
        let d = TensorGen::seeded(6).dense(32, 32);
        assert_eq!(d.nnz(), 32 * 32);
    }

    #[test]
    fn density_extremes() {
        let empty = TensorGen::seeded(7).bernoulli_mask(16, 16, 0.0);
        assert_eq!(empty.nnz(), 0);
        let full = TensorGen::seeded(7).bernoulli_mask(16, 16, 1.0);
        assert_eq!(full.nnz(), 256);
        // Out-of-range densities are clamped, not rejected.
        let clamped = TensorGen::seeded(7).bernoulli_mask(8, 8, 1.7);
        assert_eq!(clamped.nnz(), 64);
    }

    #[test]
    fn channel_varied_mask_keeps_mean_density() {
        let m = TensorGen::seeded(21).channel_varied_mask(512, 512, 0.2, 0.5, 0.2);
        let d = m.density();
        assert!((d - 0.2).abs() < 0.04, "density {d} too far from 0.2");
    }

    #[test]
    fn channel_varied_mask_rows_really_vary() {
        let m = TensorGen::seeded(22).channel_varied_mask(256, 256, 0.2, 0.6, 0.0);
        let row_nnz = m.row_nnz();
        let min = *row_nnz.iter().min().unwrap() as f64;
        let max = *row_nnz.iter().max().unwrap() as f64;
        assert!(
            max > 2.0 * (min + 1.0),
            "rows too uniform: min {min} max {max}"
        );
    }

    #[test]
    fn zero_spread_reduces_to_bernoulli_statistics() {
        let m = TensorGen::seeded(23).channel_varied_mask(256, 256, 0.3, 0.0, 0.0);
        assert!((m.density() - 0.3).abs() < 0.02);
    }

    #[test]
    fn clustered_mask_hits_rough_density() {
        let m = TensorGen::seeded(8).clustered_mask(256, 256, 0.4, 4);
        let d = m.density();
        assert!(
            d > 0.1 && d < 0.9,
            "clustered density {d} out of plausible band"
        );
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut g = TensorGen::seeded(9);
        let mut f1 = g.fork();
        let mut f2 = g.fork();
        assert_ne!(
            f1.bernoulli_mask(16, 16, 0.5),
            f2.bernoulli_mask(16, 16, 0.5)
        );
    }
}
