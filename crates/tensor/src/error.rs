//! Error type shared by the tensor substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or combining tensors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TensorError {
    /// A dimension that must be strictly positive was zero.
    EmptyDimension {
        /// Name of the offending dimension (e.g. `"m"`).
        dim: &'static str,
    },
    /// Two operands disagreed on a shared dimension.
    ShapeMismatch {
        /// Human-readable description of the expected shape relation.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A density or probability outside `[0, 1]` was supplied.
    InvalidDensity {
        /// The rejected value.
        value: f64,
    },
    /// An index was outside the tensor bounds.
    OutOfBounds {
        /// The rejected flat or 2-D index, formatted by the caller.
        index: String,
        /// The bound that was violated.
        bound: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::EmptyDimension { dim } => {
                write!(f, "dimension `{dim}` must be strictly positive")
            }
            TensorError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            TensorError::InvalidDensity { value } => {
                write!(f, "density {value} is outside the valid range [0, 1]")
            }
            TensorError::OutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds ({bound})")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = TensorError::EmptyDimension { dim: "m" };
        let s = e.to_string();
        assert!(s.starts_with("dimension"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn density_error_reports_value() {
        let e = TensorError::InvalidDensity { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }
}
