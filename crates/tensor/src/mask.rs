//! Bit-set sparsity masks.
//!
//! The borrowing simulator only cares about *which* operands are zero, not
//! their values, so workloads are represented as [`SparsityMask`]es: a
//! packed bit-set over a `rows × cols` grid with `true` marking a nonzero
//! element.

use crate::error::TensorError;

/// A packed 2-D bit-set, `true` = nonzero element.
///
/// ```
/// use griffin_tensor::mask::SparsityMask;
/// let m = SparsityMask::from_fn(2, 3, |r, c| (r + c) % 2 == 0);
/// assert_eq!(m.nnz(), 3);
/// assert!((m.density() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityMask {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl SparsityMask {
    /// Creates an all-zero (fully sparse) mask.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; masks always describe a concrete
    /// tensor which the shape layer has already validated.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mask dimensions must be positive");
        let words = (rows * cols).div_ceil(64);
        SparsityMask {
            rows,
            cols,
            bits: vec![0; words],
        }
    }

    /// Creates an all-one (fully dense) mask.
    pub fn ones(rows: usize, cols: usize) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows * cols {
            m.bits[i / 64] |= 1u64 << (i % 64);
        }
        m
    }

    /// Builds a mask from a predicate over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Mutable access to the packed words for bulk in-crate builders
    /// (row-major bit order, trailing bits of the last word unused and
    /// kept zero by construction).
    pub(crate) fn bits_mut(&mut self) -> &mut [u64] {
        &mut self.bits
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn bit_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Returns the bit at `(row, col)`; out-of-bounds coordinates read as
    /// `false` (a padded zero), which is exactly the semantics of tile
    /// edges in the blocked view.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        if row >= self.rows || col >= self.cols {
            return false;
        }
        let i = self.bit_index(row, col);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(
            row < self.rows && col < self.cols,
            "mask index ({row},{col}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        let i = self.bit_index(row, col);
        if value {
            self.bits[i / 64] |= 1u64 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Number of nonzero elements.
    pub fn nnz(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of nonzero elements in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Element-wise AND of two masks of identical shape — the effectual
    /// operations of a dual-sparse GEMM position pair.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn and(&self, other: &SparsityMask) -> Result<SparsityMask, TensorError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        let bits = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| a & b)
            .collect();
        Ok(SparsityMask {
            rows: self.rows,
            cols: self.cols,
            bits,
        })
    }

    /// Iterator over the coordinates of nonzero elements in row-major order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.cols;
        (0..self.rows * self.cols)
            .filter(move |&i| self.bits[i / 64] >> (i % 64) & 1 == 1)
            .map(move |i| (i / cols, i % cols))
    }

    /// Calls `f(col)` for every set bit of `row` with
    /// `col_start <= col < col_end`, walking the packed words directly
    /// (trailing-zeros iteration) instead of testing every coordinate.
    ///
    /// This is the word-level primitive the scheduler's op-grid builders
    /// are made of: a whole 64-element span of zeros costs one word
    /// load. Out-of-range rows produce no calls and `col_end` is clipped
    /// to the mask width — the same zero-padding semantics as [`get`].
    ///
    /// [`get`]: SparsityMask::get
    #[inline]
    pub fn for_each_set_in_row<F: FnMut(usize)>(
        &self,
        row: usize,
        col_start: usize,
        col_end: usize,
        mut f: F,
    ) {
        if row >= self.rows {
            return;
        }
        let end = col_end.min(self.cols);
        if col_start >= end {
            return;
        }
        let base = row * self.cols;
        let lo = base + col_start; // first bit, inclusive
        let hi = base + end; // last bit, exclusive
        let first_word = lo / 64;
        let last_word = (hi - 1) / 64;
        for wi in first_word..=last_word {
            let mut w = self.bits[wi];
            if wi == first_word {
                w &= !0u64 << (lo % 64);
            }
            if wi == last_word && !hi.is_multiple_of(64) {
                w &= (1u64 << (hi % 64)) - 1;
            }
            while w != 0 {
                f(wi * 64 + w.trailing_zeros() as usize - base);
                w &= w - 1;
            }
        }
    }

    /// Returns up to 64 consecutive bits of one row as a word: bit `i`
    /// of the result is the mask at `(row, col_start + i)` for
    /// `i < width`. Out-of-range positions read as zero (padding), so a
    /// tile edge simply truncates the span.
    ///
    /// This is the fastest bulk read the mask offers — one or two word
    /// loads — and what the op-grid builders use for the narrow spatial
    /// spans of B tiles.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `width > 64`.
    #[inline]
    pub fn span_bits(&self, row: usize, col_start: usize, width: usize) -> u64 {
        debug_assert!(width <= 64, "span width {width} exceeds one word");
        if row >= self.rows || col_start >= self.cols {
            return 0;
        }
        let w = width.min(self.cols - col_start);
        let lo = row * self.cols + col_start;
        let wi = lo / 64;
        let sh = lo % 64;
        let mut v = self.bits[wi] >> sh;
        if sh != 0 && wi + 1 < self.bits.len() {
            v |= self.bits[wi + 1] << (64 - sh);
        }
        if w < 64 {
            v &= (1u64 << w) - 1;
        }
        v
    }

    /// Per-row nonzero counts (useful for load-imbalance diagnostics).
    pub fn row_nnz(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let mut n = 0;
                self.for_each_set_in_row(r, 0, self.cols, |_| n += 1);
                n
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = SparsityMask::zeros(3, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.density(), 0.0);
        let o = SparsityMask::ones(3, 5);
        assert_eq!(o.nnz(), 15);
        assert_eq!(o.density(), 1.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = SparsityMask::zeros(4, 4);
        m.set(2, 3, true);
        assert!(m.get(2, 3));
        m.set(2, 3, false);
        assert!(!m.get(2, 3));
    }

    #[test]
    fn out_of_bounds_reads_as_zero_padding() {
        let m = SparsityMask::ones(2, 2);
        assert!(!m.get(2, 0));
        assert!(!m.get(0, 2));
        assert!(!m.get(100, 100));
    }

    #[test]
    fn and_requires_same_shape() {
        let a = SparsityMask::ones(2, 2);
        let b = SparsityMask::ones(2, 3);
        assert!(a.and(&b).is_err());
    }

    #[test]
    fn and_computes_intersection() {
        let a = SparsityMask::from_fn(2, 2, |r, _| r == 0);
        let b = SparsityMask::from_fn(2, 2, |_, c| c == 0);
        let c = a.and(&b).unwrap();
        assert_eq!(c.nnz(), 1);
        assert!(c.get(0, 0));
    }

    #[test]
    fn iter_nonzero_is_row_major() {
        let m = SparsityMask::from_fn(2, 3, |r, c| (r, c) == (0, 2) || (r, c) == (1, 0));
        let v: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(v, vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn row_nnz_counts() {
        let m = SparsityMask::from_fn(3, 4, |r, c| c < r);
        assert_eq!(m.row_nnz(), vec![0, 1, 2]);
    }

    #[test]
    fn word_iteration_matches_per_element_reads() {
        // Shapes chosen so rows start at every word phase: 3, 64, 67 and
        // 130 columns exercise sub-word, exact-word and multi-word rows.
        for cols in [3usize, 64, 67, 130] {
            let m = SparsityMask::from_fn(5, cols, |r, c| (r * 31 + c * 7) % 3 == 0);
            for r in 0..5 {
                for (start, end) in [(0, cols), (1, cols - 1), (cols / 2, cols), (2, 2)] {
                    let mut got = Vec::new();
                    m.for_each_set_in_row(r, start, end, |c| got.push(c));
                    let want: Vec<usize> =
                        (start..end.min(cols)).filter(|&c| m.get(r, c)).collect();
                    assert_eq!(got, want, "cols={cols} r={r} range={start}..{end}");
                }
            }
        }
    }

    #[test]
    fn span_bits_matches_per_element_reads() {
        for cols in [3usize, 64, 67, 130] {
            let m = SparsityMask::from_fn(4, cols, |r, c| (r * 13 + c * 5) % 3 == 0);
            for r in 0..4 {
                for start in [0, 1, cols / 2, cols - 1, cols + 5] {
                    for width in [1usize, 16, 63, 64] {
                        let got = m.span_bits(r, start, width);
                        let mut want = 0u64;
                        for i in 0..width {
                            if m.get(r, start + i) {
                                want |= 1 << i;
                            }
                        }
                        assert_eq!(got, want, "cols={cols} r={r} start={start} width={width}");
                    }
                }
            }
        }
        assert_eq!(SparsityMask::ones(2, 8).span_bits(5, 0, 8), 0);
    }

    #[test]
    fn word_iteration_pads_out_of_range() {
        let m = SparsityMask::ones(2, 8);
        let mut calls = 0;
        m.for_each_set_in_row(2, 0, 8, |_| calls += 1); // row out of range
        assert_eq!(calls, 0);
        m.for_each_set_in_row(0, 6, 100, |_| calls += 1); // end clipped
        assert_eq!(calls, 2);
    }

    #[test]
    fn crossing_word_boundaries() {
        // 9x9 = 81 bits spans two u64 words.
        let m = SparsityMask::from_fn(9, 9, |r, c| (r * 9 + c) % 2 == 0);
        assert_eq!(m.nnz(), 41);
        assert!(m.get(8, 8));
        assert!(!m.get(8, 7));
    }
}
