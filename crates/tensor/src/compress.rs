//! Preprocessed compressed-B storage and metadata accounting.
//!
//! Matrix `B` (weights) is known before execution, so sparse architectures
//! preprocess it: zero entries are replaced by nonzero neighbours within
//! the borrowing window and the result is stored *compressed* together
//! with per-element metadata that later drives the `AMUX` selectors
//! (Figure 2(a)/(b) of the paper).
//!
//! The simulator does its own scheduling; this module accounts for the
//! *storage side*: how many nonzero values survive, how many metadata bits
//! each carries, and the resulting SRAM footprint. Table III of the paper
//! fixes the metadata widths we reproduce: 3 bits/element for the dual
//! sparse configuration and 4 bits/element for Griffin's `conf.B`.

use crate::mask::SparsityMask;

/// Footprint summary of a preprocessed, compressed weight matrix.
///
/// ```
/// use griffin_tensor::compress::CompressedB;
/// use griffin_tensor::mask::SparsityMask;
///
/// let mask = SparsityMask::from_fn(16, 16, |r, c| (r + c) % 4 == 0);
/// let c = CompressedB::from_mask(&mask, 3);
/// assert_eq!(c.nnz, mask.nnz());
/// assert!(c.total_bytes() < 16 * 16); // smaller than the dense tensor
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressedB {
    /// Number of stored nonzero values (INT8 each).
    pub nnz: usize,
    /// Metadata bits attached to every stored element.
    pub metadata_bits_per_elt: u32,
    /// Dense element count of the original tensor (for ratio reporting).
    pub dense_elements: usize,
}

impl CompressedB {
    /// Builds the footprint summary for a weight mask with the given
    /// per-element metadata width.
    pub fn from_mask(mask: &SparsityMask, metadata_bits_per_elt: u32) -> Self {
        CompressedB {
            nnz: mask.nnz(),
            metadata_bits_per_elt,
            dense_elements: mask.rows() * mask.cols(),
        }
    }

    /// Bytes of stored values (INT8).
    pub fn value_bytes(&self) -> usize {
        self.nnz
    }

    /// Bytes of metadata, rounded up to whole bytes over the stream.
    pub fn metadata_bytes(&self) -> usize {
        (self.nnz * self.metadata_bits_per_elt as usize).div_ceil(8)
    }

    /// Total compressed footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.value_bytes() + self.metadata_bytes()
    }

    /// Compression ratio versus the dense INT8 tensor (>1 means smaller).
    pub fn compression_ratio(&self) -> f64 {
        self.dense_elements as f64 / self.total_bytes() as f64
    }

    /// Effective bytes that must stream from SRAM per dense element — the
    /// quantity the bandwidth model multiplies against tile traffic.
    pub fn bytes_per_dense_element(&self) -> f64 {
        self.total_bytes() as f64 / self.dense_elements as f64
    }
}

/// Metadata width needed to address a borrowing window with the given
/// AMUX fan-in: `⌈log2(fan_in)⌉` bits select one of `fan_in` sources.
///
/// ```
/// use griffin_tensor::compress::metadata_bits_for_fanin;
/// assert_eq!(metadata_bits_for_fanin(1), 0);
/// assert_eq!(metadata_bits_for_fanin(8), 3);  // dual-sparse Sparse.AB*
/// assert_eq!(metadata_bits_for_fanin(9), 4);  // Griffin conf.B (Table III)
/// ```
pub fn metadata_bits_for_fanin(fan_in: usize) -> u32 {
    if fan_in <= 1 {
        0
    } else {
        usize::BITS - (fan_in - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_bits_boundaries() {
        assert_eq!(metadata_bits_for_fanin(0), 0);
        assert_eq!(metadata_bits_for_fanin(1), 0);
        assert_eq!(metadata_bits_for_fanin(2), 1);
        assert_eq!(metadata_bits_for_fanin(3), 2);
        assert_eq!(metadata_bits_for_fanin(4), 2);
        assert_eq!(metadata_bits_for_fanin(5), 3);
        assert_eq!(metadata_bits_for_fanin(8), 3);
        assert_eq!(metadata_bits_for_fanin(9), 4);
        assert_eq!(metadata_bits_for_fanin(16), 4);
        assert_eq!(metadata_bits_for_fanin(17), 5);
    }

    #[test]
    fn footprint_accounting() {
        let mask = SparsityMask::from_fn(10, 10, |r, _| r < 2); // 20 nonzeros
        let c = CompressedB::from_mask(&mask, 4);
        assert_eq!(c.nnz, 20);
        assert_eq!(c.value_bytes(), 20);
        assert_eq!(c.metadata_bytes(), 10); // 80 bits
        assert_eq!(c.total_bytes(), 30);
        assert!((c.compression_ratio() - 100.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn dense_mask_is_larger_than_dense_due_to_metadata() {
        let mask = SparsityMask::ones(8, 8);
        let c = CompressedB::from_mask(&mask, 3);
        assert!(c.total_bytes() > 64);
        assert!(c.compression_ratio() < 1.0);
    }

    #[test]
    fn zero_metadata_stream() {
        let mask = SparsityMask::from_fn(4, 4, |r, c| r == c);
        let c = CompressedB::from_mask(&mask, 0);
        assert_eq!(c.metadata_bytes(), 0);
        assert_eq!(c.total_bytes(), 4);
    }

    #[test]
    fn bytes_per_dense_element_tracks_density() {
        let sparse = CompressedB::from_mask(&SparsityMask::from_fn(16, 16, |r, _| r == 0), 3);
        let dense = CompressedB::from_mask(&SparsityMask::ones(16, 16), 3);
        assert!(sparse.bytes_per_dense_element() < dense.bytes_per_dense_element());
    }
}
