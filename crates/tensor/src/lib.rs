//! Tensor substrate for the Griffin sparse-accelerator reproduction.
//!
//! The Griffin paper (HPCA 2022) models DNN layers as blocked GEMM
//! `C += A × B` executed on a 3-D-unrolled core with dimensions
//! `(K0, N0, M0)`. This crate provides everything the simulator and the
//! workload suite need to talk about those tensors:
//!
//! * [`shape`] — GEMM problem shapes, core dimensions and tiling math,
//! * [`matrix`] — a small row-major matrix type with a reference GEMM,
//! * [`mask`] — bit-set sparsity masks and density accounting,
//! * [`gen`] — seeded random generators for pruned weights and
//!   ReLU-style activations,
//! * [`block`] — the paper's 3-D blocked coordinate view
//!   `(i1 = time step, i2 = lane, i3 = spatial)` over matrix tiles,
//! * [`compress`] — the preprocessed compressed-B storage format and its
//!   metadata accounting.
//!
//! # Example
//!
//! ```
//! use griffin_tensor::shape::{CoreDims, GemmShape};
//! use griffin_tensor::gen::TensorGen;
//!
//! let core = CoreDims::default();            // (K0, N0, M0) = (16, 16, 4)
//! let shape = GemmShape::new(64, 256, 128)?; // M=64, K=256, N=128
//! assert_eq!(shape.dense_cycles(core), 16 * 16 * 8);
//!
//! let mut gen = TensorGen::seeded(7);
//! let weights = gen.pruned_weights(shape.k, shape.n, 0.2); // 20% nonzero
//! assert!(weights.mask().density() < 0.3);
//! # Ok::<(), griffin_tensor::TensorError>(())
//! ```

pub mod block;
pub mod compress;
pub mod error;
pub mod gen;
pub mod mask;
pub mod matrix;
pub mod shape;

pub use block::{ATileView, BTileView, TileCoord, TileView};
pub use compress::CompressedB;
pub use error::TensorError;
pub use gen::TensorGen;
pub use mask::SparsityMask;
pub use matrix::Matrix;
pub use shape::{CoreDims, GemmShape, TileCounts};
