//! The paper's 3-D blocked coordinate view over matrix tiles.
//!
//! Figure 1 of the paper rearranges both GEMM operands as 3-D tensors so
//! that every element is adjacent to neighbours along three dimensions:
//!
//! * **dim 1 (time)** — `i1 = k / K0`, the reduction time step,
//! * **dim 2 (lane)** — `i2 = k % K0`, the position inside the dot-product
//!   unit,
//! * **dim 3 (spatial)** — `i3`, the PE row (`m` within the `M0` tile) for
//!   matrix `A`, or the PE column (`n` within the `N0` tile) for matrix
//!   `B`.
//!
//! Borrowing distances `(da1, da2, da3)` / `(db1, db2, db3)` are measured
//! along exactly these axes, so the simulator works entirely in these
//! coordinates. Tile-edge positions outside the matrix read as zeros
//! (padding), matching a dense core that pads ragged tiles.

use crate::mask::SparsityMask;
use crate::shape::CoreDims;

/// A coordinate in the blocked 3-D view of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Time step `i1 = k / K0`.
    pub t: usize,
    /// Lane `i2 = k % K0`.
    pub lane: usize,
    /// Spatial position `i3` (PE row for A, PE column for B).
    pub s: usize,
}

/// Read access to the nonzero structure of one operand tile in blocked
/// 3-D coordinates.
///
/// Implementors expose a `t_steps × lanes × spatial` grid; coordinates
/// beyond the underlying matrix read as zero (padding).
pub trait TileView {
    /// Number of time steps `⌈K / K0⌉` covered by the tile.
    fn t_steps(&self) -> usize;

    /// Number of lanes (`K0`).
    fn lanes(&self) -> usize;

    /// Extent of the spatial dimension (`M0` for A tiles, `N0` for B).
    fn spatial(&self) -> usize;

    /// Whether the element at `c` is nonzero. Out-of-range coordinates
    /// must return `false`.
    fn is_nonzero(&self, c: TileCoord) -> bool;

    /// Total effectual (nonzero) positions in the tile.
    fn nnz(&self) -> usize {
        let mut n = 0;
        for t in 0..self.t_steps() {
            for lane in 0..self.lanes() {
                for s in 0..self.spatial() {
                    if self.is_nonzero(TileCoord { t, lane, s }) {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

/// Blocked view of one `M0 × K` tile of matrix `A` (`M × K`).
///
/// Spatial dimension = PE rows; `(t, lane, s)` maps to
/// `A[m_base + s, t·K0 + lane]`.
#[derive(Debug, Clone)]
pub struct ATileView<'a> {
    mask: &'a SparsityMask,
    core: CoreDims,
    m_base: usize,
    t_steps: usize,
}

impl<'a> ATileView<'a> {
    /// Creates the view for the output-tile row starting at matrix row
    /// `m_base`. `mask` is the `M × K` sparsity mask of `A`.
    pub fn new(mask: &'a SparsityMask, core: CoreDims, m_base: usize) -> Self {
        let t_steps = mask.cols().div_ceil(core.k0);
        ATileView {
            mask,
            core,
            m_base,
            t_steps,
        }
    }

    /// The underlying sparsity mask, for word-level consumers that walk
    /// the packed bit rows directly (see
    /// [`SparsityMask::for_each_set_in_row`]).
    pub fn mask(&self) -> &'a SparsityMask {
        self.mask
    }

    /// Core dimensions of the blocked view.
    pub fn core(&self) -> CoreDims {
        self.core
    }

    /// First matrix row covered by this tile.
    pub fn m_base(&self) -> usize {
        self.m_base
    }
}

impl TileView for ATileView<'_> {
    fn t_steps(&self) -> usize {
        self.t_steps
    }

    fn lanes(&self) -> usize {
        self.core.k0
    }

    fn spatial(&self) -> usize {
        self.core.m0
    }

    fn is_nonzero(&self, c: TileCoord) -> bool {
        if c.t >= self.t_steps || c.lane >= self.core.k0 || c.s >= self.core.m0 {
            return false;
        }
        // SparsityMask::get pads out-of-bounds with zeros.
        self.mask
            .get(self.m_base + c.s, c.t * self.core.k0 + c.lane)
    }
}

/// Blocked view of one `K × N0` tile of matrix `B` (`K × N`).
///
/// Spatial dimension = PE columns; `(t, lane, s)` maps to
/// `B[t·K0 + lane, n_base + s]`.
#[derive(Debug, Clone)]
pub struct BTileView<'a> {
    mask: &'a SparsityMask,
    core: CoreDims,
    n_base: usize,
    t_steps: usize,
}

impl<'a> BTileView<'a> {
    /// Creates the view for the output-tile column starting at matrix
    /// column `n_base`. `mask` is the `K × N` sparsity mask of `B`.
    pub fn new(mask: &'a SparsityMask, core: CoreDims, n_base: usize) -> Self {
        let t_steps = mask.rows().div_ceil(core.k0);
        BTileView {
            mask,
            core,
            n_base,
            t_steps,
        }
    }

    /// The underlying sparsity mask, for word-level consumers that walk
    /// the packed bit rows directly (see
    /// [`SparsityMask::for_each_set_in_row`]).
    pub fn mask(&self) -> &'a SparsityMask {
        self.mask
    }

    /// Core dimensions of the blocked view.
    pub fn core(&self) -> CoreDims {
        self.core
    }

    /// First matrix column covered by this tile.
    pub fn n_base(&self) -> usize {
        self.n_base
    }
}

impl TileView for BTileView<'_> {
    fn t_steps(&self) -> usize {
        self.t_steps
    }

    fn lanes(&self) -> usize {
        self.core.k0
    }

    fn spatial(&self) -> usize {
        self.core.n0
    }

    fn is_nonzero(&self, c: TileCoord) -> bool {
        if c.t >= self.t_steps || c.lane >= self.core.k0 || c.s >= self.core.n0 {
            return false;
        }
        self.mask
            .get(c.t * self.core.k0 + c.lane, self.n_base + c.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreDims {
        CoreDims::new(4, 4, 2).unwrap() // small core for readable tests
    }

    #[test]
    fn a_view_maps_coordinates() {
        // A is 4x8 (M=4, K=8); core m0=2, k0=4 -> 2 t-steps.
        let mask = SparsityMask::from_fn(4, 8, |r, c| (r, c) == (2, 5));
        let v = ATileView::new(&mask, core(), 2);
        assert_eq!(v.t_steps(), 2);
        assert_eq!(v.spatial(), 2);
        // (2,5) = m_base 2 + s 0, k = t*4 + lane => t=1, lane=1.
        assert!(v.is_nonzero(TileCoord {
            t: 1,
            lane: 1,
            s: 0
        }));
        assert!(!v.is_nonzero(TileCoord {
            t: 1,
            lane: 1,
            s: 1
        }));
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn b_view_maps_coordinates() {
        // B is 8x6 (K=8, N=6); core n0=4, k0=4.
        let mask = SparsityMask::from_fn(8, 6, |r, c| (r, c) == (6, 5));
        let v = BTileView::new(&mask, core(), 4);
        assert_eq!(v.t_steps(), 2);
        // row 6 => t=1, lane=2; col 5 => s = 5 - 4 = 1.
        assert!(v.is_nonzero(TileCoord {
            t: 1,
            lane: 2,
            s: 1
        }));
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn ragged_edges_read_as_zero() {
        // K=6 on k0=4 gives t_steps=2, but lanes 2..4 of t=1 are padding.
        let mask = SparsityMask::ones(2, 6);
        let v = ATileView::new(&mask, core(), 0);
        assert_eq!(v.t_steps(), 2);
        assert!(v.is_nonzero(TileCoord {
            t: 1,
            lane: 1,
            s: 0
        }));
        assert!(!v.is_nonzero(TileCoord {
            t: 1,
            lane: 2,
            s: 0
        }));
        assert!(!v.is_nonzero(TileCoord {
            t: 2,
            lane: 0,
            s: 0
        }));
    }

    #[test]
    fn spatial_edge_of_matrix_pads() {
        // M=3 with m0=2: second tile row (m_base=2) has one real row.
        let mask = SparsityMask::ones(3, 4);
        let v = ATileView::new(&mask, core(), 2);
        assert!(v.is_nonzero(TileCoord {
            t: 0,
            lane: 0,
            s: 0
        }));
        assert!(!v.is_nonzero(TileCoord {
            t: 0,
            lane: 0,
            s: 1
        }));
    }

    #[test]
    fn dense_tile_nnz_is_full_grid() {
        let mask = SparsityMask::ones(2, 8);
        let v = ATileView::new(&mask, core(), 0);
        assert_eq!(v.nnz(), 2 * 8);
    }
}
