//! GEMM problem shapes, core dimensions and tiling arithmetic.
//!
//! The dense baseline of the paper unrolls `C += A × B` over three spatial
//! dimensions `(K0, N0, M0)` (Figure 1); the default configuration in
//! Table IV is `(16, 16, 4)` which yields 1024 MAC units. The core executes
//! one `(M0 × K0) · (K0 × N0)` tile product per cycle, so the dense latency
//! of a `GemmShape` is `⌈M/M0⌉ · ⌈N/N0⌉ · ⌈K/K0⌉` cycles.

use crate::error::TensorError;

/// Spatial unrolling of the accelerator core: `(K0, N0, M0)`.
///
/// `K0` is the width of each dot-product unit, `N0` the number of PE
/// columns, `M0` the number of PE rows. The number of multipliers is
/// `K0 · N0 · M0`.
///
/// ```
/// use griffin_tensor::shape::CoreDims;
/// assert_eq!(CoreDims::default().macs(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreDims {
    /// Dot-product (reduction) width per PE.
    pub k0: usize,
    /// Number of PE columns (output-channel dimension).
    pub n0: usize,
    /// Number of PE rows (batch / spatial dimension).
    pub m0: usize,
}

impl CoreDims {
    /// The paper's evaluation configuration: `(K0, N0, M0) = (16, 16, 4)`.
    pub const PAPER: CoreDims = CoreDims {
        k0: 16,
        n0: 16,
        m0: 4,
    };

    /// Creates a core configuration, validating that every dimension is
    /// strictly positive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] if any dimension is zero.
    pub fn new(k0: usize, n0: usize, m0: usize) -> Result<Self, TensorError> {
        if k0 == 0 {
            return Err(TensorError::EmptyDimension { dim: "k0" });
        }
        if n0 == 0 {
            return Err(TensorError::EmptyDimension { dim: "n0" });
        }
        if m0 == 0 {
            return Err(TensorError::EmptyDimension { dim: "m0" });
        }
        Ok(CoreDims { k0, n0, m0 })
    }

    /// Number of multiply-accumulate units: `K0 · N0 · M0`.
    pub fn macs(&self) -> usize {
        self.k0 * self.n0 * self.m0
    }

    /// Number of PEs (`N0 · M0`); each PE holds a `K0`-wide dot product.
    pub fn pes(&self) -> usize {
        self.n0 * self.m0
    }
}

impl Default for CoreDims {
    fn default() -> Self {
        CoreDims::PAPER
    }
}

/// The shape of one GEMM operation `C(M×N) += A(M×K) × B(K×N)`.
///
/// ```
/// use griffin_tensor::shape::GemmShape;
/// let g = GemmShape::new(196, 1152, 256)?;
/// assert_eq!(g.macs(), 196 * 1152 * 256);
/// # Ok::<(), griffin_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of `A` and `C` (batch × spatial positions).
    pub m: usize,
    /// Reduction dimension (`Cin · R · S` for convolutions).
    pub k: usize,
    /// Columns of `B` and `C` (output channels).
    pub n: usize,
}

/// Tile counts of a [`GemmShape`] on a given [`CoreDims`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileCounts {
    /// `⌈M / M0⌉` output-tile rows.
    pub mt: usize,
    /// `⌈N / N0⌉` output-tile columns.
    pub nt: usize,
    /// `⌈K / K0⌉` reduction time steps per output tile.
    pub kt: usize,
}

impl TileCounts {
    /// Total number of output tiles (`mt · nt`).
    pub fn output_tiles(&self) -> usize {
        self.mt * self.nt
    }
}

impl GemmShape {
    /// Creates a GEMM shape, validating that every dimension is strictly
    /// positive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] if any dimension is zero.
    pub fn new(m: usize, k: usize, n: usize) -> Result<Self, TensorError> {
        if m == 0 {
            return Err(TensorError::EmptyDimension { dim: "m" });
        }
        if k == 0 {
            return Err(TensorError::EmptyDimension { dim: "k" });
        }
        if n == 0 {
            return Err(TensorError::EmptyDimension { dim: "n" });
        }
        Ok(GemmShape { m, k, n })
    }

    /// Total multiply-accumulate operations (`M · K · N`).
    pub fn macs(&self) -> usize {
        self.m * self.k * self.n
    }

    /// Tile counts on the given core.
    pub fn tiles(&self, core: CoreDims) -> TileCounts {
        TileCounts {
            mt: self.m.div_ceil(core.m0),
            nt: self.n.div_ceil(core.n0),
            kt: self.k.div_ceil(core.k0),
        }
    }

    /// Dense (no-skipping) latency in cycles on the given core,
    /// `⌈M/M0⌉ · ⌈N/N0⌉ · ⌈K/K0⌉` (output-stationary dataflow).
    pub fn dense_cycles(&self, core: CoreDims) -> u64 {
        let t = self.tiles(core);
        t.mt as u64 * t.nt as u64 * t.kt as u64
    }

    /// Fraction of MAC slots doing useful work in the dense schedule
    /// (1.0 when every dimension divides the core evenly; < 1 at edges).
    pub fn dense_utilization(&self, core: CoreDims) -> f64 {
        let ideal = self.macs() as f64;
        let slots = self.dense_cycles(core) as f64 * core.macs() as f64;
        ideal / slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_core_has_1024_macs() {
        let c = CoreDims::PAPER;
        assert_eq!((c.k0, c.n0, c.m0), (16, 16, 4));
        assert_eq!(c.macs(), 1024);
        assert_eq!(c.pes(), 64);
        assert_eq!(CoreDims::default(), CoreDims::PAPER);
    }

    #[test]
    fn zero_dims_are_rejected() {
        assert!(CoreDims::new(0, 16, 4).is_err());
        assert!(CoreDims::new(16, 0, 4).is_err());
        assert!(CoreDims::new(16, 16, 0).is_err());
        assert!(GemmShape::new(0, 1, 1).is_err());
        assert!(GemmShape::new(1, 0, 1).is_err());
        assert!(GemmShape::new(1, 1, 0).is_err());
    }

    #[test]
    fn exact_tiling_matches_division() {
        let g = GemmShape::new(64, 256, 128).unwrap();
        let t = g.tiles(CoreDims::PAPER);
        assert_eq!((t.mt, t.nt, t.kt), (16, 8, 16));
        assert_eq!(g.dense_cycles(CoreDims::PAPER), 16 * 8 * 16);
        assert!((g.dense_utilization(CoreDims::PAPER) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ragged_tiling_rounds_up() {
        let g = GemmShape::new(5, 17, 18).unwrap();
        let t = g.tiles(CoreDims::PAPER);
        assert_eq!((t.mt, t.nt, t.kt), (2, 2, 2));
        assert_eq!(t.output_tiles(), 4);
        assert!(g.dense_utilization(CoreDims::PAPER) < 0.25);
    }

    #[test]
    fn single_element_gemm_takes_one_cycle() {
        let g = GemmShape::new(1, 1, 1).unwrap();
        assert_eq!(g.dense_cycles(CoreDims::PAPER), 1);
    }

    #[test]
    fn macs_formula() {
        let g = GemmShape::new(3, 5, 7).unwrap();
        assert_eq!(g.macs(), 105);
    }
}
