//! A small row-major matrix type with a reference GEMM.
//!
//! The simulator proper only consumes zero/nonzero positions
//! ([`crate::mask::SparsityMask`]), but examples and functional tests use
//! actual INT8 values — the paper's default MAC precision — and verify that
//! the borrowing schedule computes the same product as this reference GEMM.

use crate::error::TensorError;
use crate::mask::SparsityMask;

/// A dense row-major matrix.
///
/// ```
/// use griffin_tensor::matrix::Matrix;
/// let m = Matrix::from_rows(&[&[1i8, 2], &[3, 4]])?;
/// assert_eq!(m[(1, 0)], 3);
/// # Ok::<(), griffin_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T = i8> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a zero-filled `rows × cols` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, TensorError> {
        if rows == 0 {
            return Err(TensorError::EmptyDimension { dim: "rows" });
        }
        if cols == 0 {
            return Err(TensorError::EmptyDimension { dim: "cols" });
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        })
    }

    /// Builds a matrix from row slices, validating that all rows have the
    /// same length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for an empty input and
    /// [`TensorError::ShapeMismatch`] for ragged rows.
    pub fn from_rows(rows: &[&[T]]) -> Result<Self, TensorError> {
        if rows.is_empty() {
            return Err(TensorError::EmptyDimension { dim: "rows" });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(TensorError::EmptyDimension { dim: "cols" });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row {i} of length {}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows · cols`
    /// and [`TensorError::EmptyDimension`] for zero dimensions.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, TensorError> {
        if rows == 0 {
            return Err(TensorError::EmptyDimension { dim: "rows" });
        }
        if cols == 0 {
            return Err(TensorError::EmptyDimension { dim: "cols" });
        }
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements ({rows}×{cols})", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access returning `None` out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<T> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        &self.data[row * self.cols + col]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        &mut self.data[row * self.cols + col]
    }
}

impl Matrix<i8> {
    /// Sparsity mask of this matrix (true where the element is nonzero).
    pub fn mask(&self) -> SparsityMask {
        SparsityMask::from_fn(self.rows, self.cols, |r, c| self[(r, c)] != 0)
    }

    /// Reference GEMM `C = self × rhs` with 32-bit accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix<i8>) -> Result<Matrix<i32>, TensorError> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::<i32>::zeros(self.rows, rhs.cols)?;
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = i32::from(self[(i, l)]);
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * i32::from(rhs[(l, j)]);
                }
            }
        }
        Ok(out)
    }

    /// Number of nonzero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }

    /// Fraction of nonzero elements.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = Matrix::<i8>::zeros(2, 3).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 5;
        assert_eq!(m[(1, 2)], 5);
        assert_eq!(m.get(1, 2), Some(5));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1i8, 2][..], &[3][..]]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1i8, 2, 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1i8, 2, 3, 4]).is_ok());
    }

    #[test]
    fn reference_gemm_small_case() {
        let a = Matrix::from_rows(&[&[1i8, 2], &[3, 4]]).unwrap();
        let b = Matrix::from_rows(&[&[5i8, 6], &[7, 8]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19);
        assert_eq!(c[(0, 1)], 22);
        assert_eq!(c[(1, 0)], 43);
        assert_eq!(c[(1, 1)], 50);
    }

    #[test]
    fn gemm_shape_mismatch_is_rejected() {
        let a = Matrix::<i8>::zeros(2, 3).unwrap();
        let b = Matrix::<i8>::zeros(2, 2).unwrap();
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn nnz_and_density() {
        let m = Matrix::from_rows(&[&[0i8, 1], &[0, -2]]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert!((m.density() - 0.5).abs() < 1e-12);
        let mask = m.mask();
        assert!(!mask.get(0, 0));
        assert!(mask.get(0, 1));
        assert!(mask.get(1, 1));
    }

    #[test]
    fn row_borrow() {
        let m = Matrix::from_rows(&[&[1i8, 2], &[3, 4]]).unwrap();
        assert_eq!(m.row(1), &[3, 4]);
    }
}
