//! Table VI — optimal design points, recovered by running the
//! design-space exploration of §VI on our simulator and picking the
//! power-efficiency argmax with a bounded dense-efficiency loss, as the
//! paper does ("high TOPS/W on DNN.B with minimal efficiency loss in
//! DNN.dense").

use griffin_bench::{banner, Suite};
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::dse::{
    enumerate_sparse_a, enumerate_sparse_ab, enumerate_sparse_b, pareto_front, ScoredDesign,
};
use griffin_core::efficiency::Efficiency;

/// Scores a family on (home-category TOPS/W, dense TOPS/W).
fn score(suite: &mut Suite, specs: Vec<ArchSpec>, cat: DnnCategory) -> Vec<ScoredDesign> {
    specs
        .into_iter()
        .map(|spec| {
            let e = suite.evaluate(&spec, cat);
            let dense = Efficiency::new(suite.cfg.core, &e.cost, 1.0);
            ScoredDesign {
                spec,
                sparse_metric: e.eff.tops_per_w,
                dense_metric: dense.tops_per_w,
            }
        })
        .collect()
}

/// The paper's selection rule: the Pareto point with the best sparse
/// efficiency whose dense efficiency stays within `tax` of the best
/// dense efficiency on the front.
fn select(front: &[ScoredDesign], tax: f64) -> &ScoredDesign {
    let best_dense = front
        .iter()
        .map(|p| p.dense_metric)
        .fold(f64::MIN, f64::max);
    front
        .iter()
        .filter(|p| p.dense_metric >= best_dense * (1.0 - tax))
        .max_by(|a, b| a.sparse_metric.partial_cmp(&b.sparse_metric).unwrap())
        .expect("front is nonempty")
}

fn main() {
    banner(
        "Table VI",
        "Optimal design points recovered by DSE (paper selections in parentheses)",
    );
    // Coarse fidelity: this target simulates the whole enumerated space.
    let mut suite = Suite::coarse();

    let b_front = pareto_front(score(&mut suite, enumerate_sparse_b(8), DnnCategory::B));
    let b_star = select(&b_front, 0.12);
    println!(
        "Sparse.B*  measured {:<22} (paper Sparse.B(4,0,1,on))   TOPS/W {:.2}",
        b_star.spec.name, b_star.sparse_metric
    );

    let a_front = pareto_front(score(&mut suite, enumerate_sparse_a(8), DnnCategory::A));
    let a_star = select(&a_front, 0.20);
    println!(
        "Sparse.A*  measured {:<22} (paper Sparse.A(2,1,0,on))   TOPS/W {:.2}",
        a_star.spec.name, a_star.sparse_metric
    );

    // The AB space is large; prefilter with the analytic model (as the
    // paper's analytical model is used to guide its exploration) and
    // simulate only the most promising quarter.
    let mut ab_specs = enumerate_sparse_ab(16);
    ab_specs.sort_by(|x, y| {
        let est = |s: &ArchSpec| {
            griffin_core::analytic::estimate_speedup(s.mode_for(DnnCategory::AB), 0.55, 0.19)
        };
        est(y).partial_cmp(&est(x)).expect("estimates are finite")
    });
    ab_specs.truncate(ab_specs.len().div_ceil(4).max(24));
    let ab_front = pareto_front(score(&mut suite, ab_specs, DnnCategory::AB));
    let ab_star = select(&ab_front, 0.15);
    println!(
        "Sparse.AB* measured {:<22} (paper Sparse.AB(2,0,0,2,0,1,on)) TOPS/W {:.2}",
        ab_star.spec.name, ab_star.sparse_metric
    );

    println!();
    println!("Pareto front, Sparse.B family (TOPS/W on DNN.B vs DNN.dense):");
    for p in b_front.iter().take(8) {
        println!(
            "  {:<24} sparse {:>6.2}  dense {:>6.2}",
            p.spec.name, p.sparse_metric, p.dense_metric
        );
    }
    println!();
    println!("Griffin configurations (fixed by §IV-B):");
    println!("  conf.AB = Sparse.AB(2,0,0,2,0,1,on)");
    println!("  conf.B  = Sparse.B(8,0,1,on)");
    println!("  conf.A  = Sparse.A(2,1,1,on)");
}
