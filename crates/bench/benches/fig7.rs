//! Figure 7 — impact of A & B routing configurations (dual sparsity).
//!
//! (a) Normalized speedup of `Sparse.AB` designs on the DNN.AB suite,
//!     for the best-performing configurations with AMUX fan-in ≤ 16 and
//!     `da3 = 0` (§VI-C). (b/c) Effective power / area efficiency on
//!     DNN.AB (y) vs DNN.A (x).

use griffin_bench::{banner, deviation, paper, Suite};
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_sim::window::BorrowWindow;

/// The configurations Figure 7 plots (the best performers of the sweep)
/// with published reference speedups where the text names them.
fn configs() -> Vec<(ArchSpec, Option<f64>)> {
    let mk = |a1, a2, b1, b2, b3, sh| {
        ArchSpec::sparse_ab(
            BorrowWindow::new(a1, a2, 0),
            BorrowWindow::new(b1, b2, b3),
            sh,
        )
    };
    vec![
        (mk(1, 0, 1, 0, 0, false), None),
        (mk(1, 0, 1, 0, 0, true), None),
        (mk(1, 0, 2, 0, 1, true), None),
        (mk(1, 1, 3, 0, 1, false), Some(3.4)),
        (mk(1, 0, 3, 1, 1, false), Some(3.8)),
        (mk(1, 0, 3, 0, 1, true), Some(4.0)),
        (mk(2, 0, 2, 0, 0, true), None),
        (mk(2, 0, 2, 0, 1, false), None),
        (mk(2, 0, 2, 0, 1, true), Some(3.9)), // Sparse.AB*
        (mk(2, 0, 2, 1, 1, false), None),
        (mk(2, 0, 3, 0, 1, true), None),
        (mk(2, 0, 4, 0, 1, true), None),
        (mk(2, 0, 4, 0, 2, true), Some(4.9)),
        (mk(2, 1, 2, 0, 1, true), None),
    ]
}

fn main() {
    banner(
        "Figure 7",
        "Sparse.AB design space: speedup and efficiency on DNN.AB vs DNN.A",
    );
    let mut suite = Suite::new();

    println!(
        "{:<32} {:>8} {:>7} {:>6}   {:>10} {:>9} {:>10} {:>9}",
        "config", "speedup", "paper", "dev", "TOPS/W.AB", "TOPS/W.A", "TOPSmm.AB", "TOPSmm.A"
    );

    for (spec, reference) in configs() {
        let ab = suite.evaluate(&spec, DnnCategory::AB);
        let a = suite.evaluate(&spec, DnnCategory::A);
        println!(
            "{:<32} {:>8.2} {} {:>6}   {:>10.2} {:>9.2} {:>10.2} {:>9.2}",
            spec.name,
            ab.speedup,
            paper(reference),
            deviation(ab.speedup, reference),
            ab.eff.tops_per_w,
            a.eff.tops_per_w,
            ab.eff.tops_per_mm2,
            a.eff.tops_per_mm2,
        );
    }

    println!();
    println!("SOTA dual-sparse comparison points:");
    for spec in [ArchSpec::tensordash(), ArchSpec::sparten_ab()] {
        let e = suite.evaluate(&spec, DnnCategory::AB);
        println!(
            "{:<32} speedup {:>5.2} TOPS/W {:>6.2} TOPS/mm2 {:>6.2}",
            spec.name, e.speedup, e.eff.tops_per_w, e.eff.tops_per_mm2
        );
    }

    println!();
    println!("Shape checks (paper observations, §VI-C):");
    let mut s = |a1, a2, b1, b2, b3, sh| {
        suite.geomean_speedup(
            &ArchSpec::sparse_ab(
                BorrowWindow::new(a1, a2, 0),
                BorrowWindow::new(b1, b2, b3),
                sh,
            ),
            DnnCategory::AB,
        )
    };
    println!(
        "  (1) shuffle can replace db2/da2: AB(1,0,3,0,1,on) {:.2} vs da2=1 off {:.2} vs db2=1 off {:.2}",
        s(1, 0, 3, 0, 1, true),
        s(1, 1, 3, 0, 1, false),
        s(1, 0, 3, 1, 1, false)
    );
    println!(
        "  (3) invest in the weight side:   AB(2,0,2,0,1,on) {:.2} < AB(2,0,4,0,2,on) {:.2}",
        s(2, 0, 2, 0, 1, true),
        s(2, 0, 4, 0, 2, true)
    );
}
