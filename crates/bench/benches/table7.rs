//! Table VII — power and area breakdown of the eight compared designs:
//! the calibrated (published) rows next to our parametric component
//! model, with per-design residuals.

use griffin_bench::{banner, Suite};
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::cost::{Components, CostModel, Provision};

fn print_components(label: &str, c: &Components) {
    println!(
        "{label:<12} {:>6.1} {:>5.1} {:>6.1} {:>6.1} {:>7.1} {:>5.1} {:>6.1} {:>5.1} {:>5.1} {:>6.1} | {:>7.1}",
        c.ctrl, c.shf, c.abuf, c.bbuf, c.reg_wr, c.acc, c.mul, c.adt, c.mux, c.sram, c.total()
    );
}

fn main() {
    banner(
        "Table VII",
        "Power (mW) and area (kum2) breakdown: calibrated (paper) vs parametric",
    );
    let mut suite = Suite::new();

    // Home category of each design, for provisioning the parametric model.
    let lineup: Vec<(ArchSpec, DnnCategory)> = vec![
        (ArchSpec::dense(), DnnCategory::Dense),
        (ArchSpec::sparse_b_star(), DnnCategory::B),
        (ArchSpec::tcl_b(), DnnCategory::B),
        (ArchSpec::sparse_a_star(), DnnCategory::A),
        (ArchSpec::sparse_ab_star(), DnnCategory::AB),
        (ArchSpec::griffin(), DnnCategory::AB),
        (ArchSpec::tensordash(), DnnCategory::AB),
        (ArchSpec::sparten_ab(), DnnCategory::AB),
    ];

    println!(
        "{:<12} {:>6} {:>5} {:>6} {:>6} {:>7} {:>5} {:>6} {:>5} {:>5} {:>6} | {:>7}",
        "", "CTRL", "SHF", "ABUF", "BBUF", "REG/WR", "ACC", "MUL", "ADT", "MUX", "SRAM", "TOTAL"
    );

    for (spec, cat) in lineup {
        let speedup = suite.geomean_speedup(&spec, cat);
        let prov = Provision {
            speedup,
            b_stream_factor: if cat.b_sparse() && spec.mode_for(cat).compresses_b() {
                0.3
            } else {
                1.0
            },
        };
        let parametric = CostModel::parametric(&spec, suite.cfg.core, prov);
        println!();
        println!(
            "== {} (home category {cat}, measured speedup {speedup:.2}) ==",
            spec.name
        );
        match CostModel::calibrated(&spec) {
            Some(cal) => {
                println!("POWER");
                print_components("  paper", &cal.power);
                print_components("  parametric", &parametric.power);
                println!(
                    "  residual: {:+.0}%",
                    (parametric.power_mw() / cal.power_mw() - 1.0) * 100.0
                );
                println!("AREA");
                print_components("  paper", &cal.area);
                print_components("  parametric", &parametric.area);
                println!(
                    "  residual: {:+.0}%",
                    (parametric.area.total() / cal.area.total() - 1.0) * 100.0
                );
            }
            None => {
                println!("POWER (parametric only)");
                print_components("  parametric", &parametric.power);
            }
        }
    }
}
