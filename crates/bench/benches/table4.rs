//! Table IV — benchmark suite summary: sparsity ratios, accuracy and
//! dense latency (paper vs measured on our lowering).

use griffin_bench::{banner, deviation, Suite};
use griffin_core::category::DnnCategory;
use griffin_workloads::suite::Benchmark;

fn main() {
    banner(
        "Table IV",
        "Benchmarks: sparsity ratios and dense latency (paper vs measured)",
    );
    let mut suite = Suite::new();

    println!(
        "{:<14} {:>7} {:>7} {:<14} {:>12} {:>12} {:>6}  {:<10}",
        "network", "B-spars", "A-spars", "category", "paper cyc", "measured", "dev", "optimal"
    );
    let cfg = suite.cfg;
    for b in Benchmark::ALL {
        let info = b.info();
        let wl = suite.workload(b, DnnCategory::Dense);
        let cycles = wl
            .layers
            .iter()
            .map(|l| l.dense_cycles(cfg.core))
            .sum::<u64>() as f64;
        let cat = DnnCategory::infer(1.0 - info.a_sparsity, 1.0 - info.b_sparsity, 0.9);
        println!(
            "{:<14} {:>6.0}% {:>6.0}% {:<14} {:>12.2e} {:>12.2e} {:>6}  {:<10}",
            info.name,
            info.b_sparsity * 100.0,
            info.a_sparsity * 100.0,
            cat.to_string(),
            info.paper_dense_cycles,
            cycles,
            deviation(cycles, Some(info.paper_dense_cycles)),
            cat.optimal_arch_name(),
        );
    }

    println!();
    println!("Architecture configuration (Table IV, bottom):");
    println!("  core (K0,N0,M0) = (16,16,4), 1024 INT8 MACs, 1 core");
    println!("  ASRAM 512 kB @ 51.2 GB/s, BSRAM 32 kB @ 204.8 GB/s, DRAM 50 GB/s");
    println!("  7 nm, 800 MHz, 0.71 V, output-stationary dataflow");
    println!();
    println!("Note: MobileNetV2 measures below the paper because our per-group");
    println!("im2col lowering of depthwise convolutions is tighter than the");
    println!("paper's mapping; every architecture shares the same lowering, so");
    println!("relative comparisons are unaffected (see EXPERIMENTS.md).");
}
