//! Table III — Griffin's morphing vs the plain dual-sparse hardware's
//! downgrade on single-sparse workloads.
//!
//! The paper: on DNN.B, Griffin morphs to `Sparse.B(8,0,1)` (3.5×
//! speedup) while `Sparse.AB*` downgrades to `Sparse.B(2,0,1)`; on
//! DNN.A, Griffin morphs to `Sparse.A(2,1,1)` (1.94×) vs the downgrade
//! `Sparse.A(2,0,0)`.

use griffin_bench::{banner, deviation, paper, Suite};
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::griffin::{downgrade, morph};
use griffin_sim::pipeline::simulate_network;
use griffin_sim::report::geomean;
use griffin_workloads::suite::Benchmark;

fn main() {
    banner(
        "Table III",
        "Griffin morphing vs dual-sparse downgrade on DNN.A / DNN.B",
    );
    let mut suite = Suite::new();

    for (cat, paper_morph) in [(DnnCategory::B, Some(3.5)), (DnnCategory::A, Some(1.94))] {
        let cfg = suite.cfg;
        let run = |suite: &mut Suite, mode| {
            let speedups: Vec<f64> = Benchmark::ALL
                .iter()
                .map(|&b| {
                    let wl = suite.workload(b, cat);
                    simulate_network(&wl.layers, mode, &cfg).speedup()
                })
                .collect();
            geomean(&speedups)
        };
        let morphed = run(&mut suite, morph(cat));
        let downgraded = run(&mut suite, downgrade(cat));
        println!();
        println!("model {cat}:");
        println!(
            "  dual-sparse downgrade {:<18} speedup {downgraded:>5.2}",
            format!("{:?}", downgrade(cat))
                .split(' ')
                .next()
                .unwrap_or("")
        );
        println!(
            "  Griffin morph         {:<18} speedup {morphed:>5.2}  (paper {}, dev {})",
            format!("{:?}", morph(cat)).split(' ').next().unwrap_or(""),
            paper(paper_morph),
            deviation(morphed, paper_morph)
        );
        println!(
            "  morphing gain: {:.1}%",
            (morphed / downgraded - 1.0) * 100.0
        );
        assert!(
            morphed >= downgraded * 0.99,
            "morphing must not lose to the downgrade"
        );
    }

    println!();
    println!("Structural deltas (Table III / griffin-core::overhead):");
    let g = griffin_core::overhead::HardwareOverhead::griffin();
    let ab = griffin_core::overhead::HardwareOverhead::for_spec(&ArchSpec::sparse_ab_star());
    println!(
        "  BMUX fan-in:          {} -> {}",
        ab.bmux_fanin, g.bmux_fanin
    );
    println!(
        "  metadata per element: {}b -> {}b",
        ab.metadata_bits, g.metadata_bits
    );
    println!(
        "  global arbiter/row:   {} -> {}",
        ab.row_arbiter, g.row_arbiter
    );
}
