//! Criterion micro-benchmarks of the hot path: the greedy borrowing
//! scheduler ([`griffin_sim::engine::schedule`]), its zero-alloc
//! scratch-reuse variant, the retained naive reference, and the
//! word-level A/B grid builders with their cached per-row spans.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use griffin_sim::config::Priority;
use griffin_sim::engine::{reference, schedule, schedule_with, OpGrid, SchedScratch};
use griffin_sim::grid::{build_a_grid, build_b_grid};
use griffin_sim::shuffle::LaneMap;
use griffin_sim::window::EffectiveWindow;
use griffin_tensor::block::{ATileView, BTileView};
use griffin_tensor::gen::TensorGen;
use griffin_tensor::shape::CoreDims;

fn sparse_b_grid(density: f64, seed: u64) -> OpGrid {
    let mask = TensorGen::seeded(seed).bernoulli_mask(16 * 72, 16, density);
    OpGrid::from_fn(72, 16, 1, 16, |t, lane, _, col| {
        mask.get(t * 16 + lane, col)
    })
}

fn dual_grid(da: f64, db: f64, seed: u64) -> OpGrid {
    let mut gen = TensorGen::seeded(seed);
    let a = gen.bernoulli_mask(4, 16 * 72, da);
    let b = gen.bernoulli_mask(16 * 72, 16, db);
    OpGrid::from_fn(72, 16, 4, 16, |t, lane, row, col| {
        let k = t * 16 + lane;
        a.get(row, k) && b.get(k, col)
    })
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");

    g.bench_function("sparse_b_star_tile", |bch| {
        let win = EffectiveWindow::for_b(griffin_sim::window::BorrowWindow::new(4, 0, 1));
        bch.iter_batched(
            || sparse_b_grid(0.19, 1),
            |grid| schedule(&grid, win, Priority::OwnFirst),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("dual_ab_star_tile", |bch| {
        let win = EffectiveWindow::for_ab(
            griffin_sim::window::BorrowWindow::new(2, 0, 0),
            griffin_sim::window::BorrowWindow::new(2, 0, 1),
        );
        bch.iter_batched(
            || dual_grid(0.45, 0.19, 2),
            |grid| schedule(&grid, win, Priority::OwnFirst),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("dense_tile", |bch| {
        bch.iter_batched(
            || sparse_b_grid(1.0, 3),
            |grid| schedule(&grid, EffectiveWindow::dense(), Priority::OwnFirst),
            BatchSize::SmallInput,
        );
    });

    // The steady-state path campaign workers run: reused scratch, no
    // per-tile allocation.
    g.bench_function("sparse_b_star_tile_scratch_reuse", |bch| {
        let win = EffectiveWindow::for_b(griffin_sim::window::BorrowWindow::new(4, 0, 1));
        let grid = sparse_b_grid(0.19, 1);
        let mut scratch = SchedScratch::new();
        bch.iter(|| schedule_with(&grid, win, Priority::OwnFirst, &mut scratch));
    });

    // The retained naive reference, for tracking the event-driven win.
    g.bench_function("sparse_b_star_tile_reference", |bch| {
        let win = EffectiveWindow::for_b(griffin_sim::window::BorrowWindow::new(4, 0, 1));
        let grid = sparse_b_grid(0.19, 1);
        bch.iter(|| reference::schedule(&grid, win, Priority::OwnFirst));
    });

    g.finish();
}

fn bench_grid_builders(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_build");
    let core = CoreDims::PAPER;

    // The steady-state rebuild path campaign workers run: reused grid
    // and span buffers, zero allocations per tile.
    g.bench_function("b_tile_word_build", |bch| {
        let mask = TensorGen::seeded(11).bernoulli_mask(72 * core.k0, core.n0, 0.19);
        let view = BTileView::new(&mask, core, 0);
        let mut grid = OpGrid::default();
        let mut span = Vec::new();
        bch.iter(|| build_b_grid(&mut grid, &mut span, &view, LaneMap::Rotate));
    });

    g.bench_function("a_tile_word_build", |bch| {
        let mask = TensorGen::seeded(12).bernoulli_mask(core.m0, 72 * core.k0, 0.43);
        let view = ATileView::new(&mask, core, 0);
        let mut grid = OpGrid::default();
        let mut span = Vec::new();
        bch.iter(|| build_a_grid(&mut grid, &mut span, &view, LaneMap::Rotate));
    });

    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_grid_builders);
criterion_main!(benches);
