//! Figure 5 — impact of B-matrix routing configurations.
//!
//! (a) Normalized speedup of `Sparse.B(db1, db2, db3, on/off)` designs
//!     over the dense baseline on the DNN.B suite, for every
//!     configuration with AMUX fan-in ≤ 8 and `db1 ≥ 2`.
//! (b/c) Effective power / area efficiency on DNN.B (y-axis) vs
//!     DNN.dense (x-axis).
//!
//! Driven by the `griffin-sweep` campaign engine: the whole design
//! family × six-benchmark grid runs as one parallel, cached campaign
//! instead of a serial loop. Paper reference speedups (§VI-A text) are
//! printed next to our measured values where published.

use griffin_bench::{banner, deviation, paper};
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::dse::enumerate_sparse_b;
use griffin_core::efficiency::dense_tops;
use griffin_sim::window::BorrowWindow;
use griffin_sweep::{default_workers, per_arch, run_campaign, ResultCache, SweepSpec};

/// Published reference speedups from §VI-A.
fn paper_speedup(w: BorrowWindow, shuffle: bool) -> Option<f64> {
    match (w.d1, w.d2, w.d3, shuffle) {
        (4, 0, 0, false) => Some(1.7),
        (4, 0, 1, true) => Some(2.5),
        (4, 0, 2, true) => Some(2.9),
        (6, 0, 0, false) => Some(1.9),
        (6, 0, 0, true) => Some(2.7),
        (2, 1, 1, true) => Some(2.6),
        (2, 2, 0, true) => Some(2.4),
        (2, 0, 2, true) => Some(2.4),
        _ => None,
    }
}

fn main() {
    banner(
        "Figure 5",
        "Sparse.B design space: speedup and efficiency on DNN.B vs DNN.dense",
    );

    // One campaign: the §VI-A family plus the paper's chosen optimum
    // and SOTA weight-sparse points, over all six Table IV benchmarks.
    let spec = SweepSpec::new("fig5")
        .full_suite()
        .category(DnnCategory::B)
        .archs(enumerate_sparse_b(8))
        .archs([
            ArchSpec::sparse_b_star(),
            ArchSpec::tcl_b(),
            ArchSpec::sparten_b(),
        ])
        .seeds([0x5EED])
        .sim(griffin_bench::Suite::new().cfg);

    let workers = default_workers();
    let cache = ResultCache::in_memory();
    let report = run_campaign(&spec, &cache, workers).expect("fig5 campaign");
    println!(
        "(campaign: {} cells on {} workers, {} ms)",
        report.cells.len(),
        report.workers,
        report.elapsed_ms
    );
    println!();

    let rollup = per_arch(&report, Some(DnnCategory::B));
    let agg = |name: &str| rollup.iter().find(|a| a.arch == name);

    // Per-arch geomean power across the six benchmarks drives the
    // dense-axis efficiency at speedup 1 (the design's sparsity tax).
    let dense_axis = |name: &str| -> (f64, f64) {
        let cells: Vec<_> = report.cells.iter().filter(|c| c.arch == name).collect();
        let n = cells.len().max(1) as f64;
        let power = (cells.iter().map(|c| c.metrics.power_mw.ln()).sum::<f64>() / n).exp();
        let area = (cells.iter().map(|c| c.metrics.area_mm2.ln()).sum::<f64>() / n).exp();
        // Definition V.1 at speedup 1 (the design's sparsity tax), on
        // the same core the campaign simulated.
        let tops = dense_tops(spec.sim.core);
        (tops / (power / 1000.0), tops / area)
    };

    println!(
        "{:<22} {:>8} {:>7} {:>6}   {:>9} {:>10} {:>9} {:>10}",
        "config", "speedup", "paper", "dev", "TOPS/W.B", "TOPS/W.den", "TOPSmm.B", "TOPSmm.den"
    );
    for arch in enumerate_sparse_b(8) {
        let Some(a) = agg(&arch.name) else { continue };
        let (den_w, den_mm) = dense_axis(&arch.name);
        let reference = paper_speedup(arch.b, arch.shuffle);
        println!(
            "{:<22} {:>8.2} {} {:>6}   {:>9.2} {:>10.2} {:>9.2} {:>10.2}",
            arch.name,
            a.speedup,
            paper(reference),
            deviation(a.speedup, reference),
            a.tops_per_w,
            den_w,
            a.tops_per_mm2,
            den_mm,
        );
    }

    // The paper's chosen optimum and the SOTA weight-sparse points.
    println!();
    for name in ["Sparse.B*", "TCL.B", "SparTen.B"] {
        let Some(a) = agg(name) else { continue };
        let reference = if name == "SparTen.B" { Some(3.9) } else { None };
        println!(
            "{:<22} speedup {:>5.2} (paper {}) TOPS/W {:>6.2} TOPS/mm2 {:>6.2}",
            name,
            a.speedup,
            paper(reference),
            a.tops_per_w,
            a.tops_per_mm2
        );
    }

    println!();
    println!("Shape checks (paper observations, §VI-A):");
    let s = |d1: usize, d2: usize, d3: usize, sh: bool| {
        let name = ArchSpec::sparse_b(BorrowWindow::new(d1, d2, d3), sh).name;
        agg(&name).map_or(f64::NAN, |a| a.speedup)
    };
    let b400 = s(4, 0, 0, false);
    let b401 = s(4, 0, 1, false);
    let b402 = s(4, 0, 2, false);
    println!(
        "  (1) larger db1 helps:      B(2,0,0) {:.2} < B(4,0,0) {:.2} < B(6,0,0) {:.2}",
        s(2, 0, 0, false),
        b400,
        s(6, 0, 0, false)
    );
    println!("  (2) db3 boosts speedup:    B(4,0,0) {b400:.2} -> B(4,0,1) {b401:.2} -> B(4,0,2) {b402:.2}");
    println!(
        "  (5) balance db2/db3:       B(2,1,1,on) {:.2} vs B(2,2,0,on) {:.2} vs B(2,0,2,on) {:.2}",
        s(2, 1, 1, true),
        s(2, 2, 0, true),
        s(2, 0, 2, true)
    );
}
