//! Figure 5 — impact of B-matrix routing configurations.
//!
//! (a) Normalized speedup of `Sparse.B(db1, db2, db3, on/off)` designs
//!     over the dense baseline on the DNN.B suite, for every
//!     configuration with AMUX fan-in ≤ 8 and `db1 ≥ 2`.
//! (b/c) Effective power / area efficiency on DNN.B (y-axis) vs
//!     DNN.dense (x-axis).
//!
//! Paper reference speedups (§VI-A text) are printed next to our
//! measured values where published.

use griffin_bench::{banner, deviation, paper, Suite};
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::dse::enumerate_sparse_b;
use griffin_sim::window::BorrowWindow;

/// Published reference speedups from §VI-A.
fn paper_speedup(w: BorrowWindow, shuffle: bool) -> Option<f64> {
    match (w.d1, w.d2, w.d3, shuffle) {
        (4, 0, 0, false) => Some(1.7),
        (4, 0, 1, true) => Some(2.5),
        (4, 0, 2, true) => Some(2.9),
        (6, 0, 0, false) => Some(1.9),
        (6, 0, 0, true) => Some(2.7),
        (2, 1, 1, true) => Some(2.6),
        (2, 2, 0, true) => Some(2.4),
        (2, 0, 2, true) => Some(2.4),
        _ => None,
    }
}

fn main() {
    banner("Figure 5", "Sparse.B design space: speedup and efficiency on DNN.B vs DNN.dense");
    let mut suite = Suite::new();

    println!(
        "{:<22} {:>8} {:>7} {:>6}   {:>9} {:>10} {:>9} {:>10}",
        "config", "speedup", "paper", "dev",
        "TOPS/W.B", "TOPS/W.den", "TOPSmm.B", "TOPSmm.den"
    );

    for spec in enumerate_sparse_b(8) {
        let b = suite.evaluate(&spec, DnnCategory::B);
        // On a dense model the sparse schedule degenerates to the dense
        // one; efficiency is the sparsity tax at speedup 1.
        let dense_eff = griffin_core::efficiency::Efficiency::new(suite.cfg.core, &b.cost, 1.0);
        let reference = paper_speedup(spec.b, spec.shuffle);
        println!(
            "{:<22} {:>8.2} {} {:>6}   {:>9.2} {:>10.2} {:>9.2} {:>10.2}",
            spec.name,
            b.speedup,
            paper(reference),
            deviation(b.speedup, reference),
            b.eff.tops_per_w,
            dense_eff.tops_per_w,
            b.eff.tops_per_mm2,
            dense_eff.tops_per_mm2,
        );
    }

    // The paper's chosen optimum and the SOTA weight-sparse points.
    println!();
    for spec in [ArchSpec::sparse_b_star(), ArchSpec::tcl_b(), ArchSpec::sparten_b()] {
        let e = suite.evaluate(&spec, DnnCategory::B);
        let reference = match spec.name.as_str() {
            "SparTen.B" => Some(3.9),
            _ => None,
        };
        println!(
            "{:<22} speedup {:>5.2} (paper {}) TOPS/W {:>6.2} TOPS/mm2 {:>6.2}",
            spec.name,
            e.speedup,
            paper(reference),
            e.eff.tops_per_w,
            e.eff.tops_per_mm2
        );
    }
    println!();
    println!("Shape checks (paper observations, §VI-A):");
    let mut s = |d1, d2, d3, sh| {
        suite.geomean_speedup(&ArchSpec::sparse_b(BorrowWindow::new(d1, d2, d3), sh), DnnCategory::B)
    };
    let b400 = s(4, 0, 0, false);
    let b401 = s(4, 0, 1, false);
    let b402 = s(4, 0, 2, false);
    println!("  (1) larger db1 helps:      B(2,0,0) {:.2} < B(4,0,0) {:.2} < B(6,0,0) {:.2}",
        s(2, 0, 0, false), b400, s(6, 0, 0, false));
    println!("  (2) db3 boosts speedup:    B(4,0,0) {b400:.2} -> B(4,0,1) {b401:.2} -> B(4,0,2) {b402:.2}");
    println!("  (5) balance db2/db3:       B(2,1,1,on) {:.2} vs B(2,2,0,on) {:.2} vs B(2,0,2,on) {:.2}",
        s(2, 1, 1, true), s(2, 2, 0, true), s(2, 0, 2, true));
}
