//! Figure 6 — impact of A-matrix routing configurations.
//!
//! (a) Normalized speedup of `Sparse.A(da1, da2, da3, on/off)` designs
//!     on the DNN.A suite, for configurations with AMUX/BMUX fan-in ≤ 8.
//! (b/c) Effective power / area efficiency on DNN.A (y) vs DNN.dense (x).

use griffin_bench::{banner, deviation, paper, Suite};
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::dse::enumerate_sparse_a;
use griffin_sim::window::BorrowWindow;

/// Published reference speedups from §VI-B.
fn paper_speedup(w: BorrowWindow, shuffle: bool) -> Option<f64> {
    match (w.d1, w.d2, w.d3, shuffle) {
        (2, 1, 0, true) => Some(1.83),
        (3, 1, 0, true) => Some(1.89),
        (2, 1, 1, true) => Some(1.93),
        (2, 1, 2, true) => Some(1.97),
        (4, 0, 1, false) => Some(1.28),
        (4, 0, 1, true) => Some(1.79),
        _ => None,
    }
}

fn main() {
    banner(
        "Figure 6",
        "Sparse.A design space: speedup and efficiency on DNN.A vs DNN.dense",
    );
    let mut suite = Suite::new();

    println!(
        "{:<22} {:>8} {:>7} {:>6}   {:>9} {:>10} {:>9} {:>10}",
        "config", "speedup", "paper", "dev", "TOPS/W.A", "TOPS/W.den", "TOPSmm.A", "TOPSmm.den"
    );

    for spec in enumerate_sparse_a(8) {
        let a = suite.evaluate(&spec, DnnCategory::A);
        let dense_eff = griffin_core::efficiency::Efficiency::new(suite.cfg.core, &a.cost, 1.0);
        let reference = paper_speedup(spec.a, spec.shuffle);
        println!(
            "{:<22} {:>8.2} {} {:>6}   {:>9.2} {:>10.2} {:>9.2} {:>10.2}",
            spec.name,
            a.speedup,
            paper(reference),
            deviation(a.speedup, reference),
            a.eff.tops_per_w,
            dense_eff.tops_per_w,
            a.eff.tops_per_mm2,
            dense_eff.tops_per_mm2,
        );
    }

    println!();
    for spec in [
        ArchSpec::sparse_a_star(),
        ArchSpec::cnvlutin(),
        ArchSpec::sparten_a(),
    ] {
        let e = suite.evaluate(&spec, DnnCategory::A);
        let reference = match spec.name.as_str() {
            "SparTen.A" => Some(2.0),
            _ => None,
        };
        println!(
            "{:<22} speedup {:>5.2} (paper {}) TOPS/W {:>6.2} TOPS/mm2 {:>6.2}",
            spec.name,
            e.speedup,
            paper(reference),
            e.eff.tops_per_w,
            e.eff.tops_per_mm2
        );
    }

    println!();
    println!("Shape checks (paper observations, §VI-B):");
    let mut s = |d1, d2, d3, sh| {
        suite.geomean_speedup(
            &ArchSpec::sparse_a(BorrowWindow::new(d1, d2, d3), sh),
            DnnCategory::A,
        )
    };
    println!(
        "  (1) da1 saturates near 2x ideal:  A(2,1,0,on) {:.2} ~ A(3,1,0,on) {:.2}",
        s(2, 1, 0, true),
        s(3, 1, 0, true)
    );
    println!("  (2) da3 gains are small:          A(2,1,0,on) {:.2} -> A(2,1,1,on) {:.2} -> A(2,1,2,on) {:.2}",
        s(2, 1, 0, true), s(2, 1, 1, true), s(2, 1, 2, true));
    println!(
        "  (3) shuffling helps A(4,0,1):     off {:.2} -> on {:.2}",
        s(4, 0, 1, false),
        s(4, 0, 1, true)
    );
}
