//! Figure 8 — overall comparison: power vs area efficiency of the eight
//! architectures on all four DNN categories, plus the paper's headline
//! Griffin-vs-SparTen ratios.

use griffin_bench::{banner, deviation, paper, Suite};
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;

fn main() {
    banner(
        "Figure 8",
        "Power vs area efficiency across all four DNN categories",
    );
    let mut suite = Suite::new();
    let lineup = ArchSpec::table7_lineup();

    // Power is re-scaled from each design's home-category activity to
    // the panel's category (Table VII rows are home-activity; Figure 8's
    // per-category points imply activity-dependent power — see
    // EXPERIMENTS.md).
    let mut results = Vec::new();
    for cat in DnnCategory::ALL {
        println!();
        println!("--- {cat} (activity-scaled power) ---");
        println!(
            "{:<14} {:>8} {:>10} {:>11} {:>11}",
            "arch", "speedup", "power mW", "TOPS/W", "TOPS/mm2"
        );
        for spec in &lineup {
            let e = suite.evaluate_activity_scaled(spec, cat);
            println!(
                "{:<14} {:>8.2} {:>10.1} {:>10.2} {:>11.2}",
                spec.name,
                e.speedup,
                e.cost.power_mw(),
                e.eff.tops_per_w,
                e.eff.tops_per_mm2
            );
            results.push((spec.name.clone(), cat, e));
        }
    }

    let get = |name: &str, cat: DnnCategory| {
        results
            .iter()
            .find(|(n, c, _)| n == name && *c == cat)
            .map(|(_, _, e)| *e)
            .unwrap()
    };

    println!();
    println!("Headline: Griffin vs SparTen.AB power efficiency (paper: 1.2 / 3.0 / 3.1 / 1.4x)");
    let paper_power = [1.2, 3.0, 3.1, 1.4];
    let paper_area = [3.8, 3.1, 3.7, 1.8];
    for (i, cat) in [
        DnnCategory::Dense,
        DnnCategory::B,
        DnnCategory::A,
        DnnCategory::AB,
    ]
    .into_iter()
    .enumerate()
    {
        let g = get("Griffin", cat);
        let s = get("SparTen.AB", cat);
        let pr = g.eff.tops_per_w / s.eff.tops_per_w;
        let ar = g.eff.tops_per_mm2 / s.eff.tops_per_mm2;
        println!(
            "  {cat:<10} power {pr:>5.2}x (paper {}, dev {})   area {ar:>5.2}x (paper {}, dev {})",
            paper(Some(paper_power[i])),
            deviation(pr, Some(paper_power[i])),
            paper(Some(paper_area[i])),
            deviation(ar, Some(paper_area[i])),
        );
    }

    println!();
    println!(
        "Griffin morphing gains vs Sparse.AB* (paper: +25% power-eff on DNN.B, +23% on DNN.A):"
    );
    for (cat, paper_gain) in [(DnnCategory::B, 1.25), (DnnCategory::A, 1.23)] {
        let g = get("Griffin", cat);
        let ab = get("Sparse.AB*", cat);
        let ratio = g.eff.tops_per_w / ab.eff.tops_per_w;
        println!(
            "  {cat:<10} {ratio:>5.2}x (paper {}, dev {})",
            paper(Some(paper_gain)),
            deviation(ratio, Some(paper_gain))
        );
    }

    println!();
    println!("Sparsity tax on DNN.dense vs baseline (paper: Griffin 29%/24%, SparTen 42%/80%):");
    let base = get("Baseline", DnnCategory::Dense);
    for name in ["Griffin", "SparTen.AB"] {
        let e = get(name, DnnCategory::Dense);
        println!(
            "  {name:<12} power tax {:>4.0}%  area tax {:>4.0}%",
            (1.0 - e.eff.tops_per_w / base.eff.tops_per_w) * 100.0,
            (1.0 - e.eff.tops_per_mm2 / base.eff.tops_per_mm2) * 100.0
        );
    }
}
