//! Table II — hardware overhead closed forms for the Sparse.A and
//! Sparse.B families, printed for the special-case rows the paper
//! tabulates (the formulas themselves are unit-tested in
//! `griffin-core::overhead`).

use griffin_bench::banner;
use griffin_core::overhead::HardwareOverhead;
use griffin_sim::window::BorrowWindow;

fn row(label: &str, o: HardwareOverhead) {
    println!(
        "{label:<22} {:>6} {:>6} {:>6} {:>6} {:>5} {:>9}",
        o.abuf_depth,
        o.amux_fanin,
        if o.bbuf_depth == 0 {
            "-".to_string()
        } else {
            o.bbuf_depth.to_string()
        },
        if o.bmux_fanin <= 1 {
            "-".to_string()
        } else {
            o.bmux_fanin.to_string()
        },
        o.adder_trees,
        o.metadata_bits,
    );
}

fn main() {
    banner(
        "Table II",
        "Hardware overhead for Sparse.A and Sparse.B families",
    );
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6} {:>5} {:>9}",
        "architecture", "ABUF", "AMUX", "BBUF", "BMUX", "ADT", "meta/bit"
    );

    for da1 in [1usize, 2, 4] {
        row(
            &format!("Sparse.A({da1},0,0)"),
            HardwareOverhead::sparse_a(BorrowWindow::new(da1, 0, 0)),
        );
    }
    for da2 in [1usize, 2] {
        row(
            &format!("Sparse.A(1,{da2},0)"),
            HardwareOverhead::sparse_a(BorrowWindow::new(1, da2, 0)),
        );
    }
    for da3 in [1usize, 2] {
        row(
            &format!("Sparse.A(1,0,{da3})"),
            HardwareOverhead::sparse_a(BorrowWindow::new(1, 0, da3)),
        );
    }
    row(
        "Sparse.A(2,1,0) = A*",
        HardwareOverhead::sparse_a(BorrowWindow::new(2, 1, 0)),
    );
    println!();
    for db1 in [2usize, 4, 8] {
        row(
            &format!("Sparse.B({db1},0,0)"),
            HardwareOverhead::sparse_b(BorrowWindow::new(db1, 0, 0)),
        );
    }
    row(
        "Sparse.B(1,2,0)",
        HardwareOverhead::sparse_b(BorrowWindow::new(1, 2, 0)),
    );
    row(
        "Sparse.B(1,0,2)",
        HardwareOverhead::sparse_b(BorrowWindow::new(1, 0, 2)),
    );
    row(
        "Sparse.B(4,0,1) = B*",
        HardwareOverhead::sparse_b(BorrowWindow::new(4, 0, 1)),
    );
    println!();
    row(
        "Sparse.AB* (SecIV-A)",
        HardwareOverhead::sparse_ab(BorrowWindow::new(2, 0, 0), BorrowWindow::new(2, 0, 1)),
    );
    row("Griffin (Table III)", HardwareOverhead::griffin());
}
