//! Ablations of the reproduction's own modelling choices (not a paper
//! table — this target quantifies the design decisions DESIGN.md makes):
//!
//! 1. **arbitration priority** — Bit-Tactical's own-op-first (paper)
//!    vs earliest-op-first,
//! 2. **shuffling** — the load-balance rotation on/off for the three
//!    star designs,
//! 3. **sampled fidelity** — cycle estimates at 6/12/24 sampled tiles
//!    vs exact simulation (bias check on a mid-size network).

use griffin_bench::banner;
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_sim::config::{Fidelity, Priority, SimConfig, SparsityMode};
use griffin_sim::pipeline::simulate_network;
use griffin_sim::window::BorrowWindow;
use griffin_workloads::suite::{build_workload, Benchmark};

fn main() {
    banner(
        "Ablation",
        "Reproduction modelling choices: priority, shuffle, fidelity",
    );

    let wl_b = build_workload(Benchmark::GoogleNet, DnnCategory::B, 5);
    let wl_ab = build_workload(Benchmark::GoogleNet, DnnCategory::AB, 5);

    println!();
    println!("(1) Arbitration priority (GoogleNet):");
    for (label, wl, mode) in [
        (
            "Sparse.B* on DNN.B",
            &wl_b,
            ArchSpec::sparse_b_star().mode_for(DnnCategory::B),
        ),
        (
            "Sparse.AB* on DNN.AB",
            &wl_ab,
            ArchSpec::sparse_ab_star().mode_for(DnnCategory::AB),
        ),
    ] {
        let mut row = format!("  {label:<22}");
        for p in [Priority::OwnFirst, Priority::EarliestFirst] {
            let cfg = SimConfig {
                priority: p,
                ..SimConfig::default()
            };
            let s = simulate_network(&wl.layers, mode, &cfg).speedup();
            row.push_str(&format!("  {p:?} {s:.3}x"));
        }
        println!("{row}");
    }

    println!();
    println!("(2) Shuffle on/off (GoogleNet, channel-minor masks):");
    type ShuffleCase<'a> = (
        &'a str,
        &'a griffin_core::accelerator::Workload,
        fn(bool) -> SparsityMode,
    );
    let shuffle_cases: Vec<ShuffleCase> = vec![
        ("Sparse.B(6,0,0)", &wl_b, |sh| SparsityMode::SparseB {
            win: BorrowWindow::new(6, 0, 0),
            shuffle: sh,
        }),
        ("Sparse.B*(4,0,1)", &wl_b, |sh| SparsityMode::SparseB {
            win: BorrowWindow::new(4, 0, 1),
            shuffle: sh,
        }),
        ("Sparse.AB*(2,0,0,2,0,1)", &wl_ab, |sh| {
            SparsityMode::SparseAB {
                a: BorrowWindow::new(2, 0, 0),
                b: BorrowWindow::new(2, 0, 1),
                shuffle: sh,
            }
        }),
    ];
    for (label, wl, mk) in shuffle_cases {
        let cfg = SimConfig::default();
        let off = simulate_network(&wl.layers, mk(false), &cfg).speedup();
        let on = simulate_network(&wl.layers, mk(true), &cfg).speedup();
        println!(
            "  {label:<26} off {off:.3}x   on {on:.3}x   gain {:+.1}%",
            (on / off - 1.0) * 100.0
        );
    }

    println!();
    println!("(3) Sampling fidelity vs exact (AlexNet, Sparse.AB* on DNN.AB):");
    let wl = build_workload(Benchmark::AlexNet, DnnCategory::AB, 5);
    let mode = ArchSpec::sparse_ab_star().mode_for(DnnCategory::AB);
    let exact = simulate_network(&wl.layers, mode, &SimConfig::exact()).speedup();
    println!("  exact                      {exact:.3}x");
    for tiles in [6usize, 12, 24, 48] {
        let cfg = SimConfig {
            fidelity: Fidelity::Sampled {
                tiles,
                seed: 0xBEEF,
            },
            ..SimConfig::default()
        };
        let s = simulate_network(&wl.layers, mode, &cfg).speedup();
        println!(
            "  sampled tiles={tiles:<3}          {s:.3}x   bias {:+.1}%",
            (s / exact - 1.0) * 100.0
        );
    }
}
