//! Table V — routing dimensions of the compared architectures.

use griffin_bench::banner;
use griffin_core::arch::ArchSpec;

fn check(b: bool) -> &'static str {
    if b {
        "x"
    } else {
        " "
    }
}

fn main() {
    banner(
        "Table V",
        "Routing dimensions in matrices A and B for the compared architectures",
    );
    println!(
        "{:<14} | {:>4} {:>4} {:>4} | {:>4} {:>4} {:>4} | {:>7} | sparsity support",
        "architecture", "da1", "da2", "da3", "db1", "db2", "db3", "shuffle"
    );
    let rows: Vec<(ArchSpec, &str)> = vec![
        (ArchSpec::dense(), "Dense"),
        (ArchSpec::tcl_b(), "Weight Only"),
        (ArchSpec::tensordash(), "Dual Sparsity"),
        (
            ArchSpec::sparten_ab(),
            "Dual Sparsity (per-MAC time routing)",
        ),
        (ArchSpec::cnvlutin(), "Activation Only"),
        (ArchSpec::cambricon_x(), "Weight Only (16x16 window)"),
        (ArchSpec::griffin(), "Hybrid Sparsity"),
    ];
    for (spec, support) in rows {
        println!(
            "{:<14} | {:>4} {:>4} {:>4} | {:>4} {:>4} {:>4} | {:>7} | {}",
            spec.name,
            check(spec.a.d1 > 0),
            check(spec.a.d2 > 0),
            check(spec.a.d3 > 0),
            check(spec.b.d1 > 0),
            check(spec.b.d2 > 0),
            check(spec.b.d3 > 0),
            check(spec.shuffle),
            support
        );
    }
    println!();
    println!(
        "Griffin morphs: conf.AB (2,0,0|2,0,1), conf.B (8,0,1), conf.A (2,1,1), all with shuffle."
    );
    println!("SparTen routes in time only, independently per scalar MAC (depth-128 buffers).");
}
