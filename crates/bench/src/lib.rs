//! Shared harness for the table/figure benchmarks.
//!
//! Every `harness = false` bench target under `benches/` regenerates one
//! table or figure of the paper's evaluation section (see DESIGN.md's
//! experiment index). This library provides the common machinery:
//! cached workload construction, geomean aggregation over the six
//! Table IV benchmarks, efficiency computation and aligned printing of
//! "paper vs measured" rows.

use std::collections::HashMap;

use griffin_core::accelerator::Workload;
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::cost::{CostBreakdown, CostModel, Provision};
use griffin_core::efficiency::Efficiency;
use griffin_sim::config::{Fidelity, SimConfig};
use griffin_sim::pipeline::simulate_network;
use griffin_sim::report::geomean;
use griffin_workloads::suite::{build_workload, Benchmark};

/// Workload cache: building the six networks' masks takes seconds, so
/// each bench process builds each (benchmark, category) pair once.
#[derive(Default)]
pub struct Suite {
    cache: HashMap<(Benchmark, DnnCategory), Workload>,
    /// Simulator configuration used for every run.
    pub cfg: SimConfig,
}

impl Suite {
    /// Creates a suite with the default bench fidelity (sampled tiles,
    /// deterministic seed).
    pub fn new() -> Self {
        Suite {
            cache: HashMap::new(),
            cfg: SimConfig {
                fidelity: Fidelity::Sampled {
                    tiles: 12,
                    seed: 0xBEEF,
                },
                ..SimConfig::default()
            },
        }
    }

    /// A faster, coarser suite for wide sweeps.
    pub fn coarse() -> Self {
        Suite {
            cache: HashMap::new(),
            cfg: SimConfig {
                fidelity: Fidelity::Sampled {
                    tiles: 6,
                    seed: 0xBEEF,
                },
                ..SimConfig::default()
            },
        }
    }

    /// The cached workload for one benchmark/category pair.
    pub fn workload(&mut self, bench: Benchmark, cat: DnnCategory) -> &Workload {
        self.cache
            .entry((bench, cat))
            .or_insert_with(|| build_workload(bench, cat, 0x5EED))
    }

    /// Geomean speedup of an architecture over the six benchmarks in a
    /// category.
    pub fn geomean_speedup(&mut self, spec: &ArchSpec, cat: DnnCategory) -> f64 {
        let cfg = self.cfg;
        let mode = spec.mode_for(cat);
        let speedups: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| {
                let wl = self.workload(b, cat);
                simulate_network(&wl.layers, mode, &cfg).speedup()
            })
            .collect();
        geomean(&speedups)
    }

    /// Geomean speedup and mean multiplier utilization (effectual ops
    /// per slot-cycle) of an architecture on a category.
    pub fn speedup_and_util(&mut self, spec: &ArchSpec, cat: DnnCategory) -> (f64, f64) {
        let cfg = self.cfg;
        let mode = spec.mode_for(cat);
        let macs = cfg.core.macs() as f64;
        let mut speedups = Vec::new();
        let mut utils = Vec::new();
        for &b in &Benchmark::ALL {
            let wl = self.workload(b, cat);
            let net = simulate_network(&wl.layers, mode, &cfg);
            speedups.push(net.speedup());
            let ops: f64 = net.layers.iter().map(|l| l.effectual_ops).sum();
            utils.push((ops / (net.cycles() * macs)).min(1.0));
        }
        (
            geomean(&speedups),
            utils.iter().sum::<f64>() / utils.len() as f64,
        )
    }

    /// Like [`Suite::evaluate`], but with the power re-scaled from the
    /// design's home-category activity to this category's (extension;
    /// reproduces Figure 8's per-category power).
    pub fn evaluate_activity_scaled(&mut self, spec: &ArchSpec, cat: DnnCategory) -> Evaluated {
        use griffin_core::cost::Activity;
        let home = spec.home_category();
        let (s_cat, u_cat) = self.speedup_and_util(spec, cat);
        let (s_home, u_home) = if home == cat {
            (s_cat, u_cat)
        } else {
            self.speedup_and_util(spec, home)
        };
        let base = self.evaluate_at(spec, cat, s_home);
        let act = Activity::from_measurements(s_cat, s_home, u_cat, u_home);
        let cost = CostModel::scale_power_to_activity(&base.cost, act);
        let eff = Efficiency::new(self.cfg.core, &cost, s_cat);
        Evaluated {
            speedup: s_cat,
            cost,
            eff,
        }
    }

    fn evaluate_at(
        &mut self,
        spec: &ArchSpec,
        cat: DnnCategory,
        provision_speedup: f64,
    ) -> Evaluated {
        let speedup = self.geomean_speedup(spec, cat);
        let b_stream = if spec.mode_for(cat).compresses_b() && cat.b_sparse() {
            0.3
        } else {
            1.0
        };
        let cost = CostModel::estimate(
            spec,
            self.cfg.core,
            Provision {
                speedup: provision_speedup,
                b_stream_factor: b_stream,
            },
        );
        let eff = Efficiency::new(self.cfg.core, &cost, speedup);
        Evaluated { speedup, cost, eff }
    }

    /// Speedup, cost and efficiency of an architecture on a category.
    /// The cost is provisioned for the measured speedup (§V).
    pub fn evaluate(&mut self, spec: &ArchSpec, cat: DnnCategory) -> Evaluated {
        let speedup = self.geomean_speedup(spec, cat);
        let b_stream = if spec.mode_for(cat).compresses_b() && cat.b_sparse() {
            0.3 // ~20% density + metadata
        } else {
            1.0
        };
        let cost = CostModel::estimate(
            spec,
            self.cfg.core,
            Provision {
                speedup,
                b_stream_factor: b_stream,
            },
        );
        let eff = Efficiency::new(self.cfg.core, &cost, speedup);
        Evaluated { speedup, cost, eff }
    }
}

/// Result bundle of [`Suite::evaluate`].
#[derive(Debug, Clone, Copy)]
pub struct Evaluated {
    /// Geomean speedup over the suite.
    pub speedup: f64,
    /// Architecture cost.
    pub cost: CostBreakdown,
    /// Effective efficiency at this speedup.
    pub eff: Efficiency,
}

/// Prints a bench banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Formats an optional paper reference value.
pub fn paper(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:>6.2}"),
        None => "     -".to_string(),
    }
}

/// Relative deviation string ("+12%" / "-8%"), or "-" without reference.
pub fn deviation(measured: f64, reference: Option<f64>) -> String {
    match reference {
        Some(r) if r != 0.0 => format!("{:+.0}%", (measured / r - 1.0) * 100.0),
        _ => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_caches_workloads() {
        let mut s = Suite::coarse();
        let p1 = s.workload(Benchmark::AlexNet, DnnCategory::Dense) as *const Workload;
        let p2 = s.workload(Benchmark::AlexNet, DnnCategory::Dense) as *const Workload;
        assert_eq!(p1, p2);
    }

    #[test]
    fn deviation_formats() {
        assert_eq!(deviation(1.2, Some(1.0)), "+20%");
        assert_eq!(deviation(0.9, Some(1.0)), "-10%");
        assert_eq!(deviation(1.0, None), "-");
    }

    #[test]
    fn paper_formats() {
        assert_eq!(paper(None).trim(), "-");
        assert!(paper(Some(3.9)).contains("3.90"));
    }
}
