//! Design-space enumeration and Pareto extraction (§VI).
//!
//! The paper sweeps each family under mux fan-in constraints:
//!
//! * weight-only (`Sparse.B`): AMUX fan-in ≤ 8 (§VI-A),
//! * activation-only (`Sparse.A`): AMUX and BMUX fan-in ≤ 8 (§VI-B),
//! * dual (`Sparse.AB`): AMUX fan-in ≤ 16, and `da3 = 0` because `da3`
//!   inflates AMUX fan-in unlike `db3` (§VI-C observation 3).

use griffin_sim::window::BorrowWindow;

use crate::arch::ArchSpec;
use crate::overhead::HardwareOverhead;

/// Enumerates the `Sparse.B(db1, db2, db3, on/off)` design space under
/// the paper's constraint `AMUX fan-in ≤ max_fanin`, with `db1 ≥ 2`
/// (the paper drops `db1 = 1` as far from optimal).
pub fn enumerate_sparse_b(max_fanin: usize) -> Vec<ArchSpec> {
    let mut v = Vec::new();
    for db1 in 2..=8 {
        for db2 in 0..=3 {
            for db3 in 0..=2 {
                let w = BorrowWindow::new(db1, db2, db3);
                if HardwareOverhead::sparse_b(w).amux_fanin > max_fanin {
                    continue;
                }
                for shuffle in [false, true] {
                    v.push(ArchSpec::sparse_b(w, shuffle));
                }
            }
        }
    }
    v
}

/// Enumerates the `Sparse.A(da1, da2, da3, on/off)` design space under
/// `AMUX fan-in ≤ max_fanin` and `BMUX fan-in ≤ max_fanin`.
pub fn enumerate_sparse_a(max_fanin: usize) -> Vec<ArchSpec> {
    let mut v = Vec::new();
    for da1 in 1..=6 {
        for da2 in 0..=3 {
            for da3 in 0..=2 {
                let w = BorrowWindow::new(da1, da2, da3);
                let o = HardwareOverhead::sparse_a(w);
                if o.amux_fanin > max_fanin || o.bmux_fanin > max_fanin {
                    continue;
                }
                for shuffle in [false, true] {
                    v.push(ArchSpec::sparse_a(w, shuffle));
                }
            }
        }
    }
    v
}

/// Enumerates the `Sparse.AB` design space under `AMUX fan-in ≤
/// max_fanin`, with `da3 = 0` (§VI-C) and small `da1 ≤ 2` (the paper's
/// observation 3: larger `da1` inflates BBUF and mux sizes).
pub fn enumerate_sparse_ab(max_fanin: usize) -> Vec<ArchSpec> {
    let mut v = Vec::new();
    for da1 in 0..=2 {
        for da2 in 0..=2 {
            for db1 in 1..=4 {
                for db2 in 0..=2 {
                    for db3 in 0..=2 {
                        let a = BorrowWindow::new(da1, da2, 0);
                        let b = BorrowWindow::new(db1, db2, db3);
                        if HardwareOverhead::sparse_ab(a, b).amux_fanin > max_fanin {
                            continue;
                        }
                        for shuffle in [false, true] {
                            v.push(ArchSpec::sparse_ab(a, b, shuffle));
                        }
                    }
                }
            }
        }
    }
    v
}

/// A scored design point: metrics are "bigger is better" (e.g. effective
/// TOPS/W on the sparse category vs on the dense category).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredDesign {
    /// The design.
    pub spec: ArchSpec,
    /// Efficiency on the design's home (sparse) category.
    pub sparse_metric: f64,
    /// Efficiency on the dense category (the "sparsity tax" axis).
    pub dense_metric: f64,
}

/// Extracts the Pareto-optimal subset (maximizing both metrics).
///
/// Designs with a NaN metric cannot be ordered and are dropped with a
/// warning on stderr rather than panicking — large sweep campaigns can
/// produce degenerate efficiency values (e.g. zero-power corner cases),
/// and one bad cell must not abort a whole campaign.
pub fn pareto_front(points: Vec<ScoredDesign>) -> Vec<ScoredDesign> {
    let mut points: Vec<ScoredDesign> = points
        .into_iter()
        .filter(|p| {
            let ok = !p.sparse_metric.is_nan() && !p.dense_metric.is_nan();
            if !ok {
                eprintln!(
                    "warning: dropping {} from Pareto extraction (NaN metric: sparse {}, dense {})",
                    p.spec.name, p.sparse_metric, p.dense_metric
                );
            }
            ok
        })
        .collect();
    points.sort_by(|a, b| {
        b.sparse_metric
            .partial_cmp(&a.sparse_metric)
            .expect("NaN filtered above")
            .then(
                b.dense_metric
                    .partial_cmp(&a.dense_metric)
                    .expect("NaN filtered above"),
            )
    });
    let mut front: Vec<ScoredDesign> = Vec::new();
    let mut best_dense = f64::NEG_INFINITY;
    for p in points {
        if p.dense_metric > best_dense {
            best_dense = p.dense_metric;
            front.push(p);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_b_space_respects_fanin_limit() {
        let v = enumerate_sparse_b(8);
        assert!(!v.is_empty());
        for s in &v {
            assert!(
                HardwareOverhead::sparse_b(s.b).amux_fanin <= 8,
                "{}",
                s.name
            );
        }
        // The paper's Sparse.B*(4,0,1) must be in the space.
        assert!(v
            .iter()
            .any(|s| s.b == BorrowWindow::new(4, 0, 1) && s.shuffle));
        // db1=8 with db2=0 has fan-in 9 > 8... check: 1 + 8*1 = 9 -> excluded.
        assert!(!v.iter().any(|s| s.b.d1 == 8 && s.b.d2 == 0));
    }

    #[test]
    fn sparse_a_space_contains_star_point() {
        let v = enumerate_sparse_a(8);
        assert!(v
            .iter()
            .any(|s| s.a == BorrowWindow::new(2, 1, 0) && s.shuffle));
        for s in &v {
            let o = HardwareOverhead::sparse_a(s.a);
            assert!(o.amux_fanin <= 8 && o.bmux_fanin <= 8);
        }
    }

    #[test]
    fn sparse_ab_space_contains_star_point_and_excludes_da3() {
        let v = enumerate_sparse_ab(16);
        assert!(v
            .iter()
            .any(|s| s.a == BorrowWindow::new(2, 0, 0) && s.b == BorrowWindow::new(2, 0, 1)));
        for s in &v {
            assert_eq!(s.a.d3, 0, "da3 must be 0 per §VI-C");
            assert!(HardwareOverhead::sparse_ab(s.a, s.b).amux_fanin <= 16);
        }
    }

    #[test]
    fn pareto_front_is_monotone() {
        let mk = |s: f64, d: f64| ScoredDesign {
            spec: ArchSpec::dense(),
            sparse_metric: s,
            dense_metric: d,
        };
        let front = pareto_front(vec![mk(3.0, 1.0), mk(2.0, 2.0), mk(1.0, 3.0), mk(1.5, 1.5)]);
        assert_eq!(front.len(), 3);
        // Dominated point (1.5, 1.5) must be excluded.
        assert!(!front.iter().any(|p| p.sparse_metric == 1.5));
        // Front is sorted by descending sparse metric, ascending dense.
        for w in front.windows(2) {
            assert!(w[0].sparse_metric >= w[1].sparse_metric);
            assert!(w[0].dense_metric <= w[1].dense_metric);
        }
    }

    #[test]
    fn pareto_tolerates_nan_metrics() {
        let mk = |s: f64, d: f64| ScoredDesign {
            spec: ArchSpec::dense(),
            sparse_metric: s,
            dense_metric: d,
        };
        // NaN points are dropped; the finite points still form a front.
        let front = pareto_front(vec![
            mk(f64::NAN, 1.0),
            mk(2.0, f64::NAN),
            mk(3.0, 1.0),
            mk(1.0, 3.0),
        ]);
        assert_eq!(front.len(), 2);
        assert!(front
            .iter()
            .all(|p| !p.sparse_metric.is_nan() && !p.dense_metric.is_nan()));
        // An all-NaN input yields an empty front, not a panic.
        assert!(pareto_front(vec![mk(f64::NAN, f64::NAN)]).is_empty());
    }

    #[test]
    fn pareto_keeps_single_point() {
        let p = vec![ScoredDesign {
            spec: ArchSpec::dense(),
            sparse_metric: 1.0,
            dense_metric: 1.0,
        }];
        assert_eq!(pareto_front(p).len(), 1);
    }
}
