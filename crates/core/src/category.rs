//! The four DNN model categories of Table I.

use std::fmt;

/// Category of a DNN model by the sparsity of its (activation, weight)
/// tensors — Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnnCategory {
    /// `(dense, dense)` — e.g. CNNs with swish, transformers with GeLU.
    Dense,
    /// `(sparse, dense)` — ReLU networks without pruning (`DNN.A`).
    A,
    /// `(dense, sparse)` — pruned networks with non-ReLU activations
    /// (`DNN.B`).
    B,
    /// `(sparse, sparse)` — pruned ReLU networks (`DNN.AB`).
    AB,
}

impl DnnCategory {
    /// All four categories, in the paper's order.
    pub const ALL: [DnnCategory; 4] = [
        DnnCategory::Dense,
        DnnCategory::A,
        DnnCategory::B,
        DnnCategory::AB,
    ];

    /// Whether activation tensors are sparse in this category.
    pub fn a_sparse(&self) -> bool {
        matches!(self, DnnCategory::A | DnnCategory::AB)
    }

    /// Whether weight tensors are sparse in this category.
    pub fn b_sparse(&self) -> bool {
        matches!(self, DnnCategory::B | DnnCategory::AB)
    }

    /// Infers the category from tensor densities, classifying a tensor
    /// as sparse when its density is below `threshold` (0.9 is a
    /// sensible default: ReLU and pruning both leave far fewer
    /// nonzeros).
    pub fn infer(a_density: f64, b_density: f64, threshold: f64) -> Self {
        match (a_density < threshold, b_density < threshold) {
            (false, false) => DnnCategory::Dense,
            (true, false) => DnnCategory::A,
            (false, true) => DnnCategory::B,
            (true, true) => DnnCategory::AB,
        }
    }

    /// The architecture class Table I calls optimal for this category.
    pub fn optimal_arch_name(&self) -> &'static str {
        match self {
            DnnCategory::Dense => "Dense",
            DnnCategory::A => "Sparse.A",
            DnnCategory::B => "Sparse.B",
            DnnCategory::AB => "Sparse.AB",
        }
    }
}

impl fmt::Display for DnnCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DnnCategory::Dense => "DNN.dense",
            DnnCategory::A => "DNN.A",
            DnnCategory::B => "DNN.B",
            DnnCategory::AB => "DNN.AB",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_flags_match_table_one() {
        assert!(!DnnCategory::Dense.a_sparse() && !DnnCategory::Dense.b_sparse());
        assert!(DnnCategory::A.a_sparse() && !DnnCategory::A.b_sparse());
        assert!(!DnnCategory::B.a_sparse() && DnnCategory::B.b_sparse());
        assert!(DnnCategory::AB.a_sparse() && DnnCategory::AB.b_sparse());
    }

    #[test]
    fn inference_from_densities() {
        assert_eq!(DnnCategory::infer(1.0, 1.0, 0.9), DnnCategory::Dense);
        assert_eq!(DnnCategory::infer(0.5, 1.0, 0.9), DnnCategory::A);
        assert_eq!(DnnCategory::infer(1.0, 0.2, 0.9), DnnCategory::B);
        assert_eq!(DnnCategory::infer(0.5, 0.2, 0.9), DnnCategory::AB);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(DnnCategory::Dense.to_string(), "DNN.dense");
        assert_eq!(DnnCategory::AB.to_string(), "DNN.AB");
    }

    #[test]
    fn all_lists_four_distinct() {
        let mut v = DnnCategory::ALL.to_vec();
        v.dedup();
        assert_eq!(v.len(), 4);
    }
}
