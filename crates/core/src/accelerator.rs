//! Top-level accelerator API: run workloads, get cycles + efficiency.

use griffin_sim::config::SimConfig;
use griffin_sim::layer::GemmLayer;
use griffin_sim::pipeline::{
    simulate_layer, simulate_network_batch, simulate_network_multi_arch, simulate_network_with,
};
use griffin_sim::report::{LayerReport, NetworkReport};
use griffin_sim::scratch::SimScratch;
use griffin_tensor::error::TensorError;

use crate::arch::ArchSpec;
use crate::category::DnnCategory;
use crate::cost::{CostBreakdown, CostModel, Provision};
use crate::efficiency::Efficiency;

/// A benchmark workload: a named network lowered to GEMM layers, with
/// its Table-I category.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (e.g. `"ResNet50"`).
    pub name: String,
    /// Sparsity category, which Griffin morphs on.
    pub category: DnnCategory,
    /// The GEMM layers in execution order.
    pub layers: Vec<GemmLayer>,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, category: DnnCategory, layers: Vec<GemmLayer>) -> Self {
        Workload {
            name: name.into(),
            category,
            layers,
        }
    }

    /// Total dense-baseline latency in cycles on the given simulator
    /// configuration's core (replica-weighted).
    pub fn dense_cycles(&self, cfg: &SimConfig) -> u64 {
        self.layers.iter().map(|l| l.dense_cycles(cfg.core)).sum()
    }

    /// Mean weight-stream compression factor across layers (bytes per
    /// dense B element), used for SRAM provisioning.
    pub fn b_density(&self) -> f64 {
        if self.layers.is_empty() {
            return 1.0;
        }
        let total: f64 = self.layers.iter().map(|l| l.b_density()).sum();
        total / self.layers.len() as f64
    }
}

/// End-to-end result of running a workload on an architecture.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Architecture name.
    pub arch: String,
    /// Workload name.
    pub workload: String,
    /// Per-layer simulation results.
    pub network: NetworkReport,
    /// End-to-end speedup over the dense baseline.
    pub speedup: f64,
    /// Power/area cost of the architecture instance.
    pub cost: CostBreakdown,
    /// Effective TOPS/W at this speedup (Definition V.1).
    pub effective_tops_per_w: f64,
    /// Effective TOPS/mm² at this speedup.
    pub effective_tops_per_mm2: f64,
}

/// An architecture instance bound to a simulator configuration.
#[derive(Debug, Clone)]
pub struct Accelerator {
    spec: ArchSpec,
    cfg: SimConfig,
}

impl Accelerator {
    /// Creates an accelerator with an explicit simulator configuration.
    pub fn new(spec: ArchSpec, cfg: SimConfig) -> Self {
        Accelerator { spec, cfg }
    }

    /// Creates an accelerator with the default (paper) configuration.
    pub fn with_defaults(spec: ArchSpec) -> Self {
        Accelerator {
            spec,
            cfg: SimConfig::default(),
        }
    }

    /// The architecture specification.
    pub fn spec(&self) -> &ArchSpec {
        &self.spec
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Simulates a single layer, inferring its category from the mask
    /// densities (threshold 0.9) so that Griffin morphs correctly.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] if the layer masks are inconsistent (the
    /// layer type validates on construction, so this is currently
    /// infallible in practice and reserved for future validation).
    pub fn run_layer(&self, layer: &GemmLayer) -> Result<LayerReport, TensorError> {
        let category = DnnCategory::infer(layer.a_density(), layer.b_density(), 0.9);
        let mode = self.spec.mode_for(category);
        Ok(simulate_layer(layer, mode, &self.cfg))
    }

    /// Runs a full workload: simulates every layer under the mode this
    /// architecture uses for the workload's category, prices the design
    /// (provisioned for the achieved speedup), and reports efficiency.
    pub fn run(&self, workload: &Workload) -> RunReport {
        self.run_with(workload, &mut SimScratch::new())
    }

    /// [`Accelerator::run`] with caller-provided simulation scratch —
    /// campaign workers keep one scratch per thread so steady-state
    /// tile simulation allocates nothing.
    pub fn run_with(&self, workload: &Workload, scratch: &mut SimScratch) -> RunReport {
        let mode = self.spec.mode_for(workload.category);
        let network = simulate_network_with(&workload.layers, mode, &self.cfg, scratch);
        self.assemble_report(workload, mode, network)
    }

    /// Runs K seed-variant workloads in one batched pass, returning one
    /// report per workload in input order.
    ///
    /// Workloads sharing a category and per-layer shapes (seed variants
    /// of one workload spec do) have their tile op grids built
    /// word-parallel across the batch and are keyed per plane in the
    /// scratch's reuse scope; anything else — mixed categories, uneven
    /// shapes, modes without a batched kernel — falls back to
    /// plane-sequential simulation. Either way every report is
    /// **exactly** what [`Accelerator::run_with`] returns for that
    /// workload alone (pinned by batch-equivalence tests), so callers
    /// may batch opportunistically without perturbing results.
    pub fn run_batch(&self, workloads: &[&Workload], scratch: &mut SimScratch) -> Vec<RunReport> {
        let Some(first) = workloads.first() else {
            return Vec::new();
        };
        if !workloads.iter().all(|w| w.category == first.category) {
            // Mixed categories mean mixed modes: simulate each plane on
            // its own, keyed separately so cached grids cannot collide.
            let reports = workloads
                .iter()
                .enumerate()
                .map(|(p, w)| {
                    scratch.set_plane(p as u32);
                    self.run_with(w, scratch)
                })
                .collect();
            scratch.set_plane(0);
            return reports;
        }
        let mode = self.spec.mode_for(first.category);
        let networks: Vec<&[GemmLayer]> = workloads.iter().map(|w| w.layers.as_slice()).collect();
        let reports = simulate_network_batch(&networks, mode, &self.cfg, scratch);
        workloads
            .iter()
            .zip(reports)
            .map(|(w, network)| self.assemble_report(w, mode, network))
            .collect()
    }

    /// Runs a whole architecture *family* over K seed-variant workloads
    /// in one pass, returning `[accelerator][workload]` reports.
    ///
    /// This is the arch-axis extension of [`Accelerator::run_batch`]:
    /// when every accelerator shares this one's simulator configuration
    /// and every workload shares one category, the family's sparsity
    /// modes go through
    /// [`simulate_network_multi_arch`] together, so same-reach
    /// borrowing windows share event-core passes and the scratch's
    /// window-keyed schedule cache serves repeat windows. Anything that
    /// breaks the preconditions falls back to per-accelerator
    /// [`Accelerator::run_batch`] calls. Every report is **exactly**
    /// what `accels[i].run_with(workloads[j], ..)` returns (pinned by
    /// batch-equivalence tests), so sweep drivers may regroup batches
    /// freely without perturbing results.
    pub fn run_family_batch(
        accels: &[&Accelerator],
        workloads: &[&Workload],
        scratch: &mut SimScratch,
    ) -> Vec<Vec<RunReport>> {
        let Some(first_w) = workloads.first() else {
            return vec![Vec::new(); accels.len()];
        };
        let same_cfg = accels.windows(2).all(|pair| pair[0].cfg == pair[1].cfg);
        let same_cat = workloads.iter().all(|w| w.category == first_w.category);
        if !same_cfg || !same_cat {
            return accels
                .iter()
                .map(|a| a.run_batch(workloads, scratch))
                .collect();
        }
        let Some(first_a) = accels.first() else {
            return Vec::new();
        };
        let modes: Vec<griffin_sim::config::SparsityMode> = accels
            .iter()
            .map(|a| a.spec.mode_for(first_w.category))
            .collect();
        let networks: Vec<&[GemmLayer]> = workloads.iter().map(|w| w.layers.as_slice()).collect();
        let family = simulate_network_multi_arch(&networks, &modes, &first_a.cfg, scratch);
        accels
            .iter()
            .zip(modes)
            .zip(family)
            .map(|((a, mode), nets)| {
                workloads
                    .iter()
                    .zip(nets)
                    .map(|(w, network)| a.assemble_report(w, mode, network))
                    .collect()
            })
            .collect()
    }

    /// Prices the design for the achieved speedup and assembles the run
    /// report — the shared tail of [`Accelerator::run_with`] and
    /// [`Accelerator::run_batch`].
    fn assemble_report(
        &self,
        workload: &Workload,
        mode: griffin_sim::config::SparsityMode,
        network: NetworkReport,
    ) -> RunReport {
        let speedup = if workload.layers.is_empty() {
            1.0
        } else {
            network.speedup()
        };

        let provision = Provision {
            speedup,
            b_stream_factor: if mode.compresses_b() {
                // nonzero values + ~4 metadata bits per stored element
                (workload.b_density() * 1.5).min(1.0)
            } else {
                1.0
            },
        };
        let cost = CostModel::estimate(&self.spec, self.cfg.core, provision);
        let eff = Efficiency::new(self.cfg.core, &cost, speedup);

        RunReport {
            arch: self.spec.name.clone(),
            workload: workload.name.clone(),
            network,
            speedup,
            cost,
            effective_tops_per_w: eff.tops_per_w,
            effective_tops_per_mm2: eff.tops_per_mm2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_tensor::shape::GemmShape;

    fn wl(name: &str, category: DnnCategory, da: f64, db: f64) -> Workload {
        let layers = (0..3)
            .map(|i| {
                GemmLayer::with_densities(GemmShape::new(32, 512, 64).unwrap(), da, db, i as u64)
                    .unwrap()
            })
            .collect();
        Workload::new(name, category, layers)
    }

    #[test]
    fn dense_arch_on_dense_workload_is_unit_speedup() {
        let acc = Accelerator::with_defaults(ArchSpec::dense());
        let r = acc.run(&wl("dense", DnnCategory::Dense, 1.0, 1.0));
        assert!((r.speedup - 1.0).abs() < 1e-9);
        assert!(r.effective_tops_per_w > 10.0); // baseline ~10.8 TOPS/W
    }

    #[test]
    fn sparse_b_star_wins_on_pruned_workload() {
        let base = Accelerator::with_defaults(ArchSpec::dense());
        let star = Accelerator::with_defaults(ArchSpec::sparse_b_star());
        let w = wl("pruned", DnnCategory::B, 1.0, 0.2);
        let rb = base.run(&w);
        let rs = star.run(&w);
        assert!(rs.speedup > 1.8, "speedup {}", rs.speedup);
        assert!(rs.effective_tops_per_w > rb.effective_tops_per_w);
    }

    #[test]
    fn griffin_morphs_and_beats_downgrade_on_dnn_b() {
        let g = Accelerator::with_defaults(ArchSpec::griffin());
        let ab = Accelerator::with_defaults(ArchSpec::sparse_ab_star());
        let w = wl("pruned", DnnCategory::B, 1.0, 0.2);
        let rg = g.run(&w);
        let rab = ab.run(&w);
        // Griffin's conf.B(8,0,1) sees a 9-deep window; the dual-sparse
        // hardware running as Sparse.AB on a dense-A workload behaves
        // like its downgrade. Griffin must be at least as fast.
        assert!(
            rg.speedup >= rab.speedup * 0.99,
            "griffin {} vs ab {}",
            rg.speedup,
            rab.speedup
        );
    }

    #[test]
    fn run_layer_infers_category() {
        let g = Accelerator::with_defaults(ArchSpec::griffin());
        let dense_layer =
            GemmLayer::with_densities(GemmShape::new(32, 256, 32).unwrap(), 1.0, 1.0, 1).unwrap();
        let r = g.run_layer(&dense_layer).unwrap();
        assert!(
            (r.speedup() - 1.0).abs() < 1e-6,
            "dense layer has no sparsity to exploit"
        );
    }

    #[test]
    fn report_carries_names() {
        let acc = Accelerator::with_defaults(ArchSpec::sparse_a_star());
        let r = acc.run(&wl("relu-net", DnnCategory::A, 0.5, 1.0));
        assert_eq!(r.arch, "Sparse.A*");
        assert_eq!(r.workload, "relu-net");
        assert_eq!(r.network.layers.len(), 3);
    }

    #[test]
    fn empty_workload_reports_unit_speedup() {
        let acc = Accelerator::with_defaults(ArchSpec::dense());
        let r = acc.run(&Workload::new("empty", DnnCategory::Dense, vec![]));
        assert_eq!(r.speedup, 1.0);
    }
}
