//! The Griffin architecture library — the paper's primary contribution.
//!
//! This crate layers the architectural model of *"Griffin: Rethinking
//! Sparse Optimization for Deep Learning Architectures"* (HPCA 2022) on
//! top of the cycle-accurate simulator in [`griffin_sim`]:
//!
//! * [`category`] — the four DNN model categories of Table I,
//! * [`arch`] — architecture specifications: the `Sparse.A` / `Sparse.B`
//!   / `Sparse.AB` families, the paper's optimal design points
//!   (Table VI), the SOTA comparison points (Table V), and the Griffin
//!   hybrid,
//! * [`overhead`] — the hardware-overhead closed forms of Table II and
//!   §IV-A (buffer depths, mux fan-ins, adder trees, metadata widths),
//! * [`cost`] — the component-level power/area model calibrated against
//!   the paper's 7 nm synthesis results (Table VII),
//! * [`efficiency`] — effective TOPS/W and TOPS/mm² (Definition V.1),
//! * [`griffin`] — the morphing logic of the hybrid architecture
//!   (Figure 4, Table III),
//! * [`accelerator`] — the top-level `Accelerator::run` API,
//! * [`dse`] — design-space enumeration and Pareto extraction (§VI),
//! * [`analytic`] — the closed-form speedup model used to sanity-check
//!   the simulator, as the paper's analytical model does.
//!
//! # Example
//!
//! ```
//! use griffin_core::accelerator::{Accelerator, Workload};
//! use griffin_core::arch::ArchSpec;
//! use griffin_core::category::DnnCategory;
//! use griffin_sim::layer::GemmLayer;
//! use griffin_tensor::shape::GemmShape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small pruned workload (DNN.B): dense activations, 20% weights.
//! let layer = GemmLayer::with_densities(GemmShape::new(64, 512, 64)?, 1.0, 0.2, 1)?;
//! let wl = Workload::new("toy", DnnCategory::B, vec![layer]);
//!
//! let griffin = Accelerator::with_defaults(ArchSpec::griffin());
//! let report = griffin.run(&wl);
//! assert!(report.speedup > 1.5);          // weight sparsity pays off
//! assert!(report.effective_tops_per_w > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod accelerator;
pub mod analytic;
pub mod arch;
pub mod category;
pub mod cost;
pub mod dse;
pub mod efficiency;
pub mod griffin;
pub mod overhead;

pub use accelerator::{Accelerator, RunReport, Workload};
pub use arch::{ArchKind, ArchSpec};
pub use category::DnnCategory;
pub use cost::{CostBreakdown, CostModel};
pub use efficiency::Efficiency;
pub use overhead::HardwareOverhead;
