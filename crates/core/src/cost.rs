//! Component-level power and area model (Table VII).
//!
//! The paper synthesizes every architecture in 7 nm (Synopsys DC,
//! 800 MHz, 0.71 V) and reports per-component power/area breakdowns in
//! Table VII. We cannot run a 7 nm flow, so this module substitutes a
//! **calibrated component model** (see DESIGN.md):
//!
//! * [`CostModel::calibrated`] returns the *exact published rows* for
//!   the eight named designs of Table VII — these anchor Figure 8 and
//!   the headline comparisons;
//! * [`CostModel::parametric`] prices an *arbitrary* configuration from
//!   its [`HardwareOverhead`] using per-component unit costs derived
//!   from the calibrated rows (buffer ≈ 0.0235 mW/word, 2:1-mux
//!   equivalent ≈ 0.854 µW, per-PE control ≈ 0.28 mW, …) — this drives
//!   the design-space sweeps of Figures 5–7, where only *relative*
//!   cost matters.
//!
//! Known parametric residuals vs Table VII (documented in
//! EXPERIMENTS.md): REG/WR pipeline registers and SRAM bandwidth scaling
//! are fit within ±30%; everything else is within ±15%.

use griffin_tensor::shape::CoreDims;

use crate::arch::{ArchKind, ArchSpec};
use crate::overhead::HardwareOverhead;

/// Per-component cost vector; the unit is mW for power breakdowns and
/// kµm² (×1000 µm²) for area breakdowns, matching Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Components {
    /// Control units (per-PE arbitration, row arbiters).
    pub ctrl: f64,
    /// Rotation shuffler crossbars.
    pub shf: f64,
    /// Activation window buffers.
    pub abuf: f64,
    /// Weight window buffers.
    pub bbuf: f64,
    /// Pipeline registers and wiring.
    pub reg_wr: f64,
    /// Output accumulators.
    pub acc: f64,
    /// Multipliers.
    pub mul: f64,
    /// Adder trees.
    pub adt: f64,
    /// Operand-select multiplexers.
    pub mux: f64,
    /// On-chip SRAM (ASRAM + BSRAM).
    pub sram: f64,
}

impl Components {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.ctrl
            + self.shf
            + self.abuf
            + self.bbuf
            + self.reg_wr
            + self.acc
            + self.mul
            + self.adt
            + self.mux
            + self.sram
    }
}

/// Power (mW) and area (kµm²) of one architecture instance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Power breakdown in mW.
    pub power: Components,
    /// Area breakdown in ×1000 µm².
    pub area: Components,
}

impl CostBreakdown {
    /// Total power in mW.
    pub fn power_mw(&self) -> f64 {
        self.power.total()
    }

    /// Total area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area.total() / 1000.0
    }
}

/// Bandwidth/throughput provisioning of a design — how much faster than
/// the dense baseline its SRAM must stream (§V: "SRAM BW should be
/// equal or more than the multiplication of the normalized speedup and
/// the baseline bandwidth").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Provision {
    /// Target (home-category geomean) speedup the design is built for.
    pub speedup: f64,
    /// Bytes per dense B element streamed (compression factor, ≤ 1 for
    /// preprocessed weights, 1.0 otherwise).
    pub b_stream_factor: f64,
}

impl Provision {
    /// Dense provisioning: no extra bandwidth.
    pub fn dense() -> Self {
        Provision {
            speedup: 1.0,
            b_stream_factor: 1.0,
        }
    }
}

/// The cost model. Stateless; methods are associated functions grouped
/// for discoverability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostModel;

// Unit costs derived from the Table VII baseline row (1024 MACs,
// K0,N0,M0 = 16,16,4).
const MUL_POWER_MW: f64 = 62.6;
const MUL_AREA: f64 = 29.0;
const ACC_POWER_MW: f64 = 10.9;
const ACC_AREA: f64 = 2.6;
const ADT_POWER_MW: f64 = 21.8; // activity-limited: ~constant in tree count
const ADT_AREA_PER_TREE: f64 = 6.7; // area scales with tree count
const REG_BASE_POWER: f64 = 22.8;
const REG_BASE_AREA: f64 = 3.2;
const BUF_POWER_PER_WORD: f64 = 0.0235; // from Sparse.B*/A* ABUF+BBUF rows
const BUF_AREA_PER_WORD: f64 = 0.0075; // kµm² per word (incl. index bits)
const MUX_POWER_PER_EQ: f64 = 0.854e-3; // per 2:1-mux equivalent
const MUX_AREA_PER_EQ: f64 = 1.59e-3;
const CTRL_POWER_PER_PE: f64 = 0.284;
const CTRL_AREA_PER_PE: f64 = 0.127;
const ARB_POWER_PER_ROW: f64 = 0.30;
const ARB_AREA_PER_ROW: f64 = 0.175;
const SHF_POWER_PER_STREAM: f64 = 0.7;
const SHF_AREA_PER_STREAM: f64 = 0.8;
const REG_POWER_PER_EXTRA_ADT: f64 = 18.0; // accumulator-routing pipeline
const REG_AREA_PER_EXTRA_ADT: f64 = 1.5;
const REG_POWER_PER_PE_CTRL: f64 = 12.0;
const REG_AREA_PER_PE_CTRL: f64 = 1.3;
const ASRAM_POWER: f64 = 20.0; // 512 KB @ 51.2 GB/s baseline
const BSRAM_POWER: f64 = 13.3; // 32 KB @ 204.8 GB/s baseline
const SRAM_AREA_BASE: f64 = 176.0;
const SRAM_AREA_BW_SLOPE: f64 = 5.0; // banking overhead per unit of BW scale

impl CostModel {
    /// Prices an arbitrary configuration from its hardware overhead.
    ///
    /// `provision` carries the target speedup (for SRAM bandwidth
    /// scaling) and the compressed-B stream factor.
    pub fn parametric(spec: &ArchSpec, core: CoreDims, provision: Provision) -> CostBreakdown {
        let o = HardwareOverhead::for_spec(spec);
        let pes = core.pes() as f64;
        let mults = core.macs() as f64;

        // Buffer word counts: ABUF shared per PE row, BBUF per column.
        let abuf_words = (o.abuf_depth * core.k0 * core.m0) as f64;
        let bbuf_words = (o.bbuf_depth * core.k0 * core.n0) as f64;

        // Mux 2:1 equivalents. A-side architectures pay for their BMUX
        // per multiplier but at a reduced weight (narrower select paths,
        // cf. Sparse.A* in Table VII); AMUX is shared per row when only
        // A is sparse, per PE otherwise.
        let a_only = matches!(spec.kind, ArchKind::SparseA | ArchKind::Cnvlutin);
        let amux_insts = if a_only {
            (core.k0 * core.m0) as f64
        } else {
            mults
        };
        let amux_eq = (o.amux_fanin.saturating_sub(1)) as f64 * amux_insts;
        let bmux_eq = (o.bmux_fanin.saturating_sub(1)) as f64 * mults * 0.3;
        let mux_eq = amux_eq + bmux_eq;

        let extra_adts = o.adder_trees.saturating_sub(1) as f64;
        let shuffled_streams = if spec.shuffle {
            if o.per_pe_control {
                2.0
            } else {
                1.0
            }
        } else {
            0.0
        };

        // SRAM bandwidth scaling: the A stream is never compressed; the
        // B stream scales by the compression factor.
        let s = provision.speedup.max(1.0);
        let a_scale = s;
        let b_scale = (s * provision.b_stream_factor).max(0.5);

        let power = Components {
            ctrl: if o.per_pe_control {
                CTRL_POWER_PER_PE * pes
            } else {
                0.0
            } + if o.row_arbiter {
                ARB_POWER_PER_ROW * core.m0 as f64
            } else {
                0.0
            },
            shf: SHF_POWER_PER_STREAM * shuffled_streams,
            abuf: BUF_POWER_PER_WORD * abuf_words * if o.abuf_depth > 1 { 1.0 } else { 0.0 },
            bbuf: BUF_POWER_PER_WORD * bbuf_words,
            reg_wr: REG_BASE_POWER
                + REG_POWER_PER_EXTRA_ADT * extra_adts
                + if o.per_pe_control {
                    REG_POWER_PER_PE_CTRL
                } else {
                    0.0
                },
            acc: ACC_POWER_MW,
            mul: MUL_POWER_MW,
            adt: ADT_POWER_MW,
            mux: MUX_POWER_PER_EQ * mux_eq,
            sram: ASRAM_POWER * a_scale + BSRAM_POWER * b_scale,
        };

        let area = Components {
            ctrl: if o.per_pe_control {
                CTRL_AREA_PER_PE * pes
            } else {
                0.0
            } + if o.row_arbiter {
                ARB_AREA_PER_ROW * core.m0 as f64
            } else {
                0.0
            },
            shf: SHF_AREA_PER_STREAM * shuffled_streams,
            abuf: BUF_AREA_PER_WORD * abuf_words * if o.abuf_depth > 1 { 1.0 } else { 0.0 },
            bbuf: BUF_AREA_PER_WORD * bbuf_words,
            reg_wr: REG_BASE_AREA
                + REG_AREA_PER_EXTRA_ADT * extra_adts
                + if o.per_pe_control {
                    REG_AREA_PER_PE_CTRL
                } else {
                    0.0
                },
            acc: ACC_AREA,
            mul: MUL_AREA,
            adt: ADT_AREA_PER_TREE * o.adder_trees as f64,
            mux: MUX_AREA_PER_EQ * mux_eq,
            sram: SRAM_AREA_BASE + SRAM_AREA_BW_SLOPE * (a_scale - 1.0),
        };

        CostBreakdown { power, area }
    }

    /// The exact Table VII row for a named architecture, when published.
    pub fn calibrated(spec: &ArchSpec) -> Option<CostBreakdown> {
        let row = |p: [f64; 10], a: [f64; 10]| {
            Some(CostBreakdown {
                power: from_array(p),
                area: from_array(a),
            })
        };
        // Component order: ctrl, shf, abuf, bbuf, reg_wr, acc, mul, adt, mux, sram.
        match spec.kind {
            ArchKind::Dense => row(
                [0.0, 0.0, 0.0, 0.0, 22.8, 10.9, 62.6, 21.8, 0.0, 33.3],
                [0.0, 0.0, 0.0, 0.0, 3.2, 2.6, 29.0, 6.7, 0.0, 176.0],
            ),
            ArchKind::SparseB if spec.name == "Sparse.B*" => row(
                [0.0, 0.7, 7.5, 0.0, 41.0, 10.9, 55.4, 20.4, 3.5, 66.7],
                [0.0, 0.9, 2.0, 0.0, 4.0, 2.6, 33.0, 12.8, 6.5, 196.0],
            ),
            ArchKind::TclB => row(
                [0.0, 0.0, 4.3, 0.0, 24.3, 10.9, 85.9, 21.2, 4.8, 57.2],
                [0.0, 0.0, 0.9, 0.0, 3.4, 2.6, 34.0, 6.6, 6.3, 179.0],
            ),
            ArchKind::SparseA if spec.name == "Sparse.A*" => row(
                [1.2, 0.4, 4.5, 17.8, 23.2, 10.9, 67.2, 17.8, 1.5, 78.2],
                [0.7, 0.5, 0.9, 3.8, 3.8, 2.6, 34.0, 6.6, 3.5, 196.0],
            ),
            ArchKind::SparseAB if spec.name == "Sparse.AB*" => row(
                [18.2, 1.4, 15.3, 22.9, 64.5, 10.9, 31.7, 17.8, 7.0, 92.3],
                [8.1, 1.6, 11.5, 5.2, 6.0, 2.6, 29.0, 12.3, 17.5, 188.0],
            ),
            ArchKind::Griffin => row(
                [18.2, 1.4, 15.3, 22.9, 64.5, 10.9, 31.7, 17.8, 8.8, 92.3],
                [9.4, 1.6, 11.5, 5.2, 6.0, 2.6, 29.0, 12.3, 20.7, 188.0],
            ),
            ArchKind::TensorDash => row(
                [19.0, 0.0, 5.8, 23.4, 24.3, 10.9, 85.9, 21.2, 9.6, 84.1],
                [8.9, 0.0, 1.4, 5.8, 3.4, 2.6, 34.0, 6.6, 17.4, 196.0],
            ),
            ArchKind::SparTenAB | ArchKind::SparTenA | ArchKind::SparTenB => row(
                // SparTen's MUX power/area is folded into its buffers
                // ("inBUF" in Table VII).
                [133.0, 0.0, 213.0, 213.0, 7.5, 110.0, 133.0, 0.0, 0.0, 181.6],
                [227.0, 0.0, 320.0, 320.0, 0.7, 30.2, 41.0, 0.0, 0.0, 200.0],
            ),
            _ => None,
        }
    }

    /// Best available estimate: the calibrated row when published, the
    /// parametric model otherwise.
    pub fn estimate(spec: &ArchSpec, core: CoreDims, provision: Provision) -> CostBreakdown {
        Self::calibrated(spec).unwrap_or_else(|| Self::parametric(spec, core, provision))
    }
}

/// Activity ratios for re-scaling a breakdown measured at a design's
/// *home* workload to a different workload category.
///
/// Table VII is synthesized with home-category activity (e.g.
/// `Sparse.AB*` on `DNN.AB`): its SRAM power reflects the provisioned
/// streaming rate actually used, its control/mux/buffer power the
/// skipping work performed. Running the same silicon on another
/// category changes those activities — this is why Figure 8's dense
/// panel shows Griffin within ~29% of the baseline even though its
/// Table VII power is 1.9× higher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// Ratio of streamed bytes per second vs home (≈ speedup ratio).
    pub stream: f64,
    /// Ratio of skipping work vs home (≈ ineffectual-fraction ratio);
    /// 0 on fully dense inputs, 1 at home.
    pub sparse_logic: f64,
    /// Ratio of multiplier toggling vs home (≈ effectual-op utilization
    /// ratio, ≥ 1 when the same silicon runs denser inputs).
    pub compute: f64,
}

impl Activity {
    /// Home-category activity: the breakdown applies as published.
    pub fn home() -> Self {
        Activity {
            stream: 1.0,
            sparse_logic: 1.0,
            compute: 1.0,
        }
    }

    /// Derives ratios from measured speedups and multiplier
    /// utilizations (effectual ops per slot-cycle) on the target vs
    /// home categories.
    pub fn from_measurements(
        speedup_cat: f64,
        speedup_home: f64,
        util_cat: f64,
        util_home: f64,
    ) -> Self {
        Activity {
            stream: (speedup_cat / speedup_home).clamp(0.2, 2.0),
            // Skip-logic work vanishes as inputs approach density.
            sparse_logic: ((1.0 - util_cat).max(0.0) / (1.0 - util_home).max(0.05)).clamp(0.1, 1.5),
            compute: (util_cat / util_home.max(0.05)).clamp(0.5, 2.5),
        }
    }
}

impl CostModel {
    /// Re-scales a home-activity power breakdown to another workload's
    /// activity (extension; see EXPERIMENTS.md). Area is unchanged —
    /// silicon does not shrink with activity.
    pub fn scale_power_to_activity(cost: &CostBreakdown, act: Activity) -> CostBreakdown {
        let p = &cost.power;
        let dyn_frac = 0.85; // static (leakage) floor per component
        let scale = |v: f64, r: f64| v * ((1.0 - dyn_frac) + dyn_frac * r);
        let power = Components {
            ctrl: scale(p.ctrl, act.sparse_logic),
            shf: scale(p.shf, act.sparse_logic),
            abuf: scale(p.abuf, act.sparse_logic.max(0.4)), // still buffers the stream
            bbuf: scale(p.bbuf, act.sparse_logic.max(0.4)),
            reg_wr: scale(p.reg_wr, 0.5 + 0.5 * act.compute.min(1.0)),
            acc: p.acc,
            mul: scale(p.mul, act.compute).min(MUL_POWER_MW),
            adt: p.adt,
            mux: scale(p.mux, act.sparse_logic),
            sram: scale(p.sram, act.stream),
        };
        CostBreakdown {
            power,
            area: cost.area,
        }
    }
}

fn from_array(v: [f64; 10]) -> Components {
    Components {
        ctrl: v[0],
        shf: v[1],
        abuf: v[2],
        bbuf: v[3],
        reg_wr: v[4],
        acc: v[5],
        mul: v[6],
        adt: v[7],
        mux: v[8],
        sram: v[9],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreDims {
        CoreDims::PAPER
    }

    #[test]
    fn calibrated_totals_match_table_seven() {
        let cases = [
            (ArchSpec::dense(), 151.4, 217.5),
            (ArchSpec::sparse_b_star(), 206.1, 257.8),
            (ArchSpec::tcl_b(), 208.6, 232.8),
            (ArchSpec::sparse_a_star(), 223.4, 252.4),
            (ArchSpec::sparse_ab_star(), 282.0, 281.8),
            (ArchSpec::griffin(), 283.8, 286.4),
            (ArchSpec::tensordash(), 284.2, 276.1),
            (ArchSpec::sparten_ab(), 991.1, 1138.9),
        ];
        for (spec, power, area) in cases {
            let c = CostModel::calibrated(&spec).expect("published row");
            assert!(
                (c.power_mw() - power).abs() < 1.0,
                "{}: power {} vs {}",
                spec.name,
                c.power_mw(),
                power
            );
            assert!(
                (c.area.total() - area).abs() < 1.5,
                "{}: area {} vs {}",
                spec.name,
                c.area.total(),
                area
            );
        }
    }

    #[test]
    fn parametric_baseline_equals_calibrated_baseline() {
        let spec = ArchSpec::dense();
        let p = CostModel::parametric(&spec, core(), Provision::dense());
        let c = CostModel::calibrated(&spec).unwrap();
        assert!((p.power_mw() - c.power_mw()).abs() < 1.0);
        assert!((p.area.total() - c.area.total()).abs() < 2.0);
    }

    #[test]
    fn parametric_tracks_calibrated_for_star_designs() {
        // The parametric model should land within ~20% of the published
        // totals when given each design's home-category speedup.
        let cases = [
            (
                ArchSpec::sparse_b_star(),
                Provision {
                    speedup: 2.4,
                    b_stream_factor: 0.3,
                },
            ),
            (
                ArchSpec::sparse_a_star(),
                Provision {
                    speedup: 1.83,
                    b_stream_factor: 1.0,
                },
            ),
            (
                ArchSpec::sparse_ab_star(),
                Provision {
                    speedup: 3.9,
                    b_stream_factor: 0.3,
                },
            ),
        ];
        for (spec, prov) in cases {
            let p = CostModel::parametric(&spec, core(), prov);
            let c = CostModel::calibrated(&spec).unwrap();
            let rel = (p.power_mw() - c.power_mw()).abs() / c.power_mw();
            assert!(
                rel < 0.25,
                "{}: parametric {} vs calibrated {} (rel {rel:.2})",
                spec.name,
                p.power_mw(),
                c.power_mw()
            );
            let rel_a = (p.area.total() - c.area.total()).abs() / c.area.total();
            assert!(rel_a < 0.25, "{}: area rel {rel_a:.2}", spec.name);
        }
    }

    #[test]
    fn bigger_windows_cost_more() {
        use griffin_sim::window::BorrowWindow;
        let prov = Provision {
            speedup: 2.0,
            b_stream_factor: 0.3,
        };
        let small = CostModel::parametric(
            &ArchSpec::sparse_b(BorrowWindow::new(2, 0, 0), false),
            core(),
            prov,
        );
        let big = CostModel::parametric(
            &ArchSpec::sparse_b(BorrowWindow::new(8, 2, 2), false),
            core(),
            prov,
        );
        assert!(big.power_mw() > small.power_mw());
        assert!(big.area.total() > small.area.total());
    }

    #[test]
    fn speedup_provisioning_raises_sram_power() {
        let spec = ArchSpec::sparse_b_star();
        let lo = CostModel::parametric(
            &spec,
            core(),
            Provision {
                speedup: 1.5,
                b_stream_factor: 0.3,
            },
        );
        let hi = CostModel::parametric(
            &spec,
            core(),
            Provision {
                speedup: 4.0,
                b_stream_factor: 0.3,
            },
        );
        assert!(hi.power.sram > lo.power.sram);
        assert_eq!(hi.power.mux, lo.power.mux, "compute cost unaffected by BW");
    }

    #[test]
    fn estimate_prefers_calibrated() {
        let spec = ArchSpec::griffin();
        let est = CostModel::estimate(&spec, core(), Provision::dense());
        let cal = CostModel::calibrated(&spec).unwrap();
        assert_eq!(est, cal);
    }

    #[test]
    fn components_total_sums_everything() {
        let c = Components {
            ctrl: 1.0,
            shf: 2.0,
            abuf: 3.0,
            bbuf: 4.0,
            reg_wr: 5.0,
            acc: 6.0,
            mul: 7.0,
            adt: 8.0,
            mux: 9.0,
            sram: 10.0,
        };
        assert!((c.total() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn activity_scaling_recovers_figure8_dense_power() {
        // Griffin on dense inputs: no skipping work, baseline streaming,
        // full multiplier toggling. The paper's Figure 8(a) implies
        // ~213 mW (29% efficiency tax vs the 151 mW baseline).
        let cal = CostModel::calibrated(&ArchSpec::griffin()).unwrap();
        let act = Activity::from_measurements(1.0, 2.9, 1.0, 0.35);
        let dense = CostModel::scale_power_to_activity(&cal, act);
        assert!(
            (190.0..240.0).contains(&dense.power_mw()),
            "Griffin dense-activity power {} outside the Figure 8 band",
            dense.power_mw()
        );
        // Area is silicon: unchanged.
        assert_eq!(dense.area, cal.area);
    }

    #[test]
    fn home_activity_is_identity() {
        let cal = CostModel::calibrated(&ArchSpec::sparse_ab_star()).unwrap();
        let same = CostModel::scale_power_to_activity(&cal, Activity::home());
        assert!((same.power_mw() - cal.power_mw()).abs() < 1e-9);
    }

    #[test]
    fn sparten_is_dramatically_more_expensive() {
        let sp = CostModel::calibrated(&ArchSpec::sparten_ab()).unwrap();
        let g = CostModel::calibrated(&ArchSpec::griffin()).unwrap();
        assert!(sp.power_mw() > 3.0 * g.power_mw());
        assert!(sp.area_mm2() > 3.5 * g.area_mm2());
    }
}
