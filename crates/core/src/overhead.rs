//! Hardware-overhead closed forms (Table II and §IV-A).
//!
//! The cost of supporting sparsity on top of the dense core is carried
//! by five structures, each sized by the routing windows:
//!
//! * **ABUF** — the activation window buffer, shared by a row of PEs,
//! * **AMUX** — per-multiplier selectors picking the A operand,
//! * **BBUF** — the weight window buffer, shared by a column of PEs,
//! * **BMUX** — per-multiplier selectors picking the B operand,
//! * **ADT** — adder trees per PE (routing a product to a neighbouring
//!   accumulator needs an extra tree).
//!
//! The closed forms below reproduce every special-case row of Table II
//! and the `Sparse.AB` expressions of §IV-A, which the unit tests verify
//! literally.

use griffin_sim::window::BorrowWindow;
use griffin_tensor::compress::metadata_bits_for_fanin;

use crate::arch::{ArchKind, ArchSpec};

/// Sized hardware overhead of one architecture configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareOverhead {
    /// ABUF depth in words per lane (1 = dense double-buffering only).
    pub abuf_depth: usize,
    /// AMUX fan-in per multiplier.
    pub amux_fanin: usize,
    /// BBUF depth in words per lane (0 = no BBUF, preprocessed-B case).
    pub bbuf_depth: usize,
    /// BMUX fan-in per multiplier (1 = direct wire).
    pub bmux_fanin: usize,
    /// Adder trees per PE (1 = the dense tree only).
    pub adder_trees: usize,
    /// Whether each PE needs its own control/arbitration unit
    /// (dual-sparse architectures).
    pub per_pe_control: bool,
    /// Whether a global arbiter per PE row is needed (on-the-fly A
    /// skipping).
    pub row_arbiter: bool,
    /// Metadata bits stored per preprocessed B element (0 when B is not
    /// preprocessed).
    pub metadata_bits: u32,
}

impl HardwareOverhead {
    /// Overhead of the dense baseline: no buffers, muxes, or metadata.
    pub fn dense() -> Self {
        HardwareOverhead {
            abuf_depth: 1,
            amux_fanin: 1,
            bbuf_depth: 0,
            bmux_fanin: 1,
            adder_trees: 1,
            per_pe_control: false,
            row_arbiter: false,
            metadata_bits: 0,
        }
    }

    /// Table II, `Sparse.A(da1, da2, da3)` family:
    /// ABUF/BBUF depth `1 + da1`, AMUX `1 + da1·(1+da2)·(1+da3)`,
    /// BMUX `1 + da1·(1+da2)`, ADT `1 + da3`.
    pub fn sparse_a(w: BorrowWindow) -> Self {
        HardwareOverhead {
            abuf_depth: 1 + w.d1,
            amux_fanin: 1 + w.d1 * (1 + w.d2) * (1 + w.d3),
            bbuf_depth: 1 + w.d1,
            bmux_fanin: 1 + w.d1 * (1 + w.d2),
            adder_trees: 1 + w.d3,
            per_pe_control: false,
            row_arbiter: true,
            metadata_bits: 0,
        }
    }

    /// Table II, `Sparse.B(db1, db2, db3)` family: B is preprocessed so
    /// no BBUF/BMUX are needed; ABUF depth `1 + db1`,
    /// AMUX `1 + db1·(1+db2)`, ADT `1 + db3`. The stored metadata
    /// addresses the AMUX sources plus the `db3` routing choice.
    pub fn sparse_b(w: BorrowWindow) -> Self {
        let amux = 1 + w.d1 * (1 + w.d2);
        HardwareOverhead {
            abuf_depth: 1 + w.d1,
            amux_fanin: amux,
            bbuf_depth: 0,
            bmux_fanin: 1,
            adder_trees: 1 + w.d3,
            per_pe_control: false,
            row_arbiter: false,
            metadata_bits: metadata_bits_for_fanin(amux) + metadata_bits_for_fanin(1 + w.d3),
        }
    }

    /// §IV-A, `Sparse.AB(x,y,z,x',y',z')` with `(x,y,z) = (da1,da2,da3)`
    /// and `(x',y',z') = (db1,db2,db3)`:
    /// ABUF depth `L = (1+x)(1+x')`, BBUF depth `1+x'`,
    /// AMUX `1 + (L−1)(1+y+y')(1+z)`, BMUX `1 + x(1+y)`,
    /// ADT `(1+z)(1+z')`.
    pub fn sparse_ab(a: BorrowWindow, b: BorrowWindow) -> Self {
        let l = (1 + a.d1) * (1 + b.d1);
        HardwareOverhead {
            abuf_depth: l,
            amux_fanin: 1 + (l - 1) * (1 + a.d2 + b.d2) * (1 + a.d3),
            bbuf_depth: 1 + b.d1,
            bmux_fanin: 1 + a.d1 * (1 + a.d2),
            adder_trees: (1 + a.d3) * (1 + b.d3),
            per_pe_control: true,
            row_arbiter: false,
            // B's preprocessed displacement: (1+db1)(1+db2)(1+db3) choices.
            metadata_bits: metadata_bits_for_fanin((1 + b.d1) * (1 + b.d2) * (1 + b.d3)),
        }
    }

    /// Overhead of a named architecture. Griffin is sized by its
    /// dual-sparse configuration (the hardware it is built from), with
    /// the §IV-B additions (4-bit conf.B metadata, BMUX fan-in 5)
    /// accounted by [`HardwareOverhead::griffin`].
    pub fn for_spec(spec: &ArchSpec) -> Self {
        match spec.kind {
            ArchKind::Dense => Self::dense(),
            ArchKind::SparseA | ArchKind::Cnvlutin => Self::sparse_a(spec.a),
            ArchKind::SparseB | ArchKind::TclB | ArchKind::CambriconX => Self::sparse_b(spec.b),
            ArchKind::SparseAB | ArchKind::TensorDash => Self::sparse_ab(spec.a, spec.b),
            ArchKind::Griffin => Self::griffin(),
            // SparTen's cost does not follow the Table II formulas (it
            // has per-MAC buffers of depth 128 and no K-unrolling); its
            // calibrated Table VII row carries its cost. Structurally we
            // report its deep buffers here.
            ArchKind::SparTenA | ArchKind::SparTenB | ArchKind::SparTenAB => HardwareOverhead {
                abuf_depth: 128,
                amux_fanin: 1,
                bbuf_depth: 128,
                bmux_fanin: 1,
                adder_trees: 0,
                per_pe_control: true,
                row_arbiter: false,
                metadata_bits: 1,
            },
        }
    }

    /// Griffin's overhead: `Sparse.AB*` hardware plus the morphing
    /// additions of Table III — BMUX fan-in grows 3 → 5 (conf.A lane
    /// borrowing), metadata 3 b → 4 b (conf.B addresses all nine ABUF
    /// entries), one global arbiter per row (conf.A).
    pub fn griffin() -> Self {
        let base = Self::sparse_ab(BorrowWindow::new(2, 0, 0), BorrowWindow::new(2, 0, 1));
        HardwareOverhead {
            bmux_fanin: 5,
            metadata_bits: 4,
            row_arbiter: true,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(d1: usize, d2: usize, d3: usize) -> BorrowWindow {
        BorrowWindow::new(d1, d2, d3)
    }

    #[test]
    fn table2_sparse_a_time_only_row() {
        // Sparse.A(da1,0,0): ABUF 1+da1, AMUX 1+da1, BBUF 1+da1,
        // BMUX 1+da1, ADT 1.
        for da1 in 1..=8 {
            let o = HardwareOverhead::sparse_a(w(da1, 0, 0));
            assert_eq!(o.abuf_depth, 1 + da1);
            assert_eq!(o.amux_fanin, 1 + da1);
            assert_eq!(o.bbuf_depth, 1 + da1);
            assert_eq!(o.bmux_fanin, 1 + da1);
            assert_eq!(o.adder_trees, 1);
        }
    }

    #[test]
    fn table2_sparse_a_lane_row() {
        // Sparse.A(1,da2,0): ABUF 2, AMUX 2+da2, BBUF 2, BMUX 2+da2, ADT 1.
        for da2 in 1..=6 {
            let o = HardwareOverhead::sparse_a(w(1, da2, 0));
            assert_eq!(o.abuf_depth, 2);
            assert_eq!(o.amux_fanin, 2 + da2);
            assert_eq!(o.bbuf_depth, 2);
            assert_eq!(o.bmux_fanin, 2 + da2);
            assert_eq!(o.adder_trees, 1);
        }
    }

    #[test]
    fn table2_sparse_a_spatial_row() {
        // Sparse.A(1,0,da3): ABUF 2, AMUX 2+da3, BBUF 2, BMUX 2, ADT 1+da3.
        for da3 in 1..=4 {
            let o = HardwareOverhead::sparse_a(w(1, 0, da3));
            assert_eq!(o.abuf_depth, 2);
            assert_eq!(o.amux_fanin, 2 + da3);
            assert_eq!(o.bbuf_depth, 2);
            assert_eq!(o.bmux_fanin, 2);
            assert_eq!(o.adder_trees, 1 + da3);
        }
    }

    #[test]
    fn table2_sparse_b_rows() {
        // Sparse.B(db1,0,0): ABUF 1+db1, AMUX 1+db1, no BBUF/BMUX, ADT 1.
        let o = HardwareOverhead::sparse_b(w(4, 0, 0));
        assert_eq!(
            (
                o.abuf_depth,
                o.amux_fanin,
                o.bbuf_depth,
                o.bmux_fanin,
                o.adder_trees
            ),
            (5, 5, 0, 1, 1)
        );
        // Sparse.B(1,db2,0): ABUF 2, AMUX 2+db2, ADT 1.
        let o = HardwareOverhead::sparse_b(w(1, 3, 0));
        assert_eq!((o.abuf_depth, o.amux_fanin, o.adder_trees), (2, 5, 1));
        // Sparse.B(1,0,db3): ABUF 2, AMUX 2, ADT 1+db3.
        let o = HardwareOverhead::sparse_b(w(1, 0, 2));
        assert_eq!((o.abuf_depth, o.amux_fanin, o.adder_trees), (2, 2, 3));
    }

    #[test]
    fn sparse_ab_star_matches_section_4b() {
        // Sparse.AB(2,0,0,2,0,1): 9-entry ABUF, 3-entry BBUF, 9-input
        // AMUX, 3-input BMUX, one extra adder tree, 3-bit metadata.
        let o = HardwareOverhead::sparse_ab(w(2, 0, 0), w(2, 0, 1));
        assert_eq!(o.abuf_depth, 9);
        assert_eq!(o.bbuf_depth, 3);
        assert_eq!(o.amux_fanin, 9);
        assert_eq!(o.bmux_fanin, 3);
        assert_eq!(o.adder_trees, 2);
        assert_eq!(o.metadata_bits, 3);
        assert!(o.per_pe_control);
    }

    #[test]
    fn dual_da3_and_db3_need_four_adder_trees() {
        // §VI-C observation (2): both z and z' nonzero -> >= 4 trees.
        let o = HardwareOverhead::sparse_ab(w(1, 0, 1), w(1, 0, 1));
        assert_eq!(o.adder_trees, 4);
    }

    #[test]
    fn griffin_adds_table3_deltas() {
        let g = HardwareOverhead::griffin();
        let ab = HardwareOverhead::sparse_ab(w(2, 0, 0), w(2, 0, 1));
        assert_eq!(g.bmux_fanin, 5, "fan-in BMUX 3 -> 5 (Table III)");
        assert_eq!(g.metadata_bits, 4, "metadata 3b -> 4b (Table III)");
        assert!(g.row_arbiter, "one global arbiter per row (Table III)");
        assert_eq!(g.abuf_depth, ab.abuf_depth);
        assert_eq!(g.amux_fanin, ab.amux_fanin);
    }

    #[test]
    fn griffin_conf_b_metadata_is_4_bits() {
        // conf.B(8,0,1): AMUX fan-in 9 -> 4-bit metadata, matching
        // Figure 4(b)'s "4bits of metadata per element".
        let o = HardwareOverhead::sparse_b(w(8, 0, 1));
        assert_eq!(o.amux_fanin, 9);
        assert_eq!(metadata_bits_for_fanin(o.amux_fanin), 4);
    }

    #[test]
    fn upgrade_example_from_section_3() {
        // §III: upgrading Sparse.A(1,1,0) to Sparse.A(1,1,1) requires
        // twice larger AMUX fan-in and one extra adder tree per PE.
        let base = HardwareOverhead::sparse_a(w(1, 1, 0));
        let up = HardwareOverhead::sparse_a(w(1, 1, 1));
        assert_eq!(up.amux_fanin - 1, 2 * (base.amux_fanin - 1));
        assert_eq!(up.adder_trees, base.adder_trees + 1);
    }

    #[test]
    fn dense_overhead_is_empty() {
        let d = HardwareOverhead::dense();
        assert_eq!(d.amux_fanin, 1);
        assert_eq!(d.bmux_fanin, 1);
        assert_eq!(d.adder_trees, 1);
        assert_eq!(d.metadata_bits, 0);
    }
}
