//! Effective power and area efficiency (Definition V.1).
//!
//! `Effective TOPS/W  = sparsity speedup × dense TOPS/W`
//! `Effective TOPS/mm² = sparsity speedup × dense TOPS/mm²`
//!
//! where the dense rates are those of the *same* architecture instance
//! (its own power and area), and the speedup is the geometric mean over
//! the benchmark suite.

use griffin_tensor::shape::CoreDims;

use crate::cost::CostBreakdown;

/// The paper's clock target: 800 MHz.
pub const CLOCK_HZ: f64 = 800.0e6;

/// Peak dense throughput of a core in TOPS (two ops per MAC per cycle).
pub fn dense_tops(core: CoreDims) -> f64 {
    2.0 * core.macs() as f64 * CLOCK_HZ / 1e12
}

/// Power and area efficiency of one architecture on one workload
/// category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Effective TOPS per watt.
    pub tops_per_w: f64,
    /// Effective TOPS per mm².
    pub tops_per_mm2: f64,
}

impl Efficiency {
    /// Computes the efficiency of a design with the given cost running
    /// at the given speedup over the dense baseline.
    pub fn new(core: CoreDims, cost: &CostBreakdown, speedup: f64) -> Self {
        let tops = dense_tops(core);
        Efficiency {
            tops_per_w: speedup * tops / (cost.power_mw() / 1000.0),
            tops_per_mm2: speedup * tops / cost.area_mm2(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchSpec;
    use crate::cost::CostModel;

    #[test]
    fn paper_core_peaks_at_1_6_tops() {
        assert!((dense_tops(CoreDims::PAPER) - 1.6384).abs() < 1e-9);
    }

    #[test]
    fn baseline_efficiency_matches_table_vii_scale() {
        // Dense baseline: 151.4 mW, 217.5 kµm² -> ~10.8 TOPS/W and
        // ~7.5 TOPS/mm², the scale of Figure 8's axes.
        let cost = CostModel::calibrated(&ArchSpec::dense()).unwrap();
        let e = Efficiency::new(CoreDims::PAPER, &cost, 1.0);
        assert!(
            (e.tops_per_w - 10.82).abs() < 0.1,
            "tops/W {}",
            e.tops_per_w
        );
        assert!(
            (e.tops_per_mm2 - 7.53).abs() < 0.1,
            "tops/mm2 {}",
            e.tops_per_mm2
        );
    }

    #[test]
    fn speedup_scales_efficiency_linearly() {
        let cost = CostModel::calibrated(&ArchSpec::griffin()).unwrap();
        let e1 = Efficiency::new(CoreDims::PAPER, &cost, 1.0);
        let e4 = Efficiency::new(CoreDims::PAPER, &cost, 4.0);
        assert!((e4.tops_per_w / e1.tops_per_w - 4.0).abs() < 1e-9);
        assert!((e4.tops_per_mm2 / e1.tops_per_mm2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sparten_a_area_efficiency_is_low() {
        // §VI-B: SparTen.A has only 3.8 TOPS/mm² because just 8.5% of
        // its area is compute. Our calibrated SparTen row at ~2x speedup
        // lands in that neighbourhood.
        let cost = CostModel::calibrated(&ArchSpec::sparten_a()).unwrap();
        let e = Efficiency::new(CoreDims::PAPER, &cost, 2.0);
        assert!(e.tops_per_mm2 < 5.0, "tops/mm2 {}", e.tops_per_mm2);
    }
}
