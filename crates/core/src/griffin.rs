//! The Griffin hybrid architecture's morphing logic (§IV-B).
//!
//! Griffin is `Sparse.AB*(2,0,0,2,0,1,on)` hardware whose dual-sparsity
//! overheads are *re-purposed* when only one operand is sparse
//! (Figure 4):
//!
//! * `DNN.AB` (and dense): run as `Sparse.AB(2,0,0,2,0,1)` — conf.AB,
//! * `DNN.B`: morph to `Sparse.B(8,0,1)` — conf.B: all nine ABUF entries
//!   feed the AMUX directly from 4-bit metadata (the per-PE control
//!   logic is idle, only BBUF entry 0 is used),
//! * `DNN.A`: morph to `Sparse.A(2,1,1)` — conf.A: the three BBUF
//!   entries and the extra adder tree are reused, one global arbiter per
//!   PE row replaces the per-PE control, and BMUX fan-in grows 3 → 5.
//!
//! Without morphing, the same hardware would *downgrade* to
//! `Sparse.A(2,0,0)` / `Sparse.B(2,0,1)` (Table III) — the comparison
//! the `table3` bench reproduces.

use griffin_sim::config::SparsityMode;
use griffin_sim::window::BorrowWindow;

use crate::category::DnnCategory;

/// Griffin's configuration for `DNN.AB` and `DNN.dense` workloads.
pub fn conf_ab() -> SparsityMode {
    SparsityMode::SparseAB {
        a: BorrowWindow::new(2, 0, 0),
        b: BorrowWindow::new(2, 0, 1),
        shuffle: true,
    }
}

/// Griffin's configuration for `DNN.B` workloads: `Sparse.B(8,0,1,on)`.
pub fn conf_b() -> SparsityMode {
    SparsityMode::SparseB {
        win: BorrowWindow::new(8, 0, 1),
        shuffle: true,
    }
}

/// Griffin's configuration for `DNN.A` workloads: `Sparse.A(2,1,1,on)`.
pub fn conf_a() -> SparsityMode {
    SparsityMode::SparseA {
        win: BorrowWindow::new(2, 1, 1),
        shuffle: true,
    }
}

/// The mode Griffin morphs into for a workload category (Figure 4).
pub fn morph(category: DnnCategory) -> SparsityMode {
    match category {
        DnnCategory::Dense | DnnCategory::AB => conf_ab(),
        DnnCategory::B => conf_b(),
        DnnCategory::A => conf_a(),
    }
}

/// The mode the *non-hybrid* `Sparse.AB*` hardware downgrades to on
/// single-sparse workloads (Table III): `Sparse.A(2,0,0)` for `DNN.A`
/// and `Sparse.B(2,0,1)` for `DNN.B`.
pub fn downgrade(category: DnnCategory) -> SparsityMode {
    match category {
        DnnCategory::Dense | DnnCategory::AB => conf_ab(),
        DnnCategory::B => SparsityMode::SparseB {
            win: BorrowWindow::new(2, 0, 1),
            shuffle: true,
        },
        DnnCategory::A => SparsityMode::SparseA {
            win: BorrowWindow::new(2, 0, 0),
            shuffle: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_sim::window::EffectiveWindow;

    #[test]
    fn conf_ab_matches_table_six() {
        let SparsityMode::SparseAB { a, b, shuffle } = conf_ab() else {
            panic!("conf.AB must be dual sparse")
        };
        assert_eq!(a, BorrowWindow::new(2, 0, 0));
        assert_eq!(b, BorrowWindow::new(2, 0, 1));
        assert!(shuffle);
        // 9-entry ABUF per §IV-B.
        assert_eq!(EffectiveWindow::for_ab(a, b).depth, 9);
    }

    #[test]
    fn conf_b_reuses_the_nine_entry_abuf() {
        let SparsityMode::SparseB { win, .. } = conf_b() else {
            panic!("conf.B must be weight sparse")
        };
        // db1 = 8 -> 9 visible entries, exactly the dual-sparse ABUF.
        assert_eq!(EffectiveWindow::for_b(win).depth, 9);
        assert_eq!(win.d3, 1, "extra adder tree is reused");
    }

    #[test]
    fn conf_a_enables_lane_and_row_borrowing() {
        let SparsityMode::SparseA { win, .. } = conf_a() else {
            panic!("conf.A must be activation sparse")
        };
        assert_eq!(win, BorrowWindow::new(2, 1, 1));
    }

    #[test]
    fn downgrade_is_strictly_weaker_than_morph() {
        // The downgraded windows are subsets of the morphed ones.
        let SparsityMode::SparseB { win: down_b, .. } = downgrade(DnnCategory::B) else {
            panic!()
        };
        let SparsityMode::SparseB { win: morph_b, .. } = morph(DnnCategory::B) else {
            panic!()
        };
        assert!(down_b.d1 < morph_b.d1);

        let SparsityMode::SparseA { win: down_a, .. } = downgrade(DnnCategory::A) else {
            panic!()
        };
        let SparsityMode::SparseA { win: morph_a, .. } = morph(DnnCategory::A) else {
            panic!()
        };
        assert!(down_a.d2 < morph_a.d2);
        assert!(down_a.d3 < morph_a.d3);
    }
}
