//! Closed-form speedup model.
//!
//! The paper builds "an analytical model, verified by a simulator" (§I).
//! This module is our analytical counterpart: a closed-form estimate of
//! the expected speedup of a borrowing architecture from the operand
//! density and the window geometry, used to cross-check the simulator
//! (tests assert agreement within a documented tolerance) and to
//! pre-filter design sweeps cheaply.
//!
//! # Model
//!
//! Consider effectual-op density `p` (the product of operand densities
//! for dual sparsity) and a window with `C` candidate positions
//! (depth × lane taps × spatial taps). The naive independence argument
//! (`u = 1 − (1−p)^C`) badly overestimates utilization because window
//! candidates are *depleted* as neighbours consume them, so we use a
//! power-law surrogate fitted against the cycle-accurate simulator over
//! the paper's design space:
//!
//! `speedup ≈ clamp(0.8 · p^(−0.2) · C^0.3,  1,  1/p)`.
//!
//! The exponents are fitted constants (see the cross-check test); the
//! `1/p` ideal bound and monotonicity in `C` are structural. This
//! mirrors the paper's method — its analytical model is likewise
//! "verified by a simulator" (§I).

use griffin_sim::config::SparsityMode;
use griffin_sim::window::EffectiveWindow;

/// Closed-form speedup estimate for a mode on operands with the given
/// densities.
pub fn estimate_speedup(mode: SparsityMode, a_density: f64, b_density: f64) -> f64 {
    let (p, win) = match mode {
        SparsityMode::Dense => return 1.0,
        SparsityMode::SparseA { win, .. } => (a_density, EffectiveWindow::for_a(win)),
        SparsityMode::SparseB { win, .. } => (b_density, EffectiveWindow::for_b(win)),
        SparsityMode::SparseAB { a, b, .. } => {
            (a_density * b_density, EffectiveWindow::for_ab(a, b))
        }
        SparsityMode::SparTen { a_sparse, b_sparse } => {
            // Deep per-MAC buffers realize near-ideal intersection
            // speedup; imbalance is minor at network scale.
            let p = match (a_sparse, b_sparse) {
                (true, true) => a_density * b_density,
                (true, false) => a_density,
                (false, true) => b_density,
                (false, false) => 1.0,
            };
            return (1.0 / p.max(1e-3)).max(1.0) * 0.95;
        }
    };
    let p = p.clamp(1e-3, 1.0);
    let candidates = (win.depth * (1 + win.lane) * (1 + win.rows + win.cols)) as f64;
    (0.8 * p.powf(-0.2) * candidates.powf(0.3)).clamp(1.0, 1.0 / p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_sim::config::{SimConfig, SparsityMode};
    use griffin_sim::layer::GemmLayer;
    use griffin_sim::pipeline::simulate_layer;
    use griffin_sim::window::BorrowWindow;
    use griffin_tensor::shape::GemmShape;

    #[test]
    fn dense_mode_is_unit() {
        assert_eq!(estimate_speedup(SparsityMode::Dense, 0.5, 0.5), 1.0);
    }

    #[test]
    fn ideal_bound_is_respected() {
        let m = SparsityMode::SparseB {
            win: BorrowWindow::new(8, 2, 2),
            shuffle: true,
        };
        let s = estimate_speedup(m, 1.0, 0.25);
        assert!(s <= 4.0 + 1e-9);
        assert!(s > 2.0);
    }

    #[test]
    fn deeper_windows_estimate_higher() {
        let narrow = SparsityMode::SparseB {
            win: BorrowWindow::new(2, 0, 0),
            shuffle: true,
        };
        let wide = SparsityMode::SparseB {
            win: BorrowWindow::new(6, 0, 1),
            shuffle: true,
        };
        assert!(estimate_speedup(wide, 1.0, 0.2) > estimate_speedup(narrow, 1.0, 0.2));
    }

    #[test]
    fn analytic_tracks_simulator_within_tolerance() {
        // The paper's analytical model is "verified by a simulator"; we
        // hold ours to a 30% band across representative points.
        let shape = GemmShape::new(64, 768, 64).unwrap();
        let cfg = SimConfig::exact();
        let cases = [
            (
                SparsityMode::SparseB {
                    win: BorrowWindow::new(4, 0, 1),
                    shuffle: true,
                },
                1.0,
                0.2,
            ),
            (
                SparsityMode::SparseB {
                    win: BorrowWindow::new(2, 0, 0),
                    shuffle: true,
                },
                1.0,
                0.3,
            ),
            (
                SparsityMode::SparseA {
                    win: BorrowWindow::new(2, 1, 0),
                    shuffle: true,
                },
                0.5,
                1.0,
            ),
            (
                SparsityMode::SparseAB {
                    a: BorrowWindow::new(2, 0, 0),
                    b: BorrowWindow::new(2, 0, 1),
                    shuffle: true,
                },
                0.5,
                0.2,
            ),
        ];
        for (mode, da, db) in cases {
            let layer = GemmLayer::with_densities(shape, da, db, 99).unwrap();
            let sim = simulate_layer(&layer, mode, &cfg).speedup();
            let ana = estimate_speedup(mode, da, db);
            let rel = (ana - sim).abs() / sim;
            assert!(
                rel < 0.35,
                "{mode:?}: analytic {ana:.2} vs sim {sim:.2} (rel {rel:.2})"
            );
        }
    }

    #[test]
    fn dual_density_multiplies() {
        let m = SparsityMode::SparseAB {
            a: BorrowWindow::new(2, 0, 0),
            b: BorrowWindow::new(2, 0, 1),
            shuffle: true,
        };
        // 0.5 x 0.2 -> p = 0.1; ideal 10x, window-limited well below.
        let s = estimate_speedup(m, 0.5, 0.2);
        assert!(s > 3.0 && s <= 10.0, "estimate {s}");
    }
}
