//! Architecture specifications.
//!
//! An [`ArchSpec`] names a point in the paper's design space: a kind
//! (dense baseline, one of the three sparse families, the Griffin
//! hybrid, or a SOTA comparison architecture) plus its routing windows
//! and shuffle flag. Named constructors provide the paper's optimal
//! design points (Table VI) and the SOTA configurations (Table V).

use std::fmt;

use griffin_sim::config::SparsityMode;
use griffin_sim::window::BorrowWindow;

use crate::category::DnnCategory;

/// The architecture family of a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Optimized dense baseline (§II-A).
    Dense,
    /// Activation-only sparsity (`Sparse.A`, Definition III.1).
    SparseA,
    /// Weight-only sparsity (`Sparse.B`, Definition III.2).
    SparseB,
    /// Dual sparsity (`Sparse.AB`, Definition IV.1).
    SparseAB,
    /// The hybrid architecture (§IV-B) that morphs per category.
    Griffin,
    /// Bit-Tactical's weight-sparse design (`TCL.B`): time + lane
    /// routing, no shuffle, no output-channel routing.
    TclB,
    /// TensorDash (`TDash.AB`): dual sparsity with time + lane routing
    /// on both operands, no preprocessing benefits, no shuffle.
    TensorDash,
    /// One-sided SparTen optimized for activation sparsity.
    SparTenA,
    /// One-sided SparTen optimized for weight sparsity.
    SparTenB,
    /// Full dual-sparse SparTen.
    SparTenAB,
    /// Cnvlutin: activation-only, time routing, no shuffle.
    Cnvlutin,
    /// Cambricon-X: weight-only with a wide 16×16 routing window.
    CambriconX,
}

/// A concrete architecture configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArchSpec {
    /// Display name, e.g. `"Sparse.B*(4,0,1,on)"`.
    pub name: String,
    /// Architecture family.
    pub kind: ArchKind,
    /// A-side borrowing window (`(0,0,0)` when unused).
    pub a: BorrowWindow,
    /// B-side borrowing window (`(0,0,0)` when unused).
    pub b: BorrowWindow,
    /// Rotation-based shuffling (§III, "Load Balancing").
    pub shuffle: bool,
}

impl ArchSpec {
    /// The optimized dense baseline of §II-A.
    pub fn dense() -> Self {
        ArchSpec {
            name: "Baseline".into(),
            kind: ArchKind::Dense,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// An arbitrary `Sparse.A(da1,da2,da3)` design point.
    pub fn sparse_a(win: BorrowWindow, shuffle: bool) -> Self {
        ArchSpec {
            name: format!("Sparse.A{win}{}", on_off(shuffle)),
            kind: ArchKind::SparseA,
            a: win,
            b: BorrowWindow::ZERO,
            shuffle,
        }
    }

    /// An arbitrary `Sparse.B(db1,db2,db3)` design point.
    pub fn sparse_b(win: BorrowWindow, shuffle: bool) -> Self {
        ArchSpec {
            name: format!("Sparse.B{win}{}", on_off(shuffle)),
            kind: ArchKind::SparseB,
            a: BorrowWindow::ZERO,
            b: win,
            shuffle,
        }
    }

    /// An arbitrary `Sparse.AB(da1..da3, db1..db3)` design point.
    pub fn sparse_ab(a: BorrowWindow, b: BorrowWindow, shuffle: bool) -> Self {
        ArchSpec {
            name: format!("Sparse.AB{a}{b}{}", on_off(shuffle)),
            kind: ArchKind::SparseAB,
            a,
            b,
            shuffle,
        }
    }

    /// `Sparse.A* = Sparse.A(2,1,0,on)` — the paper's optimal
    /// activation-sparse design (Table VI).
    pub fn sparse_a_star() -> Self {
        let mut s = Self::sparse_a(BorrowWindow::new(2, 1, 0), true);
        s.name = "Sparse.A*".into();
        s
    }

    /// `Sparse.B* = Sparse.B(4,0,1,on)` — the paper's optimal
    /// weight-sparse design (Table VI).
    pub fn sparse_b_star() -> Self {
        let mut s = Self::sparse_b(BorrowWindow::new(4, 0, 1), true);
        s.name = "Sparse.B*".into();
        s
    }

    /// `Sparse.AB* = Sparse.AB(2,0,0,2,0,1,on)` — the paper's optimal
    /// dual-sparse design (Table VI).
    pub fn sparse_ab_star() -> Self {
        let mut s = Self::sparse_ab(BorrowWindow::new(2, 0, 0), BorrowWindow::new(2, 0, 1), true);
        s.name = "Sparse.AB*".into();
        s
    }

    /// The Griffin hybrid (§IV-B): `Sparse.AB*` hardware that morphs to
    /// `Sparse.B(8,0,1,on)` for `DNN.B` and `Sparse.A(2,1,1,on)` for
    /// `DNN.A` (Table VI, "conf.B" / "conf.A" / "conf.AB").
    pub fn griffin() -> Self {
        ArchSpec {
            name: "Griffin".into(),
            kind: ArchKind::Griffin,
            a: BorrowWindow::new(2, 0, 0),
            b: BorrowWindow::new(2, 0, 1),
            shuffle: true,
        }
    }

    /// Bit-Tactical (`TCL.B`), per Table V and §VII: static weight
    /// scheduling in time (`db1`) and lane (`db2`), `db3 = 0`, no
    /// shuffle. We use the TCLe configuration (lookahead 2, lookaside 5).
    pub fn tcl_b() -> Self {
        ArchSpec {
            name: "TCL.B".into(),
            kind: ArchKind::TclB,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::new(2, 5, 0),
            shuffle: false,
        }
    }

    /// TensorDash (`TDash.AB`), per Table V: dual sparsity routed in
    /// time and lane on both operands (4-input sparse interconnect:
    /// lookahead 1, lookaside 2), no preprocessing, no shuffle.
    pub fn tensordash() -> Self {
        ArchSpec {
            name: "TDash.AB".into(),
            kind: ArchKind::TensorDash,
            a: BorrowWindow::new(1, 2, 0),
            b: BorrowWindow::new(1, 2, 0),
            shuffle: false,
        }
    }

    /// SparTen optimized for activation sparsity only.
    pub fn sparten_a() -> Self {
        ArchSpec {
            name: "SparTen.A".into(),
            kind: ArchKind::SparTenA,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// SparTen optimized for weight sparsity only.
    pub fn sparten_b() -> Self {
        ArchSpec {
            name: "SparTen.B".into(),
            kind: ArchKind::SparTenB,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// Full dual-sparse SparTen.
    pub fn sparten_ab() -> Self {
        ArchSpec {
            name: "SparTen.AB".into(),
            kind: ArchKind::SparTenAB,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// Cnvlutin (§VII): activation-only compression in time, modelled
    /// as a deep time-only window without shuffling.
    pub fn cnvlutin() -> Self {
        ArchSpec {
            name: "Cnvlutin".into(),
            kind: ArchKind::Cnvlutin,
            a: BorrowWindow::new(8, 0, 0),
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// Cambricon-X (§VII): weight-only routing with a 16×16 window
    /// (time 16, lane 16), whose crossbar cost makes it uncompetitive.
    pub fn cambricon_x() -> Self {
        ArchSpec {
            name: "Cambricon-X".into(),
            kind: ArchKind::CambriconX,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::new(16, 15, 0),
            shuffle: false,
        }
    }

    /// The eight architectures compared in Table VII / Figure 8, in the
    /// paper's order of increasing power efficiency.
    pub fn table7_lineup() -> Vec<ArchSpec> {
        vec![
            Self::dense(),
            Self::sparse_b_star(),
            Self::tcl_b(),
            Self::sparse_a_star(),
            Self::sparse_ab_star(),
            Self::griffin(),
            Self::tensordash(),
            Self::sparten_ab(),
        ]
    }

    /// The workload category this design is optimized for — the one its
    /// published Table VII power was synthesized under.
    pub fn home_category(&self) -> DnnCategory {
        match self.kind {
            ArchKind::Dense => DnnCategory::Dense,
            ArchKind::SparseB | ArchKind::TclB | ArchKind::CambriconX | ArchKind::SparTenB => {
                DnnCategory::B
            }
            ArchKind::SparseA | ArchKind::Cnvlutin | ArchKind::SparTenA => DnnCategory::A,
            ArchKind::SparseAB | ArchKind::Griffin | ArchKind::TensorDash | ArchKind::SparTenAB => {
                DnnCategory::AB
            }
        }
    }

    /// The sparsity-exploitation mode this architecture uses when
    /// running a workload of the given category. Only Griffin morphs;
    /// every other design runs its single fixed mode.
    pub fn mode_for(&self, category: DnnCategory) -> SparsityMode {
        match self.kind {
            ArchKind::Dense => SparsityMode::Dense,
            ArchKind::SparseA | ArchKind::Cnvlutin => SparsityMode::SparseA {
                win: self.a,
                shuffle: self.shuffle,
            },
            ArchKind::SparseB | ArchKind::TclB | ArchKind::CambriconX => SparsityMode::SparseB {
                win: self.b,
                shuffle: self.shuffle,
            },
            ArchKind::SparseAB | ArchKind::TensorDash => SparsityMode::SparseAB {
                a: self.a,
                b: self.b,
                shuffle: self.shuffle,
            },
            ArchKind::Griffin => crate::griffin::morph(category),
            ArchKind::SparTenA => SparsityMode::SparTen {
                a_sparse: true,
                b_sparse: false,
            },
            ArchKind::SparTenB => SparsityMode::SparTen {
                a_sparse: false,
                b_sparse: true,
            },
            ArchKind::SparTenAB => SparsityMode::SparTen {
                a_sparse: true,
                b_sparse: true,
            },
        }
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

fn on_off(shuffle: bool) -> &'static str {
    if shuffle {
        ",on"
    } else {
        ",off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_points_match_table_six() {
        let a = ArchSpec::sparse_a_star();
        assert_eq!(a.a, BorrowWindow::new(2, 1, 0));
        assert!(a.shuffle);
        let b = ArchSpec::sparse_b_star();
        assert_eq!(b.b, BorrowWindow::new(4, 0, 1));
        let ab = ArchSpec::sparse_ab_star();
        assert_eq!(ab.a, BorrowWindow::new(2, 0, 0));
        assert_eq!(ab.b, BorrowWindow::new(2, 0, 1));
    }

    #[test]
    fn griffin_morphs_per_category() {
        let g = ArchSpec::griffin();
        let dense = g.mode_for(DnnCategory::Dense);
        let a = g.mode_for(DnnCategory::A);
        let b = g.mode_for(DnnCategory::B);
        let ab = g.mode_for(DnnCategory::AB);
        assert!(matches!(a, SparsityMode::SparseA { .. }));
        assert!(matches!(b, SparsityMode::SparseB { .. }));
        assert!(matches!(ab, SparsityMode::SparseAB { .. }));
        assert_eq!(dense, ab, "Griffin runs conf.AB for dense models");
    }

    #[test]
    fn fixed_archs_do_not_morph() {
        let b = ArchSpec::sparse_b_star();
        for c in DnnCategory::ALL {
            assert!(matches!(b.mode_for(c), SparsityMode::SparseB { .. }));
        }
    }

    #[test]
    fn sparten_modes() {
        assert_eq!(
            ArchSpec::sparten_ab().mode_for(DnnCategory::Dense),
            SparsityMode::SparTen {
                a_sparse: true,
                b_sparse: true
            }
        );
        assert_eq!(
            ArchSpec::sparten_b().mode_for(DnnCategory::B),
            SparsityMode::SparTen {
                a_sparse: false,
                b_sparse: true
            }
        );
    }

    #[test]
    fn lineup_has_eight_entries() {
        assert_eq!(ArchSpec::table7_lineup().len(), 8);
    }

    #[test]
    fn names_are_readable() {
        assert_eq!(
            ArchSpec::sparse_b(BorrowWindow::new(4, 0, 1), true).name,
            "Sparse.B(4,0,1),on"
        );
        assert_eq!(ArchSpec::griffin().to_string(), "Griffin");
    }
}
