//! Architecture specifications.
//!
//! An [`ArchSpec`] names a point in the paper's design space: a kind
//! (dense baseline, one of the three sparse families, the Griffin
//! hybrid, or a SOTA comparison architecture) plus its routing windows
//! and shuffle flag. Named constructors provide the paper's optimal
//! design points (Table VI) and the SOTA configurations (Table V).

use std::fmt;

use griffin_sim::config::SparsityMode;
use griffin_sim::window::BorrowWindow;

use crate::category::DnnCategory;

/// Largest borrowing distance the validated [`ArchSpecBuilder`] accepts
/// per window dimension — far beyond anything the cost model can price,
/// so it only rejects nonsense (a typoed `400` for `4,0,0`).
pub const MAX_BORROW_DISTANCE: usize = 64;

/// The architecture family of a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Optimized dense baseline (§II-A).
    Dense,
    /// Activation-only sparsity (`Sparse.A`, Definition III.1).
    SparseA,
    /// Weight-only sparsity (`Sparse.B`, Definition III.2).
    SparseB,
    /// Dual sparsity (`Sparse.AB`, Definition IV.1).
    SparseAB,
    /// The hybrid architecture (§IV-B) that morphs per category.
    Griffin,
    /// Bit-Tactical's weight-sparse design (`TCL.B`): time + lane
    /// routing, no shuffle, no output-channel routing.
    TclB,
    /// TensorDash (`TDash.AB`): dual sparsity with time + lane routing
    /// on both operands, no preprocessing benefits, no shuffle.
    TensorDash,
    /// One-sided SparTen optimized for activation sparsity.
    SparTenA,
    /// One-sided SparTen optimized for weight sparsity.
    SparTenB,
    /// Full dual-sparse SparTen.
    SparTenAB,
    /// Cnvlutin: activation-only, time routing, no shuffle.
    Cnvlutin,
    /// Cambricon-X: weight-only with a wide 16×16 routing window.
    CambriconX,
}

impl ArchKind {
    /// Every kind, in declaration order.
    pub const ALL: [ArchKind; 12] = [
        ArchKind::Dense,
        ArchKind::SparseA,
        ArchKind::SparseB,
        ArchKind::SparseAB,
        ArchKind::Griffin,
        ArchKind::TclB,
        ArchKind::TensorDash,
        ArchKind::SparTenA,
        ArchKind::SparTenB,
        ArchKind::SparTenAB,
        ArchKind::Cnvlutin,
        ArchKind::CambriconX,
    ];

    /// The stable text token of this kind — what scenario files and the
    /// canonical serialized form spell (`kind = "sparse.b"`).
    pub fn token(&self) -> &'static str {
        match self {
            ArchKind::Dense => "dense",
            ArchKind::SparseA => "sparse.a",
            ArchKind::SparseB => "sparse.b",
            ArchKind::SparseAB => "sparse.ab",
            ArchKind::Griffin => "griffin",
            ArchKind::TclB => "tcl.b",
            ArchKind::TensorDash => "tensordash",
            ArchKind::SparTenA => "sparten.a",
            ArchKind::SparTenB => "sparten.b",
            ArchKind::SparTenAB => "sparten.ab",
            ArchKind::Cnvlutin => "cnvlutin",
            ArchKind::CambriconX => "cambricon-x",
        }
    }

    /// Parses a [`ArchKind::token`] (ASCII case-insensitive).
    pub fn from_token(s: &str) -> Option<ArchKind> {
        let lower = s.to_ascii_lowercase();
        ArchKind::ALL.into_iter().find(|k| k.token() == lower)
    }

    /// Whether this kind routes (borrows) on the A operand side.
    pub fn routes_a(&self) -> bool {
        matches!(
            self,
            ArchKind::SparseA
                | ArchKind::SparseAB
                | ArchKind::Griffin
                | ArchKind::TensorDash
                | ArchKind::Cnvlutin
        )
    }

    /// Whether this kind routes (borrows) on the B operand side.
    pub fn routes_b(&self) -> bool {
        matches!(
            self,
            ArchKind::SparseB
                | ArchKind::SparseAB
                | ArchKind::Griffin
                | ArchKind::TclB
                | ArchKind::TensorDash
                | ArchKind::CambriconX
        )
    }

    /// Whether this kind has a shuffle network at all (dense and the
    /// SparTen points ignore the flag, so setting it is a config error).
    pub fn shuffles(&self) -> bool {
        !matches!(
            self,
            ArchKind::Dense | ArchKind::SparTenA | ArchKind::SparTenB | ArchKind::SparTenAB
        )
    }
}

/// Why [`ArchSpecBuilder::build`] (or [`ArchSpec::from_canonical`])
/// refused to produce a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A borrowing distance exceeds [`MAX_BORROW_DISTANCE`].
    WindowOutOfRange {
        /// Operand side (`'a'` or `'b'`).
        side: char,
        /// The offending window.
        win: BorrowWindow,
    },
    /// A nonzero window was given for an operand side this kind never
    /// routes (e.g. a B window on `Sparse.A`).
    UnusedWindow {
        /// The kind being built.
        kind: ArchKind,
        /// Operand side (`'a'` or `'b'`).
        side: char,
    },
    /// Shuffle requested on a kind without a shuffle network.
    UnusedShuffle {
        /// The kind being built.
        kind: ArchKind,
    },
    /// The display name is empty or whitespace.
    EmptyName,
    /// [`ArchSpec::from_canonical`] input did not match the grammar.
    BadCanonical(String),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::WindowOutOfRange { side, win } => write!(
                f,
                "window {side}={win} out of range (each distance must be <= {MAX_BORROW_DISTANCE})"
            ),
            ArchError::UnusedWindow { kind, side } => write!(
                f,
                "kind `{}` does not route the {side} side; its {side} window must be (0,0,0)",
                kind.token()
            ),
            ArchError::UnusedShuffle { kind } => write!(
                f,
                "kind `{}` has no shuffle network; drop `shuffle`",
                kind.token()
            ),
            ArchError::EmptyName => write!(f, "architecture name must not be empty"),
            ArchError::BadCanonical(s) => write!(f, "bad canonical arch form `{s}`"),
        }
    }
}

impl std::error::Error for ArchError {}

/// Validated construction of arbitrary [`ArchSpec`]s — the open-ended
/// counterpart of the named preset constructors, used by scenario files
/// to define design points the paper never named.
#[derive(Debug, Clone)]
pub struct ArchSpecBuilder {
    kind: ArchKind,
    a: BorrowWindow,
    b: BorrowWindow,
    shuffle: bool,
    name: Option<String>,
}

impl ArchSpecBuilder {
    /// Sets the A-side borrowing window.
    pub fn a(mut self, w: BorrowWindow) -> Self {
        self.a = w;
        self
    }

    /// Sets the B-side borrowing window.
    pub fn b(mut self, w: BorrowWindow) -> Self {
        self.b = w;
        self
    }

    /// Sets the shuffle flag.
    pub fn shuffle(mut self, on: bool) -> Self {
        self.shuffle = on;
        self
    }

    /// Overrides the display name (the default is the canonical name of
    /// the kind and windows). Note the cost model keys its calibrated
    /// Table VII rows on names — a custom name gets parametric pricing.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// [`ArchError`] on out-of-range windows, windows on an unrouted
    /// side, shuffle on a shuffle-less kind, or an empty name.
    pub fn build(self) -> Result<ArchSpec, ArchError> {
        for (side, win, routed) in [
            ('a', self.a, self.kind.routes_a()),
            ('b', self.b, self.kind.routes_b()),
        ] {
            if win.d1 > MAX_BORROW_DISTANCE
                || win.d2 > MAX_BORROW_DISTANCE
                || win.d3 > MAX_BORROW_DISTANCE
            {
                return Err(ArchError::WindowOutOfRange { side, win });
            }
            if !routed && !win.is_zero() {
                return Err(ArchError::UnusedWindow {
                    kind: self.kind,
                    side,
                });
            }
        }
        if self.shuffle && !self.kind.shuffles() {
            return Err(ArchError::UnusedShuffle { kind: self.kind });
        }
        let name = match self.name {
            Some(n) if n.trim().is_empty() => return Err(ArchError::EmptyName),
            Some(n) => n,
            None => default_name(self.kind, self.a, self.b, self.shuffle),
        };
        Ok(ArchSpec {
            name,
            kind: self.kind,
            a: self.a,
            b: self.b,
            shuffle: self.shuffle,
        })
    }
}

/// The default display name for a kind + window combination — identical
/// to what the named constructors produce for the parametric families.
fn default_name(kind: ArchKind, a: BorrowWindow, b: BorrowWindow, shuffle: bool) -> String {
    match kind {
        ArchKind::Dense => "Baseline".into(),
        ArchKind::SparseA => format!("Sparse.A{a}{}", on_off(shuffle)),
        ArchKind::SparseB => format!("Sparse.B{b}{}", on_off(shuffle)),
        ArchKind::SparseAB => format!("Sparse.AB{a}{b}{}", on_off(shuffle)),
        ArchKind::Griffin => "Griffin".into(),
        ArchKind::TclB => "TCL.B".into(),
        ArchKind::TensorDash => "TDash.AB".into(),
        ArchKind::SparTenA => "SparTen.A".into(),
        ArchKind::SparTenB => "SparTen.B".into(),
        ArchKind::SparTenAB => "SparTen.AB".into(),
        ArchKind::Cnvlutin => "Cnvlutin".into(),
        ArchKind::CambriconX => "Cambricon-X".into(),
    }
}

/// A concrete architecture configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArchSpec {
    /// Display name, e.g. `"Sparse.B*(4,0,1,on)"`.
    pub name: String,
    /// Architecture family.
    pub kind: ArchKind,
    /// A-side borrowing window (`(0,0,0)` when unused).
    pub a: BorrowWindow,
    /// B-side borrowing window (`(0,0,0)` when unused).
    pub b: BorrowWindow,
    /// Rotation-based shuffling (§III, "Load Balancing").
    pub shuffle: bool,
}

impl ArchSpec {
    /// A validated builder for an arbitrary design point of `kind`
    /// (windows default to zero, shuffle off, name auto-generated).
    pub fn builder(kind: ArchKind) -> ArchSpecBuilder {
        ArchSpecBuilder {
            kind,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
            name: None,
        }
    }

    /// The canonical serialized form: one line that losslessly encodes
    /// every field, e.g.
    /// `sparse.b a=(0,0,0) b=(4,0,1) shuffle=on name=Sparse.B*`.
    /// [`ArchSpec::from_canonical`] inverts it exactly.
    pub fn canonical(&self) -> String {
        format!(
            "{} a={} b={} shuffle={} name={}",
            self.kind.token(),
            self.a,
            self.b,
            on_off_word(self.shuffle),
            self.name
        )
    }

    /// Parses the [`ArchSpec::canonical`] form, re-validating through
    /// the builder.
    ///
    /// # Errors
    ///
    /// [`ArchError::BadCanonical`] on grammar violations, plus every
    /// builder validation error.
    pub fn from_canonical(s: &str) -> Result<ArchSpec, ArchError> {
        let bad = || ArchError::BadCanonical(s.to_string());
        let mut rest = s.trim();
        let (kind_tok, tail) = rest.split_once(' ').ok_or_else(bad)?;
        let kind = ArchKind::from_token(kind_tok).ok_or_else(bad)?;
        rest = tail.trim_start();
        let mut take = |prefix: &str| -> Result<String, ArchError> {
            rest = rest.strip_prefix(prefix).ok_or_else(bad)?;
            let (tok, tail) = rest.split_once(' ').ok_or_else(bad)?;
            let tok = tok.to_string();
            rest = tail.trim_start();
            Ok(tok)
        };
        let a = parse_window(&take("a=")?).ok_or_else(bad)?;
        let b = parse_window(&take("b=")?).ok_or_else(bad)?;
        let shuffle = match take("shuffle=")?.as_str() {
            "on" => true,
            "off" => false,
            _ => return Err(bad()),
        };
        let name = rest.strip_prefix("name=").ok_or_else(bad)?;
        ArchSpec::builder(kind)
            .a(a)
            .b(b)
            .shuffle(shuffle)
            .name(name)
            .build()
    }

    /// The optimized dense baseline of §II-A.
    pub fn dense() -> Self {
        ArchSpec {
            name: "Baseline".into(),
            kind: ArchKind::Dense,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// An arbitrary `Sparse.A(da1,da2,da3)` design point.
    pub fn sparse_a(win: BorrowWindow, shuffle: bool) -> Self {
        ArchSpec {
            name: format!("Sparse.A{win}{}", on_off(shuffle)),
            kind: ArchKind::SparseA,
            a: win,
            b: BorrowWindow::ZERO,
            shuffle,
        }
    }

    /// An arbitrary `Sparse.B(db1,db2,db3)` design point.
    pub fn sparse_b(win: BorrowWindow, shuffle: bool) -> Self {
        ArchSpec {
            name: format!("Sparse.B{win}{}", on_off(shuffle)),
            kind: ArchKind::SparseB,
            a: BorrowWindow::ZERO,
            b: win,
            shuffle,
        }
    }

    /// An arbitrary `Sparse.AB(da1..da3, db1..db3)` design point.
    pub fn sparse_ab(a: BorrowWindow, b: BorrowWindow, shuffle: bool) -> Self {
        ArchSpec {
            name: format!("Sparse.AB{a}{b}{}", on_off(shuffle)),
            kind: ArchKind::SparseAB,
            a,
            b,
            shuffle,
        }
    }

    /// `Sparse.A* = Sparse.A(2,1,0,on)` — the paper's optimal
    /// activation-sparse design (Table VI).
    pub fn sparse_a_star() -> Self {
        let mut s = Self::sparse_a(BorrowWindow::new(2, 1, 0), true);
        s.name = "Sparse.A*".into();
        s
    }

    /// `Sparse.B* = Sparse.B(4,0,1,on)` — the paper's optimal
    /// weight-sparse design (Table VI).
    pub fn sparse_b_star() -> Self {
        let mut s = Self::sparse_b(BorrowWindow::new(4, 0, 1), true);
        s.name = "Sparse.B*".into();
        s
    }

    /// `Sparse.AB* = Sparse.AB(2,0,0,2,0,1,on)` — the paper's optimal
    /// dual-sparse design (Table VI).
    pub fn sparse_ab_star() -> Self {
        let mut s = Self::sparse_ab(BorrowWindow::new(2, 0, 0), BorrowWindow::new(2, 0, 1), true);
        s.name = "Sparse.AB*".into();
        s
    }

    /// The Griffin hybrid (§IV-B): `Sparse.AB*` hardware that morphs to
    /// `Sparse.B(8,0,1,on)` for `DNN.B` and `Sparse.A(2,1,1,on)` for
    /// `DNN.A` (Table VI, "conf.B" / "conf.A" / "conf.AB").
    pub fn griffin() -> Self {
        ArchSpec {
            name: "Griffin".into(),
            kind: ArchKind::Griffin,
            a: BorrowWindow::new(2, 0, 0),
            b: BorrowWindow::new(2, 0, 1),
            shuffle: true,
        }
    }

    /// Bit-Tactical (`TCL.B`), per Table V and §VII: static weight
    /// scheduling in time (`db1`) and lane (`db2`), `db3 = 0`, no
    /// shuffle. We use the TCLe configuration (lookahead 2, lookaside 5).
    pub fn tcl_b() -> Self {
        ArchSpec {
            name: "TCL.B".into(),
            kind: ArchKind::TclB,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::new(2, 5, 0),
            shuffle: false,
        }
    }

    /// TensorDash (`TDash.AB`), per Table V: dual sparsity routed in
    /// time and lane on both operands (4-input sparse interconnect:
    /// lookahead 1, lookaside 2), no preprocessing, no shuffle.
    pub fn tensordash() -> Self {
        ArchSpec {
            name: "TDash.AB".into(),
            kind: ArchKind::TensorDash,
            a: BorrowWindow::new(1, 2, 0),
            b: BorrowWindow::new(1, 2, 0),
            shuffle: false,
        }
    }

    /// SparTen optimized for activation sparsity only.
    pub fn sparten_a() -> Self {
        ArchSpec {
            name: "SparTen.A".into(),
            kind: ArchKind::SparTenA,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// SparTen optimized for weight sparsity only.
    pub fn sparten_b() -> Self {
        ArchSpec {
            name: "SparTen.B".into(),
            kind: ArchKind::SparTenB,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// Full dual-sparse SparTen.
    pub fn sparten_ab() -> Self {
        ArchSpec {
            name: "SparTen.AB".into(),
            kind: ArchKind::SparTenAB,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// Cnvlutin (§VII): activation-only compression in time, modelled
    /// as a deep time-only window without shuffling.
    pub fn cnvlutin() -> Self {
        ArchSpec {
            name: "Cnvlutin".into(),
            kind: ArchKind::Cnvlutin,
            a: BorrowWindow::new(8, 0, 0),
            b: BorrowWindow::ZERO,
            shuffle: false,
        }
    }

    /// Cambricon-X (§VII): weight-only routing with a 16×16 window
    /// (time 16, lane 16), whose crossbar cost makes it uncompetitive.
    pub fn cambricon_x() -> Self {
        ArchSpec {
            name: "Cambricon-X".into(),
            kind: ArchKind::CambriconX,
            a: BorrowWindow::ZERO,
            b: BorrowWindow::new(16, 15, 0),
            shuffle: false,
        }
    }

    /// The eight architectures compared in Table VII / Figure 8, in the
    /// paper's order of increasing power efficiency.
    pub fn table7_lineup() -> Vec<ArchSpec> {
        vec![
            Self::dense(),
            Self::sparse_b_star(),
            Self::tcl_b(),
            Self::sparse_a_star(),
            Self::sparse_ab_star(),
            Self::griffin(),
            Self::tensordash(),
            Self::sparten_ab(),
        ]
    }

    /// The workload category this design is optimized for — the one its
    /// published Table VII power was synthesized under.
    pub fn home_category(&self) -> DnnCategory {
        match self.kind {
            ArchKind::Dense => DnnCategory::Dense,
            ArchKind::SparseB | ArchKind::TclB | ArchKind::CambriconX | ArchKind::SparTenB => {
                DnnCategory::B
            }
            ArchKind::SparseA | ArchKind::Cnvlutin | ArchKind::SparTenA => DnnCategory::A,
            ArchKind::SparseAB | ArchKind::Griffin | ArchKind::TensorDash | ArchKind::SparTenAB => {
                DnnCategory::AB
            }
        }
    }

    /// The sparsity-exploitation mode this architecture uses when
    /// running a workload of the given category. Only Griffin morphs;
    /// every other design runs its single fixed mode.
    pub fn mode_for(&self, category: DnnCategory) -> SparsityMode {
        match self.kind {
            ArchKind::Dense => SparsityMode::Dense,
            ArchKind::SparseA | ArchKind::Cnvlutin => SparsityMode::SparseA {
                win: self.a,
                shuffle: self.shuffle,
            },
            ArchKind::SparseB | ArchKind::TclB | ArchKind::CambriconX => SparsityMode::SparseB {
                win: self.b,
                shuffle: self.shuffle,
            },
            ArchKind::SparseAB | ArchKind::TensorDash => SparsityMode::SparseAB {
                a: self.a,
                b: self.b,
                shuffle: self.shuffle,
            },
            ArchKind::Griffin => crate::griffin::morph(category),
            ArchKind::SparTenA => SparsityMode::SparTen {
                a_sparse: true,
                b_sparse: false,
            },
            ArchKind::SparTenB => SparsityMode::SparTen {
                a_sparse: false,
                b_sparse: true,
            },
            ArchKind::SparTenAB => SparsityMode::SparTen {
                a_sparse: true,
                b_sparse: true,
            },
        }
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

fn on_off(shuffle: bool) -> &'static str {
    if shuffle {
        ",on"
    } else {
        ",off"
    }
}

fn on_off_word(shuffle: bool) -> &'static str {
    if shuffle {
        "on"
    } else {
        "off"
    }
}

/// Parses the `(d1,d2,d3)` form [`BorrowWindow`]'s `Display` writes.
fn parse_window(s: &str) -> Option<BorrowWindow> {
    let inner = s.strip_prefix('(')?.strip_suffix(')')?;
    let mut it = inner.split(',');
    let d1 = it.next()?.trim().parse().ok()?;
    let d2 = it.next()?.trim().parse().ok()?;
    let d3 = it.next()?.trim().parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(BorrowWindow::new(d1, d2, d3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_points_match_table_six() {
        let a = ArchSpec::sparse_a_star();
        assert_eq!(a.a, BorrowWindow::new(2, 1, 0));
        assert!(a.shuffle);
        let b = ArchSpec::sparse_b_star();
        assert_eq!(b.b, BorrowWindow::new(4, 0, 1));
        let ab = ArchSpec::sparse_ab_star();
        assert_eq!(ab.a, BorrowWindow::new(2, 0, 0));
        assert_eq!(ab.b, BorrowWindow::new(2, 0, 1));
    }

    #[test]
    fn griffin_morphs_per_category() {
        let g = ArchSpec::griffin();
        let dense = g.mode_for(DnnCategory::Dense);
        let a = g.mode_for(DnnCategory::A);
        let b = g.mode_for(DnnCategory::B);
        let ab = g.mode_for(DnnCategory::AB);
        assert!(matches!(a, SparsityMode::SparseA { .. }));
        assert!(matches!(b, SparsityMode::SparseB { .. }));
        assert!(matches!(ab, SparsityMode::SparseAB { .. }));
        assert_eq!(dense, ab, "Griffin runs conf.AB for dense models");
    }

    #[test]
    fn fixed_archs_do_not_morph() {
        let b = ArchSpec::sparse_b_star();
        for c in DnnCategory::ALL {
            assert!(matches!(b.mode_for(c), SparsityMode::SparseB { .. }));
        }
    }

    #[test]
    fn sparten_modes() {
        assert_eq!(
            ArchSpec::sparten_ab().mode_for(DnnCategory::Dense),
            SparsityMode::SparTen {
                a_sparse: true,
                b_sparse: true
            }
        );
        assert_eq!(
            ArchSpec::sparten_b().mode_for(DnnCategory::B),
            SparsityMode::SparTen {
                a_sparse: false,
                b_sparse: true
            }
        );
    }

    #[test]
    fn lineup_has_eight_entries() {
        assert_eq!(ArchSpec::table7_lineup().len(), 8);
    }

    #[test]
    fn builder_accepts_valid_points_and_names_them_canonically() {
        let b = ArchSpec::builder(ArchKind::SparseB)
            .b(BorrowWindow::new(4, 0, 1))
            .shuffle(true)
            .build()
            .unwrap();
        assert_eq!(b, ArchSpec::sparse_b(BorrowWindow::new(4, 0, 1), true));
        let named = ArchSpec::builder(ArchKind::SparseB)
            .b(BorrowWindow::new(4, 0, 1))
            .shuffle(true)
            .name("Sparse.B*")
            .build()
            .unwrap();
        assert_eq!(named, ArchSpec::sparse_b_star());
        // Every named preset passes its own validation.
        for preset in ArchSpec::table7_lineup().into_iter().chain([
            ArchSpec::sparten_a(),
            ArchSpec::sparten_b(),
            ArchSpec::cnvlutin(),
            ArchSpec::cambricon_x(),
        ]) {
            let rebuilt = ArchSpec::builder(preset.kind)
                .a(preset.a)
                .b(preset.b)
                .shuffle(preset.shuffle)
                .name(preset.name.clone())
                .build()
                .unwrap();
            assert_eq!(rebuilt, preset);
        }
    }

    #[test]
    fn builder_rejects_invalid_points() {
        assert_eq!(
            ArchSpec::builder(ArchKind::SparseA)
                .b(BorrowWindow::new(1, 0, 0))
                .build(),
            Err(ArchError::UnusedWindow {
                kind: ArchKind::SparseA,
                side: 'b'
            })
        );
        assert!(matches!(
            ArchSpec::builder(ArchKind::SparseB)
                .b(BorrowWindow::new(400, 0, 0))
                .build(),
            Err(ArchError::WindowOutOfRange { side: 'b', .. })
        ));
        assert_eq!(
            ArchSpec::builder(ArchKind::Dense).shuffle(true).build(),
            Err(ArchError::UnusedShuffle {
                kind: ArchKind::Dense
            })
        );
        assert_eq!(
            ArchSpec::builder(ArchKind::Griffin).name("  ").build(),
            Err(ArchError::EmptyName)
        );
    }

    #[test]
    fn canonical_form_roundtrips_every_preset() {
        for preset in ArchSpec::table7_lineup().into_iter().chain([
            ArchSpec::sparten_a(),
            ArchSpec::sparten_b(),
            ArchSpec::cnvlutin(),
            ArchSpec::cambricon_x(),
        ]) {
            let line = preset.canonical();
            assert_eq!(ArchSpec::from_canonical(&line).unwrap(), preset, "{line}");
        }
        // Names may contain spaces; they survive because name= is last.
        let odd = ArchSpec::builder(ArchKind::SparseAB)
            .a(BorrowWindow::new(1, 2, 0))
            .b(BorrowWindow::new(3, 0, 1))
            .shuffle(true)
            .name("my design (v2)")
            .build()
            .unwrap();
        assert_eq!(ArchSpec::from_canonical(&odd.canonical()).unwrap(), odd);
        assert_eq!(
            ArchSpec::sparse_b_star().canonical(),
            "sparse.b a=(0,0,0) b=(4,0,1) shuffle=on name=Sparse.B*"
        );
    }

    #[test]
    fn from_canonical_rejects_garbage() {
        for bad in [
            "",
            "sparse.b",
            "warp a=(0,0,0) b=(0,0,0) shuffle=off name=x",
            "sparse.b a=(0,0) b=(4,0,1) shuffle=on name=x",
            "sparse.b a=(0,0,0) b=(4,0,1) shuffle=maybe name=x",
            "sparse.b a=(0,0,0) b=(4,0,1) shuffle=on",
        ] {
            assert!(ArchSpec::from_canonical(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn kind_tokens_roundtrip() {
        for k in ArchKind::ALL {
            assert_eq!(ArchKind::from_token(k.token()), Some(k));
        }
        assert_eq!(ArchKind::from_token("SPARSE.AB"), Some(ArchKind::SparseAB));
        assert_eq!(ArchKind::from_token("nope"), None);
    }

    #[test]
    fn names_are_readable() {
        assert_eq!(
            ArchSpec::sparse_b(BorrowWindow::new(4, 0, 1), true).name,
            "Sparse.B(4,0,1),on"
        );
        assert_eq!(ArchSpec::griffin().to_string(), "Griffin");
    }
}
