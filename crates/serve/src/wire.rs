//! The `griffin-serve-wire/1` message set.
//!
//! One self-contained JSON object per line, exactly like the fleet
//! event stream it multiplexes — the same [`crate::jsonl`
//! framing](griffin_fleet::jsonl) on the writer side, the same
//! torn-tail tolerance on the reader side. Every line carries the
//! `format` tag (version negotiation is per-line: an unknown tag is
//! refused with a typed error, never misread) and a `"type"`
//! discriminant:
//!
//! | `type`       | direction | fields                                              |
//! |--------------|-----------|-----------------------------------------------------|
//! | `hello`      | client →  | `client`                                            |
//! | `hello_ok`   | → client  | `server`, `workers`                                 |
//! | `submit`     | client →  | `scenario` *or* `path`, `name`?                     |
//! | `accepted`   | → client  | `campaign`, `scenario_fp`, `cells`, `deduped`, `queue_depth` |
//! | `subscribe`  | client →  | `campaign`? (absent = the active campaign)          |
//! | `event`      | → client  | `campaign`, `event{…}` (one fleet event object)     |
//! | `stream_end` | → client  | `campaign`, `outcome` (`done`/`failed`)             |
//! | `cancel`     | client →  | `campaign`                                          |
//! | `cancel_ok`  | → client  | `campaign`, `cancelled`                             |
//! | `status`     | client →  | —                                                   |
//! | `status_ok`  | → client  | `status{…}` (a `griffin-serve-status/1` object)     |
//! | `report`     | client →  | `campaign`, `kind` (`csv`/`json`)                   |
//! | `report_ok`  | → client  | `campaign`, `kind`, `body`                          |
//! | `error`      | → client  | `msg`                                               |
//!
//! Unknown *fields* inside known messages are ignored (consumers of a
//! future `griffin-serve-wire/1.x` line keep working); an unknown
//! `type` or `format` is a typed [`WireError`]. A `submit`/`subscribe`
//! puts the connection into streaming mode: `accepted`, then one
//! `event` per fleet event (ending with exactly one terminal
//! `campaign_done`/`campaign_failed`), then one `stream_end`, after
//! which the connection is back in request mode.

use griffin_sweep::fingerprint::Fingerprint;
use griffin_sweep::json::Json;

/// Wire format tag, present on every line in both directions.
pub const WIRE_FORMAT: &str = "griffin-serve-wire/1";

/// How a `submit` carries its scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioSource {
    /// The scenario file's text, inline (`scenario` field).
    Inline(String),
    /// A path the daemon resolves and reads (`path` field).
    Path(String),
}

/// Terminal outcome of a streamed campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOutcome {
    /// The campaign completed (`campaign_done` was streamed).
    Done,
    /// The campaign failed, was cancelled, or the daemon drained
    /// (`campaign_failed` was streamed).
    Failed,
}

impl StreamOutcome {
    fn token(self) -> &'static str {
        match self {
            StreamOutcome::Done => "done",
            StreamOutcome::Failed => "failed",
        }
    }
}

/// Report encoding a client can fetch after a campaign finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// The CSV report (`griffin-cli sweep --csv` bytes).
    Csv,
    /// The JSON report (`griffin-cli sweep --json` bytes).
    Json,
}

impl ReportKind {
    fn token(self) -> &'static str {
        match self {
            ReportKind::Csv => "csv",
            ReportKind::Json => "json",
        }
    }
}

/// One wire line, either direction (see the module table).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client's opening handshake.
    Hello {
        /// Client identity (free-form; keys per-client counters).
        client: String,
    },
    /// Daemon's handshake acknowledgment.
    HelloOk {
        /// Server identity string.
        server: String,
        /// The daemon's worker budget (admission control).
        workers: usize,
    },
    /// Scenario submission.
    Submit {
        /// Inline text or daemon-side path.
        source: ScenarioSource,
        /// Display name recorded as scenario provenance (defaults to
        /// the path's base name, or `inline`).
        name: Option<String>,
    },
    /// The submission was queued (or deduplicated onto a live twin).
    Accepted {
        /// Campaign id (subscribe/cancel/report handle).
        campaign: String,
        /// [`Scenario::fingerprint`](griffin_sweep::scenario::Scenario::fingerprint)
        /// of the canonical scenario — the dedup key.
        scenario_fp: Fingerprint,
        /// Grid cells the campaign will run.
        cells: usize,
        /// `true` when this submission attached to an already
        /// queued/running campaign of the same fingerprint instead of
        /// creating a new execution.
        deduped: bool,
        /// Campaigns queued ahead (0 = runs next / already running).
        queue_depth: usize,
    },
    /// Attach to a campaign's event stream (replay + live tail).
    Subscribe {
        /// Campaign id; `None` picks the running (else newest) one.
        campaign: Option<String>,
    },
    /// One fleet event of a subscribed campaign.
    Event {
        /// Campaign id the event belongs to.
        campaign: String,
        /// The event object, exactly as `events.jsonl` records it.
        event: Json,
    },
    /// End of a subscription stream (follows the terminal event).
    StreamEnd {
        /// Campaign id the stream belonged to.
        campaign: String,
        /// How the campaign ended.
        outcome: StreamOutcome,
    },
    /// Cancel a queued or running campaign.
    Cancel {
        /// Campaign id to cancel.
        campaign: String,
    },
    /// Cancellation verdict.
    CancelOk {
        /// Campaign id the cancel addressed.
        campaign: String,
        /// `false` when the campaign had already finished.
        cancelled: bool,
    },
    /// Request the daemon's aggregate counters.
    Status,
    /// The daemon's counters (a `griffin-serve-status/1` object).
    StatusOk {
        /// The status object (see [`crate::daemon::STATUS_FORMAT`]).
        status: Json,
    },
    /// Fetch a finished campaign's report.
    Report {
        /// Campaign id.
        campaign: String,
        /// Encoding to fetch.
        kind: ReportKind,
    },
    /// A finished campaign's report body.
    ReportOk {
        /// Campaign id.
        campaign: String,
        /// Encoding of `body`.
        kind: ReportKind,
        /// The report bytes — identical to what a standalone
        /// `griffin-cli sweep` of the same scenario writes.
        body: String,
    },
    /// Request-level failure (the connection stays usable).
    Error {
        /// What went wrong.
        msg: String,
    },
}

/// A malformed, unknown-format or unknown-type wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the line.
    pub msg: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad wire line: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

fn fail<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError { msg: msg.into() })
}

fn get_str(v: &Json, key: &str) -> Result<String, WireError> {
    v.req(key)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .map_err(|e| WireError { msg: e.to_string() })
}

fn get_opt_str(v: &Json, key: &str) -> Result<Option<String>, WireError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .map_err(|e| WireError { msg: e.to_string() }),
    }
}

fn get_usize(v: &Json, key: &str) -> Result<usize, WireError> {
    let n = v
        .req(key)
        .and_then(|x| x.as_f64())
        .map_err(|e| WireError { msg: e.to_string() })?;
    if n < 0.0 || n.fract() != 0.0 {
        return fail(format!("bad `{key}`: {n}"));
    }
    Ok(n as usize)
}

fn get_bool(v: &Json, key: &str) -> Result<bool, WireError> {
    match v.req(key).map_err(|e| WireError { msg: e.to_string() })? {
        Json::Bool(b) => Ok(*b),
        _ => fail(format!("bad `{key}`: expected a bool")),
    }
}

fn get_fp(v: &Json, key: &str) -> Result<Fingerprint, WireError> {
    let s = get_str(v, key)?;
    Fingerprint::parse(&s).map_or_else(|| fail(format!("bad fingerprint `{s}`")), Ok)
}

impl Message {
    /// Serializes to the JSON object of one wire line.
    pub fn to_json(&self) -> Json {
        let base = |ty: &str| {
            vec![
                ("format".into(), Json::Str(WIRE_FORMAT.into())),
                ("type".into(), Json::Str(ty.into())),
            ]
        };
        let num = |n: usize| Json::Num(n as f64);
        match self {
            Message::Hello { client } => {
                let mut e = base("hello");
                e.push(("client".into(), Json::Str(client.clone())));
                Json::obj(e)
            }
            Message::HelloOk { server, workers } => {
                let mut e = base("hello_ok");
                e.push(("server".into(), Json::Str(server.clone())));
                e.push(("workers".into(), num(*workers)));
                Json::obj(e)
            }
            Message::Submit { source, name } => {
                let mut e = base("submit");
                match source {
                    ScenarioSource::Inline(text) => {
                        e.push(("scenario".into(), Json::Str(text.clone())));
                    }
                    ScenarioSource::Path(p) => e.push(("path".into(), Json::Str(p.clone()))),
                }
                if let Some(n) = name {
                    e.push(("name".into(), Json::Str(n.clone())));
                }
                Json::obj(e)
            }
            Message::Accepted {
                campaign,
                scenario_fp,
                cells,
                deduped,
                queue_depth,
            } => {
                let mut e = base("accepted");
                e.push(("campaign".into(), Json::Str(campaign.clone())));
                e.push(("scenario_fp".into(), Json::Str(scenario_fp.to_string())));
                e.push(("cells".into(), num(*cells)));
                e.push(("deduped".into(), Json::Bool(*deduped)));
                e.push(("queue_depth".into(), num(*queue_depth)));
                Json::obj(e)
            }
            Message::Subscribe { campaign } => {
                let mut e = base("subscribe");
                if let Some(c) = campaign {
                    e.push(("campaign".into(), Json::Str(c.clone())));
                }
                Json::obj(e)
            }
            Message::Event { campaign, event } => {
                let mut e = base("event");
                e.push(("campaign".into(), Json::Str(campaign.clone())));
                e.push(("event".into(), event.clone()));
                Json::obj(e)
            }
            Message::StreamEnd { campaign, outcome } => {
                let mut e = base("stream_end");
                e.push(("campaign".into(), Json::Str(campaign.clone())));
                e.push(("outcome".into(), Json::Str(outcome.token().into())));
                Json::obj(e)
            }
            Message::Cancel { campaign } => {
                let mut e = base("cancel");
                e.push(("campaign".into(), Json::Str(campaign.clone())));
                Json::obj(e)
            }
            Message::CancelOk {
                campaign,
                cancelled,
            } => {
                let mut e = base("cancel_ok");
                e.push(("campaign".into(), Json::Str(campaign.clone())));
                e.push(("cancelled".into(), Json::Bool(*cancelled)));
                Json::obj(e)
            }
            Message::Status => Json::obj(base("status")),
            Message::StatusOk { status } => {
                let mut e = base("status_ok");
                e.push(("status".into(), status.clone()));
                Json::obj(e)
            }
            Message::Report { campaign, kind } => {
                let mut e = base("report");
                e.push(("campaign".into(), Json::Str(campaign.clone())));
                e.push(("kind".into(), Json::Str(kind.token().into())));
                Json::obj(e)
            }
            Message::ReportOk {
                campaign,
                kind,
                body,
            } => {
                let mut e = base("report_ok");
                e.push(("campaign".into(), Json::Str(campaign.clone())));
                e.push(("kind".into(), Json::Str(kind.token().into())));
                e.push(("body".into(), Json::Str(body.clone())));
                Json::obj(e)
            }
            Message::Error { msg } => {
                let mut e = base("error");
                e.push(("msg".into(), Json::Str(msg.clone())));
                Json::obj(e)
            }
        }
    }

    /// One wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().write()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed JSON, a missing/unknown `format` tag
    /// (version negotiation: never misread a future wire), an unknown
    /// `type`, or incomplete fields.
    pub fn parse_line(line: &str) -> Result<Message, WireError> {
        let v = Json::parse(line).map_err(|e| WireError { msg: e.to_string() })?;
        let tag = get_str(&v, "format")?;
        if tag != WIRE_FORMAT {
            return fail(format!("unsupported wire format `{tag}`"));
        }
        let ty = get_str(&v, "type")?;
        match ty.as_str() {
            "hello" => Ok(Message::Hello {
                client: get_str(&v, "client")?,
            }),
            "hello_ok" => Ok(Message::HelloOk {
                server: get_str(&v, "server")?,
                workers: get_usize(&v, "workers")?,
            }),
            "submit" => {
                let source = match (get_opt_str(&v, "scenario")?, get_opt_str(&v, "path")?) {
                    (Some(text), None) => ScenarioSource::Inline(text),
                    (None, Some(p)) => ScenarioSource::Path(p),
                    (Some(_), Some(_)) => return fail("submit carries both `scenario` and `path`"),
                    (None, None) => return fail("submit needs `scenario` or `path`"),
                };
                Ok(Message::Submit {
                    source,
                    name: get_opt_str(&v, "name")?,
                })
            }
            "accepted" => Ok(Message::Accepted {
                campaign: get_str(&v, "campaign")?,
                scenario_fp: get_fp(&v, "scenario_fp")?,
                cells: get_usize(&v, "cells")?,
                deduped: get_bool(&v, "deduped")?,
                queue_depth: get_usize(&v, "queue_depth")?,
            }),
            "subscribe" => Ok(Message::Subscribe {
                campaign: get_opt_str(&v, "campaign")?,
            }),
            "event" => Ok(Message::Event {
                campaign: get_str(&v, "campaign")?,
                event: v
                    .req("event")
                    .map_err(|e| WireError { msg: e.to_string() })?
                    .clone(),
            }),
            "stream_end" => Ok(Message::StreamEnd {
                campaign: get_str(&v, "campaign")?,
                outcome: match get_str(&v, "outcome")?.as_str() {
                    "done" => StreamOutcome::Done,
                    "failed" => StreamOutcome::Failed,
                    other => return fail(format!("unknown outcome `{other}`")),
                },
            }),
            "cancel" => Ok(Message::Cancel {
                campaign: get_str(&v, "campaign")?,
            }),
            "cancel_ok" => Ok(Message::CancelOk {
                campaign: get_str(&v, "campaign")?,
                cancelled: get_bool(&v, "cancelled")?,
            }),
            "status" => Ok(Message::Status),
            "status_ok" => Ok(Message::StatusOk {
                status: v
                    .req("status")
                    .map_err(|e| WireError { msg: e.to_string() })?
                    .clone(),
            }),
            "report" | "report_ok" => {
                let kind = match get_str(&v, "kind")?.as_str() {
                    "csv" => ReportKind::Csv,
                    "json" => ReportKind::Json,
                    other => return fail(format!("unknown report kind `{other}`")),
                };
                let campaign = get_str(&v, "campaign")?;
                if ty == "report" {
                    Ok(Message::Report { campaign, kind })
                } else {
                    Ok(Message::ReportOk {
                        campaign,
                        kind,
                        body: get_str(&v, "body")?,
                    })
                }
            }
            "error" => Ok(Message::Error {
                msg: get_str(&v, "msg")?,
            }),
            other => fail(format!("unknown message type `{other}`")),
        }
    }
}

/// Deterministic sample-message construction shared by the wire
/// property tests — one generator covering every variant, exactly like
/// [`griffin_fleet::events::sample`]. Not a public API.
#[doc(hidden)]
pub mod sample {
    use super::{Message, ReportKind, ScenarioSource, StreamOutcome};
    use griffin_fleet::events::sample::build_event;
    use griffin_sweep::fingerprint::Fingerprint;

    /// One message of each wire variant (`variant % 14`), fields
    /// derived from the draws. Strings mix in characters that need
    /// JSON escaping (quotes, newlines, backslashes); `flag` toggles
    /// every optional field, and the `event` payload reuses the fleet
    /// event generator so the embedded objects cover that whole schema
    /// too.
    pub fn build_message(variant: usize, a: u64, b: u64, flag: bool) -> Message {
        let s = |tag: &str| format!("{tag}-\"{a}\"\n\\{b}");
        let n = |x: u64| (x % 100_000) as usize;
        let kind = if flag {
            ReportKind::Csv
        } else {
            ReportKind::Json
        };
        match variant % 14 {
            0 => Message::Hello { client: s("cli") },
            1 => Message::HelloOk {
                server: s("griffin-serve"),
                workers: n(a) + 1,
            },
            2 => Message::Submit {
                source: if flag {
                    ScenarioSource::Inline(s("[scenario]"))
                } else {
                    ScenarioSource::Path(s("scenarios/x.toml"))
                },
                name: flag.then(|| s("name")),
            },
            3 => Message::Accepted {
                campaign: s("c"),
                scenario_fp: Fingerprint(a, b),
                cells: n(b),
                deduped: flag,
                queue_depth: n(a ^ b),
            },
            4 => Message::Subscribe {
                campaign: flag.then(|| s("c")),
            },
            5 => Message::Event {
                campaign: s("c"),
                event: build_event(n(a) % 14, a, b, flag, 0).to_json(),
            },
            6 => Message::StreamEnd {
                campaign: s("c"),
                outcome: if flag {
                    StreamOutcome::Done
                } else {
                    StreamOutcome::Failed
                },
            },
            7 => Message::Cancel { campaign: s("c") },
            8 => Message::CancelOk {
                campaign: s("c"),
                cancelled: flag,
            },
            9 => Message::Status,
            10 => Message::StatusOk {
                status: Message::Accepted {
                    campaign: s("nested"),
                    scenario_fp: Fingerprint(b, a),
                    cells: n(a),
                    deduped: !flag,
                    queue_depth: n(b),
                }
                .to_json(),
            },
            11 => Message::Report {
                campaign: s("c"),
                kind,
            },
            12 => Message::ReportOk {
                campaign: s("c"),
                kind,
                body: s("workload,category\nbert,b"),
            },
            _ => Message::Error { msg: s("oops") },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_variant() {
        for variant in 0..14 {
            for flag in [false, true] {
                let m = sample::build_message(variant, 7, 9, flag);
                let line = m.to_line();
                assert!(!line.contains('\n'), "one message, one line: {line}");
                let back = Message::parse_line(&line).expect(&line);
                assert_eq!(back, m, "{line}");
            }
        }
    }

    #[test]
    fn unknown_format_and_type_are_refused() {
        let future = r#"{"format":"griffin-serve-wire/2","type":"hello","client":"x"}"#;
        let err = Message::parse_line(future).unwrap_err();
        assert!(err.msg.contains("unsupported wire format"), "{err}");
        let unknown = r#"{"format":"griffin-serve-wire/1","type":"frobnicate"}"#;
        let err = Message::parse_line(unknown).unwrap_err();
        assert!(err.msg.contains("unknown message type"), "{err}");
        assert!(Message::parse_line("not json at all").is_err());
        // No format tag at all: refused, not guessed.
        assert!(Message::parse_line(r#"{"type":"status"}"#).is_err());
    }

    #[test]
    fn submit_source_is_exactly_one_of_inline_or_path() {
        let both = r#"{"format":"griffin-serve-wire/1","type":"submit","scenario":"x","path":"y"}"#;
        assert!(Message::parse_line(both).is_err());
        let neither = r#"{"format":"griffin-serve-wire/1","type":"submit"}"#;
        assert!(Message::parse_line(neither).is_err());
    }
}
