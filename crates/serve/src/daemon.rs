//! The resident campaign daemon.
//!
//! A [`Daemon`] owns what a one-shot `griffin-cli sweep`/`fleet run`
//! process throws away at exit: one warm [`ResultCache`] at
//! `<dir>/cache` (disk-backed, so it survives daemon restarts too) and
//! one [`ScratchPool`] whose simulation scratches — buffer capacity
//! *and* the per-workload memoized tile grids of the grid-reuse scope —
//! survive across campaigns. Submissions queue FIFO under admission
//! control (each campaign gets the whole `workers` budget; at most one
//! runs at a time, at most `queue_cap` wait), and are **deduplicated by
//! scenario fingerprint**: two clients submitting the same scenario
//! share one execution, and both subscribe to the identical event
//! stream through the campaign's [`Tee`].
//!
//! Every campaign runs through the ordinary fleet coordinator with its
//! own state directory `<dir>/campaigns/<id>/` (journal.jsonl +
//! events.jsonl), so `fleet watch`, `fleet report --html` and
//! `--resume` tooling keep working on daemon-run campaigns unchanged.
//! Finished campaigns additionally get a rendered `report.html`;
//! retention keeps the newest [`ServeConfig::retain`] finished
//! directories and deletes the rest.
//!
//! Draining ([`Daemon::drain`]) refuses new submissions, cancels
//! queued campaigns with a synthesized terminal event, and aborts the
//! in-flight one through the coordinator's abort flag — which journals
//! its completed cells and emits its terminal event — so every
//! subscriber of every campaign sees exactly one terminal.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use griffin_fleet::coordinator::{run_fleet, FleetConfig};
use griffin_fleet::events::Event;
use griffin_sweep::cache::ResultCache;
use griffin_sweep::executor::ScratchPool;
use griffin_sweep::fingerprint::Fingerprint;
use griffin_sweep::json::Json;
use griffin_sweep::scenario::{Scenario, ScenarioProvenance};
use griffin_sweep::spec::SweepSpec;
use griffin_watch::model::CampaignModel;

use crate::tee::{Tee, TeeItem};
use crate::wire::{ScenarioSource, StreamOutcome};

/// Format tag of the [`Daemon::status`] object.
pub const STATUS_FORMAT: &str = "griffin-serve-status/1";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// State directory: `cache/` (the warm disk cache) and
    /// `campaigns/<id>/` (per-campaign journal + events + report).
    pub dir: PathBuf,
    /// Simulation worker budget — each campaign runs with this many
    /// workers, which is also the admission-control unit (campaigns
    /// run one at a time so no two share the cores).
    pub workers: usize,
    /// Default shard count for scenarios without a `[fleet]` section.
    pub shards: usize,
    /// Maximum campaigns waiting in the queue (the running one not
    /// counted). Submissions beyond it are refused.
    pub queue_cap: usize,
    /// Finished campaign directories kept on disk; older ones are
    /// deleted (their in-memory stream replay stays available).
    pub retain: usize,
    /// Server identity announced in `hello_ok`.
    pub server: String,
}

impl ServeConfig {
    /// Defaults: the machine's worker count, 2 shards, a queue of 16,
    /// and the 8 newest finished campaigns retained.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            dir: dir.into(),
            workers: griffin_sweep::executor::default_workers(),
            shards: 2,
            queue_cap: 16,
            retain: 8,
            server: format!("griffin-serve/{}", env!("CARGO_PKG_VERSION")),
        }
    }
}

/// Why a request was not served.
#[derive(Debug)]
pub enum ServeError {
    /// The daemon is draining and takes no new submissions.
    Draining,
    /// The queue is at [`ServeConfig::queue_cap`].
    QueueFull,
    /// The scenario failed to load or parse.
    Scenario(String),
    /// No campaign matches the given id (or none exists yet).
    UnknownCampaign(String),
    /// The campaign has not finished, or its report was evicted.
    NoReport(String),
    /// Filesystem failure in the daemon's state directory.
    Io(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Draining => write!(f, "daemon is draining; submission refused"),
            ServeError::QueueFull => write!(f, "queue is full; submission refused"),
            ServeError::Scenario(msg) => write!(f, "bad scenario: {msg}"),
            ServeError::UnknownCampaign(id) => write!(f, "unknown campaign `{id}`"),
            ServeError::NoReport(id) => write!(f, "no report for campaign `{id}`"),
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A submission verdict (mirrors the wire `accepted` message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accepted {
    /// Campaign id (handle for subscribe/cancel/report).
    pub campaign: String,
    /// The scenario's canonical fingerprint — the dedup key.
    pub scenario_fp: Fingerprint,
    /// Grid cells of the campaign.
    pub cells: usize,
    /// Whether this submission attached to an existing queued/running
    /// campaign instead of creating a new execution.
    pub deduped: bool,
    /// Campaigns queued ahead of this one (0 = running or next up).
    pub queue_depth: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Finished(StreamOutcome),
}

#[derive(Debug, Clone, Copy, Default)]
struct ClientStats {
    submissions: usize,
    deduped: usize,
    cells: usize,
}

#[derive(Debug)]
struct CampaignEntry {
    fp: Fingerprint,
    spec: SweepSpec,
    provenance: ScenarioProvenance,
    shards: usize,
    cells: usize,
    phase: Phase,
    tee: Arc<Tee>,
    abort: Arc<AtomicBool>,
    /// `(csv, json)` report bytes once finished successfully —
    /// identical to what a standalone sweep of the scenario writes.
    reports: Option<(String, String)>,
    /// Monotonic finish order (drives retention).
    finished_at: Option<usize>,
    /// The on-disk directory was deleted by retention.
    evicted: bool,
}

#[derive(Debug, Default)]
struct State {
    seq: usize,
    finish_seq: usize,
    queue: VecDeque<String>,
    campaigns: BTreeMap<String, CampaignEntry>,
    /// Dedup index over queued + running campaigns only.
    by_fp: HashMap<Fingerprint, String>,
    running: Option<String>,
    submissions: usize,
    deduped: usize,
    served: usize,
    cancelled: usize,
    clients: BTreeMap<String, ClientStats>,
    draining: bool,
    shutdown: bool,
}

/// What the executor thread needs to run one campaign (cloned out of
/// the state lock).
struct Job {
    id: String,
    fp: Fingerprint,
    spec: SweepSpec,
    provenance: ScenarioProvenance,
    shards: usize,
    tee: Arc<Tee>,
    abort: Arc<AtomicBool>,
}

/// The resident campaign daemon. See the module docs.
pub struct Daemon {
    cfg: ServeConfig,
    cache: Arc<ResultCache>,
    pool: Arc<ScratchPool>,
    sync: Arc<(Mutex<State>, Condvar)>,
    executor: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("dir", &self.cfg.dir)
            .finish()
    }
}

impl Daemon {
    /// Opens the state directory (warming the disk cache in it) and
    /// starts the executor thread.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures creating the state directory.
    pub fn start(cfg: ServeConfig) -> io::Result<Daemon> {
        fs::create_dir_all(cfg.dir.join("campaigns"))?;
        let cache = Arc::new(ResultCache::at_dir(cfg.dir.join("cache"))?);
        let pool = Arc::new(ScratchPool::new());
        let sync = Arc::new((Mutex::new(State::default()), Condvar::new()));
        let executor = {
            let cfg = cfg.clone();
            let cache = Arc::clone(&cache);
            let pool = Arc::clone(&pool);
            let sync = Arc::clone(&sync);
            thread::Builder::new()
                .name("serve-executor".into())
                .spawn(move || executor_loop(&cfg, &cache, &pool, &sync))?
        };
        Ok(Daemon {
            cfg,
            cache,
            pool,
            sync,
            executor: Some(executor),
        })
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The warm cross-campaign cache (shared with every campaign run).
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// Submits a scenario on behalf of `client`. A submission whose
    /// fingerprint matches a queued or running campaign attaches to it
    /// (`deduped = true`) instead of creating a second execution.
    ///
    /// # Errors
    ///
    /// [`ServeError::Draining`], [`ServeError::QueueFull`], or
    /// [`ServeError::Scenario`] on an unloadable/unparseable scenario.
    pub fn submit(
        &self,
        client: &str,
        source: &ScenarioSource,
        name: Option<&str>,
    ) -> Result<Accepted, ServeError> {
        let (scenario, display) = match source {
            ScenarioSource::Inline(text) => {
                let sc = Scenario::parse(text).map_err(|e| ServeError::Scenario(e.to_string()))?;
                let display = name.unwrap_or("inline").to_string();
                (sc, display)
            }
            ScenarioSource::Path(path) => {
                let sc = Scenario::load(path).map_err(|e| ServeError::Scenario(e.to_string()))?;
                let display = name.map_or_else(|| path.clone(), str::to_string);
                (sc, display)
            }
        };
        let fp = scenario.fingerprint();
        let cells = scenario.cell_count();
        let shards = scenario
            .fleet
            .as_ref()
            .map_or(self.cfg.shards, |f| f.shards.max(1));
        let spec = scenario.to_spec();
        let provenance = scenario.provenance(&display);

        let (lock, cv) = &*self.sync;
        let mut st = lock.lock().expect("serve state lock");
        if st.draining {
            return Err(ServeError::Draining);
        }
        st.submissions += 1;
        let entry = st.clients.entry(client.to_string()).or_default();
        entry.submissions += 1;
        entry.cells += cells;

        if let Some(id) = st.by_fp.get(&fp).cloned() {
            // A twin whose terminal event is already published is
            // finished in every way a client can observe, even if the
            // executor has not swept it out of the index yet — a new
            // submission must re-run (warm-hit), not attach to it.
            let live = st
                .campaigns
                .get(&id)
                .is_some_and(|e| e.tee.outcome().is_none());
            if live {
                st.deduped += 1;
                st.clients.entry(client.to_string()).or_default().deduped += 1;
                let queue_depth = st.queue.iter().position(|q| q == &id).unwrap_or(0);
                return Ok(Accepted {
                    campaign: id,
                    scenario_fp: fp,
                    cells,
                    deduped: true,
                    queue_depth,
                });
            }
            st.by_fp.remove(&fp);
        }
        if st.queue.len() >= self.cfg.queue_cap {
            return Err(ServeError::QueueFull);
        }
        st.seq += 1;
        let id = format!("c{:06}-{:08x}", st.seq, (fp.0 >> 32) as u32);
        let queue_depth = st.queue.len();
        st.campaigns.insert(
            id.clone(),
            CampaignEntry {
                fp,
                spec,
                provenance,
                shards,
                cells,
                phase: Phase::Queued,
                tee: Arc::new(Tee::new()),
                abort: Arc::new(AtomicBool::new(false)),
                reports: None,
                finished_at: None,
                evicted: false,
            },
        );
        st.by_fp.insert(fp, id.clone());
        st.queue.push_back(id.clone());
        cv.notify_all();
        Ok(Accepted {
            campaign: id,
            scenario_fp: fp,
            cells,
            deduped: false,
            queue_depth,
        })
    }

    /// Attaches to a campaign's event stream: full replay, then the
    /// live tail, then exactly one [`TeeItem::End`]. `None` picks the
    /// running campaign, else the newest one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCampaign`] when the id (or any campaign at
    /// all, for `None`) does not exist.
    pub fn subscribe(
        &self,
        campaign: Option<&str>,
    ) -> Result<(String, Receiver<TeeItem>), ServeError> {
        let (lock, _) = &*self.sync;
        let st = lock.lock().expect("serve state lock");
        let id = match campaign {
            Some(id) => id.to_string(),
            None => st
                .running
                .clone()
                .or_else(|| st.campaigns.keys().next_back().cloned())
                .ok_or_else(|| ServeError::UnknownCampaign("<none>".into()))?,
        };
        let entry = st
            .campaigns
            .get(&id)
            .ok_or_else(|| ServeError::UnknownCampaign(id.clone()))?;
        Ok((id, entry.tee.subscribe()))
    }

    /// Cancels a campaign. Queued: removed and terminated with a
    /// synthesized `campaign_failed`. Running: the coordinator's abort
    /// flag is raised — it journals completed cells and emits its
    /// terminal. Finished: returns `false`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCampaign`] when the id does not exist.
    pub fn cancel(&self, campaign: &str) -> Result<bool, ServeError> {
        let (lock, _) = &*self.sync;
        let mut st = lock.lock().expect("serve state lock");
        let Some(entry) = st.campaigns.get_mut(campaign) else {
            return Err(ServeError::UnknownCampaign(campaign.into()));
        };
        match entry.phase {
            Phase::Finished(_) => Ok(false),
            Phase::Running => {
                entry.abort.store(true, Ordering::Relaxed);
                Ok(true)
            }
            Phase::Queued => {
                entry.phase = Phase::Finished(StreamOutcome::Failed);
                let fp = entry.fp;
                let tee = Arc::clone(&entry.tee);
                st.finish_seq += 1;
                let at = st.finish_seq;
                st.campaigns
                    .get_mut(campaign)
                    .expect("entry just accessed")
                    .finished_at = Some(at);
                st.by_fp.remove(&fp);
                st.queue.retain(|q| q != campaign);
                st.cancelled += 1;
                tee.publish(
                    Event::CampaignFailed {
                        msg: "cancelled before execution".into(),
                    }
                    .to_line(),
                    Some(StreamOutcome::Failed),
                );
                Ok(true)
            }
        }
    }

    /// A finished campaign's report bytes: `(csv, json)`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCampaign`] for a bad id;
    /// [`ServeError::NoReport`] while the campaign is still queued /
    /// running, after it failed, or after eviction.
    pub fn reports(&self, campaign: &str) -> Result<(String, String), ServeError> {
        let (lock, cv) = &*self.sync;
        let mut st = lock.lock().expect("serve state lock");
        loop {
            let entry = st
                .campaigns
                .get(campaign)
                .ok_or_else(|| ServeError::UnknownCampaign(campaign.into()))?;
            if let Phase::Finished(_) = entry.phase {
                return entry
                    .reports
                    .clone()
                    .ok_or_else(|| ServeError::NoReport(campaign.into()));
            }
            if entry.tee.outcome().is_none() {
                // Genuinely still queued/running.
                return Err(ServeError::NoReport(campaign.into()));
            }
            // Terminal published but the executor has not stored the
            // reports yet — a client racing its own stream's End.
            // It will notify within microseconds.
            st = cv.wait(st).expect("serve state lock");
        }
    }

    /// The `griffin-serve-status/1` aggregate-counter object.
    pub fn status(&self) -> Json {
        let num = |x: usize| Json::Num(x as f64);
        let (lock, _) = &*self.sync;
        let st = lock.lock().expect("serve state lock");
        let cache = self.cache.stats();
        let lookups = cache.hits + cache.misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            cache.hits as f64 / lookups as f64
        };
        let campaigns: Vec<Json> = st
            .campaigns
            .iter()
            .map(|(id, e)| {
                let phase = match e.phase {
                    Phase::Queued => "queued",
                    Phase::Running => "running",
                    Phase::Finished(StreamOutcome::Done) => "done",
                    Phase::Finished(StreamOutcome::Failed) => "failed",
                };
                Json::obj([
                    ("id".into(), Json::Str(id.clone())),
                    ("phase".into(), Json::Str(phase.into())),
                    ("cells".into(), num(e.cells)),
                    ("scenario_fp".into(), Json::Str(e.fp.to_string())),
                ])
            })
            .collect();
        let clients = Json::Obj(
            st.clients
                .iter()
                .map(|(name, c)| {
                    (
                        name.clone(),
                        Json::obj([
                            ("submissions".into(), num(c.submissions)),
                            ("deduped".into(), num(c.deduped)),
                            ("cells".into(), num(c.cells)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("format".into(), Json::Str(STATUS_FORMAT.into())),
            ("server".into(), Json::Str(self.cfg.server.clone())),
            ("workers".into(), num(self.cfg.workers)),
            ("queue_depth".into(), num(st.queue.len())),
            (
                "running".into(),
                st.running.clone().map_or(Json::Null, Json::Str),
            ),
            ("submissions".into(), num(st.submissions)),
            ("deduped".into(), num(st.deduped)),
            ("campaigns_served".into(), num(st.served)),
            ("cancelled".into(), num(st.cancelled)),
            ("draining".into(), Json::Bool(st.draining)),
            (
                "cache".into(),
                Json::obj([
                    ("hits".into(), num(cache.hits as usize)),
                    ("misses".into(), num(cache.misses as usize)),
                    ("disk_hits".into(), num(cache.disk_hits as usize)),
                    ("stores".into(), num(cache.stores as usize)),
                    ("entries".into(), num(self.cache.len())),
                    ("hit_rate".into(), Json::Num(hit_rate)),
                ]),
            ),
            ("clients".into(), clients),
            ("campaigns".into(), Json::Arr(campaigns)),
            ("scratches_parked".into(), num(self.pool.parked())),
        ])
    }

    /// Blocks until the daemon is idle: nothing queued, nothing
    /// running, all retention deletions applied. Test and bench
    /// synchronization; wire clients never need it.
    pub fn wait_idle(&self) {
        let (lock, cv) = &*self.sync;
        let mut st = lock.lock().expect("serve state lock");
        while !st.queue.is_empty() || st.running.is_some() {
            st = cv.wait(st).expect("serve state lock");
        }
    }

    /// Whether the daemon is draining (refusing submissions).
    pub fn draining(&self) -> bool {
        let (lock, _) = &*self.sync;
        lock.lock().expect("serve state lock").draining
    }

    /// Starts the graceful drain: refuse new submissions, cancel every
    /// queued campaign with a synthesized terminal event, and raise
    /// the abort flag of the running one (its completed cells stay
    /// journaled; its subscribers get its real terminal). Idempotent.
    pub fn drain(&self) {
        let (lock, cv) = &*self.sync;
        let mut st = lock.lock().expect("serve state lock");
        if st.draining {
            return;
        }
        st.draining = true;
        let queued: Vec<String> = st.queue.drain(..).collect();
        for id in queued {
            let Some(entry) = st.campaigns.get_mut(&id) else {
                continue;
            };
            entry.phase = Phase::Finished(StreamOutcome::Failed);
            let fp = entry.fp;
            let tee = Arc::clone(&entry.tee);
            st.finish_seq += 1;
            let at = st.finish_seq;
            st.campaigns.get_mut(&id).expect("entry exists").finished_at = Some(at);
            st.by_fp.remove(&fp);
            st.cancelled += 1;
            tee.publish(
                Event::CampaignFailed {
                    msg: "daemon draining: cancelled before execution".into(),
                }
                .to_line(),
                Some(StreamOutcome::Failed),
            );
        }
        if let Some(id) = &st.running {
            if let Some(entry) = st.campaigns.get(id) {
                entry.abort.store(true, Ordering::Relaxed);
            }
        }
        cv.notify_all();
    }

    /// Drains (if not already draining) and blocks until the executor
    /// finishes the in-flight campaign and exits.
    pub fn shutdown(mut self) {
        self.drain();
        {
            let (lock, cv) = &*self.sync;
            lock.lock().expect("serve state lock").shutdown = true;
            cv.notify_all();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(h) = self.executor.take() {
            self.drain();
            let (lock, cv) = &*self.sync;
            lock.lock().expect("serve state lock").shutdown = true;
            cv.notify_all();
            let _ = h.join();
        }
    }
}

fn executor_loop(
    cfg: &ServeConfig,
    cache: &Arc<ResultCache>,
    pool: &Arc<ScratchPool>,
    sync: &Arc<(Mutex<State>, Condvar)>,
) {
    let (lock, cv) = &**sync;
    loop {
        let job = {
            let mut st = lock.lock().expect("serve state lock");
            loop {
                if let Some(id) = st.queue.pop_front() {
                    let entry = st.campaigns.get_mut(&id).expect("queued entry exists");
                    entry.phase = Phase::Running;
                    let job = Job {
                        id: id.clone(),
                        fp: entry.fp,
                        spec: entry.spec.clone(),
                        provenance: entry.provenance.clone(),
                        shards: entry.shards,
                        tee: Arc::clone(&entry.tee),
                        abort: Arc::clone(&entry.abort),
                    };
                    st.running = Some(id);
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = cv.wait(st).expect("serve state lock");
            }
        };
        let (outcome, reports) = run_job(cfg, cache, pool, &job);
        // `running` stays set through retention deletion so wait_idle
        // cannot observe the daemon idle with eviction still pending.
        let evict = {
            let mut st = lock.lock().expect("serve state lock");
            st.finish_seq += 1;
            let at = st.finish_seq;
            let entry = st.campaigns.get_mut(&job.id).expect("running entry exists");
            entry.phase = Phase::Finished(outcome);
            entry.reports = reports;
            entry.finished_at = Some(at);
            st.by_fp.remove(&job.fp);
            st.served += 1;
            cv.notify_all(); // reports()/status waiters
            retention_victims(&mut st, cfg.retain)
        };
        for id in evict {
            let _ = fs::remove_dir_all(cfg.dir.join("campaigns").join(id));
        }
        let mut st = lock.lock().expect("serve state lock");
        st.running = None;
        cv.notify_all();
        drop(st);
    }
}

/// Finished campaigns beyond the retention cap, oldest first, that
/// still have an on-disk directory. Marks them evicted and drops their
/// stored report bytes (the tee replay stays, so late subscribers are
/// unaffected).
fn retention_victims(st: &mut State, retain: usize) -> Vec<String> {
    let mut finished: Vec<(usize, String)> = st
        .campaigns
        .iter()
        .filter(|(_, e)| !e.evicted && e.finished_at.is_some())
        .map(|(id, e)| (e.finished_at.expect("filtered"), id.clone()))
        .collect();
    finished.sort_unstable();
    if finished.len() <= retain {
        return Vec::new();
    }
    let victims: Vec<String> = finished[..finished.len() - retain]
        .iter()
        .map(|(_, id)| id.clone())
        .collect();
    for id in &victims {
        let entry = st.campaigns.get_mut(id).expect("victim exists");
        entry.evicted = true;
        entry.reports = None;
    }
    victims
}

/// Runs one campaign through the fleet coordinator against the warm
/// cache and scratch pool, teeing events to `events.jsonl` and every
/// subscriber, and rendering `report.html` afterwards. Returns the
/// outcome and, on success, the `(csv, json)` report bytes.
fn run_job(
    cfg: &ServeConfig,
    cache: &Arc<ResultCache>,
    pool: &Arc<ScratchPool>,
    job: &Job,
) -> (StreamOutcome, Option<(String, String)>) {
    let dir = cfg.dir.join("campaigns").join(&job.id);
    let result = fs::create_dir_all(&dir)
        .map_err(|e| format!("campaign dir: {e}"))
        .and_then(|()| {
            let events_path = dir.join("events.jsonl");
            let file = fs::File::create(&events_path).map_err(|e| format!("events file: {e}"))?;
            let mut fleet = FleetConfig::new(&dir, job.shards);
            fleet.workers = cfg.workers;
            fleet.scenario = Some(job.provenance.clone());
            fleet.shared_cache = Some(Arc::clone(cache));
            fleet.scratch_pool = Some(Arc::clone(pool));
            fleet.abort = Some(Arc::clone(&job.abort));
            let mut sink = crate::tee::TeeSink::new(file, Arc::clone(&job.tee));
            run_fleet(&job.spec, &fleet, &mut sink).map_err(|e| e.to_string())
        });
    // The coordinator emits exactly one terminal on every path it
    // controls; the remaining paths (state-dir I/O above, a sink whose
    // file write failed mid-campaign) get a synthesized one so each
    // subscriber still sees exactly one End.
    let (outcome, reports) = match result {
        Ok(report) => {
            let csv = griffin_sweep::report::to_csv(&report);
            let json = griffin_sweep::report::to_json(&report);
            (StreamOutcome::Done, Some((csv, json)))
        }
        Err(msg) => {
            if job.tee.outcome().is_none() {
                job.tee.publish(
                    Event::CampaignFailed { msg }.to_line(),
                    Some(StreamOutcome::Failed),
                );
            }
            (StreamOutcome::Failed, None)
        }
    };
    write_html_report(&dir, &job.tee);
    (outcome, reports)
}

/// Renders the finished campaign's event stream to `report.html` —
/// the same artifact `fleet report --html` produces from the file.
fn write_html_report(dir: &std::path::Path, tee: &Tee) {
    let mut model = CampaignModel::new();
    let rx = tee.subscribe();
    for item in rx.try_iter() {
        if let TeeItem::Line(line) = item {
            model.apply_line(&line);
        }
    }
    let html = griffin_watch::html::report_html(&model);
    let _ = fs::write(dir.join("report.html"), html);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = r#"
[scenario]
name = "serve-smoke"
seeds = [1]
categories = ["b"]

[sim]
tiles = 2
sample_seed = 48879

[[workload]]
synthetic = "synth"
layers = 4

[[arch]]
preset = "baseline"

[[arch]]
family = "b"
fanin = 3
"#;

    fn daemon(dir: &std::path::Path) -> Daemon {
        let mut cfg = ServeConfig::new(dir);
        cfg.workers = 2;
        cfg.shards = 2;
        Daemon::start(cfg).unwrap()
    }

    fn drain_stream(rx: Receiver<TeeItem>) -> (Vec<String>, StreamOutcome) {
        let mut lines = Vec::new();
        for item in rx {
            match item {
                TeeItem::Line(l) => lines.push(l),
                TeeItem::End(outcome) => return (lines, outcome),
            }
        }
        panic!("stream ended without a terminal End");
    }

    #[test]
    fn duplicate_submissions_share_one_execution_and_stream() {
        let tmp = tempdir("serve-dedup");
        let d = daemon(&tmp);
        let src = ScenarioSource::Inline(SMOKE.into());
        let a = d.submit("alice", &src, None).unwrap();
        let b = d.submit("bob", &src, None).unwrap();
        assert_eq!(a.campaign, b.campaign);
        assert!(!a.deduped);
        assert!(b.deduped);
        assert_eq!(a.cells, 7);

        let (_, rx_a) = d.subscribe(Some(&a.campaign)).unwrap();
        let (_, rx_b) = d.subscribe(Some(&b.campaign)).unwrap();
        let (lines_a, out_a) = drain_stream(rx_a);
        let (lines_b, out_b) = drain_stream(rx_b);
        assert_eq!(out_a, StreamOutcome::Done);
        assert_eq!(out_b, StreamOutcome::Done);
        assert_eq!(lines_a, lines_b, "both clients see the identical stream");

        // Exactly one campaign directory: one execution.
        let dirs: Vec<_> = fs::read_dir(tmp.join("campaigns"))
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(dirs.len(), 1, "{dirs:?}");

        let (csv, json) = d.reports(&a.campaign).unwrap();
        assert!(csv.contains("synth"));
        assert!(json.contains("serve-smoke"));
        d.shutdown();
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn second_submission_after_finish_is_all_cache_hits() {
        let tmp = tempdir("serve-warm");
        let d = daemon(&tmp);
        let src = ScenarioSource::Inline(SMOKE.into());
        let first = d.submit("cli", &src, None).unwrap();
        let (_, rx) = d.subscribe(Some(&first.campaign)).unwrap();
        drain_stream(rx);
        d.wait_idle();

        d.cache().reset_stats();
        let second = d.submit("cli", &src, None).unwrap();
        assert_ne!(
            second.campaign, first.campaign,
            "finished fp is re-runnable"
        );
        assert!(!second.deduped);
        let (_, rx) = d.subscribe(Some(&second.campaign)).unwrap();
        let (lines, outcome) = drain_stream(rx);
        assert_eq!(outcome, StreamOutcome::Done);
        // 100% cache hits: no cell ever started simulating.
        assert!(
            !lines.iter().any(|l| l.contains("\"cell_start\"")),
            "warm rerun must not simulate: {lines:?}"
        );
        let stats = d.cache().stats();
        assert_eq!(stats.misses, 0, "{stats:?}");
        assert!(stats.hits > 0);

        let (csv1, json1) = d.reports(&first.campaign).unwrap();
        let (csv2, json2) = d.reports(&second.campaign).unwrap();
        assert_eq!(csv1, csv2);
        assert_eq!(json1, json2);
        d.shutdown();
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn drain_refuses_submissions_and_terminates_queued_streams() {
        let tmp = tempdir("serve-drain");
        let d = daemon(&tmp);
        let src = ScenarioSource::Inline(SMOKE.into());
        let first = d.submit("cli", &src, None).unwrap();
        d.drain();
        assert!(matches!(
            d.submit("cli", &src, None),
            Err(ServeError::Draining)
        ));
        // Whatever state the campaign was in when drain hit, its
        // stream still ends with exactly one terminal.
        let (_, rx) = d.subscribe(Some(&first.campaign)).unwrap();
        let (_, _outcome) = drain_stream(rx);
        d.shutdown();
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn cancel_of_a_queued_campaign_synthesizes_the_terminal() {
        let tmp = tempdir("serve-cancel");
        let d = daemon(&tmp);
        // Two distinct scenarios: the second stays queued behind the
        // first long enough to be cancelled (and even if the first
        // finishes instantly, cancel of a finished campaign returns
        // false rather than erroring — assert on the stream instead).
        let src_a = ScenarioSource::Inline(SMOKE.into());
        let src_b = ScenarioSource::Inline(SMOKE.replace("seeds = [1]", "seeds = [2]"));
        let a = d.submit("cli", &src_a, None).unwrap();
        let b = d.submit("cli", &src_b, None).unwrap();
        assert_ne!(a.campaign, b.campaign);
        let cancelled = d.cancel(&b.campaign).unwrap();
        let (_, rx) = d.subscribe(Some(&b.campaign)).unwrap();
        let (_, outcome) = drain_stream(rx);
        if cancelled {
            assert_eq!(outcome, StreamOutcome::Failed);
        }
        assert!(matches!(
            d.cancel("c999999-deadbeef"),
            Err(ServeError::UnknownCampaign(_))
        ));
        d.shutdown();
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn retention_deletes_oldest_finished_dirs() {
        let tmp = tempdir("serve-retain");
        let mut cfg = ServeConfig::new(&tmp);
        cfg.workers = 2;
        cfg.retain = 1;
        let d = Daemon::start(cfg).unwrap();
        for seed in 1..=3 {
            let text = SMOKE.replace("seeds = [1]", &format!("seeds = [{seed}]"));
            let acc = d
                .submit("cli", &ScenarioSource::Inline(text), None)
                .unwrap();
            let (_, rx) = d.subscribe(Some(&acc.campaign)).unwrap();
            drain_stream(rx);
        }
        d.wait_idle();
        let dirs: Vec<_> = fs::read_dir(tmp.join("campaigns"))
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(dirs.len(), 1, "retain=1 keeps only the newest: {dirs:?}");
        let status = d.status();
        assert_eq!(
            status.req("campaigns").unwrap().as_arr().unwrap().len(),
            3,
            "evicted campaigns stay listed"
        );
        d.shutdown();
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn status_reports_the_counters() {
        let tmp = tempdir("serve-status");
        let d = daemon(&tmp);
        let src = ScenarioSource::Inline(SMOKE.into());
        let acc = d.submit("alice", &src, None).unwrap();
        d.submit("bob", &src, None).unwrap();
        let (_, rx) = d.subscribe(Some(&acc.campaign)).unwrap();
        drain_stream(rx);
        d.wait_idle();
        let status = d.status();
        assert_eq!(
            status.req("format").unwrap().as_str().unwrap(),
            STATUS_FORMAT
        );
        assert_eq!(status.req("submissions").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(status.req("deduped").unwrap().as_f64().unwrap(), 1.0);
        let clients = status.req("clients").unwrap();
        assert!(clients.get("alice").is_some() && clients.get("bob").is_some());
        d.shutdown();
        let _ = fs::remove_dir_all(&tmp);
    }

    fn tempdir(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("griffin-{tag}-{pid}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }
}
