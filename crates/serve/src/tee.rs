//! Teeing one campaign's event stream to many subscribers.
//!
//! Each campaign the daemon runs has a single writer — the fleet
//! coordinator emitting into a [`TeeSink`] — and any number of readers
//! attached at any time: clients that submitted it, clients that
//! deduplicated onto it, watchers that subscribed mid-flight or after
//! the fact. The [`Tee`] keeps the full line-for-line replay buffer
//! (the same bytes `events.jsonl` records), so every subscriber sees
//! the identical stream regardless of when it attached: replay first,
//! then the live tail, then exactly one [`TeeItem::End`].
//!
//! The snapshot-and-register step happens under one lock, so a
//! subscriber can neither miss an event between replay and live tail
//! nor see one twice.

use std::io;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use griffin_fleet::events::{Event, EventSink};
use griffin_fleet::jsonl;

use crate::wire::StreamOutcome;

/// One delivery to a subscriber.
#[derive(Debug, Clone, PartialEq)]
pub enum TeeItem {
    /// One event line, exactly as `events.jsonl` records it.
    Line(String),
    /// The stream is over; no further items follow. Sent exactly once
    /// per subscriber, after the terminal event's own `Line`.
    End(StreamOutcome),
}

#[derive(Debug, Default)]
struct TeeState {
    /// Every line published so far, in order — the replay buffer.
    lines: Vec<String>,
    /// Live subscribers; a failed send (receiver gone) evicts.
    subs: Vec<Sender<TeeItem>>,
    /// Set once the terminal event has been published.
    done: Option<StreamOutcome>,
}

/// The replay-buffer broadcast hub of one campaign's event stream.
#[derive(Debug, Default)]
pub struct Tee {
    state: Mutex<TeeState>,
}

impl Tee {
    /// A fresh tee with no history and no subscribers.
    pub fn new() -> Self {
        Tee::default()
    }

    /// Attaches a subscriber: the full replay so far, then the live
    /// tail. A subscriber joining after the terminal event gets the
    /// whole replay followed immediately by [`TeeItem::End`].
    pub fn subscribe(&self) -> Receiver<TeeItem> {
        let (tx, rx) = channel();
        let mut st = self.state.lock().expect("tee lock");
        for line in &st.lines {
            // The receiver is still in scope; these cannot fail.
            let _ = tx.send(TeeItem::Line(line.clone()));
        }
        match st.done {
            Some(outcome) => {
                let _ = tx.send(TeeItem::End(outcome));
            }
            None => st.subs.push(tx),
        }
        rx
    }

    /// Publishes one event line to the buffer and every subscriber.
    /// `terminal` ends the stream: subscribers get the line, then
    /// `End`, and later subscribers replay-then-end.
    pub fn publish(&self, line: String, terminal: Option<StreamOutcome>) {
        let mut st = self.state.lock().expect("tee lock");
        if st.done.is_some() {
            // Defensive: the fleet contract is one terminal event per
            // stream; anything after it is dropped rather than
            // delivered out of contract.
            return;
        }
        st.subs
            .retain(|tx| tx.send(TeeItem::Line(line.clone())).is_ok());
        st.lines.push(line);
        if let Some(outcome) = terminal {
            st.done = Some(outcome);
            for tx in st.subs.drain(..) {
                let _ = tx.send(TeeItem::End(outcome));
            }
        }
    }

    /// The terminal outcome, once published.
    pub fn outcome(&self) -> Option<StreamOutcome> {
        self.state.lock().expect("tee lock").done
    }

    /// Lines published so far (replay-buffer length).
    pub fn len(&self) -> usize {
        self.state.lock().expect("tee lock").lines.len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which [`StreamOutcome`] an event terminates a stream with, if any.
pub fn terminal_outcome(ev: &Event) -> Option<StreamOutcome> {
    match ev {
        Event::CampaignDone { .. } => Some(StreamOutcome::Done),
        Event::CampaignFailed { .. } => Some(StreamOutcome::Failed),
        _ => None,
    }
}

/// The [`EventSink`] a daemon campaign runs through: every event goes
/// to the campaign's `events.jsonl` (one [`jsonl::append_line`] write,
/// so `fleet watch` and `fleet report` keep working on the file
/// unchanged) *and* to the tee's subscribers.
#[derive(Debug)]
pub struct TeeSink<W: io::Write + Send> {
    w: W,
    tee: Arc<Tee>,
}

impl<W: io::Write + Send> TeeSink<W> {
    /// Wraps the journal writer (`events.jsonl`) and the tee.
    pub fn new(w: W, tee: Arc<Tee>) -> Self {
        TeeSink { w, tee }
    }
}

impl<W: io::Write + Send> EventSink for TeeSink<W> {
    fn emit(&mut self, ev: &Event) -> io::Result<()> {
        let line = ev.to_line();
        jsonl::append_line(&mut self.w, &line)?;
        self.tee.publish(line, terminal_outcome(ev));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: usize) -> String {
        Event::ShardStart {
            shard: i,
            cells: i + 1,
            skipped: 0,
            host: None,
        }
        .to_line()
    }

    #[test]
    fn late_and_early_subscribers_see_the_identical_stream() {
        let tee = Tee::new();
        let early = tee.subscribe();
        tee.publish(line(0), None);
        let mid = tee.subscribe();
        tee.publish(line(1), None);
        tee.publish(
            Event::CampaignDone {
                cells: 2,
                elapsed_ms: 5,
            }
            .to_line(),
            Some(StreamOutcome::Done),
        );
        let late = tee.subscribe();

        let drain = |rx: Receiver<TeeItem>| rx.into_iter().collect::<Vec<_>>();
        let expect = drain(early);
        assert_eq!(expect.len(), 4, "{expect:?}"); // 3 lines + End
        assert_eq!(expect.last(), Some(&TeeItem::End(StreamOutcome::Done)));
        assert_eq!(drain(mid), expect);
        assert_eq!(drain(late), expect);
    }

    #[test]
    fn publishes_after_the_terminal_are_dropped() {
        let tee = Tee::new();
        tee.publish(line(0), Some(StreamOutcome::Failed));
        tee.publish(line(1), None);
        assert_eq!(tee.len(), 1);
        let items: Vec<_> = tee.subscribe().into_iter().collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1], TeeItem::End(StreamOutcome::Failed));
    }

    #[test]
    fn dead_subscribers_are_evicted() {
        let tee = Tee::new();
        drop(tee.subscribe());
        tee.publish(line(0), None); // must not panic or wedge
        assert_eq!(tee.state.lock().unwrap().subs.len(), 0);
    }

    #[test]
    fn sink_writes_the_file_and_feeds_the_tee() {
        let tee = Arc::new(Tee::new());
        let mut buf = Vec::new();
        {
            let mut sink = TeeSink::new(&mut buf, Arc::clone(&tee));
            sink.emit(&Event::ShardStart {
                shard: 0,
                cells: 3,
                skipped: 0,
                host: None,
            })
            .unwrap();
            sink.emit(&Event::CampaignDone {
                cells: 3,
                elapsed_ms: 1,
            })
            .unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert_eq!(tee.outcome(), Some(StreamOutcome::Done));
        let items: Vec<_> = tee.subscribe().into_iter().collect();
        match &items[0] {
            TeeItem::Line(l) => assert_eq!(Some(l.as_str()), text.lines().next()),
            other => panic!("expected a line, got {other:?}"),
        }
    }
}
