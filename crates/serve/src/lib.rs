//! Resident campaign daemon for the Griffin sweep engine.
//!
//! A one-shot `griffin-cli sweep` pays its startup costs — a cold
//! result cache, freshly allocated simulation scratches, a grid-reuse
//! scope that dies with the process — on every invocation. This crate
//! keeps them resident: [`Daemon`] holds one warm disk-backed
//! [`ResultCache`](griffin_sweep::cache::ResultCache) and one
//! [`ScratchPool`](griffin_sweep::executor::ScratchPool) across
//! campaigns, queues scenario submissions under admission control, and
//! **deduplicates by scenario fingerprint** — two clients submitting
//! the same scenario share one execution and receive the identical
//! event stream.
//!
//! Clients speak `griffin-serve-wire/1` ([`wire`]): line-delimited
//! JSON over a unix socket or TCP ([`net`]), with hello/version
//! negotiation, submission by inline scenario text or daemon-side
//! path, mid-flight subscription, cancellation, aggregate status
//! (`griffin-serve-status/1`), and report retrieval. Each campaign
//! runs through the ordinary fleet coordinator with its events teed
//! ([`tee`]) to every subscriber and journaled to a per-campaign
//! directory, so `fleet watch`, `fleet report` and `--resume` keep
//! working on daemon-run campaigns unchanged — and the final reports
//! are byte-identical to a standalone `griffin-cli sweep` of the same
//! scenario.
//!
//! * [`wire`] — the versioned message set and its parser,
//! * [`tee`] — per-campaign replay-buffer broadcast of event streams,
//! * [`daemon`] — queue, dedup, warm state, retention, drain,
//! * [`net`] — unix/tcp listeners and the per-connection protocol loop,
//! * [`client`] — the connect/submit/subscribe/status helpers the CLI
//!   and the bench probe use.

pub mod client;
pub mod daemon;
pub mod net;
pub mod tee;
pub mod wire;

pub use client::{Client, ClientError};
pub use daemon::{Accepted, Daemon, ServeConfig, ServeError, STATUS_FORMAT};
pub use net::{serve_connections, Listener, ServeAddr};
pub use tee::{Tee, TeeItem, TeeSink};
pub use wire::{Message, ReportKind, ScenarioSource, StreamOutcome, WireError, WIRE_FORMAT};
