//! Client side of the serve wire: connect, handshake, and the
//! request/stream helpers the CLI (`serve submit`, `serve status`,
//! `fleet watch --connect`) and the bench probe are built on.

use std::io::{self, BufRead, BufReader};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use griffin_fleet::jsonl;
use griffin_sweep::json::Json;

use crate::net::{Conn, ServeAddr};
use crate::wire::{Message, ReportKind, ScenarioSource, StreamOutcome, WireError};

/// A connected, handshaken wire client.
#[derive(Debug)]
pub struct Client {
    r: BufReader<Conn>,
    w: Conn,
    /// The server identity from `hello_ok`.
    pub server: String,
    /// The daemon's worker budget from `hello_ok`.
    pub workers: usize,
}

/// A client-side wire failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's line did not parse.
    Wire(WireError),
    /// The server replied `error` (request refused; connection fine).
    Server(String),
    /// The server closed the stream where a reply was required.
    Disconnected,
    /// The server sent a well-formed but out-of-protocol reply.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve connection error: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server refused: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Unexpected(what) => write!(f, "unexpected server reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl Client {
    /// Connects to the daemon and performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Connection failures, a refused hello, or a non-`hello_ok`
    /// first reply.
    pub fn connect(addr: &ServeAddr, client_name: &str) -> Result<Client, ClientError> {
        let conn = match addr {
            ServeAddr::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
            ServeAddr::Tcp(hostport) => Conn::Tcp(TcpStream::connect(hostport.as_str())?),
        };
        let w = conn.try_clone()?;
        let mut client = Client {
            r: BufReader::new(conn),
            w,
            server: String::new(),
            workers: 0,
        };
        client.send(&Message::Hello {
            client: client_name.to_string(),
        })?;
        match client.recv_required()? {
            Message::HelloOk { server, workers } => {
                client.server = server;
                client.workers = workers;
                Ok(client)
            }
            Message::Error { msg } => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        jsonl::append_line(&mut self.w, &msg.to_line())
    }

    /// Receives the next message; `None` on a clean disconnect (EOF or
    /// a torn final line).
    ///
    /// # Errors
    ///
    /// Socket failures or an unparseable complete line.
    pub fn recv(&mut self) -> Result<Option<Message>, ClientError> {
        let mut buf = Vec::new();
        let n = self.r.read_until(b'\n', &mut buf)?;
        if n == 0 || buf.last() != Some(&b'\n') {
            return Ok(None);
        }
        buf.pop();
        let line = String::from_utf8(buf)
            .map_err(|e| ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, e)))?;
        Ok(Some(Message::parse_line(&line)?))
    }

    fn recv_required(&mut self) -> Result<Message, ClientError> {
        self.recv()?.ok_or(ClientError::Disconnected)
    }

    /// Submits a scenario and consumes the whole event stream, calling
    /// `on_event` per event line. Returns the acceptance and the
    /// terminal outcome.
    ///
    /// # Errors
    ///
    /// A refused submission surfaces as [`ClientError::Server`]; a
    /// stream that ends without `stream_end` as
    /// [`ClientError::Disconnected`].
    pub fn submit_and_stream(
        &mut self,
        source: &ScenarioSource,
        name: Option<&str>,
        mut on_event: impl FnMut(&str, &Json),
    ) -> Result<(crate::daemon::Accepted, StreamOutcome), ClientError> {
        let accepted = self.submit(source, name)?;
        let outcome = self.consume_stream(&mut on_event)?;
        Ok((accepted, outcome))
    }

    /// Submits a scenario; the connection is then in streaming mode
    /// (use [`Client::consume_stream`] or [`Client::next_stream_item`]).
    ///
    /// # Errors
    ///
    /// A refused submission surfaces as [`ClientError::Server`].
    pub fn submit(
        &mut self,
        source: &ScenarioSource,
        name: Option<&str>,
    ) -> Result<crate::daemon::Accepted, ClientError> {
        self.send(&Message::Submit {
            source: source.clone(),
            name: name.map(str::to_string),
        })?;
        match self.recv_required()? {
            Message::Accepted {
                campaign,
                scenario_fp,
                cells,
                deduped,
                queue_depth,
            } => Ok(crate::daemon::Accepted {
                campaign,
                scenario_fp,
                cells,
                deduped,
                queue_depth,
            }),
            Message::Error { msg } => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Subscribes to a campaign (`None` = the active one); the
    /// connection is then in streaming mode.
    ///
    /// # Errors
    ///
    /// An unknown campaign surfaces as [`ClientError::Server`] via the
    /// stream's first item; socket failures propagate.
    pub fn subscribe(&mut self, campaign: Option<&str>) -> io::Result<()> {
        self.send(&Message::Subscribe {
            campaign: campaign.map(str::to_string),
        })
    }

    /// The next item of an event stream: `Event` and `StreamEnd` pass
    /// through; `Error` (e.g. unknown campaign after `subscribe`)
    /// surfaces as [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// As [`Client::recv`], plus [`ClientError::Disconnected`] on EOF.
    pub fn next_stream_item(&mut self) -> Result<Message, ClientError> {
        match self.recv_required()? {
            Message::Error { msg } => Err(ClientError::Server(msg)),
            m @ (Message::Event { .. } | Message::StreamEnd { .. }) => Ok(m),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Consumes a stream to its `stream_end`, calling `on_event` with
    /// `(campaign, event)` per event line.
    ///
    /// # Errors
    ///
    /// As [`Client::next_stream_item`].
    pub fn consume_stream(
        &mut self,
        mut on_event: impl FnMut(&str, &Json),
    ) -> Result<StreamOutcome, ClientError> {
        loop {
            match self.next_stream_item()? {
                Message::Event { campaign, event } => on_event(&campaign, &event),
                Message::StreamEnd { outcome, .. } => return Ok(outcome),
                _ => unreachable!("next_stream_item filters other variants"),
            }
        }
    }

    /// Fetches the daemon's `griffin-serve-status/1` object.
    ///
    /// # Errors
    ///
    /// As [`Client::recv`].
    pub fn status(&mut self) -> Result<Json, ClientError> {
        self.send(&Message::Status)?;
        match self.recv_required()? {
            Message::StatusOk { status } => Ok(status),
            Message::Error { msg } => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Cancels a campaign; `true` if it was still cancellable.
    ///
    /// # Errors
    ///
    /// An unknown campaign surfaces as [`ClientError::Server`].
    pub fn cancel(&mut self, campaign: &str) -> Result<bool, ClientError> {
        self.send(&Message::Cancel {
            campaign: campaign.to_string(),
        })?;
        match self.recv_required()? {
            Message::CancelOk { cancelled, .. } => Ok(cancelled),
            Message::Error { msg } => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches a finished campaign's report body.
    ///
    /// # Errors
    ///
    /// A missing report surfaces as [`ClientError::Server`].
    pub fn report(&mut self, campaign: &str, kind: ReportKind) -> Result<String, ClientError> {
        self.send(&Message::Report {
            campaign: campaign.to_string(),
            kind,
        })?;
        match self.recv_required()? {
            Message::ReportOk { body, .. } => Ok(body),
            Message::Error { msg } => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
