//! Socket transport of the serve wire: unix sockets and TCP behind one
//! listener/connection pair, plus the per-connection protocol loop.
//!
//! Reading follows the journal's torn-line discipline: a final
//! fragment without a trailing newline (a client that died
//! mid-message) is *not* a protocol error — the fragment is dropped
//! and the connection counts as cleanly closed, mirroring
//! [`griffin_fleet::split_partial_tail`]. A complete line that fails
//! to parse gets an `error` reply and the connection stays usable.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use griffin_fleet::jsonl;

use crate::daemon::Daemon;
use crate::tee::TeeItem;
use crate::wire::{Message, ReportKind, StreamOutcome, WIRE_FORMAT};

/// How often blocked reads and the accept loop re-check the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// A serve endpoint address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A unix socket path.
    Unix(PathBuf),
    /// A TCP `host:port`.
    Tcp(String),
}

impl ServeAddr {
    /// Parses an address: `unix:<path>` / `tcp:<host:port>` prefixes
    /// are explicit; otherwise anything containing a `/` is a unix
    /// socket path and the rest is TCP.
    pub fn parse(s: &str) -> ServeAddr {
        if let Some(rest) = s.strip_prefix("unix:") {
            ServeAddr::Unix(PathBuf::from(rest))
        } else if let Some(rest) = s.strip_prefix("tcp:") {
            ServeAddr::Tcp(rest.to_string())
        } else if s.contains('/') {
            ServeAddr::Unix(PathBuf::from(s))
        } else {
            ServeAddr::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            ServeAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// One client connection (either transport).
#[derive(Debug)]
pub enum Conn {
    /// Over a unix socket.
    Unix(UnixStream),
    /// Over TCP.
    Tcp(TcpStream),
}

impl Conn {
    pub(crate) fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(t),
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A bound serve listener (either transport).
#[derive(Debug)]
pub enum Listener {
    /// On a unix socket (the path is unlinked on drop).
    Unix(UnixListener, PathBuf),
    /// On TCP.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the address. An existing unix socket file is replaced
    /// (stale sockets of a crashed daemon would otherwise wedge every
    /// restart).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &ServeAddr) -> io::Result<Listener> {
        match addr {
            ServeAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            ServeAddr::Tcp(hostport) => Ok(Listener::Tcp(TcpListener::bind(hostport.as_str())?)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Runs the accept loop until `stop` is raised: each connection gets a
/// handler thread speaking the wire protocol against `daemon`. Returns
/// once the loop has stopped *and* every connection thread has
/// finished (their reads poll `stop`, so none outlives a drain by more
/// than a poll interval plus the in-flight stream tail).
///
/// # Errors
///
/// Propagates listener setup failures; per-connection I/O errors only
/// end that connection.
pub fn serve_connections(
    daemon: &Arc<Daemon>,
    listeners: Vec<Listener>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    for l in &listeners {
        l.set_nonblocking(true)?;
    }
    let handlers: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !stop.load(Ordering::Relaxed) {
        let mut accepted_any = false;
        for l in &listeners {
            match l.accept() {
                Ok(conn) => {
                    accepted_any = true;
                    let daemon = Arc::clone(daemon);
                    let stop = Arc::clone(stop);
                    let h = thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(&daemon, conn, &stop);
                        })?;
                    handlers.lock().expect("handler list lock").push(h);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
        }
        if !accepted_any {
            thread::sleep(POLL);
        }
    }
    for h in handlers.into_inner().expect("handler list lock") {
        let _ = h.join();
    }
    Ok(())
}

/// Reads one newline-terminated line. `Ok(None)` is a clean end of
/// stream — true EOF, or a torn final fragment (mid-message client
/// death), which per the journal's tail rule is dropped, not
/// diagnosed. `stop` is polled during read timeouts.
fn read_line(r: &mut BufReader<Conn>, stop: &Arc<AtomicBool>) -> io::Result<Option<String>> {
    // Accumulate raw bytes: unlike `read_line`, `read_until` keeps
    // partial data in the buffer across timeout errors even when a
    // read lands mid-UTF-8-sequence.
    let mut buf = Vec::new();
    loop {
        match r.read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF. A non-empty buf here is a torn final line:
                // dropped per the tail rule, not a protocol error.
                return Ok(None);
            }
            Ok(_) if buf.last() == Some(&b'\n') => {
                buf.pop();
                let line = String::from_utf8(buf)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                return Ok(Some(line));
            }
            // A short read without newline: keep accumulating.
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn send(w: &mut Conn, msg: &Message) -> io::Result<()> {
    jsonl::append_line(w, &msg.to_line())
}

/// Drives one connection: handshake, then request/reply with streaming
/// interludes after `submit`/`subscribe`.
fn handle_connection(daemon: &Arc<Daemon>, conn: Conn, stop: &Arc<AtomicBool>) -> io::Result<()> {
    conn.set_read_timeout(Some(POLL))?;
    let mut w = conn.try_clone()?;
    let mut r = BufReader::new(conn);

    // Handshake: the first line must be a well-formed hello.
    let Some(line) = read_line(&mut r, stop)? else {
        return Ok(());
    };
    let client = match Message::parse_line(&line) {
        Ok(Message::Hello { client }) => client,
        Ok(_) => {
            send(&mut w, &err_msg(format!("expected hello ({WIRE_FORMAT})")))?;
            return Ok(());
        }
        Err(e) => {
            send(&mut w, &err_msg(e.to_string()))?;
            return Ok(());
        }
    };
    send(
        &mut w,
        &Message::HelloOk {
            server: daemon.config().server.clone(),
            workers: daemon.config().workers,
        },
    )?;

    while let Some(line) = read_line(&mut r, stop)? {
        let msg = match Message::parse_line(&line) {
            Ok(m) => m,
            Err(e) => {
                send(&mut w, &err_msg(e.to_string()))?;
                continue;
            }
        };
        match msg {
            Message::Submit { source, name } => {
                match daemon.submit(&client, &source, name.as_deref()) {
                    Ok(acc) => {
                        let campaign = acc.campaign.clone();
                        send(
                            &mut w,
                            &Message::Accepted {
                                campaign: acc.campaign,
                                scenario_fp: acc.scenario_fp,
                                cells: acc.cells,
                                deduped: acc.deduped,
                                queue_depth: acc.queue_depth,
                            },
                        )?;
                        stream_campaign(daemon, &mut w, &campaign)?;
                    }
                    Err(e) => send(&mut w, &err_msg(e.to_string()))?,
                }
            }
            Message::Subscribe { campaign } => {
                match daemon.subscribe(campaign.as_deref()) {
                    Ok((id, _rx)) => {
                        // Re-subscribe inside stream_campaign for a
                        // single code path; tees replay identically.
                        stream_campaign(daemon, &mut w, &id)?;
                    }
                    Err(e) => send(&mut w, &err_msg(e.to_string()))?,
                }
            }
            Message::Cancel { campaign } => match daemon.cancel(&campaign) {
                Ok(cancelled) => send(
                    &mut w,
                    &Message::CancelOk {
                        campaign,
                        cancelled,
                    },
                )?,
                Err(e) => send(&mut w, &err_msg(e.to_string()))?,
            },
            Message::Status => send(
                &mut w,
                &Message::StatusOk {
                    status: daemon.status(),
                },
            )?,
            Message::Report { campaign, kind } => match daemon.reports(&campaign) {
                Ok((csv, json)) => {
                    let body = match kind {
                        ReportKind::Csv => csv,
                        ReportKind::Json => json,
                    };
                    send(
                        &mut w,
                        &Message::ReportOk {
                            campaign,
                            kind,
                            body,
                        },
                    )?;
                }
                Err(e) => send(&mut w, &err_msg(e.to_string()))?,
            },
            other => {
                send(
                    &mut w,
                    &err_msg(format!("unexpected message in request position: {other:?}")),
                )?;
            }
        }
    }
    Ok(())
}

fn err_msg(msg: String) -> Message {
    Message::Error { msg }
}

/// Streams one campaign to the client: every event line (replay +
/// live), the terminal included, then exactly one `stream_end`.
fn stream_campaign(daemon: &Arc<Daemon>, w: &mut Conn, campaign: &str) -> io::Result<()> {
    let (id, rx) = match daemon.subscribe(Some(campaign)) {
        Ok(sub) => sub,
        Err(e) => return send(w, &err_msg(e.to_string())),
    };
    let mut outcome = StreamOutcome::Failed;
    for item in rx {
        match item {
            TeeItem::Line(line) => {
                // The event line is already canonical JSON; re-wrap it
                // in the wire envelope.
                let event = griffin_sweep::json::Json::parse(&line)
                    .unwrap_or(griffin_sweep::json::Json::Null);
                send(
                    w,
                    &Message::Event {
                        campaign: id.clone(),
                        event,
                    },
                )?;
            }
            TeeItem::End(o) => {
                outcome = o;
                break;
            }
        }
    }
    send(
        w,
        &Message::StreamEnd {
            campaign: id,
            outcome,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parsing_covers_the_three_spellings() {
        assert_eq!(
            ServeAddr::parse("unix:/tmp/griffin.sock"),
            ServeAddr::Unix(PathBuf::from("/tmp/griffin.sock"))
        );
        assert_eq!(
            ServeAddr::parse("/run/griffin/serve.sock"),
            ServeAddr::Unix(PathBuf::from("/run/griffin/serve.sock"))
        );
        assert_eq!(
            ServeAddr::parse("tcp:127.0.0.1:7171"),
            ServeAddr::Tcp("127.0.0.1:7171".into())
        );
        assert_eq!(
            ServeAddr::parse("127.0.0.1:7171"),
            ServeAddr::Tcp("127.0.0.1:7171".into())
        );
    }
}
