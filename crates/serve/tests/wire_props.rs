//! Property tests of the full `griffin-serve-wire/1` message set:
//! every variant serialized and parsed back over randomized field
//! values (including strings that need escaping and embedded fleet
//! event payloads), unknown fields tolerated, malformed lines and
//! unknown format tags rejected with a typed error — plus the
//! torn-line case of a client that dies mid-message.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;

use griffin_serve::wire::sample::build_message;
use griffin_serve::{Message, WireError, WIRE_FORMAT};
use griffin_sweep::json::Json;
use proptest::prelude::*;

/// Serializes `msg` with extra unknown fields injected.
fn with_unknown_fields(msg: &Message) -> String {
    let Json::Obj(mut m) = msg.to_json() else {
        panic!("messages serialize to objects");
    };
    m.insert("aaa_unknown".into(), Json::Num(42.0));
    m.insert(
        "zz_future".into(),
        Json::obj([("nested".into(), Json::Bool(true))]),
    );
    Json::Obj(m).write()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// serialize → parse is the identity on every variant, for any
    /// field values, and the canonical line is a fixpoint.
    #[test]
    fn every_message_roundtrips_for_arbitrary_fields(
        variant in 0usize..14,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
    ) {
        let msg = build_message(variant, a, b, flag);
        let line = msg.to_line();
        prop_assert!(!line.contains('\n'), "one message, one line: {line}");
        let back = Message::parse_line(&line).expect(&line);
        prop_assert_eq!(&back, &msg, "{}", line);
        prop_assert_eq!(back.to_line(), line, "canonical form is a fixpoint");
    }

    /// Unknown fields inside known messages are ignored — a client of
    /// a future griffin-serve-wire/1.x keeps interoperating.
    #[test]
    fn unknown_fields_are_tolerated(
        variant in 0usize..14,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
    ) {
        let msg = build_message(variant, a, b, flag);
        let noisy = Message::parse_line(&with_unknown_fields(&msg))
            .expect("unknown fields ignored");
        prop_assert_eq!(noisy, msg);
    }

    /// An unknown format tag is refused with a typed error — version
    /// negotiation never misreads a future wire.
    #[test]
    fn unknown_format_tags_are_refused(
        variant in 0usize..14,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
    ) {
        let msg = build_message(variant, a, b, flag);
        let Json::Obj(mut m) = msg.to_json() else {
            panic!("messages serialize to objects");
        };
        m.insert("format".into(), Json::Str("griffin-serve-wire/99".into()));
        let err: WireError = Message::parse_line(&Json::Obj(m).write()).unwrap_err();
        prop_assert!(err.msg.contains("unsupported wire format"), "{}", err);
    }

    /// Truncating a message anywhere strictly inside the line never
    /// parses as some other valid message: it is a typed error (or, at
    /// worst for tiny prefixes like `{}`-less fragments, never a
    /// silently different message).
    #[test]
    fn truncated_lines_fail_typed(
        variant in 0usize..14,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
        cut_fraction in 1u64..100,
    ) {
        let msg = build_message(variant, a, b, flag);
        let line = msg.to_line();
        // Cut somewhere strictly inside, on a char boundary.
        let mut cut = (line.len() as u64 * cut_fraction / 100) as usize;
        cut = cut.clamp(1, line.len() - 1);
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        match Message::parse_line(&line[..cut]) {
            Err(_) => {} // the expected outcome: typed rejection
            Ok(reparsed) => {
                // JSON prefixes are almost never valid; if one is (the
                // cut landed exactly after a closing bracket of a
                // complete object — impossible for our single-object
                // lines, which close only at the end), it must not
                // masquerade as a different message.
                prop_assert_eq!(reparsed, msg);
            }
        }
    }
}

/// A client that dies mid-message: the server-side reader must treat
/// the torn final fragment as a clean disconnect (the journal's tail
/// rule), not as a protocol error — and must still parse every
/// complete line that preceded it.
#[test]
fn torn_final_line_is_a_clean_disconnect() {
    let (mut client, server) = UnixStream::pair().expect("socketpair");
    let complete = Message::Hello {
        client: "torn-test".into(),
    }
    .to_line();
    let torn = Message::Status.to_line();
    let torn = &torn[..torn.len() - 4]; // mid-message, no newline
    client
        .write_all(format!("{complete}\n{torn}").as_bytes())
        .expect("write");
    drop(client); // die mid-message

    let mut reader = BufReader::new(server);
    let mut first = String::new();
    reader.read_line(&mut first).expect("first line");
    assert_eq!(first.pop(), Some('\n'));
    let parsed = Message::parse_line(&first).expect("complete line parses");
    assert_eq!(
        parsed,
        Message::Hello {
            client: "torn-test".into()
        }
    );

    // The rest is a newline-less fragment: per the tail rule it is
    // dropped, not parsed — and parsing it anyway must be a typed
    // error, never a misread message.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain to EOF");
    assert!(!rest.is_empty() && !rest.ends_with(b"\n"), "torn fragment");
    let fragment = String::from_utf8(rest).expect("ascii fragment");
    assert!(Message::parse_line(&fragment).is_err());
    assert!(fragment.starts_with(&format!("{{\"format\":\"{WIRE_FORMAT}\"")));
}
