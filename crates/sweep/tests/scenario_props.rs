//! Property tests of the scenario parser: randomized scenarios must
//! round-trip exactly through their canonical text
//! (`parse(canonical(s)) == s`), their fingerprints must be stable
//! across the round-trip, and `to_spec` must stay lossless
//! (`to_spec(from_spec(x)) == x`).

use griffin_core::arch::{ArchKind, ArchSpec};
use griffin_core::category::DnnCategory;
use griffin_sim::bandwidth::BwPolicy;
use griffin_sim::config::{Fidelity, Priority, SimConfig};
use griffin_sim::window::BorrowWindow;
use griffin_sweep::scenario::{ArchEntry, FleetSettings, Scenario};
use griffin_sweep::spec::{ArchFamily, WorkloadSpec};
use proptest::prelude::*;

/// A deterministic pseudo-random scenario from integer draws. Field
/// values are derived (not drawn independently) so one test signature
/// covers many shapes: every workload variant, every arch-entry
/// variant, sampled/exact fidelity, both priorities, both bandwidth
/// policies, and present/absent fleet sections.
fn build_scenario(a: u64, b: u64, seed: u64, flag: bool) -> Scenario {
    let pick = |x: u64, n: u64| (x % n) as usize;

    let workloads = vec![
        match pick(a, 3) {
            0 => WorkloadSpec::Suite(griffin_workloads::suite::Benchmark::ALL[pick(b, 6)]),
            1 => WorkloadSpec::Synthetic {
                // Names stress quoting: quotes, backslashes, commas.
                name: format!("syn \"{a}\" \\ {b},\nline\ttab\rcr"),
                layers: 1 + pick(b, 7),
            },
            _ => WorkloadSpec::AdHoc {
                name: format!("gemm-{a}"),
                m: 1 + pick(a, 64),
                k: 1 + pick(b, 512),
                n: 1 + pick(a ^ b, 64),
                a_density: (pick(a, 100) as f64) / 100.0,
                b_density: (pick(b, 100) as f64) / 100.0,
            },
        },
        WorkloadSpec::Synthetic {
            name: "fixed".into(),
            layers: 2,
        },
    ];

    let categories = match pick(b, 4) {
        0 => vec![DnnCategory::B],
        1 => vec![DnnCategory::A, DnnCategory::Dense],
        2 => vec![DnnCategory::AB, DnnCategory::B],
        _ => vec![DnnCategory::Dense],
    };

    // One of each entry kind; the custom point varies windows/shuffle.
    // (SparseB customs are excluded: their default names could collide
    // with the SparseB family entry below, which the parser rejects.)
    let kind = [ArchKind::SparseA, ArchKind::SparseAB][pick(a ^ 3, 2)];
    let win = BorrowWindow::new(1 + pick(a, 8), pick(b, 4), pick(a ^ b, 3));
    let mut builder = ArchSpec::builder(kind).shuffle(flag);
    if kind.routes_a() {
        builder = builder.a(win);
    }
    if kind.routes_b() {
        builder = builder.b(win);
    }
    if a.is_multiple_of(5) {
        builder = builder.name(format!("custom \"{b}\""));
    }
    let custom = builder.build().expect("valid windows");
    let archs = vec![
        ArchEntry::Preset("griffin".into()),
        ArchEntry::Family(ArchFamily::SparseB {
            max_fanin: 4 + pick(b, 8),
        }),
        ArchEntry::Custom(custom),
    ];

    let sim = SimConfig {
        fidelity: if flag {
            Fidelity::Exact
        } else {
            Fidelity::Sampled {
                tiles: 1 + pick(a, 40),
                seed,
            }
        },
        priority: if a.is_multiple_of(2) {
            Priority::OwnFirst
        } else {
            Priority::EarliestFirst
        },
        bw: if b.is_multiple_of(2) {
            BwPolicy::Provisioned
        } else {
            BwPolicy::Fixed {
                a_bytes_per_cycle: 1.0 + (pick(a, 1000) as f64) / 8.0,
                b_bytes_per_cycle: 256.0,
                dram_bytes_per_cycle: 62.5,
            }
        },
        ..SimConfig::default()
    };

    let fleet = (a.is_multiple_of(3)).then(|| FleetSettings {
        shards: 1 + pick(b, 16),
        spawn: b.is_multiple_of(2),
        heartbeat_every: (a.is_multiple_of(7)).then(|| pick(a, 100)),
        max_shard_retries: (b.is_multiple_of(5)).then(|| pick(b, 5)),
        heartbeat_timeout_ms: (a.is_multiple_of(11)).then_some(seed % 10_000),
        hosts: if a.is_multiple_of(2) {
            (0..1 + pick(b, 4))
                .map(|i| format!("host\"{i}\"\\{}", pick(a, 7)))
                .collect()
        } else {
            Vec::new()
        },
    });

    Scenario {
        name: format!("prop \"{a}\"\n\\{b}"),
        workloads,
        categories,
        archs,
        seeds: vec![seed, seed ^ a, u64::MAX - (b % 17)],
        sim,
        fleet,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn canonical_text_roundtrips_exactly(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
    ) {
        let s = build_scenario(a, b, seed, flag);
        let text = s.canonical();
        let back = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("canonical text must parse: {e}\n{text}"));
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.fingerprint(), s.fingerprint());
        // Canonicalization is idempotent.
        prop_assert_eq!(back.canonical(), text);
    }

    #[test]
    fn spec_conversion_is_lossless(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        flag in proptest::bool::ANY,
    ) {
        let s = build_scenario(a, b, seed, flag);
        let spec = s.to_spec();
        // from_spec is a right inverse of to_spec on specs.
        let back = Scenario::from_spec(&spec, s.fleet.clone());
        prop_assert_eq!(back.to_spec(), spec);
        // And the re-derived scenario's canonical form still parses.
        prop_assert_eq!(
            Scenario::parse(&back.canonical()).expect("canonical parses").to_spec(),
            s.to_spec()
        );
    }
}
