//! End-to-end campaign tests: determinism across worker counts, cache
//! accounting (memory and disk), fingerprint stability and CSV/JSON
//! round-trips of real campaign output.

use std::path::PathBuf;

use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_sim::config::{Fidelity, SimConfig};
use griffin_sweep::report::{parse_csv, parse_json, to_csv, to_json};
use griffin_sweep::{pareto_designs, run_campaign, summarize, ArchFamily, ResultCache, SweepSpec};

/// A fast campaign that still exercises every axis: 2 workloads ×
/// 2 categories × 5 architectures × 2 seeds = 40 cells.
fn campaign() -> SweepSpec {
    SweepSpec::new("itest")
        .adhoc_layer("gemm-a", 32, 256, 32, 0.5, 0.2)
        .synthetic("syn", 2)
        .categories([DnnCategory::B, DnnCategory::Dense])
        .archs([
            ArchSpec::dense(),
            ArchSpec::sparse_b_star(),
            ArchSpec::sparse_a_star(),
            ArchSpec::sparse_ab_star(),
            ArchSpec::griffin(),
        ])
        .seeds([7, 8])
        .sim(SimConfig {
            fidelity: Fidelity::Sampled { tiles: 4, seed: 2 },
            ..SimConfig::default()
        })
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("griffin-sweep-it-{tag}-{}", std::process::id()))
}

#[test]
fn deterministic_across_worker_counts() {
    // Fresh cache per worker count: all three runs simulate everything.
    let baseline = run_campaign(&campaign(), &ResultCache::in_memory(), 1).unwrap();
    assert_eq!(baseline.cells.len(), 40);
    for workers in [4, 8] {
        let r = run_campaign(&campaign(), &ResultCache::in_memory(), workers).unwrap();
        assert_eq!(
            r.cells, baseline.cells,
            "worker count {workers} changed results"
        );
        // Byte-level determinism of the machine-readable reports.
        assert_eq!(to_csv(&r), to_csv(&baseline));
        assert_eq!(to_json(&r), to_json(&baseline));
    }
}

#[test]
fn cache_accounting_within_and_across_campaigns() {
    let cache = ResultCache::in_memory();
    let spec = campaign();
    let first = run_campaign(&spec, &cache, 4).unwrap();
    assert_eq!(first.cache.misses, 40);
    assert_eq!(first.cache.stores, 40);
    assert_eq!(first.cache.hits, 0);

    // Identical campaign: 100 % hits.
    let second = run_campaign(&spec, &cache, 4).unwrap();
    assert_eq!(second.cache.hits, 40);
    assert_eq!(second.cache.misses, 0);
    assert!(second.cache.hit_rate() > 0.99);
    assert_eq!(second.cells, first.cells);

    // Overlapping campaign (one extra arch): only the new cells miss.
    let extended = spec.clone().arch(ArchSpec::tcl_b());
    let third = run_campaign(&extended, &cache, 4).unwrap();
    assert_eq!(third.cells.len(), 48);
    assert_eq!(third.cache.hits, 40);
    assert_eq!(third.cache.misses, 8);
}

#[test]
fn disk_cache_persists_across_cache_instances() {
    let dir = tmp_dir("disk");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = campaign();

    let first = run_campaign(&spec, &ResultCache::at_dir(&dir).unwrap(), 2).unwrap();
    assert_eq!(first.cache.misses, 40);

    // A fresh cache instance simulates a new process: everything is
    // served from disk, and the report is identical.
    let revived = ResultCache::at_dir(&dir).unwrap();
    let second = run_campaign(&spec, &revived, 2).unwrap();
    assert_eq!(second.cache.hits, 40);
    assert_eq!(second.cache.disk_hits, 40);
    assert_eq!(second.cache.misses, 0);
    assert_eq!(second.cells, first.cells);
    assert_eq!(to_csv(&second), to_csv(&first));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fingerprints_are_stable_across_processes() {
    // Fingerprints derive from a canonical byte encoding, not from
    // std's hasher — the literal below must never change, or every
    // on-disk cache silently invalidates.
    let cells = campaign().cells();
    let fp = cells[0].fingerprint(&campaign().sim);
    assert_eq!(fp.to_string(), "1599bde4e5e524875a36cbd8b07ab604");

    // And they key the *content*: any axis change moves the print.
    let mut other = campaign().cells();
    other[0].seed ^= 1;
    assert_ne!(other[0].fingerprint(&campaign().sim), fp);
}

#[test]
fn csv_and_json_roundtrip_real_campaign_output() {
    let report = run_campaign(&campaign(), &ResultCache::in_memory(), 4).unwrap();

    let csv = to_csv(&report);
    assert_eq!(parse_csv(&csv).unwrap(), report.cells);

    let json = to_json(&report);
    let back = parse_json(&json).unwrap();
    assert_eq!(back.campaign, report.campaign);
    assert_eq!(back.cells, report.cells);

    // Serialization is a pure function of the cells.
    assert_eq!(to_csv(&back), csv);
    assert_eq!(to_json(&back), json);
}

#[test]
fn family_campaign_supports_pareto_extraction() {
    // A small Sparse.B family on one ad-hoc layer, two categories.
    let spec = SweepSpec::new("family")
        .adhoc_layer("gemm", 32, 256, 32, 1.0, 0.2)
        .categories([DnnCategory::B, DnnCategory::Dense])
        .family(ArchFamily::SparseB { max_fanin: 4 })
        .sim(SimConfig {
            fidelity: Fidelity::Sampled { tiles: 4, seed: 2 },
            ..SimConfig::default()
        });
    assert!(spec.archs.len() >= 4, "family axis enumerated");
    let report = run_campaign(&spec, &ResultCache::in_memory(), 4).unwrap();

    let s = summarize(&report);
    assert_eq!(s.cells, spec.cell_count());
    assert!(
        s.geomean_speedup > 1.0,
        "sparse family beats dense on a pruned layer"
    );

    let front = pareto_designs(&report, &spec.archs, DnnCategory::B, DnnCategory::Dense);
    assert!(!front.is_empty());
    assert!(front.len() <= spec.archs.len());
    // The front is monotone: sparse metric falls, dense metric rises.
    for w in front.windows(2) {
        assert!(w[0].sparse_metric >= w[1].sparse_metric);
        assert!(w[0].dense_metric <= w[1].dense_metric);
    }
}
