//! Stable content fingerprints for scenario cells.
//!
//! A scenario's fingerprint must be identical across processes, runs and
//! platforms so that the on-disk cache survives restarts — `std`'s
//! `Hasher`s make no such guarantee, so this module hashes a canonical
//! byte encoding of every field through two independent FNV-1a streams
//! (128 bits total, making accidental collisions across campaign sizes
//! of interest vanishingly unlikely).

use std::fmt;

use griffin_core::arch::{ArchKind, ArchSpec};
use griffin_core::category::DnnCategory;
use griffin_sim::bandwidth::BwPolicy;
use griffin_sim::config::{Fidelity, Priority, SimConfig};
use griffin_sim::window::BorrowWindow;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A 128-bit stable content fingerprint, rendered as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint(hi, lo))
    }
}

/// Incremental stable hasher: two FNV-1a streams with distinct offsets.
#[derive(Debug, Clone)]
pub struct Hasher {
    h1: u64,
    h2: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher at the FNV offset bases.
    pub fn new() -> Self {
        // Standard FNV-1a offset basis and a second, independent stream
        // seeded from it.
        Hasher {
            h1: 0xcbf2_9ce4_8422_2325,
            h2: 0x84222325_cbf29ce4,
        }
    }

    /// Feeds raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        for &x in b {
            self.h1 = (self.h1 ^ u64::from(x)).wrapping_mul(FNV_PRIME);
            self.h2 = (self.h2 ^ u64::from(x).rotate_left(17)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Feeds a `usize` widened to 64 bits.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Feeds an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Feeds a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.bytes(&[u8::from(v)])
    }

    /// Feeds a string, length-prefixed so concatenations cannot collide.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len());
        self.bytes(s.as_bytes())
    }

    /// Feeds any fingerprintable value.
    pub fn feed<T: Fingerprintable + ?Sized>(&mut self, v: &T) -> &mut Self {
        v.feed(self);
        self
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.h1, self.h2)
    }
}

/// Types with a canonical byte encoding for stable fingerprinting.
pub trait Fingerprintable {
    /// Feeds the canonical encoding of `self` into the hasher.
    fn feed(&self, h: &mut Hasher);
}

impl Fingerprintable for BorrowWindow {
    fn feed(&self, h: &mut Hasher) {
        h.usize(self.d1).usize(self.d2).usize(self.d3);
    }
}

impl Fingerprintable for ArchSpec {
    fn feed(&self, h: &mut Hasher) {
        // The kind discriminant is encoded by name: stable across
        // recompilations even if the enum is reordered.
        let kind = match self.kind {
            ArchKind::Dense => "dense",
            ArchKind::SparseA => "sparse_a",
            ArchKind::SparseB => "sparse_b",
            ArchKind::SparseAB => "sparse_ab",
            ArchKind::Griffin => "griffin",
            ArchKind::TclB => "tcl_b",
            ArchKind::TensorDash => "tensordash",
            ArchKind::SparTenA => "sparten_a",
            ArchKind::SparTenB => "sparten_b",
            ArchKind::SparTenAB => "sparten_ab",
            ArchKind::Cnvlutin => "cnvlutin",
            ArchKind::CambriconX => "cambricon_x",
        };
        // The display name participates because the cost model keys its
        // calibrated Table VII rows on it (e.g. "Sparse.B*" vs the
        // parametrically priced "Sparse.B(4,0,1),on" — same routing
        // hardware, different published cost).
        h.str(kind)
            .str(&self.name)
            .feed(&self.a)
            .feed(&self.b)
            .bool(self.shuffle);
    }
}

impl Fingerprintable for DnnCategory {
    fn feed(&self, h: &mut Hasher) {
        let s = match self {
            DnnCategory::Dense => "dense",
            DnnCategory::A => "a",
            DnnCategory::B => "b",
            DnnCategory::AB => "ab",
        };
        h.str(s);
    }
}

impl Fingerprintable for SimConfig {
    fn feed(&self, h: &mut Hasher) {
        h.usize(self.core.k0)
            .usize(self.core.n0)
            .usize(self.core.m0);
        match self.priority {
            Priority::OwnFirst => h.str("own_first"),
            Priority::EarliestFirst => h.str("earliest_first"),
        };
        match self.fidelity {
            Fidelity::Exact => {
                h.str("exact");
            }
            Fidelity::Sampled { tiles, seed } => {
                h.str("sampled").usize(tiles).u64(seed);
            }
        }
        match self.bw {
            BwPolicy::Provisioned => {
                h.str("provisioned");
            }
            BwPolicy::Fixed {
                a_bytes_per_cycle,
                b_bytes_per_cycle,
                dram_bytes_per_cycle,
            } => {
                h.str("fixed")
                    .f64(a_bytes_per_cycle)
                    .f64(b_bytes_per_cycle)
                    .f64(dram_bytes_per_cycle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("nope"), None);
        assert_eq!(Fingerprint::parse(&"x".repeat(32)), None);
    }

    #[test]
    fn identical_inputs_identical_outputs() {
        let a = Hasher::new()
            .feed(&ArchSpec::griffin())
            .feed(&SimConfig::default())
            .finish();
        let b = Hasher::new()
            .feed(&ArchSpec::griffin())
            .feed(&SimConfig::default())
            .finish();
        assert_eq!(a, b);
    }

    #[test]
    fn field_order_and_values_matter() {
        let base = Hasher::new().feed(&ArchSpec::sparse_b_star()).finish();
        let other = Hasher::new().feed(&ArchSpec::sparse_a_star()).finish();
        assert_ne!(base, other);

        let w1 = Hasher::new().feed(&BorrowWindow::new(1, 2, 3)).finish();
        let w2 = Hasher::new().feed(&BorrowWindow::new(3, 2, 1)).finish();
        assert_ne!(w1, w2);
    }

    #[test]
    fn string_length_prefix_prevents_concat_collisions() {
        let a = Hasher::new().str("ab").str("c").finish();
        let b = Hasher::new().str("a").str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn sim_config_fields_reach_the_hash() {
        use griffin_sim::config::Fidelity;
        let base = Hasher::new().feed(&SimConfig::default()).finish();
        let exact = Hasher::new().feed(&SimConfig::exact()).finish();
        assert_ne!(base, exact);
        let tiles = SimConfig {
            fidelity: Fidelity::Sampled {
                tiles: 25,
                seed: 0xC0FFEE,
            },
            ..SimConfig::default()
        };
        assert_ne!(Hasher::new().feed(&tiles).finish(), base);
    }

    /// Golden value: guards the canonical encoding against accidental
    /// changes, which would silently invalidate every on-disk cache.
    /// The literal is intentionally hard-coded — recomputing it through
    /// `Hasher` would let encoding changes slip past the test. If it
    /// ever needs to change, treat that as a cache-format bump.
    #[test]
    fn golden_fingerprint_is_stable() {
        let fp = Hasher::new().feed(&ArchSpec::griffin()).finish();
        assert_eq!(fp.to_string(), "c3510ee59e02cfe748de0eac5722248c");
        // The encoding the literal corresponds to, for documentation:
        // str("griffin"), str("Griffin"), the two windows, bool(true).
        let mut h = Hasher::new();
        h.str("griffin").str("Griffin");
        h.usize(2).usize(0).usize(0);
        h.usize(2).usize(0).usize(1);
        h.bool(true);
        assert_eq!(h.finish(), fp);
    }

    #[test]
    fn same_hardware_different_name_gets_distinct_fingerprints() {
        // The cost model prices "Sparse.B*" from its calibrated Table
        // VII row but "Sparse.B(4,0,1),on" parametrically — they must
        // not share a cache slot.
        let starred = ArchSpec::sparse_b_star();
        let enumerated = ArchSpec::sparse_b(starred.b, true);
        assert_eq!(starred.b, enumerated.b);
        let f1 = Hasher::new().feed(&starred).finish();
        let f2 = Hasher::new().feed(&enumerated).finish();
        assert_ne!(f1, f2);
    }
}
