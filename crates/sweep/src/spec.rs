//! Declarative sweep specifications: the campaign grid.
//!
//! A [`SweepSpec`] names a full campaign as the cartesian product of
//! four axes — workloads × categories × architectures × seeds — under
//! one simulator configuration. Architecture axes can be spelled out
//! explicitly or pulled from the paper's §VI design-space enumerations
//! ([`griffin_core::dse`]). Cell order is deterministic — row-major
//! over workload (slowest) → category → seed → architecture (fastest),
//! see [`SweepSpec::cells`] — which is what lets the executor return
//! identical reports for any worker count.

use griffin_core::accelerator::Workload;
use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::dse;
use griffin_sim::config::SimConfig;
use griffin_workloads::suite::{build_workload, Benchmark};
use griffin_workloads::synth::{synthetic_layer, synthetic_workload};

use crate::fingerprint::{Fingerprintable, Hasher};

/// One workload axis entry: either a Table-IV benchmark network, a
/// multi-layer synthetic network, or a single ad-hoc GEMM layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// One of the six Table-IV benchmarks, masks rebuilt per seed.
    Suite(Benchmark),
    /// `synthetic_workload` with the given layer count.
    Synthetic {
        /// Display name.
        name: String,
        /// Number of layers.
        layers: usize,
    },
    /// A single ad-hoc GEMM layer with explicit densities (the
    /// category axis still controls morphing, not the masks).
    AdHoc {
        /// Display name.
        name: String,
        /// GEMM M dimension.
        m: usize,
        /// GEMM K dimension.
        k: usize,
        /// GEMM N dimension.
        n: usize,
        /// Activation nonzero fraction.
        a_density: f64,
        /// Weight nonzero fraction.
        b_density: f64,
    },
}

impl WorkloadSpec {
    /// Display name of the workload.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Suite(b) => b.info().name.to_string(),
            WorkloadSpec::Synthetic { name, .. } | WorkloadSpec::AdHoc { name, .. } => name.clone(),
        }
    }

    /// Builds the concrete workload for one category and seed.
    ///
    /// # Errors
    ///
    /// Returns the shape validation error for degenerate ad-hoc
    /// dimensions; suite and synthetic workloads never fail.
    pub fn build(
        &self,
        category: DnnCategory,
        seed: u64,
    ) -> Result<Workload, griffin_tensor::error::TensorError> {
        match self {
            WorkloadSpec::Suite(b) => Ok(build_workload(*b, category, seed)),
            WorkloadSpec::Synthetic { name, layers } => {
                synthetic_workload(name, category, *layers, seed)
            }
            WorkloadSpec::AdHoc {
                name,
                m,
                k,
                n,
                a_density,
                b_density,
            } => {
                let layer = synthetic_layer(*m, *k, *n, *b_density, *a_density, seed)?;
                Ok(Workload::new(name.clone(), category, vec![layer]))
            }
        }
    }
}

impl Fingerprintable for WorkloadSpec {
    fn feed(&self, h: &mut Hasher) {
        match self {
            WorkloadSpec::Suite(b) => {
                h.str("suite").str(b.info().name);
            }
            WorkloadSpec::Synthetic { name, layers } => {
                h.str("synthetic").str(name).usize(*layers);
            }
            WorkloadSpec::AdHoc {
                name,
                m,
                k,
                n,
                a_density,
                b_density,
            } => {
                h.str("adhoc")
                    .str(name)
                    .usize(*m)
                    .usize(*k)
                    .usize(*n)
                    .f64(*a_density)
                    .f64(*b_density);
            }
        }
    }
}

/// An architecture-family enumeration used as a spec axis (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchFamily {
    /// `Sparse.A` under AMUX/BMUX fan-in limits.
    SparseA {
        /// Mux fan-in bound.
        max_fanin: usize,
    },
    /// `Sparse.B` under the AMUX fan-in limit.
    SparseB {
        /// Mux fan-in bound.
        max_fanin: usize,
    },
    /// `Sparse.AB` under the AMUX fan-in limit, `da3 = 0`.
    SparseAB {
        /// Mux fan-in bound.
        max_fanin: usize,
    },
}

impl ArchFamily {
    /// The enumerated design points of this family.
    pub fn enumerate(&self) -> Vec<ArchSpec> {
        match self {
            ArchFamily::SparseA { max_fanin } => dse::enumerate_sparse_a(*max_fanin),
            ArchFamily::SparseB { max_fanin } => dse::enumerate_sparse_b(*max_fanin),
            ArchFamily::SparseAB { max_fanin } => dse::enumerate_sparse_ab(*max_fanin),
        }
    }
}

/// A declarative sweep campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Campaign name (appears in reports).
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Category axis.
    pub categories: Vec<DnnCategory>,
    /// Architecture axis.
    pub archs: Vec<ArchSpec>,
    /// Mask-seed axis.
    pub seeds: Vec<u64>,
    /// Simulator configuration shared by every cell.
    pub sim: SimConfig,
}

/// One cell of the campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the deterministic grid order.
    pub index: usize,
    /// Workload axis value.
    pub workload: WorkloadSpec,
    /// Category axis value.
    pub category: DnnCategory,
    /// Architecture axis value.
    pub arch: ArchSpec,
    /// Mask seed.
    pub seed: u64,
}

impl SweepSpec {
    /// An empty campaign with the default simulator configuration.
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpec {
            name: name.into(),
            workloads: Vec::new(),
            categories: Vec::new(),
            archs: Vec::new(),
            seeds: vec![0],
            sim: SimConfig::default(),
        }
    }

    /// Adds one benchmark workload.
    pub fn benchmark(mut self, b: Benchmark) -> Self {
        self.workloads.push(WorkloadSpec::Suite(b));
        self
    }

    /// Adds all six Table-IV benchmarks.
    pub fn full_suite(mut self) -> Self {
        self.workloads
            .extend(Benchmark::ALL.into_iter().map(WorkloadSpec::Suite));
        self
    }

    /// Adds a synthetic multi-layer workload.
    pub fn synthetic(mut self, name: impl Into<String>, layers: usize) -> Self {
        self.workloads.push(WorkloadSpec::Synthetic {
            name: name.into(),
            layers,
        });
        self
    }

    /// Adds a single ad-hoc GEMM layer.
    #[allow(clippy::too_many_arguments)]
    pub fn adhoc_layer(
        mut self,
        name: impl Into<String>,
        m: usize,
        k: usize,
        n: usize,
        a_density: f64,
        b_density: f64,
    ) -> Self {
        self.workloads.push(WorkloadSpec::AdHoc {
            name: name.into(),
            m,
            k,
            n,
            a_density,
            b_density,
        });
        self
    }

    /// Adds one category.
    pub fn category(mut self, c: DnnCategory) -> Self {
        self.categories.push(c);
        self
    }

    /// Adds several categories.
    pub fn categories(mut self, cs: impl IntoIterator<Item = DnnCategory>) -> Self {
        self.categories.extend(cs);
        self
    }

    /// Adds one architecture.
    pub fn arch(mut self, a: ArchSpec) -> Self {
        self.archs.push(a);
        self
    }

    /// Adds several architectures.
    pub fn archs(mut self, archs: impl IntoIterator<Item = ArchSpec>) -> Self {
        self.archs.extend(archs);
        self
    }

    /// Adds a whole enumerated §VI design family.
    pub fn family(self, f: ArchFamily) -> Self {
        self.archs(f.enumerate())
    }

    /// Replaces the seed axis (the default is the single seed 0).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the simulator configuration.
    pub fn sim(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Whether every axis is populated.
    pub fn is_runnable(&self) -> bool {
        !self.workloads.is_empty()
            && !self.categories.is_empty()
            && !self.archs.is_empty()
            && !self.seeds.is_empty()
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.workloads.len() * self.categories.len() * self.archs.len() * self.seeds.len()
    }

    /// Materializes the grid in its deterministic row-major order:
    /// workload (slowest) → category → seed → architecture (fastest).
    /// Architectures vary fastest so that consecutive cells share a
    /// workload, which the executor exploits for workload reuse.
    pub fn cells(&self) -> Vec<Cell> {
        let mut v = Vec::with_capacity(self.cell_count());
        let mut index = 0;
        for w in &self.workloads {
            for &c in &self.categories {
                for &s in &self.seeds {
                    for a in &self.archs {
                        v.push(Cell {
                            index,
                            workload: w.clone(),
                            category: c,
                            arch: a.clone(),
                            seed: s,
                        });
                        index += 1;
                    }
                }
            }
        }
        v
    }
}

impl Cell {
    /// The stable content fingerprint of this scenario: everything the
    /// simulation result depends on (workload, category, architecture,
    /// seed, simulator configuration) and nothing it doesn't (grid
    /// position, worker count).
    pub fn fingerprint(&self, sim: &SimConfig) -> crate::fingerprint::Fingerprint {
        let mut h = Hasher::new();
        h.str("griffin-sweep-cell-v1")
            .feed(&self.workload)
            .feed(&self.category)
            .feed(&self.arch)
            .u64(self.seed)
            .feed(sim);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new("t")
            .benchmark(Benchmark::AlexNet)
            .synthetic("syn", 2)
            .category(DnnCategory::B)
            .category(DnnCategory::Dense)
            .arch(ArchSpec::dense())
            .arch(ArchSpec::sparse_b_star())
            .seeds([1, 2])
    }

    #[test]
    fn cell_count_is_product_of_axes() {
        let s = spec();
        assert_eq!(s.cell_count(), 2 * 2 * 2 * 2);
        assert_eq!(s.cells().len(), s.cell_count());
        assert!(s.is_runnable());
        assert!(!SweepSpec::new("empty").is_runnable());
    }

    #[test]
    fn cells_are_indexed_in_order() {
        let cells = spec().cells();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Arch varies fastest.
        assert_eq!(cells[0].arch, ArchSpec::dense());
        assert_eq!(cells[1].arch, ArchSpec::sparse_b_star());
        assert_eq!(cells[0].seed, cells[1].seed);
    }

    #[test]
    fn family_axis_enumerates_dse() {
        let s = SweepSpec::new("fam").family(ArchFamily::SparseB { max_fanin: 8 });
        assert_eq!(s.archs, griffin_core::dse::enumerate_sparse_b(8));
        assert!(s.archs.len() > 30, "family axis should be a real sweep");
    }

    #[test]
    fn fingerprints_distinguish_every_axis() {
        let sim = SimConfig::default();
        let cells = spec().cells();
        let mut fps: Vec<_> = cells.iter().map(|c| c.fingerprint(&sim)).collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), cells.len(), "every cell fingerprint distinct");
    }

    #[test]
    fn fingerprint_ignores_grid_position() {
        let sim = SimConfig::default();
        let mut a = spec().cells();
        let b = spec().cells();
        // Same logical cell at a different index keeps its fingerprint.
        a[3].index = 999;
        assert_eq!(a[3].fingerprint(&sim), b[3].fingerprint(&sim));
    }

    #[test]
    fn adhoc_layers_build() {
        let w = WorkloadSpec::AdHoc {
            name: "l".into(),
            m: 32,
            k: 128,
            n: 32,
            a_density: 0.5,
            b_density: 0.2,
        };
        let wl = w.build(DnnCategory::AB, 7).unwrap();
        assert_eq!(wl.layers.len(), 1);
        assert!(wl.layers[0].b_density() < 0.4);
    }

    #[test]
    fn suite_builds_respect_seed() {
        let w = WorkloadSpec::Suite(Benchmark::AlexNet);
        let a = w.build(DnnCategory::B, 1).unwrap();
        let b = w.build(DnnCategory::B, 1).unwrap();
        assert_eq!(a.layers[1].b, b.layers[1].b, "same seed, same masks");
    }
}
