//! Declarative scenario files: whole campaigns as data.
//!
//! A scenario file is a small TOML-subset document that defines
//! everything a campaign needs — workload axes, categories,
//! architectures (named presets, §VI design families, or arbitrary
//! validated window combinations), mask seeds, the simulator
//! configuration, and optional fleet settings — so campaigns can be
//! exchanged, versioned, and reproduced as artifacts instead of shell
//! history. The parser is dependency-free and line-anchored: every
//! error carries the 1-based line it was found on.
//!
//! # Format
//!
//! ```toml
//! [scenario]
//! name = "sweep-bert-b"        # campaign name (reports, cache identity)
//! seeds = [42, 43]             # mask seeds (default [0])
//! categories = ["b"]           # dense | a | b | ab
//!
//! [sim]                        # optional; defaults = SimConfig::default()
//! fidelity = "sampled"         # or "exact"
//! tiles = 12                   # sampled tiles per layer
//! sample_seed = 0xBEEF         # tile-subset RNG seed
//! priority = "own_first"       # or "earliest_first"
//! core = [16, 16, 4]           # (K0, N0, M0)
//! bandwidth = "provisioned"    # or [a, b, dram] bytes/cycle
//!
//! [[workload]]
//! suite = "bert"               # a Table-IV benchmark …
//!
//! [[workload]]
//! synthetic = "pruned"         # … or a synthetic network …
//! layers = 4
//!
//! [[workload]]
//! adhoc = "gemm"               # … or one ad-hoc GEMM layer
//! m = 32
//! k = 256
//! n = 32
//! a_density = 1.0
//! b_density = 0.2
//!
//! [[arch]]
//! preset = "baseline"          # a named preset (or "table7-lineup")
//!
//! [[arch]]
//! family = "b"                 # a §VI design-family enumeration
//! fanin = 8
//!
//! [[arch]]
//! kind = "sparse.b"            # an arbitrary validated design point
//! b = [8, 0, 1]
//! shuffle = true
//! # name = "…"                 # optional display-name override
//!
//! [fleet]                      # optional defaults for `fleet --scenario`
//! shards = 2
//! spawn = true
//! hosts = ["local:h0", "db@rack2"]   # multi-host worker placement
//! ```
//!
//! # Identity
//!
//! [`Scenario::to_spec`] is lossless: the resulting [`SweepSpec`]
//! fingerprints cell-for-cell identically to the equivalent hand-built
//! spec, so disk caches and fleet journals produced by token-based CLI
//! invocations keep hitting. [`Scenario::fingerprint`] hashes the
//! [`Scenario::canonical`] text — the provenance identity that fleet
//! runs record in the journal header and `campaign_start` event.
//!
//! The module doubles as the **token registry**: the valid
//! workload/category/architecture/family token sets (and their
//! parsers) that the CLI and the scenario parser consume uniformly,
//! plus nearest-match suggestions for typos.

use std::fmt;
use std::path::Path;

use griffin_core::arch::{ArchKind, ArchSpec};
use griffin_core::category::DnnCategory;
use griffin_sim::bandwidth::BwPolicy;
use griffin_sim::config::{Fidelity, Priority, SimConfig};
use griffin_tensor::shape::CoreDims;
use griffin_workloads::suite::Benchmark;

use crate::fingerprint::{Fingerprint, Hasher};
use crate::spec::{ArchFamily, SweepSpec, WorkloadSpec};

// ---------------------------------------------------------------------
// Token registry
// ---------------------------------------------------------------------

/// Valid workload tokens (Table-IV benchmarks plus `synth`).
pub const WORKLOAD_TOKENS: &[&str] = &[
    "alexnet",
    "googlenet",
    "resnet50",
    "inceptionv3",
    "mobilenetv2",
    "bert",
    "synth",
];

/// Valid `[[workload]] suite = …` tokens (the six benchmarks).
pub const SUITE_TOKENS: &[&str] = &[
    "alexnet",
    "googlenet",
    "resnet50",
    "inceptionv3",
    "mobilenetv2",
    "bert",
];

/// Valid category tokens.
pub const CATEGORY_TOKENS: &[&str] = &["dense", "a", "b", "ab"];

/// Valid architecture preset tokens (canonical spellings).
pub const ARCH_TOKENS: &[&str] = &[
    "baseline",
    "sparse.a*",
    "sparse.b*",
    "sparse.ab*",
    "griffin",
    "tcl.b",
    "tensordash",
    "sparten.a",
    "sparten.b",
    "sparten.ab",
    "cnvlutin",
    "cambricon-x",
];

/// Valid `[[arch]] preset = …` tokens ([`ARCH_TOKENS`] plus the
/// Table VII lineup).
pub const PRESET_TOKENS: &[&str] = &[
    "baseline",
    "sparse.a*",
    "sparse.b*",
    "sparse.ab*",
    "griffin",
    "tcl.b",
    "tensordash",
    "sparten.a",
    "sparten.b",
    "sparten.ab",
    "cnvlutin",
    "cambricon-x",
    "table7-lineup",
];

/// Valid design-family tokens.
pub const FAMILY_TOKENS: &[&str] = &["a", "b", "ab"];

/// Parses a Table-IV benchmark token (with the common aliases).
pub fn parse_suite(s: &str) -> Option<Benchmark> {
    match s.to_ascii_lowercase().as_str() {
        "alexnet" => Some(Benchmark::AlexNet),
        "googlenet" => Some(Benchmark::GoogleNet),
        "resnet50" | "resnet" => Some(Benchmark::ResNet50),
        "inceptionv3" | "inception" => Some(Benchmark::InceptionV3),
        "mobilenetv2" | "mobilenet" => Some(Benchmark::MobileNetV2),
        "bert" => Some(Benchmark::Bert),
        _ => None,
    }
}

/// Parses a workload token: a benchmark, or `synth` (the standard
/// 4-layer synthetic network used for fast smoke campaigns).
pub fn parse_workload(s: &str) -> Option<WorkloadSpec> {
    if s.eq_ignore_ascii_case("synth") {
        return Some(WorkloadSpec::Synthetic {
            name: "synth".into(),
            layers: 4,
        });
    }
    parse_suite(s).map(WorkloadSpec::Suite)
}

/// Parses a category token.
pub fn parse_category(s: &str) -> Option<DnnCategory> {
    match s.to_ascii_lowercase().as_str() {
        "dense" => Some(DnnCategory::Dense),
        "a" | "dnn.a" => Some(DnnCategory::A),
        "b" | "dnn.b" => Some(DnnCategory::B),
        "ab" | "dnn.ab" => Some(DnnCategory::AB),
        _ => None,
    }
}

/// The category's stable token (inverse of [`parse_category`]).
pub fn category_token(c: DnnCategory) -> &'static str {
    match c {
        DnnCategory::Dense => "dense",
        DnnCategory::A => "a",
        DnnCategory::B => "b",
        DnnCategory::AB => "ab",
    }
}

/// The named presets: canonical token → constructor.
fn presets() -> [(&'static str, ArchSpec); 12] {
    [
        ("baseline", ArchSpec::dense()),
        ("sparse.a*", ArchSpec::sparse_a_star()),
        ("sparse.b*", ArchSpec::sparse_b_star()),
        ("sparse.ab*", ArchSpec::sparse_ab_star()),
        ("griffin", ArchSpec::griffin()),
        ("tcl.b", ArchSpec::tcl_b()),
        ("tensordash", ArchSpec::tensordash()),
        ("sparten.a", ArchSpec::sparten_a()),
        ("sparten.b", ArchSpec::sparten_b()),
        ("sparten.ab", ArchSpec::sparten_ab()),
        ("cnvlutin", ArchSpec::cnvlutin()),
        ("cambricon-x", ArchSpec::cambricon_x()),
    ]
}

/// Parses an architecture preset token (with the common aliases).
pub fn parse_arch(s: &str) -> Option<ArchSpec> {
    let canon = match s.to_ascii_lowercase().as_str() {
        "baseline" | "dense" => "baseline",
        "sparse.a" | "a*" | "sparse.a*" => "sparse.a*",
        "sparse.b" | "b*" | "sparse.b*" => "sparse.b*",
        "sparse.ab" | "ab*" | "sparse.ab*" => "sparse.ab*",
        "griffin" => "griffin",
        "tcl" | "tcl.b" | "bittactical" => "tcl.b",
        "tensordash" | "tdash" => "tensordash",
        "sparten" | "sparten.ab" => "sparten.ab",
        "sparten.a" => "sparten.a",
        "sparten.b" => "sparten.b",
        "cnvlutin" => "cnvlutin",
        "cambricon" | "cambricon-x" => "cambricon-x",
        _ => return None,
    };
    presets()
        .into_iter()
        .find(|(t, _)| *t == canon)
        .map(|p| p.1)
}

/// The canonical preset token of a spec, when it *is* a preset.
pub fn preset_token(a: &ArchSpec) -> Option<&'static str> {
    presets().into_iter().find(|(_, p)| p == a).map(|p| p.0)
}

/// Parses a design-family token into an [`ArchFamily`] axis.
pub fn parse_family(s: &str, fanin: usize) -> Option<ArchFamily> {
    match s.to_ascii_lowercase().as_str() {
        "a" | "sparse.a" => Some(ArchFamily::SparseA { max_fanin: fanin }),
        "b" | "sparse.b" => Some(ArchFamily::SparseB { max_fanin: fanin }),
        "ab" | "sparse.ab" => Some(ArchFamily::SparseAB { max_fanin: fanin }),
        _ => None,
    }
}

/// The family's stable token.
pub fn family_token(f: ArchFamily) -> &'static str {
    match f {
        ArchFamily::SparseA { .. } => "a",
        ArchFamily::SparseB { .. } => "b",
        ArchFamily::SparseAB { .. } => "ab",
    }
}

/// Parses an `[[arch]] preset = …` token: a preset, or the whole
/// Table VII lineup.
pub fn parse_preset(s: &str) -> Option<Vec<ArchSpec>> {
    if matches!(
        s.to_ascii_lowercase().as_str(),
        "table7-lineup" | "lineup" | "table7"
    ) {
        return Some(ArchSpec::table7_lineup());
    }
    parse_arch(s).map(|a| vec![a])
}

/// Edit distance for typo suggestions (two rows of the DP table).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1; b.len() + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest candidate to a mistyped token, if any is close enough to
/// be a plausible intention (edit distance ≤ 2, or a prefix match).
pub fn suggest<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let lower = input.to_ascii_lowercase();
    candidates
        .iter()
        .map(|c| (edit_distance(&lower, c), *c))
        .filter(|(d, c)| *d <= 2 || c.starts_with(&lower) || lower.starts_with(*c))
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

/// A ready-to-print diagnostic for an unknown token: names the valid
/// set and the nearest match.
pub fn unknown_token(kind: &str, token: &str, candidates: &[&str]) -> String {
    let mut msg = format!("unknown {kind} `{token}`");
    if let Some(s) = suggest(token, candidates) {
        msg.push_str(&format!(" (did you mean `{s}`?)"));
    }
    let plural = match kind.strip_suffix('y') {
        Some(stem) => format!("{stem}ies"),
        None => format!("{kind}s"),
    };
    msg.push_str(&format!("\n  valid {plural}: {}", candidates.join(" ")));
    msg
}

// ---------------------------------------------------------------------
// Scenario model
// ---------------------------------------------------------------------

/// One declarative architecture-axis entry, as spelled in the file
/// (kept unexpanded so the canonical form stays readable).
#[derive(Debug, Clone, PartialEq)]
pub enum ArchEntry {
    /// A named preset by canonical token (or `table7-lineup`).
    Preset(String),
    /// A §VI design-family enumeration.
    Family(ArchFamily),
    /// An arbitrary validated design point.
    Custom(ArchSpec),
}

impl ArchEntry {
    /// The concrete architectures this entry contributes, in order.
    ///
    /// # Panics
    ///
    /// On a `Preset` token that is not in [`PRESET_TOKENS`]. Entries
    /// produced by [`Scenario::parse`] / [`Scenario::from_spec`] are
    /// always valid; only hand-constructed `ArchEntry::Preset` values
    /// can carry an unknown token.
    pub fn expand(&self) -> Vec<ArchSpec> {
        match self {
            ArchEntry::Preset(tok) => parse_preset(tok)
                .unwrap_or_else(|| panic!("unknown preset token `{tok}` in ArchEntry::Preset")),
            ArchEntry::Family(f) => f.enumerate(),
            ArchEntry::Custom(a) => vec![a.clone()],
        }
    }
}

/// Fleet settings a scenario may carry as defaults for
/// `fleet --scenario` (explicit CLI flags still win).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSettings {
    /// Shard count.
    pub shards: usize,
    /// Run shards as subprocesses.
    pub spawn: bool,
    /// Heartbeat cadence in cell completions.
    pub heartbeat_every: Option<usize>,
    /// Retries per failed shard.
    pub max_shard_retries: Option<usize>,
    /// Liveness deadline for spawned workers (ms).
    pub heartbeat_timeout_ms: Option<u64>,
    /// Host labels for multi-host fleets (empty = single machine).
    /// Labels name exec transports; the CLI maps each onto a local or
    /// ssh worker launcher, and `--hosts` on the command line wins.
    pub hosts: Vec<String>,
}

/// Scenario provenance: which file a campaign came from, and the
/// fingerprint of its canonical form. Fleet runs record this in the
/// journal header and the `campaign_start` event so result artifacts
/// stay traceable to the scenario that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioProvenance {
    /// Scenario file name (base name, host-independent).
    pub file: String,
    /// [`Scenario::fingerprint`] of the canonical form.
    pub fp: Fingerprint,
}

/// A parsed, validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Campaign name.
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Category axis.
    pub categories: Vec<DnnCategory>,
    /// Architecture axis, unexpanded.
    pub archs: Vec<ArchEntry>,
    /// Mask-seed axis.
    pub seeds: Vec<u64>,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Optional fleet defaults.
    pub fleet: Option<FleetSettings>,
}

/// A line-anchored scenario error (`line` is 1-based; 0 means the
/// failure concerns the file as a whole).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line of the offending construct (0 = whole file).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for ScenarioError {}

fn fail<T>(line: usize, msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError {
        line,
        msg: msg.into(),
    })
}

// ---------------------------------------------------------------------
// Raw TOML-subset reader
// ---------------------------------------------------------------------

/// A raw scalar/array value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i128),
    Float(f64),
    Bool(bool),
    Arr(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Arr(_) => "array",
        }
    }
}

/// One `key = value` binding with its source line.
#[derive(Debug, Clone)]
struct Binding {
    line: usize,
    key: String,
    value: Value,
}

/// One table: a section header line plus its bindings.
#[derive(Debug, Clone)]
struct Table {
    header_line: usize,
    bindings: Vec<Binding>,
}

impl Table {
    fn get(&self, key: &str) -> Option<&Binding> {
        self.bindings.iter().find(|b| b.key == key)
    }

    /// Errors on any binding whose key is not in `known`.
    fn check_keys(&self, section: &str, known: &[&str]) -> Result<(), ScenarioError> {
        for b in &self.bindings {
            if !known.contains(&b.key.as_str()) {
                let mut msg = format!("unknown key `{}` in [{section}]", b.key);
                if let Some(s) = suggest(&b.key, known) {
                    msg.push_str(&format!(" (did you mean `{s}`?)"));
                }
                return fail(b.line, msg);
            }
        }
        Ok(())
    }
}

/// Strips a trailing `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, ScenarioError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return fail(line, format!("unterminated string `{s}`"));
        };
        // Reject an interior closing quote (`"a" junk "b"`).
        let mut out = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    other => {
                        return fail(
                            line,
                            format!("bad string escape `\\{}`", other.unwrap_or(' ')),
                        )
                    }
                },
                '"' => return fail(line, format!("unexpected `\"` inside string `{s}`")),
                c => out.push(c),
            }
        }
        return Ok(Value::Str(out));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return match i128::from_str_radix(hex, 16) {
            Ok(v) => Ok(Value::Int(v)),
            Err(_) => fail(line, format!("bad hex integer `{s}`")),
        };
    }
    if let Ok(v) = s.parse::<i128>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = s.parse::<f64>() {
        if v.is_finite() {
            return Ok(Value::Float(v));
        }
    }
    fail(line, format!("bad value `{s}`"))
}

/// Splits an array body at top-level commas (strings may contain
/// commas).
fn split_array_items(s: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                items.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    items.push(&s[start..]);
    items
}

fn parse_value(s: &str, line: usize) -> Result<Value, ScenarioError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return fail(line, format!("unterminated array `{s}`"));
        };
        if inner.trim().is_empty() {
            return Ok(Value::Arr(Vec::new()));
        }
        let items = split_array_items(inner)
            .into_iter()
            .map(|item| parse_scalar(item, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Value::Arr(items));
    }
    parse_scalar(s, line)
}

/// The raw document: the three scalar sections plus the two
/// array-of-tables sections.
#[derive(Debug, Default)]
struct RawDoc {
    scenario: Option<Table>,
    sim: Option<Table>,
    fleet: Option<Table>,
    workloads: Vec<Table>,
    archs: Vec<Table>,
}

fn read_document(text: &str) -> Result<RawDoc, ScenarioError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Section {
        None,
        Scenario,
        Sim,
        Fleet,
        Workload,
        Arch,
    }
    let mut doc = RawDoc::default();
    let mut section = Section::None;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = strip_comment(raw).trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(h) = stripped.strip_prefix("[[") {
            let Some(name) = h.strip_suffix("]]") else {
                return fail(line, format!("malformed section header `{stripped}`"));
            };
            section = match name.trim() {
                "workload" => {
                    doc.workloads.push(Table {
                        header_line: line,
                        bindings: Vec::new(),
                    });
                    Section::Workload
                }
                "arch" => {
                    doc.archs.push(Table {
                        header_line: line,
                        bindings: Vec::new(),
                    });
                    Section::Arch
                }
                other => {
                    return fail(
                        line,
                        format!(
                            "unknown section `[[{other}]]` (expected [[workload]] or [[arch]])"
                        ),
                    )
                }
            };
            continue;
        }
        if let Some(h) = stripped.strip_prefix('[') {
            let Some(name) = h.strip_suffix(']') else {
                return fail(line, format!("malformed section header `{stripped}`"));
            };
            let (slot, sec) = match name.trim() {
                "scenario" => (&mut doc.scenario, Section::Scenario),
                "sim" => (&mut doc.sim, Section::Sim),
                "fleet" => (&mut doc.fleet, Section::Fleet),
                other => {
                    let mut msg = format!("unknown section `[{other}]`");
                    if let Some(s) = suggest(other, &["scenario", "sim", "fleet"]) {
                        msg.push_str(&format!(" (did you mean `[{s}]`?)"));
                    }
                    return fail(line, msg);
                }
            };
            if slot.is_some() {
                return fail(line, format!("duplicate section `[{}]`", name.trim()));
            }
            *slot = Some(Table {
                header_line: line,
                bindings: Vec::new(),
            });
            section = sec;
            continue;
        }
        let Some((key, value)) = stripped.split_once('=') else {
            return fail(line, format!("expected `key = value`, got `{stripped}`"));
        };
        let key = key.trim().to_string();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return fail(line, format!("bad key `{key}`"));
        }
        let value = parse_value(value, line)?;
        let table = match section {
            Section::None => return fail(line, "key outside any section (start with [scenario])"),
            Section::Scenario => doc.scenario.as_mut().expect("current section"),
            Section::Sim => doc.sim.as_mut().expect("current section"),
            Section::Fleet => doc.fleet.as_mut().expect("current section"),
            Section::Workload => doc.workloads.last_mut().expect("current section"),
            Section::Arch => doc.archs.last_mut().expect("current section"),
        };
        if table.get(&key).is_some() {
            return fail(line, format!("duplicate key `{key}`"));
        }
        table.bindings.push(Binding { line, key, value });
    }
    Ok(doc)
}

// ---------------------------------------------------------------------
// Typed accessors
// ---------------------------------------------------------------------

fn as_str(b: &Binding) -> Result<&str, ScenarioError> {
    match &b.value {
        Value::Str(s) => Ok(s),
        other => fail(
            b.line,
            format!("`{}` must be a string, got {}", b.key, other.type_name()),
        ),
    }
}

fn as_bool(b: &Binding) -> Result<bool, ScenarioError> {
    match &b.value {
        Value::Bool(v) => Ok(*v),
        other => fail(
            b.line,
            format!("`{}` must be a boolean, got {}", b.key, other.type_name()),
        ),
    }
}

fn int_in_range(b: &Binding, v: i128, min: i128, max: i128) -> Result<i128, ScenarioError> {
    if v < min || v > max {
        return fail(
            b.line,
            format!("`{}` = {v} out of range [{min}, {max}]", b.key),
        );
    }
    Ok(v)
}

fn as_usize(b: &Binding, min: usize) -> Result<usize, ScenarioError> {
    match &b.value {
        Value::Int(v) => Ok(int_in_range(b, *v, min as i128, usize::MAX as i128)? as usize),
        other => fail(
            b.line,
            format!("`{}` must be an integer, got {}", b.key, other.type_name()),
        ),
    }
}

fn as_u64(b: &Binding) -> Result<u64, ScenarioError> {
    match &b.value {
        Value::Int(v) => Ok(int_in_range(b, *v, 0, u64::MAX as i128)? as u64),
        other => fail(
            b.line,
            format!("`{}` must be an integer, got {}", b.key, other.type_name()),
        ),
    }
}

fn as_f64(b: &Binding) -> Result<f64, ScenarioError> {
    match &b.value {
        Value::Int(v) => Ok(*v as f64),
        Value::Float(v) => Ok(*v),
        other => fail(
            b.line,
            format!("`{}` must be a number, got {}", b.key, other.type_name()),
        ),
    }
}

fn scalar_u64(v: &Value, b: &Binding) -> Result<u64, ScenarioError> {
    match v {
        Value::Int(x) if *x >= 0 && *x <= u64::MAX as i128 => Ok(*x as u64),
        _ => fail(
            b.line,
            format!("`{}` items must be non-negative integers", b.key),
        ),
    }
}

/// A `[d1, d2, d3]` borrowing-window array.
fn as_window(b: &Binding) -> Result<griffin_sim::window::BorrowWindow, ScenarioError> {
    let Value::Arr(items) = &b.value else {
        return fail(b.line, format!("`{}` must be an array [d1, d2, d3]", b.key));
    };
    if items.len() != 3 {
        return fail(
            b.line,
            format!(
                "`{}` must have exactly 3 distances, got {}",
                b.key,
                items.len()
            ),
        );
    }
    let mut d = [0usize; 3];
    for (i, item) in items.iter().enumerate() {
        d[i] = scalar_u64(item, b)? as usize;
    }
    Ok(griffin_sim::window::BorrowWindow::new(d[0], d[1], d[2]))
}

// ---------------------------------------------------------------------
// Section builders
// ---------------------------------------------------------------------

fn build_scenario_section(
    t: &Table,
) -> Result<(String, Vec<u64>, Vec<DnnCategory>), ScenarioError> {
    t.check_keys("scenario", &["name", "seeds", "categories"])?;
    let name = match t.get("name") {
        Some(b) => {
            let s = as_str(b)?;
            if s.trim().is_empty() {
                return fail(b.line, "`name` must not be empty");
            }
            s.to_string()
        }
        None => return fail(t.header_line, "[scenario] requires `name`"),
    };
    let seeds = match t.get("seeds") {
        None => vec![0],
        Some(b) => {
            let Value::Arr(items) = &b.value else {
                return fail(b.line, "`seeds` must be an array of integers");
            };
            if items.is_empty() {
                return fail(b.line, "`seeds` must not be empty");
            }
            items
                .iter()
                .map(|v| scalar_u64(v, b))
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    let categories = match t.get("categories") {
        None => return fail(t.header_line, "[scenario] requires `categories`"),
        Some(b) => {
            let Value::Arr(items) = &b.value else {
                return fail(b.line, "`categories` must be an array of strings");
            };
            if items.is_empty() {
                return fail(b.line, "`categories` must not be empty");
            }
            items
                .iter()
                .map(|v| match v {
                    Value::Str(s) => parse_category(s).ok_or_else(|| ScenarioError {
                        line: b.line,
                        msg: unknown_token("category", s, CATEGORY_TOKENS),
                    }),
                    other => fail(
                        b.line,
                        format!(
                            "`categories` items must be strings, got {}",
                            other.type_name()
                        ),
                    ),
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    Ok((name, seeds, categories))
}

fn build_sim_section(t: &Table) -> Result<SimConfig, ScenarioError> {
    t.check_keys(
        "sim",
        &[
            "fidelity",
            "tiles",
            "sample_seed",
            "priority",
            "core",
            "bandwidth",
        ],
    )?;
    let mut cfg = SimConfig::default();
    let exact = match t.get("fidelity") {
        None => false,
        Some(b) => match as_str(b)? {
            "sampled" => false,
            "exact" => true,
            other => {
                return fail(
                    b.line,
                    format!("`fidelity` must be \"sampled\" or \"exact\", got \"{other}\""),
                )
            }
        },
    };
    if exact {
        for key in ["tiles", "sample_seed"] {
            if let Some(b) = t.get(key) {
                return fail(
                    b.line,
                    format!("`{key}` makes no sense with fidelity = \"exact\""),
                );
            }
        }
        cfg.fidelity = Fidelity::Exact;
    } else {
        let (mut tiles, mut seed) = match Fidelity::default() {
            Fidelity::Sampled { tiles, seed } => (tiles, seed),
            Fidelity::Exact => unreachable!("default fidelity is sampled"),
        };
        if let Some(b) = t.get("tiles") {
            tiles = as_usize(b, 1)?;
        }
        if let Some(b) = t.get("sample_seed") {
            seed = as_u64(b)?;
        }
        cfg.fidelity = Fidelity::Sampled { tiles, seed };
    }
    if let Some(b) = t.get("priority") {
        cfg.priority = match as_str(b)? {
            "own_first" => Priority::OwnFirst,
            "earliest_first" => Priority::EarliestFirst,
            other => {
                return fail(
                    b.line,
                    format!(
                        "`priority` must be \"own_first\" or \"earliest_first\", got \"{other}\""
                    ),
                )
            }
        };
    }
    if let Some(b) = t.get("core") {
        let Value::Arr(items) = &b.value else {
            return fail(b.line, "`core` must be an array [k0, n0, m0]");
        };
        if items.len() != 3 {
            return fail(b.line, "`core` must have exactly 3 dimensions");
        }
        let mut d = [0usize; 3];
        for (i, item) in items.iter().enumerate() {
            d[i] = scalar_u64(item, b)? as usize;
            if d[i] == 0 {
                return fail(b.line, "`core` dimensions must be positive");
            }
        }
        cfg.core = CoreDims {
            k0: d[0],
            n0: d[1],
            m0: d[2],
        };
    }
    if let Some(b) = t.get("bandwidth") {
        cfg.bw = match &b.value {
            Value::Str(s) if s == "provisioned" => BwPolicy::Provisioned,
            Value::Str(s) => {
                return fail(
                    b.line,
                    format!("`bandwidth` must be \"provisioned\" or [a, b, dram], got \"{s}\""),
                )
            }
            Value::Arr(items) if items.len() == 3 => {
                let mut v = [0.0f64; 3];
                for (i, item) in items.iter().enumerate() {
                    v[i] = match item {
                        Value::Int(x) => *x as f64,
                        Value::Float(x) => *x,
                        other => {
                            return fail(
                                b.line,
                                format!(
                                    "`bandwidth` items must be numbers, got {}",
                                    other.type_name()
                                ),
                            )
                        }
                    };
                    if v[i] <= 0.0 || v[i].is_nan() {
                        return fail(b.line, "`bandwidth` budgets must be positive");
                    }
                }
                BwPolicy::Fixed {
                    a_bytes_per_cycle: v[0],
                    b_bytes_per_cycle: v[1],
                    dram_bytes_per_cycle: v[2],
                }
            }
            _ => {
                return fail(
                    b.line,
                    "`bandwidth` must be \"provisioned\" or [a, b, dram]",
                )
            }
        };
    }
    Ok(cfg)
}

fn build_workload(t: &Table) -> Result<WorkloadSpec, ScenarioError> {
    let variants: Vec<&str> = ["suite", "synthetic", "adhoc"]
        .into_iter()
        .filter(|k| t.get(k).is_some())
        .collect();
    if variants.len() != 1 {
        return fail(
            t.header_line,
            "[[workload]] must set exactly one of `suite`, `synthetic`, `adhoc`",
        );
    }
    match variants[0] {
        "suite" => {
            t.check_keys("workload", &["suite"])?;
            let b = t.get("suite").expect("checked");
            let tok = as_str(b)?;
            let bench = parse_suite(tok).ok_or_else(|| ScenarioError {
                line: b.line,
                msg: unknown_token("benchmark", tok, SUITE_TOKENS),
            })?;
            Ok(WorkloadSpec::Suite(bench))
        }
        "synthetic" => {
            t.check_keys("workload", &["synthetic", "layers"])?;
            let name = as_str(t.get("synthetic").expect("checked"))?.to_string();
            let layers = match t.get("layers") {
                Some(b) => as_usize(b, 1)?,
                None => return fail(t.header_line, "synthetic workload requires `layers`"),
            };
            Ok(WorkloadSpec::Synthetic { name, layers })
        }
        _ => {
            t.check_keys(
                "workload",
                &["adhoc", "m", "k", "n", "a_density", "b_density"],
            )?;
            let name = as_str(t.get("adhoc").expect("checked"))?.to_string();
            let mut dims = [0usize; 3];
            for (i, key) in ["m", "k", "n"].iter().enumerate() {
                let Some(b) = t.get(key) else {
                    return fail(t.header_line, format!("adhoc workload requires `{key}`"));
                };
                dims[i] = as_usize(b, 1)?;
            }
            let mut dens = [0.0f64; 2];
            for (i, key) in ["a_density", "b_density"].iter().enumerate() {
                let Some(b) = t.get(key) else {
                    return fail(t.header_line, format!("adhoc workload requires `{key}`"));
                };
                dens[i] = as_f64(b)?;
                if !(0.0..=1.0).contains(&dens[i]) {
                    return fail(b.line, format!("`{key}` must be within [0, 1]"));
                }
            }
            Ok(WorkloadSpec::AdHoc {
                name,
                m: dims[0],
                k: dims[1],
                n: dims[2],
                a_density: dens[0],
                b_density: dens[1],
            })
        }
    }
}

fn build_arch(t: &Table) -> Result<ArchEntry, ScenarioError> {
    let variants: Vec<&str> = ["preset", "family", "kind"]
        .into_iter()
        .filter(|k| t.get(k).is_some())
        .collect();
    if variants.len() != 1 {
        return fail(
            t.header_line,
            "[[arch]] must set exactly one of `preset`, `family`, `kind`",
        );
    }
    match variants[0] {
        "preset" => {
            t.check_keys("arch", &["preset"])?;
            let b = t.get("preset").expect("checked");
            let tok = as_str(b)?;
            // Store the canonical spelling so equal entries compare equal.
            let canon = match parse_arch(tok) {
                Some(a) => preset_token(&a).expect("parse_arch yields presets"),
                None if parse_preset(tok).is_some() => "table7-lineup",
                None => return fail(b.line, unknown_token("preset", tok, PRESET_TOKENS)),
            };
            Ok(ArchEntry::Preset(canon.to_string()))
        }
        "family" => {
            t.check_keys("arch", &["family", "fanin"])?;
            let fanin = match t.get("fanin") {
                Some(b) => as_usize(b, 1)?,
                None => 8,
            };
            let b = t.get("family").expect("checked");
            let tok = as_str(b)?;
            let family = parse_family(tok, fanin).ok_or_else(|| ScenarioError {
                line: b.line,
                msg: unknown_token("family", tok, FAMILY_TOKENS),
            })?;
            Ok(ArchEntry::Family(family))
        }
        _ => {
            t.check_keys("arch", &["kind", "a", "b", "shuffle", "name"])?;
            let kb = t.get("kind").expect("checked");
            let tok = as_str(kb)?;
            let Some(kind) = ArchKind::from_token(tok) else {
                let tokens: Vec<&str> = ArchKind::ALL.iter().map(|k| k.token()).collect();
                return fail(kb.line, unknown_token("kind", tok, &tokens));
            };
            let mut builder = ArchSpec::builder(kind);
            if let Some(b) = t.get("a") {
                builder = builder.a(as_window(b)?);
            }
            if let Some(b) = t.get("b") {
                builder = builder.b(as_window(b)?);
            }
            if let Some(b) = t.get("shuffle") {
                builder = builder.shuffle(as_bool(b)?);
            }
            if let Some(b) = t.get("name") {
                builder = builder.name(as_str(b)?);
            }
            let spec = builder.build().map_err(|e| {
                // Anchor the error at the most relevant key line.
                let line = match &e {
                    griffin_core::arch::ArchError::WindowOutOfRange { side, .. }
                    | griffin_core::arch::ArchError::UnusedWindow { side, .. } => {
                        t.get(&side.to_string()).map_or(kb.line, |b| b.line)
                    }
                    griffin_core::arch::ArchError::UnusedShuffle { .. } => {
                        t.get("shuffle").map_or(kb.line, |b| b.line)
                    }
                    _ => t.get("name").map_or(kb.line, |b| b.line),
                };
                ScenarioError {
                    line,
                    msg: e.to_string(),
                }
            })?;
            Ok(ArchEntry::Custom(spec))
        }
    }
}

fn build_fleet_section(t: &Table) -> Result<FleetSettings, ScenarioError> {
    t.check_keys(
        "fleet",
        &[
            "shards",
            "spawn",
            "heartbeat",
            "max_shard_retries",
            "heartbeat_timeout_ms",
            "hosts",
        ],
    )?;
    let shards = match t.get("shards") {
        Some(b) => as_usize(b, 1)?,
        None => return fail(t.header_line, "[fleet] requires `shards`"),
    };
    let spawn = match t.get("spawn") {
        Some(b) => as_bool(b)?,
        None => false,
    };
    let heartbeat_every = t.get("heartbeat").map(|b| as_usize(b, 0)).transpose()?;
    let max_shard_retries = t
        .get("max_shard_retries")
        .map(|b| as_usize(b, 0))
        .transpose()?;
    let heartbeat_timeout_ms = t.get("heartbeat_timeout_ms").map(as_u64).transpose()?;
    let hosts = match t.get("hosts") {
        None => Vec::new(),
        Some(b) => {
            let Value::Arr(items) = &b.value else {
                return fail(b.line, "`hosts` must be an array of strings");
            };
            if items.is_empty() {
                return fail(b.line, "`hosts` must not be empty");
            }
            let mut hosts = Vec::with_capacity(items.len());
            let mut seen = std::collections::BTreeSet::new();
            for v in items {
                let Value::Str(s) = v else {
                    return fail(
                        b.line,
                        format!("`hosts` items must be strings, got {}", v.type_name()),
                    );
                };
                if s.trim().is_empty() {
                    return fail(b.line, "`hosts` items must not be empty");
                }
                if !seen.insert(s.clone()) {
                    return fail(b.line, format!("duplicate host `{s}` in `hosts`"));
                }
                hosts.push(s.clone());
            }
            hosts
        }
    };
    Ok(FleetSettings {
        shards,
        spawn,
        heartbeat_every,
        max_shard_retries,
        heartbeat_timeout_ms,
        hosts,
    })
}

// ---------------------------------------------------------------------
// Scenario API
// ---------------------------------------------------------------------

impl Scenario {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// A line-anchored [`ScenarioError`] on any malformed line, unknown
    /// section/key/token, duplicate key, out-of-range window, duplicate
    /// expanded architecture name, or empty axis.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = read_document(text)?;
        let Some(scenario_table) = &doc.scenario else {
            return fail(0, "missing [scenario] section");
        };
        let (name, seeds, categories) = build_scenario_section(scenario_table)?;
        let sim = match &doc.sim {
            Some(t) => build_sim_section(t)?,
            None => SimConfig::default(),
        };
        let fleet = doc.fleet.as_ref().map(build_fleet_section).transpose()?;
        if doc.workloads.is_empty() {
            return fail(0, "scenario defines no [[workload]] entries");
        }
        let workloads = doc
            .workloads
            .iter()
            .map(build_workload)
            .collect::<Result<Vec<_>, _>>()?;
        if doc.archs.is_empty() {
            return fail(0, "scenario defines no [[arch]] entries");
        }
        let mut archs = Vec::with_capacity(doc.archs.len());
        let mut seen_names = std::collections::BTreeSet::new();
        for t in &doc.archs {
            let entry = build_arch(t)?;
            for a in entry.expand() {
                if !seen_names.insert(a.name.clone()) {
                    return fail(
                        t.header_line,
                        format!("duplicate architecture name `{}`", a.name),
                    );
                }
            }
            archs.push(entry);
        }
        Ok(Scenario {
            name,
            workloads,
            categories,
            archs,
            seeds,
            sim,
            fleet,
        })
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// As [`Scenario::parse`]; I/O failures report as line 0.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError {
            line: 0,
            msg: format!("cannot read {}: {e}", path.display()),
        })?;
        Scenario::parse(&text)
    }

    /// The concrete architecture axis, entries expanded in order.
    pub fn expanded_archs(&self) -> Vec<ArchSpec> {
        self.archs.iter().flat_map(ArchEntry::expand).collect()
    }

    /// Lossless conversion into the executable [`SweepSpec`]: the
    /// result fingerprints cell-for-cell identically to a hand-built
    /// spec with the same axes, so existing caches and journals keep
    /// matching.
    pub fn to_spec(&self) -> SweepSpec {
        SweepSpec {
            name: self.name.clone(),
            workloads: self.workloads.clone(),
            categories: self.categories.clone(),
            archs: self.expanded_archs(),
            seeds: self.seeds.clone(),
            sim: self.sim,
        }
    }

    /// The inverse of [`Scenario::to_spec`]: re-expresses a spec as a
    /// scenario (presets are recognized by value; everything else
    /// becomes a `Custom` entry). `to_spec(from_spec(s)) == s` holds
    /// for every spec.
    pub fn from_spec(spec: &SweepSpec, fleet: Option<FleetSettings>) -> Scenario {
        let archs = spec
            .archs
            .iter()
            .map(|a| match preset_token(a) {
                Some(tok) => ArchEntry::Preset(tok.to_string()),
                None => ArchEntry::Custom(a.clone()),
            })
            .collect();
        Scenario {
            name: spec.name.clone(),
            workloads: spec.workloads.clone(),
            categories: spec.categories.clone(),
            archs,
            seeds: spec.seeds.clone(),
            sim: spec.sim,
            fleet,
        }
    }

    /// The canonical scenario text: fully explicit, deterministic, and
    /// exactly re-parseable (`parse(canonical(s)) == s`).
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        // Every escape parse_scalar understands, so line-breaking and
        // quoting characters in names survive the round-trip.
        let esc = |s: &str| {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
                .replace('\t', "\\t")
                .replace('\r', "\\r")
        };
        out.push_str("[scenario]\n");
        out.push_str(&format!("name = \"{}\"\n", esc(&self.name)));
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        out.push_str(&format!("seeds = [{}]\n", seeds.join(", ")));
        let cats: Vec<String> = self
            .categories
            .iter()
            .map(|c| format!("\"{}\"", category_token(*c)))
            .collect();
        out.push_str(&format!("categories = [{}]\n", cats.join(", ")));

        out.push_str("\n[sim]\n");
        match self.sim.fidelity {
            Fidelity::Exact => out.push_str("fidelity = \"exact\"\n"),
            Fidelity::Sampled { tiles, seed } => {
                out.push_str("fidelity = \"sampled\"\n");
                out.push_str(&format!("tiles = {tiles}\n"));
                out.push_str(&format!("sample_seed = {seed}\n"));
            }
        }
        out.push_str(&format!(
            "priority = \"{}\"\n",
            match self.sim.priority {
                Priority::OwnFirst => "own_first",
                Priority::EarliestFirst => "earliest_first",
            }
        ));
        out.push_str(&format!(
            "core = [{}, {}, {}]\n",
            self.sim.core.k0, self.sim.core.n0, self.sim.core.m0
        ));
        match self.sim.bw {
            BwPolicy::Provisioned => out.push_str("bandwidth = \"provisioned\"\n"),
            BwPolicy::Fixed {
                a_bytes_per_cycle,
                b_bytes_per_cycle,
                dram_bytes_per_cycle,
            } => out.push_str(&format!(
                "bandwidth = [{a_bytes_per_cycle}, {b_bytes_per_cycle}, {dram_bytes_per_cycle}]\n"
            )),
        }

        for w in &self.workloads {
            out.push_str("\n[[workload]]\n");
            match w {
                WorkloadSpec::Suite(b) => {
                    let tok = SUITE_TOKENS
                        .iter()
                        .find(|t| parse_suite(t) == Some(*b))
                        .expect("every benchmark has a token");
                    out.push_str(&format!("suite = \"{tok}\"\n"));
                }
                WorkloadSpec::Synthetic { name, layers } => {
                    out.push_str(&format!("synthetic = \"{}\"\n", esc(name)));
                    out.push_str(&format!("layers = {layers}\n"));
                }
                WorkloadSpec::AdHoc {
                    name,
                    m,
                    k,
                    n,
                    a_density,
                    b_density,
                } => {
                    out.push_str(&format!("adhoc = \"{}\"\n", esc(name)));
                    out.push_str(&format!("m = {m}\nk = {k}\nn = {n}\n"));
                    out.push_str(&format!("a_density = {a_density}\n"));
                    out.push_str(&format!("b_density = {b_density}\n"));
                }
            }
        }

        for a in &self.archs {
            out.push_str("\n[[arch]]\n");
            match a {
                ArchEntry::Preset(tok) => out.push_str(&format!("preset = \"{tok}\"\n")),
                ArchEntry::Family(f) => {
                    let fanin = match f {
                        ArchFamily::SparseA { max_fanin }
                        | ArchFamily::SparseB { max_fanin }
                        | ArchFamily::SparseAB { max_fanin } => *max_fanin,
                    };
                    out.push_str(&format!("family = \"{}\"\n", family_token(*f)));
                    out.push_str(&format!("fanin = {fanin}\n"));
                }
                ArchEntry::Custom(spec) => {
                    out.push_str(&format!("kind = \"{}\"\n", spec.kind.token()));
                    if !spec.a.is_zero() {
                        out.push_str(&format!(
                            "a = [{}, {}, {}]\n",
                            spec.a.d1, spec.a.d2, spec.a.d3
                        ));
                    }
                    if !spec.b.is_zero() {
                        out.push_str(&format!(
                            "b = [{}, {}, {}]\n",
                            spec.b.d1, spec.b.d2, spec.b.d3
                        ));
                    }
                    if spec.shuffle {
                        out.push_str("shuffle = true\n");
                    }
                    let default = ArchSpec::builder(spec.kind)
                        .a(spec.a)
                        .b(spec.b)
                        .shuffle(spec.shuffle)
                        .build()
                        .map(|d| d.name);
                    if default.as_deref() != Ok(&spec.name) {
                        out.push_str(&format!("name = \"{}\"\n", esc(&spec.name)));
                    }
                }
            }
        }

        if let Some(f) = &self.fleet {
            out.push_str("\n[fleet]\n");
            out.push_str(&format!("shards = {}\n", f.shards));
            if f.spawn {
                out.push_str("spawn = true\n");
            }
            if let Some(v) = f.heartbeat_every {
                out.push_str(&format!("heartbeat = {v}\n"));
            }
            if let Some(v) = f.max_shard_retries {
                out.push_str(&format!("max_shard_retries = {v}\n"));
            }
            if let Some(v) = f.heartbeat_timeout_ms {
                out.push_str(&format!("heartbeat_timeout_ms = {v}\n"));
            }
            if !f.hosts.is_empty() {
                let hosts: Vec<String> =
                    f.hosts.iter().map(|h| format!("\"{}\"", esc(h))).collect();
                out.push_str(&format!("hosts = [{}]\n", hosts.join(", ")));
            }
        }
        out
    }

    /// The stable fingerprint of this scenario's canonical form — the
    /// provenance identity fleet runs record.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.str("griffin-scenario-v1").str(&self.canonical());
        h.finish()
    }

    /// Provenance for a scenario loaded from `path` (records the base
    /// name, which is host-independent).
    pub fn provenance(&self, path: impl AsRef<Path>) -> ScenarioProvenance {
        let p = path.as_ref();
        let file = p.file_name().map_or_else(
            || p.display().to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        ScenarioProvenance {
            file,
            fp: self.fingerprint(),
        }
    }

    /// Total grid cells of the campaign this scenario defines.
    pub fn cell_count(&self) -> usize {
        self.to_spec().cell_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_sim::window::BorrowWindow;

    const BASIC: &str = r#"
# a comment
[scenario]
name = "sweep-bert-b"
seeds = [42, 43]
categories = ["b"]   # trailing comment

[sim]
tiles = 12
sample_seed = 0xBEEF

[[workload]]
suite = "bert"

[[arch]]
preset = "baseline"

[[arch]]
family = "b"
fanin = 8
"#;

    #[test]
    fn basic_scenario_matches_hand_built_spec() {
        let s = Scenario::parse(BASIC).unwrap();
        let hand = SweepSpec::new("sweep-bert-b")
            .category(DnnCategory::B)
            .seeds([42, 43])
            .sim(SimConfig {
                fidelity: Fidelity::Sampled {
                    tiles: 12,
                    seed: 0xBEEF,
                },
                ..SimConfig::default()
            })
            .benchmark(Benchmark::Bert)
            .arch(ArchSpec::dense())
            .family(ArchFamily::SparseB { max_fanin: 8 });
        assert_eq!(s.to_spec(), hand);
        assert!(s.fleet.is_none());
    }

    #[test]
    fn canonical_roundtrips() {
        let s = Scenario::parse(BASIC).unwrap();
        let text = s.canonical();
        assert_eq!(Scenario::parse(&text).unwrap(), s, "{text}");
        // Fingerprint is a function of the canonical form.
        assert_eq!(
            s.fingerprint(),
            Scenario::parse(&text).unwrap().fingerprint()
        );
    }

    #[test]
    fn control_characters_in_names_roundtrip() {
        // Raw newlines/tabs/CRs in names must be re-escaped by
        // canonical(), or the emitted document breaks its own lines.
        let spec = SweepSpec::new("multi\nline\ttab\rcr \"q\" \\b")
            .synthetic("syn\nthetic", 2)
            .category(DnnCategory::B)
            .arch(ArchSpec::dense());
        let scen = Scenario::from_spec(&spec, None);
        let text = scen.canonical();
        assert_eq!(Scenario::parse(&text).unwrap(), scen, "{text}");
    }

    #[test]
    fn from_spec_is_a_left_inverse_of_to_spec() {
        let spec = SweepSpec::new("mix")
            .adhoc_layer("g", 32, 256, 32, 1.0, 0.2)
            .synthetic("syn", 3)
            .categories([DnnCategory::AB, DnnCategory::Dense])
            .arch(ArchSpec::griffin())
            .arch(ArchSpec::sparse_b(BorrowWindow::new(8, 0, 1), true))
            .seeds([7]);
        let scen = Scenario::from_spec(&spec, None);
        assert_eq!(scen.to_spec(), spec);
        assert!(matches!(&scen.archs[0], ArchEntry::Preset(t) if t == "griffin"));
        assert!(matches!(&scen.archs[1], ArchEntry::Custom(_)));
        // And its canonical text round-trips too.
        assert_eq!(Scenario::parse(&scen.canonical()).unwrap(), scen);
    }

    #[test]
    fn custom_archs_and_all_sim_keys_parse() {
        let text = r#"
[scenario]
name = "custom"
categories = ["ab", "dense"]
seeds = [1, 2, 3]

[sim]
fidelity = "sampled"
tiles = 5
sample_seed = 99
priority = "earliest_first"
core = [8, 8, 2]
bandwidth = [64, 256, 62.5]

[[workload]]
adhoc = "gemm"
m = 32
k = 128
n = 64
a_density = 0.5
b_density = 0.25

[[arch]]
kind = "sparse.ab"
a = [1, 2, 0]
b = [3, 0, 1]
shuffle = true
name = "my point"

[fleet]
shards = 4
spawn = true
heartbeat = 16
"#;
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.sim.priority, Priority::EarliestFirst);
        assert_eq!(s.sim.core.k0, 8);
        assert!(matches!(s.sim.bw, BwPolicy::Fixed { .. }));
        let archs = s.expanded_archs();
        assert_eq!(archs.len(), 1);
        assert_eq!(archs[0].name, "my point");
        assert_eq!(archs[0].a, BorrowWindow::new(1, 2, 0));
        let fleet = s.fleet.clone().unwrap();
        assert_eq!((fleet.shards, fleet.spawn), (4, true));
        assert_eq!(fleet.heartbeat_every, Some(16));
        assert_eq!(fleet.max_shard_retries, None);
        // Round-trip.
        assert_eq!(Scenario::parse(&s.canonical()).unwrap(), s);
    }

    /// A minimal valid scenario with the given `[fleet]` body appended.
    fn with_fleet(body: &str) -> String {
        format!(
            "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n\
             [[workload]]\nsuite = \"bert\"\n[[arch]]\npreset = \"griffin\"\n\
             [fleet]\n{body}"
        )
    }

    #[test]
    fn fleet_hosts_parse_and_roundtrip() {
        let s = Scenario::parse(&with_fleet(
            "shards = 4\nhosts = [\"local:h0\", \"db@rack2\", \"we\\\"ird\"]\n",
        ))
        .unwrap();
        let fleet = s.fleet.clone().unwrap();
        assert_eq!(fleet.hosts, ["local:h0", "db@rack2", "we\"ird"]);
        assert!(s
            .canonical()
            .contains("hosts = [\"local:h0\", \"db@rack2\""));
        assert_eq!(Scenario::parse(&s.canonical()).unwrap(), s);
        // Absent hosts stay absent (and out of the canonical text).
        let s = Scenario::parse(&with_fleet("shards = 1\n")).unwrap();
        assert!(s.fleet.unwrap().hosts.is_empty());
    }

    #[test]
    fn fleet_hosts_typo_gets_a_suggestion() {
        let err = Scenario::parse(&with_fleet("shards = 2\nhostz = [\"h0\"]\n")).unwrap_err();
        assert_eq!(err.line, 10, "{err}");
        assert!(
            err.msg.contains("hostz") && err.msg.contains("hosts"),
            "{err}"
        );
    }

    #[test]
    fn fleet_hosts_reject_bad_shapes() {
        let err = Scenario::parse(&with_fleet("shards = 2\nhosts = []\n")).unwrap_err();
        assert_eq!(err.line, 10, "{err}");
        assert!(err.msg.contains("must not be empty"), "{err}");

        let err = Scenario::parse(&with_fleet(
            "shards = 2\nhosts = [\"h0\", \"h1\", \"h0\"]\n",
        ))
        .unwrap_err();
        assert_eq!(err.line, 10, "{err}");
        assert!(err.msg.contains("duplicate host `h0`"), "{err}");

        let err = Scenario::parse(&with_fleet("shards = 2\nhosts = [\"h0\", 3]\n")).unwrap_err();
        assert!(err.msg.contains("must be strings"), "{err}");

        let err = Scenario::parse(&with_fleet("shards = 2\nhosts = [\"  \"]\n")).unwrap_err();
        assert!(err.msg.contains("must not be empty"), "{err}");

        let err = Scenario::parse(&with_fleet("shards = 2\nhosts = \"h0\"\n")).unwrap_err();
        assert!(err.msg.contains("array of strings"), "{err}");
    }

    #[test]
    fn exact_fidelity_roundtrips_and_rejects_tiles() {
        let s = Scenario::parse(
            "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n[sim]\nfidelity = \"exact\"\n\
             [[workload]]\nsuite = \"bert\"\n[[arch]]\npreset = \"griffin\"\n",
        )
        .unwrap();
        assert_eq!(s.sim.fidelity, Fidelity::Exact);
        assert_eq!(Scenario::parse(&s.canonical()).unwrap(), s);

        let err = Scenario::parse(
            "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n[sim]\nfidelity = \"exact\"\ntiles = 4\n\
             [[workload]]\nsuite = \"bert\"\n[[arch]]\npreset = \"griffin\"\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.msg.contains("exact"), "{err}");
    }

    #[test]
    fn errors_are_line_anchored() {
        // Unknown key with suggestion.
        let err = Scenario::parse("[scenario]\nname = \"x\"\nseedz = [1]\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(
            err.msg.contains("seedz") && err.msg.contains("seeds"),
            "{err}"
        );

        // Malformed value.
        let err = Scenario::parse("[scenario]\nname = \"x\nseeds = [1]\n").unwrap_err();
        assert_eq!(err.line, 2);

        // Unknown section.
        let err = Scenario::parse("[scenari]\nname = \"x\"\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("scenario"), "{err}");

        // Duplicate key.
        let err = Scenario::parse("[scenario]\nname = \"x\"\nname = \"y\"\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("duplicate key"), "{err}");

        // Key outside any section.
        let err = Scenario::parse("name = \"x\"\n").unwrap_err();
        assert_eq!(err.line, 1);

        // Unknown category token with suggestion.
        let err = Scenario::parse("[scenario]\nname = \"x\"\ncategories = [\"bb\"]\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("did you mean"), "{err}");
    }

    #[test]
    fn out_of_range_windows_anchor_at_the_window_line() {
        let text = "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n\
                    [[workload]]\nsuite = \"bert\"\n\
                    [[arch]]\nkind = \"sparse.b\"\nb = [400, 0, 0]\n";
        let err = Scenario::parse(text).unwrap_err();
        assert_eq!(err.line, 8, "{err}");
        assert!(err.msg.contains("out of range"), "{err}");

        // A window on an unrouted side anchors there too.
        let text = "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n\
                    [[workload]]\nsuite = \"bert\"\n\
                    [[arch]]\nkind = \"sparse.b\"\na = [1, 0, 0]\n";
        let err = Scenario::parse(text).unwrap_err();
        assert_eq!(err.line, 8, "{err}");
    }

    #[test]
    fn duplicate_arch_names_are_rejected() {
        let text = "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n\
                    [[workload]]\nsuite = \"bert\"\n\
                    [[arch]]\npreset = \"griffin\"\n\
                    [[arch]]\npreset = \"griffin\"\n";
        let err = Scenario::parse(text).unwrap_err();
        assert_eq!(err.line, 8, "{err}");
        assert!(err.msg.contains("duplicate architecture name"), "{err}");

        // Also across a preset and the lineup that contains it.
        let text = "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n\
                    [[workload]]\nsuite = \"bert\"\n\
                    [[arch]]\npreset = \"table7-lineup\"\n\
                    [[arch]]\npreset = \"baseline\"\n";
        assert!(Scenario::parse(text).is_err());
    }

    #[test]
    fn empty_axes_are_rejected() {
        let err = Scenario::parse("[scenario]\nname = \"x\"\ncategories = [\"b\"]\n").unwrap_err();
        assert!(err.msg.contains("no [[workload]]"), "{err}");
        let err = Scenario::parse(
            "[scenario]\nname = \"x\"\ncategories = [\"b\"]\n[[workload]]\nsuite = \"bert\"\n",
        )
        .unwrap_err();
        assert!(err.msg.contains("no [[arch]]"), "{err}");
        let err = Scenario::parse("[scenario]\ncategories = [\"b\"]\n").unwrap_err();
        assert!(err.msg.contains("name"), "{err}");
    }

    #[test]
    fn registry_suggestions_are_helpful() {
        assert_eq!(suggest("resnet5", WORKLOAD_TOKENS), Some("resnet50"));
        assert_eq!(suggest("grffin", ARCH_TOKENS), Some("griffin"));
        assert_eq!(suggest("dens", CATEGORY_TOKENS), Some("dense"));
        assert_eq!(suggest("zzz", CATEGORY_TOKENS), None);
        let msg = unknown_token("category", "bee", CATEGORY_TOKENS);
        assert!(
            msg.contains("`bee`") && msg.contains("valid categories"),
            "{msg}"
        );
        assert!(msg.contains("dense a b ab"), "{msg}");
    }

    #[test]
    fn registry_tokens_all_parse() {
        for t in WORKLOAD_TOKENS {
            assert!(parse_workload(t).is_some(), "{t}");
        }
        for t in CATEGORY_TOKENS {
            assert!(parse_category(t).is_some(), "{t}");
        }
        for t in ARCH_TOKENS {
            let a = parse_arch(t).unwrap();
            assert_eq!(preset_token(&a), Some(*t), "canonical token roundtrip");
        }
        for t in FAMILY_TOKENS {
            assert!(parse_family(t, 8).is_some(), "{t}");
        }
        for t in PRESET_TOKENS {
            assert!(parse_preset(t).is_some(), "{t}");
        }
        assert_eq!(parse_preset("table7-lineup").unwrap().len(), 8);
    }

    #[test]
    fn provenance_uses_the_base_name() {
        let s = Scenario::parse(BASIC).unwrap();
        let p = s.provenance("/some/long/path/fig5-bert-b.toml");
        assert_eq!(p.file, "fig5-bert-b.toml");
        assert_eq!(p.fp, s.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_content_not_formatting() {
        let a = Scenario::parse(BASIC).unwrap();
        let reformatted = BASIC.replace("seeds = [42, 43]", "seeds = [ 42 ,43 ]  # same");
        let b = Scenario::parse(&reformatted).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let changed = BASIC.replace("seeds = [42, 43]", "seeds = [42]");
        let c = Scenario::parse(&changed).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
