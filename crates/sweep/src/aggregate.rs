//! Campaign aggregation: summary statistics, per-architecture rollups
//! and Pareto extraction (reusing [`griffin_core::dse::pareto_front`]).

use std::collections::HashMap;

use griffin_core::arch::ArchSpec;
use griffin_core::category::DnnCategory;
use griffin_core::dse::{pareto_front, ScoredDesign};
use griffin_sim::report::geomean;

use crate::executor::{CampaignReport, CellRecord};

/// Whole-campaign summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of cells.
    pub cells: usize,
    /// Distinct architectures.
    pub archs: usize,
    /// Distinct workloads.
    pub workloads: usize,
    /// Geomean speedup over every cell.
    pub geomean_speedup: f64,
    /// Best cell by speedup: `(arch, workload, speedup)`.
    pub best: Option<(String, String, f64)>,
    /// Worst cell by speedup.
    pub worst: Option<(String, String, f64)>,
}

fn distinct<'a>(it: impl Iterator<Item = &'a str>) -> usize {
    let mut v: Vec<&str> = it.collect();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Summarizes a campaign report.
pub fn summarize(report: &CampaignReport) -> Summary {
    let speedups: Vec<f64> = report
        .cells
        .iter()
        .map(|c| c.metrics.speedup)
        .filter(|s| *s > 0.0)
        .collect();
    let by = |pick: fn(f64, f64) -> bool| {
        report
            .cells
            .iter()
            .filter(|c| !c.metrics.speedup.is_nan()) // degenerate cells can't win
            .fold(None::<&CellRecord>, |acc, c| match acc {
                Some(a) if !pick(c.metrics.speedup, a.metrics.speedup) => Some(a),
                _ => Some(c),
            })
            .map(|c| (c.arch.clone(), c.workload.clone(), c.metrics.speedup))
    };
    Summary {
        cells: report.cells.len(),
        archs: distinct(report.cells.iter().map(|c| c.arch.as_str())),
        workloads: distinct(report.cells.iter().map(|c| c.workload.as_str())),
        geomean_speedup: if speedups.is_empty() {
            0.0
        } else {
            geomean(&speedups)
        },
        best: by(|new, best| new > best),
        worst: by(|new, worst| new < worst),
    }
}

/// Per-architecture rollup across the cells that match a category
/// filter (`None` keeps everything).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchAggregate {
    /// Architecture display name.
    pub arch: String,
    /// Cells aggregated.
    pub cells: usize,
    /// Geomean speedup.
    pub speedup: f64,
    /// Geomean effective TOPS/W.
    pub tops_per_w: f64,
    /// Geomean effective TOPS/mm².
    pub tops_per_mm2: f64,
}

/// Rolls the campaign up per architecture, in first-appearance order
/// (deterministic). Cells with non-positive metrics are skipped.
pub fn per_arch(report: &CampaignReport, category: Option<DnnCategory>) -> Vec<ArchAggregate> {
    let mut order: Vec<String> = Vec::new();
    let mut buckets: HashMap<String, Vec<&CellRecord>> = HashMap::new();
    for c in &report.cells {
        if category.is_some_and(|cat| cat != c.category) {
            continue;
        }
        buckets.entry(c.arch.clone()).or_insert_with(|| {
            order.push(c.arch.clone());
            Vec::new()
        });
        buckets.get_mut(&c.arch).expect("just inserted").push(c);
    }
    order
        .into_iter()
        .map(|arch| {
            let cells = &buckets[&arch];
            let gm = |f: fn(&CellRecord) -> f64| {
                let v: Vec<f64> = cells.iter().map(|c| f(c)).filter(|x| *x > 0.0).collect();
                if v.is_empty() {
                    0.0
                } else {
                    geomean(&v)
                }
            };
            ArchAggregate {
                arch,
                cells: cells.len(),
                speedup: gm(|c| c.metrics.speedup),
                tops_per_w: gm(|c| c.metrics.tops_per_w),
                tops_per_mm2: gm(|c| c.metrics.tops_per_mm2),
            }
        })
        .collect()
}

/// Scores every architecture of `archs` on two campaign categories —
/// efficiency on its sparse home axis vs the dense-category "sparsity
/// tax" axis — and extracts the Pareto-optimal subset.
///
/// Architectures without cells on both categories are skipped.
pub fn pareto_designs(
    report: &CampaignReport,
    archs: &[ArchSpec],
    sparse_category: DnnCategory,
    dense_category: DnnCategory,
) -> Vec<ScoredDesign> {
    let sparse = per_arch(report, Some(sparse_category));
    let dense = per_arch(report, Some(dense_category));
    let sparse_by: HashMap<&str, &ArchAggregate> =
        sparse.iter().map(|a| (a.arch.as_str(), a)).collect();
    let dense_by: HashMap<&str, &ArchAggregate> =
        dense.iter().map(|a| (a.arch.as_str(), a)).collect();

    let scored: Vec<ScoredDesign> = archs
        .iter()
        .filter_map(|spec| {
            let s = sparse_by.get(spec.name.as_str())?;
            let d = dense_by.get(spec.name.as_str())?;
            Some(ScoredDesign {
                spec: spec.clone(),
                sparse_metric: s.tops_per_w,
                dense_metric: d.tops_per_w,
            })
        })
        .collect();
    pareto_front(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CellMetrics;
    use crate::executor::CampaignReport;

    fn record(arch: &str, wl: &str, cat: DnnCategory, speedup: f64, tw: f64) -> CellRecord {
        CellRecord {
            index: 0,
            workload: wl.into(),
            category: cat,
            arch: arch.into(),
            seed: 0,
            fingerprint: "00".into(),
            metrics: CellMetrics {
                speedup,
                cycles: 100.0 / speedup,
                dense_cycles: 100,
                power_mw: 300.0,
                area_mm2: 1.0,
                tops_per_w: tw,
                tops_per_mm2: tw / 3.0,
            },
        }
    }

    fn report(cells: Vec<CellRecord>) -> CampaignReport {
        CampaignReport {
            campaign: "t".into(),
            cells,
            cache: Default::default(),
            workers: 1,
            elapsed_ms: 0,
        }
    }

    #[test]
    fn summary_counts_and_extremes() {
        let r = report(vec![
            record("A1", "w1", DnnCategory::B, 2.0, 20.0),
            record("A1", "w2", DnnCategory::B, 8.0, 25.0),
            record("A2", "w1", DnnCategory::B, 1.0, 10.0),
        ]);
        let s = summarize(&r);
        assert_eq!((s.cells, s.archs, s.workloads), (3, 2, 2));
        assert!((s.geomean_speedup - (2.0f64 * 8.0 * 1.0).powf(1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(s.best.unwrap().2, 8.0);
        assert_eq!(s.worst.unwrap().0, "A2");
    }

    #[test]
    fn per_arch_respects_category_filter_and_order() {
        let r = report(vec![
            record("A2", "w", DnnCategory::B, 2.0, 20.0),
            record("A1", "w", DnnCategory::B, 4.0, 30.0),
            record("A2", "w", DnnCategory::Dense, 1.0, 15.0),
        ]);
        let all = per_arch(&r, None);
        assert_eq!(all[0].arch, "A2"); // first appearance wins
        assert_eq!(all[0].cells, 2);
        let b_only = per_arch(&r, Some(DnnCategory::B));
        assert_eq!(b_only.len(), 2);
        assert_eq!(b_only[0].cells, 1);
        assert!((b_only[0].speedup - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_drops_dominated_architectures() {
        let a1 = ArchSpec::sparse_b_star();
        let mut a2 = ArchSpec::sparse_b_star();
        a2.name = "Dominated".into();
        let r = report(vec![
            record(&a1.name, "w", DnnCategory::B, 3.0, 30.0),
            record(&a1.name, "w", DnnCategory::Dense, 1.0, 20.0),
            record("Dominated", "w", DnnCategory::B, 2.0, 20.0),
            record("Dominated", "w", DnnCategory::Dense, 1.0, 10.0),
        ]);
        let front = pareto_designs(&r, &[a1.clone(), a2], DnnCategory::B, DnnCategory::Dense);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].spec.name, a1.name);
    }

    #[test]
    fn empty_report_summarizes_cleanly() {
        let s = summarize(&report(vec![]));
        assert_eq!(s.cells, 0);
        assert_eq!(s.best, None);
        assert_eq!(s.geomean_speedup, 0.0);
    }
}
