//! Content-addressed result cache.
//!
//! Each completed scenario cell is stored under its stable
//! [`Fingerprint`](crate::fingerprint::Fingerprint): an in-memory map
//! serves repeats inside one campaign, and an optional cache directory
//! persists results across processes (one small JSON file per cell,
//! written atomically via a temp file + rename). Overlapping campaigns
//! therefore skip every cell any earlier campaign already simulated.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fingerprint::Fingerprint;
use crate::json::Json;

/// The cached numeric outcome of one scenario cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMetrics {
    /// End-to-end speedup over the dense baseline.
    pub speedup: f64,
    /// Total simulated cycles.
    pub cycles: f64,
    /// Dense-baseline cycles.
    pub dense_cycles: u64,
    /// Architecture power at the provisioned speedup (mW).
    pub power_mw: f64,
    /// Architecture area (mm²).
    pub area_mm2: f64,
    /// Effective TOPS/W (Definition V.1).
    pub tops_per_w: f64,
    /// Effective TOPS/mm².
    pub tops_per_mm2: f64,
}

impl CellMetrics {
    /// Serializes to a JSON object. Floats use [`Json::from_f64`] so
    /// that the degenerate NaN/∞ values sweep campaigns can produce
    /// still round-trip (plain JSON numbers cannot express them).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("speedup".into(), Json::from_f64(self.speedup)),
            ("cycles".into(), Json::from_f64(self.cycles)),
            // u64 as decimal string: full precision beyond 2^53.
            (
                "dense_cycles".into(),
                Json::Str(self.dense_cycles.to_string()),
            ),
            ("power_mw".into(), Json::from_f64(self.power_mw)),
            ("area_mm2".into(), Json::from_f64(self.area_mm2)),
            ("tops_per_w".into(), Json::from_f64(self.tops_per_w)),
            ("tops_per_mm2".into(), Json::from_f64(self.tops_per_mm2)),
        ])
    }

    /// Deserializes from the object written by [`CellMetrics::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, crate::json::JsonError> {
        Ok(CellMetrics {
            speedup: v.req("speedup")?.as_f64_lossless()?,
            cycles: v.req("cycles")?.as_f64_lossless()?,
            dense_cycles: v.req("dense_cycles")?.as_u64()?,
            power_mw: v.req("power_mw")?.as_f64_lossless()?,
            area_mm2: v.req("area_mm2")?.as_f64_lossless()?,
            tops_per_w: v.req("tops_per_w")?.as_f64_lossless()?,
            tops_per_mm2: v.req("tops_per_mm2")?.as_f64_lossless()?,
        })
    }
}

/// Cache activity counters for one campaign or process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that required a fresh simulation.
    pub misses: u64,
    /// Hits that came from the cache directory (subset of `hits`).
    pub disk_hits: u64,
    /// Results inserted.
    pub stores: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe content-addressed result cache.
#[derive(Debug)]
pub struct ResultCache {
    mem: Mutex<HashMap<Fingerprint, CellMetrics>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    stores: AtomicU64,
}

impl ResultCache {
    /// A purely in-memory cache (one process lifetime).
    pub fn in_memory() -> Self {
        ResultCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// A cache backed by a directory (created if absent); results
    /// persist across processes.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be created.
    pub fn at_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        let mut c = Self::in_memory();
        c.dir = Some(dir.as_ref().to_path_buf());
        Ok(c)
    }

    fn entry_path(&self, fp: Fingerprint) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{fp}.json")))
    }

    /// Looks up a fingerprint, counting a hit or miss. Disk entries are
    /// promoted into memory on first access.
    pub fn lookup(&self, fp: Fingerprint) -> Option<CellMetrics> {
        if let Some(m) = self.mem.lock().expect("cache lock").get(&fp).copied() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(m);
        }
        if let Some(path) = self.entry_path(fp) {
            if let Some(m) = read_entry(&path) {
                self.mem.lock().expect("cache lock").insert(fp, m);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Some(m);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a result (memory, and disk when a directory is set).
    pub fn insert(&self, fp: Fingerprint, metrics: CellMetrics) {
        self.mem.lock().expect("cache lock").insert(fp, metrics);
        self.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(path) = self.entry_path(fp) {
            // Failures to persist are non-fatal: the campaign still has
            // the result in memory; the next run re-simulates.
            let _ = write_entry(&path, &metrics);
        }
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock").len()
    }

    /// Whether the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    /// Resets the activity counters (entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.disk_hits.store(0, Ordering::Relaxed);
        self.stores.store(0, Ordering::Relaxed);
    }
}

/// Summary of an on-disk cache directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskCacheInfo {
    /// Number of result entries (`<fingerprint>.json` files).
    pub entries: u64,
    /// Total bytes of those entries.
    pub total_bytes: u64,
    /// Leftover temp files from interrupted writers.
    pub stale_tmp: u64,
}

/// Outcome of a [`prune_dir`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Entries evicted (oldest first).
    pub evicted: u64,
    /// Bytes reclaimed from evicted entries.
    pub freed_bytes: u64,
    /// Stale temp files removed.
    pub tmp_removed: u64,
    /// Entries and bytes remaining after the pass.
    pub kept: DiskCacheInfo,
}

/// Is this directory entry a cache result file?
fn is_entry(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "json")
}

/// How old a writer temp file must be before maintenance treats it as
/// abandoned. Atomic writes live for milliseconds; an hour leaves no
/// room for racing an in-flight campaign's rename.
const STALE_TMP_AGE: std::time::Duration = std::time::Duration::from_secs(3600);

/// Is this an *abandoned* temp file from an interrupted atomic write?
/// (Writers use `<fingerprint>.tmp.<pid>.<seq>`, see [`write_entry`].)
/// Fresh temp files — a concurrent campaign about to rename — never
/// match: a file with an unreadable or recent mtime is left alone.
fn is_stale_tmp(path: &Path) -> bool {
    let named_tmp = path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.contains(".tmp."));
    named_tmp
        && std::fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= STALE_TMP_AGE)
}

/// Scans a cache directory and reports entry count and size. Files that
/// vanish mid-scan (a concurrent pruner or writer rename) are skipped,
/// not errors.
///
/// # Errors
///
/// Returns the underlying error if the directory cannot be read.
pub fn disk_stats(dir: impl AsRef<Path>) -> io::Result<DiskCacheInfo> {
    let mut info = DiskCacheInfo::default();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if is_entry(&path) {
            let Ok(meta) = entry.metadata() else {
                continue; // vanished between read_dir and stat
            };
            info.entries += 1;
            info.total_bytes += meta.len();
        } else if is_stale_tmp(&path) {
            info.stale_tmp += 1;
        }
    }
    Ok(info)
}

/// Prunes a cache directory down to at most `max_bytes` of entries,
/// evicting in **age order** (oldest modification time first — the
/// entries least likely to be re-queried by ongoing campaigns), and
/// removes stale temp files. A `max_bytes` of 0 clears every entry.
///
/// Eviction is best-effort per file: an entry that disappears
/// concurrently (another pruner, a cache writer's rename) is skipped,
/// not an error.
///
/// # Errors
///
/// Returns the underlying error if the directory cannot be read.
pub fn prune_dir(dir: impl AsRef<Path>, max_bytes: u64) -> io::Result<PruneReport> {
    let mut report = PruneReport::default();
    let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        let path = entry.path();
        if is_stale_tmp(&path) {
            if std::fs::remove_file(&path).is_ok() {
                report.tmp_removed += 1;
            }
            continue;
        }
        if !is_entry(&path) {
            continue;
        }
        let Ok(meta) = entry.metadata() else {
            continue; // vanished between read_dir and stat
        };
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        entries.push((path, meta.len(), mtime));
    }
    // Oldest first; ties broken by path for determinism.
    entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));

    // Bytes still on disk only shrink when a removal actually succeeds,
    // so a failed eviction (permissions, races) keeps the loop working
    // down the age list instead of declaring the budget met.
    let mut total: u64 = entries.iter().map(|e| e.1).sum();
    let mut evict = entries.iter();
    while total > max_bytes {
        let Some((path, len, _)) = evict.next() else {
            break;
        };
        if std::fs::remove_file(path).is_ok() {
            report.evicted += 1;
            report.freed_bytes += len;
            total -= len;
        }
    }
    report.kept = DiskCacheInfo {
        entries: entries.len() as u64 - report.evicted,
        total_bytes: total,
        stale_tmp: 0,
    };
    Ok(report)
}

/// Outcome of a [`scan_dir`] integrity pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanReport {
    /// Entries that parse back into [`CellMetrics`].
    pub valid: u64,
    /// Entries that exist but do not parse — truncated transfers, or
    /// writers that died between a rename and their data hitting disk.
    pub torn: u64,
}

/// Parses every entry of a cache directory — the verification step
/// after a remote shard cache is pulled back, where a short or torn
/// transfer shows up as entries that no longer decode. A missing
/// directory scans as empty (a shard may have had no cells to cache).
///
/// # Errors
///
/// Returns the underlying error if an existing directory cannot be
/// read.
pub fn scan_dir(dir: impl AsRef<Path>) -> io::Result<ScanReport> {
    let dir = dir.as_ref();
    let mut report = ScanReport::default();
    if !dir.exists() {
        return Ok(report);
    }
    let rd = std::fs::read_dir(dir).map_err(|e| dir_read_error(dir, &e))?;
    for entry in rd {
        let path = entry.map_err(|e| dir_read_error(dir, &e))?.path();
        if !is_entry(&path) {
            continue;
        }
        match read_entry(&path) {
            Some(_) => report.valid += 1,
            None => report.torn += 1,
        }
    }
    Ok(report)
}

/// An io error annotated with the directory it came from — `read_dir`
/// failures otherwise surface without any path at all.
fn dir_read_error(dir: &Path, e: &io::Error) -> io::Error {
    io::Error::new(
        e.kind(),
        format!("reading cache dir `{}`: {e}", dir.display()),
    )
}

/// Outcome of a [`merge_dirs`] union.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergeReport {
    /// Entries copied into the destination.
    pub merged: u64,
    /// Entries already present with identical canonical content.
    pub identical: u64,
    /// Unreadable or unparsable source entries skipped.
    pub invalid: u64,
    /// Torn destination entries (unparsable — a process died between a
    /// rename and its data hitting disk) overwritten with good source
    /// content instead of being flagged as conflicts.
    pub healed: u64,
    /// Fingerprints present with *different* content (sorted). The
    /// destination keeps its first-seen value; callers treat a non-empty
    /// list as corruption (a fingerprint names the full scenario, so two
    /// honest caches can never disagree).
    pub conflicts: Vec<String>,
}

/// Unions the entries of several cache directories into `dest` by
/// fingerprint — the merge step of a sharded campaign, where every shard
/// simulated a disjoint cell set into its own directory.
///
/// Entries are re-encoded canonically (parse + rewrite through
/// [`CellMetrics`]), so equality is content equality: the same scenario
/// cached by different processes merges as `identical` even if the files
/// went through different write paths. A source directory that does not
/// exist is skipped (a shard may have had no cells); a source equal to
/// `dest` is skipped entirely. Writes are atomic (temp file + rename),
/// so a concurrent reader of `dest` never sees a torn entry.
///
/// # Errors
///
/// Returns the underlying error if `dest` cannot be created or an
/// existing source directory cannot be read.
pub fn merge_dirs(dest: impl AsRef<Path>, sources: &[impl AsRef<Path>]) -> io::Result<MergeReport> {
    let dest = dest.as_ref();
    std::fs::create_dir_all(dest)?;
    let dest_canon = std::fs::canonicalize(dest)?;
    let mut report = MergeReport::default();
    for src in sources {
        let src = src.as_ref();
        if !src.exists() {
            continue;
        }
        if std::fs::canonicalize(src)? == dest_canon {
            continue;
        }
        // Deterministic order: fingerprint-sorted entries, so the
        // first-seen value on a (hypothetical) conflict is stable.
        let mut entries: Vec<PathBuf> = std::fs::read_dir(src)
            .map_err(|e| dir_read_error(src, &e))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| is_entry(p))
            .collect();
        entries.sort();
        for path in entries {
            let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(Fingerprint::parse)
            else {
                report.invalid += 1; // not a cache entry name
                continue;
            };
            let Some(metrics) = read_entry(&path) else {
                report.invalid += 1; // truncated/corrupt source file
                continue;
            };
            let canonical = metrics.to_json().write();
            let target = dest.join(format!("{fp}.json"));
            match std::fs::read_to_string(&target) {
                Ok(existing) if existing == canonical => report.identical += 1,
                Ok(existing) => {
                    // A parseable destination entry that canonicalizes
                    // to the same bytes is the same content through a
                    // different write path; one that disagrees is a
                    // real conflict. One that does not even parse is a
                    // torn write from a killed process — heal it with
                    // the good source copy instead of aborting the
                    // campaign over damage a retry already repaired.
                    match Json::parse(&existing)
                        .ok()
                        .and_then(|v| CellMetrics::from_json(&v).ok())
                    {
                        Some(m) if m.to_json().write() == canonical => report.identical += 1,
                        Some(_) => report.conflicts.push(fp.to_string()),
                        None => {
                            write_entry(&target, &metrics)?;
                            report.healed += 1;
                        }
                    }
                }
                Err(_) => {
                    write_entry(&target, &metrics)?;
                    report.merged += 1;
                }
            }
        }
    }
    report.conflicts.sort();
    report.conflicts.dedup();
    Ok(report)
}

fn read_entry(path: &Path) -> Option<CellMetrics> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = Json::parse(&text).ok()?;
    CellMetrics::from_json(&v).ok()
}

fn write_entry(path: &Path, metrics: &CellMetrics) -> io::Result<()> {
    // Unique temp name per process and write: two processes sharing a
    // cache directory may simulate the same cell concurrently, and a
    // shared temp file would let their writes interleave before the
    // rename (whoever renames last wins, both files are whole).
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, metrics.to_json().write())?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(speedup: f64) -> CellMetrics {
        CellMetrics {
            speedup,
            cycles: 100.0 / speedup,
            dense_cycles: 100,
            power_mw: 330.5,
            area_mm2: 0.97,
            tops_per_w: 24.0,
            tops_per_mm2: 8.5,
        }
    }

    #[test]
    fn memory_roundtrip_and_stats() {
        let c = ResultCache::in_memory();
        let fp = Fingerprint(1, 2);
        assert_eq!(c.lookup(fp), None);
        c.insert(fp, metrics(2.0));
        assert_eq!(c.lookup(fp), Some(metrics(2.0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.disk_hits), (1, 1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_json_roundtrip() {
        let m = CellMetrics {
            dense_cycles: u64::MAX - 3,
            ..metrics(3.25)
        };
        let back = CellMetrics::from_json(&Json::parse(&m.to_json().write()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn degenerate_metrics_roundtrip_through_json() {
        // Campaigns can produce NaN/∞ efficiency values; the cache must
        // bring them back intact instead of rejecting its own files.
        let m = CellMetrics {
            tops_per_w: f64::NAN,
            tops_per_mm2: f64::INFINITY,
            power_mw: f64::NEG_INFINITY,
            ..metrics(1.0)
        };
        let back = CellMetrics::from_json(&Json::parse(&m.to_json().write()).unwrap()).unwrap();
        assert!(back.tops_per_w.is_nan());
        assert_eq!(back.tops_per_mm2, f64::INFINITY);
        assert_eq!(back.power_mw, f64::NEG_INFINITY);
        assert_eq!(back.speedup, 1.0);
    }

    #[test]
    fn disk_cache_survives_process_boundary() {
        let dir = std::env::temp_dir().join(format!("griffin-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let c = ResultCache::at_dir(&dir).unwrap();
            c.insert(Fingerprint(7, 9), metrics(4.0));
        }
        // A fresh cache instance (simulating a new process) sees it.
        let c2 = ResultCache::at_dir(&dir).unwrap();
        assert_eq!(c2.lookup(Fingerprint(7, 9)), Some(metrics(4.0)));
        let s = c2.stats();
        assert_eq!((s.hits, s.disk_hits), (1, 1));
        // Promoted to memory: second lookup no longer counts disk.
        c2.lookup(Fingerprint(7, 9));
        assert_eq!(c2.stats().disk_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_and_age_ordered_prune() {
        let dir = std::env::temp_dir().join(format!(
            "griffin-sweep-prune-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let c = ResultCache::at_dir(&dir).unwrap();
        for i in 0..4u64 {
            c.insert(Fingerprint(i, i), metrics(1.0 + i as f64));
            // Distinct mtimes so age ordering is deterministic.
            let path = dir.join(format!("{}.json", Fingerprint(i, i)));
            let t = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1000 + i);
            let f = std::fs::File::open(&path).unwrap();
            f.set_modified(t).unwrap();
        }
        // One abandoned temp file (old mtime) and one in-flight temp
        // file (fresh): only the former is maintenance's business.
        let stale = dir.join("junk.tmp.99.0");
        std::fs::write(&stale, "partial").unwrap();
        std::fs::File::open(&stale)
            .unwrap()
            .set_modified(std::time::SystemTime::UNIX_EPOCH)
            .unwrap();
        std::fs::write(dir.join("live.tmp.99.1"), "in flight").unwrap();

        let info = disk_stats(&dir).unwrap();
        assert_eq!(info.entries, 4);
        assert_eq!(info.stale_tmp, 1, "fresh temp files are not stale");
        // Entries serialize to slightly different sizes; budget exactly
        // for the two newest so precisely the two oldest must go.
        let budget: u64 = (2..4u64)
            .map(|i| {
                std::fs::metadata(dir.join(format!("{}.json", Fingerprint(i, i))))
                    .unwrap()
                    .len()
            })
            .sum();

        // The two oldest entries go, and the stale temp file too; the
        // in-flight temp file survives.
        let r = prune_dir(&dir, budget).unwrap();
        assert_eq!(r.evicted, 2);
        assert_eq!(r.tmp_removed, 1);
        assert_eq!(r.kept.entries, 2);
        assert!(r.kept.total_bytes <= budget);
        assert!(dir.join("live.tmp.99.1").exists());
        for i in 0..2u64 {
            assert!(!dir.join(format!("{}.json", Fingerprint(i, i))).exists());
        }
        for i in 2..4u64 {
            assert!(dir.join(format!("{}.json", Fingerprint(i, i))).exists());
        }

        // max_bytes 0 clears everything.
        let r = prune_dir(&dir, 0).unwrap();
        assert_eq!(r.evicted, 2);
        assert_eq!(disk_stats(&dir).unwrap(), DiskCacheInfo::default());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Unique scratch directory per test (parallel test threads must
    /// not share).
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "griffin-sweep-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn prune_respects_the_inflight_tmp_age_cutoff() {
        // A fresh temp file is a concurrent writer about to rename; only
        // an abandoned (old-mtime) one is maintenance's to remove — even
        // under the most aggressive budget.
        let dir = scratch_dir("tmp-cutoff");
        std::fs::create_dir_all(&dir).unwrap();
        let fresh = dir.join("aaaa.tmp.1.0");
        let stale = dir.join("bbbb.tmp.2.0");
        std::fs::write(&fresh, "in flight").unwrap();
        std::fs::write(&stale, "abandoned").unwrap();
        std::fs::File::open(&stale)
            .unwrap()
            .set_modified(std::time::SystemTime::UNIX_EPOCH)
            .unwrap();
        assert!(!is_stale_tmp(&fresh));
        assert!(is_stale_tmp(&stale));

        let r = prune_dir(&dir, 0).unwrap();
        assert_eq!((r.evicted, r.tmp_removed), (0, 1));
        assert!(fresh.exists(), "a fresh .tmp must survive pruning");
        assert!(!stale.exists(), "a stale .tmp must be removed");

        // Exactly at the cutoff age counts as abandoned.
        std::fs::File::open(&fresh)
            .unwrap()
            .set_modified(std::time::SystemTime::now() - STALE_TMP_AGE)
            .unwrap();
        assert!(is_stale_tmp(&fresh));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_stats_on_empty_and_corrupt_dirs() {
        // Missing directory: a real error, not a silent zero.
        let dir = scratch_dir("stats-edge");
        assert!(disk_stats(&dir).is_err());

        // Empty directory: all-zero stats.
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(disk_stats(&dir).unwrap(), DiskCacheInfo::default());

        // A corrupt dump in a cache dir: `.json` files count as entries
        // (size accounting must cover them — prune's business), other
        // junk and subdirectories are ignored.
        std::fs::write(dir.join("broken.json"), "not json at all").unwrap();
        std::fs::write(dir.join("notes.txt"), "hello").unwrap();
        std::fs::create_dir_all(dir.join("subdir")).unwrap();
        let info = disk_stats(&dir).unwrap();
        assert_eq!(info.entries, 1);
        assert_eq!(info.total_bytes, "not json at all".len() as u64);
        assert_eq!(info.stale_tmp, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_unions_disjoint_shard_caches() {
        let root = scratch_dir("merge-union");
        let (a, b, dest) = (root.join("s0"), root.join("s1"), root.join("merged"));
        let ca = ResultCache::at_dir(&a).unwrap();
        let cb = ResultCache::at_dir(&b).unwrap();
        ca.insert(Fingerprint(1, 1), metrics(1.5));
        ca.insert(Fingerprint(2, 2), metrics(2.5));
        cb.insert(Fingerprint(3, 3), metrics(3.5));

        // A shard dir that never materialized is skipped, not an error.
        let r = merge_dirs(&dest, &[a.clone(), b.clone(), root.join("s9")]).unwrap();
        assert_eq!((r.merged, r.identical, r.invalid), (3, 0, 0));
        assert!(r.conflicts.is_empty());
        let merged = ResultCache::at_dir(&dest).unwrap();
        for (fp, s) in [
            (Fingerprint(1, 1), 1.5),
            (Fingerprint(2, 2), 2.5),
            (Fingerprint(3, 3), 3.5),
        ] {
            assert_eq!(merged.lookup(fp), Some(metrics(s)));
        }

        // Re-merging is idempotent: everything is now identical.
        let r2 = merge_dirs(&dest, &[a, b]).unwrap();
        assert_eq!((r2.merged, r2.identical), (0, 3));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn merge_detects_conflicts_and_skips_invalid_entries() {
        let root = scratch_dir("merge-conflict");
        let (a, b, dest) = (root.join("s0"), root.join("s1"), root.join("merged"));
        let ca = ResultCache::at_dir(&a).unwrap();
        let cb = ResultCache::at_dir(&b).unwrap();
        // Same fingerprint, different content: impossible for honest
        // caches, so the merge must flag it loudly.
        ca.insert(Fingerprint(7, 7), metrics(1.0));
        cb.insert(Fingerprint(7, 7), metrics(9.0));
        // Corrupt source entry under a well-formed name, and a stray
        // json file whose name is no fingerprint.
        std::fs::write(a.join(format!("{}.json", Fingerprint(8, 8))), "garbage").unwrap();
        std::fs::write(b.join("readme.json"), "{}").unwrap();

        let r = merge_dirs(&dest, &[a, b]).unwrap();
        assert_eq!((r.merged, r.identical, r.invalid), (1, 0, 2));
        assert_eq!(r.conflicts, vec![Fingerprint(7, 7).to_string()]);
        // First-seen value wins; the destination stays self-consistent.
        let merged = ResultCache::at_dir(&dest).unwrap();
        assert_eq!(merged.lookup(Fingerprint(7, 7)), Some(metrics(1.0)));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn merge_preserves_degenerate_float_entries() {
        // NaN metrics must merge as `identical` on re-merge: equality is
        // canonical-bytes, not f64 PartialEq (NaN != NaN).
        let root = scratch_dir("merge-nan");
        let src = root.join("s0");
        let dest = root.join("merged");
        let c = ResultCache::at_dir(&src).unwrap();
        c.insert(
            Fingerprint(5, 5),
            CellMetrics {
                tops_per_w: f64::NAN,
                ..metrics(1.0)
            },
        );
        let r1 = merge_dirs(&dest, std::slice::from_ref(&src)).unwrap();
        let r2 = merge_dirs(&dest, &[src]).unwrap();
        assert_eq!(r1.merged, 1);
        assert_eq!(r2.identical, 1);
        assert!(r2.conflicts.is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn merge_skips_a_killed_shards_partial_output() {
        // A shard killed mid-write leaves (a) an in-flight `.tmp` file
        // that never got renamed and (b) possibly a truncated entry.
        // Merge must skip both — the tmp silently (it is not an entry),
        // the torn entry as `invalid` — and take the good copy the
        // retried shard produced.
        let root = scratch_dir("merge-partial");
        let (dead, retry, dest) = (root.join("s0"), root.join("s0-retry"), root.join("merged"));
        let cd = ResultCache::at_dir(&dead).unwrap();
        cd.insert(Fingerprint(1, 1), metrics(1.5));
        cd.insert(Fingerprint(2, 2), metrics(2.5));
        // Kill simulation: a partial tmp and a half-written entry.
        std::fs::write(dead.join("0dead.tmp.7.0"), "{\"speedup\":").unwrap();
        let torn = dead.join(format!("{}.json", Fingerprint(2, 2)));
        let len = std::fs::metadata(&torn).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&torn)
            .unwrap()
            .set_len(len / 2)
            .unwrap();
        // The retried shard re-simulated the lost cell correctly.
        let cr = ResultCache::at_dir(&retry).unwrap();
        cr.insert(Fingerprint(2, 2), metrics(2.5));

        let r = merge_dirs(&dest, &[dead, retry]).unwrap();
        assert_eq!((r.merged, r.invalid, r.healed), (2, 1, 0));
        assert!(r.conflicts.is_empty());
        assert!(
            !dest.join("0dead.tmp.7.0").exists(),
            "in-flight temp files never reach the merged cache"
        );
        let merged = ResultCache::at_dir(&dest).unwrap();
        assert_eq!(merged.lookup(Fingerprint(2, 2)), Some(metrics(2.5)));

        // A *conflicting* canonical-bytes entry appearing after the
        // retry (an impostor shard dir) must still be detected — torn
        // files don't relax the conflict check for healthy ones.
        let impostor = root.join("s9");
        let ci = ResultCache::at_dir(&impostor).unwrap();
        ci.insert(Fingerprint(2, 2), metrics(99.0));
        let r2 = merge_dirs(&dest, &[impostor]).unwrap();
        assert_eq!(r2.conflicts, vec![Fingerprint(2, 2).to_string()]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn merge_heals_a_torn_destination_entry() {
        // The *destination* can be torn too: a coordinator killed while
        // merging leaves an unparsable target. Re-merging must replace
        // it with the good source copy (healed), not flag a conflict —
        // while a parseable-but-different target stays a conflict.
        let root = scratch_dir("merge-heal");
        let (src, dest) = (root.join("s0"), root.join("merged"));
        let cs = ResultCache::at_dir(&src).unwrap();
        cs.insert(Fingerprint(4, 4), metrics(4.0));
        std::fs::create_dir_all(&dest).unwrap();
        std::fs::write(dest.join(format!("{}.json", Fingerprint(4, 4))), "{\"spee").unwrap();

        let r = merge_dirs(&dest, std::slice::from_ref(&src)).unwrap();
        assert_eq!((r.merged, r.healed, r.identical), (0, 1, 0));
        assert!(r.conflicts.is_empty());
        let merged = ResultCache::at_dir(&dest).unwrap();
        assert_eq!(merged.lookup(Fingerprint(4, 4)), Some(metrics(4.0)));

        // Idempotent after healing; a semantically different target is
        // still a conflict, never "healed" away.
        let r2 = merge_dirs(&dest, std::slice::from_ref(&src)).unwrap();
        assert_eq!((r2.identical, r2.healed), (1, 0));
        std::fs::write(
            dest.join(format!("{}.json", Fingerprint(4, 4))),
            metrics(5.0).to_json().write(),
        )
        .unwrap();
        let r3 = merge_dirs(&dest, &[src]).unwrap();
        assert_eq!(r3.conflicts, vec![Fingerprint(4, 4).to_string()]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scan_dir_counts_valid_and_torn_entries() {
        let root = scratch_dir("scan");
        // Missing directory: empty report, not an error.
        assert_eq!(scan_dir(&root).unwrap(), ScanReport::default());
        let c = ResultCache::at_dir(&root).unwrap();
        c.insert(Fingerprint(1, 1), metrics(1.5));
        c.insert(Fingerprint(2, 2), metrics(2.5));
        // A truncated entry (short pull) and non-entry junk.
        std::fs::write(root.join(format!("{}.json", Fingerprint(3, 3))), "{\"spee").unwrap();
        std::fs::write(root.join("x.tmp.1.0"), "partial").unwrap();
        let r = scan_dir(&root).unwrap();
        assert_eq!((r.valid, r.torn), (2, 1));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_disk_entries_are_misses() {
        let dir =
            std::env::temp_dir().join(format!("griffin-sweep-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = ResultCache::at_dir(&dir).unwrap();
        let fp = Fingerprint(3, 4);
        std::fs::write(dir.join(format!("{fp}.json")), "not json").unwrap();
        assert_eq!(c.lookup(fp), None);
        assert_eq!(c.stats().misses, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
