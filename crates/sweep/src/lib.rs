//! Parallel scenario-sweep campaign engine for the Griffin reproduction.
//!
//! The Griffin paper's methodology (§VI) is a *design-space sweep*:
//! hundreds of `Sparse.A` / `Sparse.B` / `Sparse.AB` points simulated
//! across benchmarks and DNN categories, then Pareto-reduced. This crate
//! turns that from a serial loop into a campaign engine:
//!
//! * [`spec`] — declarative [`SweepSpec`] grids over workloads ×
//!   categories × architectures × seeds, with the §VI design-family
//!   enumerations as an axis,
//! * [`executor`] — a multi-threaded work-queue executor whose reports
//!   are byte-identical for any worker count,
//! * [`fingerprint`] — stable 128-bit content fingerprints of scenario
//!   cells (what the cache is addressed by),
//! * [`cache`] — an in-memory + on-disk result cache, so re-runs and
//!   overlapping campaigns skip completed cells,
//! * [`aggregate`] — summaries, per-architecture rollups and Pareto
//!   extraction via [`griffin_core::dse::pareto_front`],
//! * [`scenario`] — declarative scenario files (a TOML-subset) that
//!   define whole campaigns as versionable data, plus the token
//!   registry the CLI and parser share,
//! * [`report`] — deterministic, dependency-free CSV/JSON writers and
//!   parsers,
//! * [`json`] — the small JSON engine behind the cache and reports.
//!
//! # Example
//!
//! ```
//! use griffin_sweep::cache::ResultCache;
//! use griffin_sweep::executor::run_campaign;
//! use griffin_sweep::spec::SweepSpec;
//! use griffin_core::arch::ArchSpec;
//! use griffin_core::category::DnnCategory;
//!
//! let spec = SweepSpec::new("demo")
//!     .adhoc_layer("gemm", 32, 256, 32, 1.0, 0.2)
//!     .category(DnnCategory::B)
//!     .archs([ArchSpec::dense(), ArchSpec::sparse_b_star(), ArchSpec::griffin()])
//!     .seeds([1, 2]);
//!
//! let cache = ResultCache::in_memory();
//! let report = run_campaign(&spec, &cache, 4).unwrap();
//! assert_eq!(report.cells.len(), 6);
//!
//! // A second run of the same campaign is served from the cache.
//! let rerun = run_campaign(&spec, &cache, 1).unwrap();
//! assert_eq!(rerun.cache.hits, 6);
//! assert_eq!(rerun.cells, report.cells); // any worker count, same output
//! ```

pub mod aggregate;
pub mod cache;
pub mod executor;
pub mod fingerprint;
pub mod json;
pub mod report;
pub mod scenario;
pub mod spec;

pub use aggregate::{pareto_designs, per_arch, summarize, ArchAggregate, Summary};
pub use cache::{
    disk_stats, merge_dirs, prune_dir, scan_dir, CacheStats, CellMetrics, DiskCacheInfo,
    MergeReport, PruneReport, ResultCache, ScanReport,
};
pub use executor::{
    default_workers, no_observer, run_campaign, run_cells, run_cells_bounded, run_cells_pooled,
    CampaignReport, CellEvent, CellRecord, ScratchPool, SweepError,
};
pub use fingerprint::Fingerprint;
pub use scenario::{ArchEntry, FleetSettings, Scenario, ScenarioError, ScenarioProvenance};
pub use spec::{ArchFamily, Cell, SweepSpec, WorkloadSpec};
