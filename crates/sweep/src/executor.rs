//! Multi-threaded campaign execution.
//!
//! The executor materializes a [`SweepSpec`] grid, probes the
//! [`ResultCache`] for every cell, then drives the remaining cells
//! through a pool of `std::thread` workers pulling from a shared atomic
//! work queue (run-to-idle work stealing: a fast worker simply takes the
//! next cell, so stragglers never gate throughput). Two properties hold
//! for any worker count:
//!
//! * **deterministic output** — results are assembled by grid index, so
//!   the report is byte-identical for 1 or 64 workers;
//! * **workload reuse** — each distinct (workload, category, seed)
//!   triple is built exactly once and shared read-only across workers,
//!   because mask construction dominates small-cell campaigns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use griffin_core::accelerator::{Accelerator, Workload};
use griffin_core::category::DnnCategory;
use griffin_sim::scratch::SimScratch;

use crate::cache::{CacheStats, CellMetrics, ResultCache};
use crate::fingerprint::{Fingerprint, Hasher};
use crate::spec::{Cell, SweepSpec};

/// One finished cell of a campaign report, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Grid index (stable across worker counts and cache states).
    pub index: usize,
    /// Workload display name.
    pub workload: String,
    /// Category axis value.
    pub category: DnnCategory,
    /// Architecture display name.
    pub arch: String,
    /// Mask seed.
    pub seed: u64,
    /// Stable scenario fingerprint (hex).
    pub fingerprint: String,
    /// Simulation results.
    pub metrics: CellMetrics,
}

/// A completed campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub campaign: String,
    /// Every cell in deterministic grid order.
    pub cells: Vec<CellRecord>,
    /// Cache activity during this campaign only.
    pub cache: CacheStats,
    /// Worker threads used (not serialized; informational).
    pub workers: usize,
    /// Wall-clock milliseconds (not serialized; informational).
    pub elapsed_ms: u128,
}

/// Campaign failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec had an empty axis.
    EmptySpec,
    /// A workload failed to build (e.g. degenerate ad-hoc dimensions).
    Workload(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptySpec => write!(f, "sweep spec has an empty axis"),
            SweepError::Workload(e) => write!(f, "workload construction failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Default worker count for campaign drivers: every available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A pool of reusable [`SimScratch`] instances shared **across**
/// campaigns.
///
/// Within one campaign each worker already keeps a single scratch for
/// its whole run, so the per-tile loop allocates nothing; but a fresh
/// campaign driver starts from empty scratches, re-growing every buffer
/// and rebuilding every memoized tile grid. A resident driver (the
/// serve daemon) keeps one pool alive instead: workers check scratches
/// out at thread start and return them at thread exit, so buffer
/// capacity — and any tile grids whose reuse scope still matches —
/// survive from one campaign to the next. Checking out of an empty pool
/// just creates a fresh scratch, which makes a throwaway pool exactly
/// equivalent to the pre-pool behavior.
#[derive(Default)]
pub struct ScratchPool {
    free: Mutex<Vec<SimScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a pooled scratch, or creates a fresh one when none is
    /// parked.
    pub fn checkout(&self) -> SimScratch {
        self.free
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Parks a scratch for the next campaign's workers.
    pub fn give_back(&self, scratch: SimScratch) {
        self.free.lock().expect("scratch pool lock").push(scratch);
    }

    /// How many scratches are currently parked.
    pub fn parked(&self) -> usize {
        self.free.lock().expect("scratch pool lock").len()
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("parked", &self.parked())
            .finish()
    }
}

/// Key identifying a unique workload build within a campaign.
fn workload_key(cell: &Cell) -> Fingerprint {
    let mut h = Hasher::new();
    h.feed(&cell.workload).feed(&cell.category).u64(cell.seed);
    h.finish()
}

/// Entries kept in the process-wide workload memo before it resets.
/// Mask tensors are a few hundred KB per workload, so the cap bounds
/// resident memory in long-lived daemons; a full reset (rather than
/// eviction bookkeeping) keeps the hot path to one map probe.
const WORKLOAD_MEMO_CAP: usize = 64;

/// Process-wide memo of built workloads, keyed by [`workload_key`].
/// Workload construction is deterministic in the key, so a hit is
/// value-identical to a fresh build — campaigns that revisit a workload
/// (daemon reruns, in-process fleet shards, benchmark passes) skip the
/// synthesis cost without any observable difference.
fn workload_memo() -> &'static Mutex<HashMap<Fingerprint, Arc<Workload>>> {
    static MEMO: std::sync::OnceLock<Mutex<HashMap<Fingerprint, Arc<Workload>>>> =
        std::sync::OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Key identifying a seed-batch group: cells agreeing on everything but
/// the mask seed simulate word-parallel through one
/// [`Accelerator::run_batch`] call.
fn batch_key(cell: &Cell) -> Fingerprint {
    let mut h = Hasher::new();
    h.str("griffin-batch-group-v1")
        .feed(&cell.workload)
        .feed(&cell.category)
        .feed(&cell.arch);
    h.finish()
}

/// Maximum seed-variant planes per batched simulation, read from the
/// environment: `GRIFFIN_UNBATCHED=1` forces plane-at-a-time execution
/// (the historical path — reports are byte-identical either way, which
/// CI pins), `GRIFFIN_BATCH=n` caps batches at `n` planes, and the
/// default is unbounded (one batch per seed-variant group).
fn env_batch_cap() -> usize {
    let set = |k: &str| std::env::var(k).ok().filter(|v| !v.is_empty() && v != "0");
    if set("GRIFFIN_UNBATCHED").is_some() {
        return 1;
    }
    set("GRIFFIN_BATCH")
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(usize::MAX)
}

/// Maximum architectures per family-batched simulation, read from the
/// environment: `GRIFFIN_UNBATCHED=1` forces one architecture per
/// simulation call (covering the arch axis as well as the seed axis),
/// `GRIFFIN_ARCH_BATCH=n` caps family width at `n`, and the default is
/// unbounded (one call per whole architecture family). Reports are
/// byte-identical at every width — family batching only changes how
/// many event-core passes the scheduler can share.
fn env_arch_cap() -> usize {
    let set = |k: &str| std::env::var(k).ok().filter(|v| !v.is_empty() && v != "0");
    if set("GRIFFIN_UNBATCHED").is_some() {
        return 1;
    }
    set("GRIFFIN_ARCH_BATCH")
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(usize::MAX)
}

/// A live progress event emitted by [`run_cells`] while a campaign is
/// executing. Events fire from worker threads in completion order (not
/// grid order); the final cell list is still assembled deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellEvent<'a> {
    /// A worker began simulating a cell (cache misses only).
    Started {
        /// The cell being simulated.
        cell: &'a Cell,
        /// Its stable scenario fingerprint.
        fingerprint: Fingerprint,
    },
    /// A cell's metrics became available.
    Finished {
        /// The finished cell.
        cell: &'a Cell,
        /// Its stable scenario fingerprint.
        fingerprint: Fingerprint,
        /// The simulation results.
        metrics: CellMetrics,
        /// `true` when served without a fresh simulation (a cache hit,
        /// or an in-campaign twin of a cell simulated this run).
        cached: bool,
    },
}

/// No-op observer for drivers that don't stream progress.
pub fn no_observer(_: &CellEvent<'_>) {}

/// Runs every grid cell of `spec`, using `cache` to skip scenarios that
/// were already simulated (by this process or, with a directory-backed
/// cache, by any earlier one).
///
/// `workers` is clamped to `[1, cells]`. Cache counters in the returned
/// report cover this campaign only.
///
/// # Errors
///
/// [`SweepError::EmptySpec`] when an axis is empty and
/// [`SweepError::Workload`] when a workload fails validation.
pub fn run_campaign(
    spec: &SweepSpec,
    cache: &ResultCache,
    workers: usize,
) -> Result<CampaignReport, SweepError> {
    if !spec.is_runnable() {
        return Err(SweepError::EmptySpec);
    }
    let start = Instant::now();
    let stats_before = cache.stats();
    let records = run_cells(spec, &spec.cells(), cache, workers, &no_observer)?;

    let after = cache.stats();
    Ok(CampaignReport {
        campaign: spec.name.clone(),
        cells: records,
        cache: CacheStats {
            hits: after.hits - stats_before.hits,
            misses: after.misses - stats_before.misses,
            disk_hits: after.disk_hits - stats_before.disk_hits,
            stores: after.stores - stats_before.stores,
        },
        workers,
        elapsed_ms: start.elapsed().as_millis(),
    })
}

/// Runs an arbitrary subset of a campaign's grid cells — the primitive
/// behind [`run_campaign`] (all cells) and the fleet coordinator's shard
/// execution (one shard's cells, minus journaled completions).
///
/// Returns one [`CellRecord`] per input cell, in input order; `cells`
/// keep their *global* grid indices, so records from disjoint subsets
/// can be recombined into a full campaign. `observe` is called from
/// worker threads as cells start and finish (see [`CellEvent`]) and must
/// therefore be `Sync`; pass [`no_observer`] when progress streaming is
/// not needed.
///
/// The phase-2 workload-build pool uses every core regardless of
/// `workers` (builds never affect the report, so a `--workers 1`
/// simulation run shouldn't serialize its cross-seed mask builds);
/// callers sharing the machine with sibling processes — spawned shard
/// workers — bound it via [`run_cells_bounded`].
///
/// # Errors
///
/// [`SweepError::Workload`] when a workload fails validation. An empty
/// subset is not an error (returns no records).
pub fn run_cells(
    spec: &SweepSpec,
    cells: &[Cell],
    cache: &ResultCache,
    workers: usize,
    observe: &(dyn Fn(&CellEvent<'_>) + Sync),
) -> Result<Vec<CellRecord>, SweepError> {
    run_cells_bounded(
        spec,
        cells,
        cache,
        workers,
        workers.max(default_workers()),
        observe,
    )
}

/// [`run_cells`] with an explicit phase-2 build-pool bound — for
/// processes pinned to a thread budget on a shared machine.
///
/// # Errors
///
/// As [`run_cells`].
pub fn run_cells_bounded(
    spec: &SweepSpec,
    cells: &[Cell],
    cache: &ResultCache,
    workers: usize,
    build_workers: usize,
    observe: &(dyn Fn(&CellEvent<'_>) + Sync),
) -> Result<Vec<CellRecord>, SweepError> {
    // A throwaway pool starts empty, so every worker builds a fresh
    // scratch — the historical behavior.
    run_cells_pooled(
        spec,
        cells,
        cache,
        workers,
        build_workers,
        observe,
        &ScratchPool::new(),
    )
}

/// [`run_cells_bounded`] drawing worker scratches from (and returning
/// them to) a caller-owned [`ScratchPool`] — the resident-daemon entry
/// point, where scratch capacity and matching-scope tile grids survive
/// across campaigns. Determinism is unaffected: a scratch carries
/// capacity, never results.
///
/// # Errors
///
/// As [`run_cells`].
pub fn run_cells_pooled(
    spec: &SweepSpec,
    cells: &[Cell],
    cache: &ResultCache,
    workers: usize,
    build_workers: usize,
    observe: &(dyn Fn(&CellEvent<'_>) + Sync),
    pool: &ScratchPool,
) -> Result<Vec<CellRecord>, SweepError> {
    run_cells_capped(
        spec,
        cells,
        cache,
        workers,
        build_workers,
        observe,
        pool,
        env_batch_cap(),
        env_arch_cap(),
    )
}

/// [`run_cells_pooled`] with explicit seed-batch and arch-family caps
/// instead of the environment's (`GRIFFIN_UNBATCHED` / `GRIFFIN_BATCH`
/// / `GRIFFIN_ARCH_BATCH`): `batch_cap` 1 is plane-at-a-time execution
/// and larger caps split each seed-variant group into batches of at
/// most that many planes; `arch_cap` 1 simulates one architecture per
/// call and larger caps hand up to that many family members to one
/// multi-window scheduling pass. Reports are byte-identical at
/// **every** cap combination and worker count — the batch-equivalence
/// harness sweeps all three axes against this entry point.
#[allow(clippy::too_many_arguments)]
pub fn run_cells_capped(
    spec: &SweepSpec,
    cells: &[Cell],
    cache: &ResultCache,
    workers: usize,
    build_workers: usize,
    observe: &(dyn Fn(&CellEvent<'_>) + Sync),
    pool: &ScratchPool,
    batch_cap: usize,
    arch_cap: usize,
) -> Result<Vec<CellRecord>, SweepError> {
    let fingerprints: Vec<Fingerprint> = cells.iter().map(|c| c.fingerprint(&spec.sim)).collect();

    // Phase 1: probe the cache, and deduplicate identical scenarios
    // within this campaign (e.g. a repeated seed): each distinct
    // fingerprint is simulated once, then fanned out to every cell
    // that shares it.
    let mut metrics: Vec<Option<CellMetrics>> =
        fingerprints.iter().map(|&fp| cache.lookup(fp)).collect();
    let mut missing: Vec<usize> = Vec::new(); // one representative per fingerprint
    let mut twins: HashMap<Fingerprint, Vec<usize>> = HashMap::new();
    for i in 0..cells.len() {
        match metrics[i] {
            Some(m) => observe(&CellEvent::Finished {
                cell: &cells[i],
                fingerprint: fingerprints[i],
                metrics: m,
                cached: true,
            }),
            None => {
                let bucket = twins.entry(fingerprints[i]).or_default();
                if bucket.is_empty() {
                    missing.push(i);
                }
                bucket.push(i);
            }
        }
    }

    if !missing.is_empty() {
        // Group the missing cells into batch units: cells differing only
        // by mask seed share grid shapes, so one worker simulates a whole
        // unit word-parallel via `Accelerator::run_batch`. Units keep the
        // grid order of `missing` (architecture-major), so consecutive
        // units sweep architectures over one workload group and the
        // reuse scope below shares every plane's tile grids across them.
        let cap = batch_cap.max(1);
        let mut units: Vec<Vec<usize>> = Vec::new();
        {
            let mut unit_of: HashMap<Fingerprint, usize> = HashMap::new();
            for &i in &missing {
                let key = batch_key(&cells[i]);
                match unit_of.get(&key) {
                    Some(&u) if units[u].len() < cap => units[u].push(i),
                    _ => {
                        unit_of.insert(key, units.len());
                        units.push(vec![i]);
                    }
                }
            }
        }
        // Widen units into *family groups*: units agreeing on everything
        // but the architecture — same workload, category and seed-plane
        // list — hand their whole architecture family to one
        // `Accelerator::run_family_batch` call, where same-reach
        // borrowing windows share event-core passes. The seed tuple is
        // part of the key so partially-cached families (some arches'
        // cells already served) split into runs with identical planes.
        let acap = arch_cap.max(1);
        let mut families: Vec<Vec<usize>> = Vec::new();
        {
            let mut fam_of: HashMap<Fingerprint, usize> = HashMap::new();
            for (u, unit) in units.iter().enumerate() {
                let lead = &cells[unit[0]];
                let mut h = Hasher::new();
                h.str("griffin-family-group-v1")
                    .feed(&lead.workload)
                    .feed(&lead.category);
                for &i in unit {
                    h.u64(cells[i].seed);
                }
                let key = h.finish();
                match fam_of.get(&key) {
                    Some(&f) if families[f].len() < acap => families[f].push(u),
                    _ => {
                        fam_of.insert(key, families.len());
                        families.push(vec![u]);
                    }
                }
            }
        }
        let workers = workers.clamp(1, families.len());

        // Phase 2: build each distinct workload once, in parallel.
        let mut keys: Vec<Fingerprint> = Vec::new();
        let mut key_cells: Vec<&Cell> = Vec::new();
        {
            let mut seen = HashMap::new();
            for &i in &missing {
                let key = workload_key(&cells[i]);
                if seen.insert(key, ()).is_none() {
                    keys.push(key);
                    key_cells.push(&cells[i]);
                }
            }
        }
        // Workload construction is a pure function of the key, so builds
        // are memoized process-wide: repeated campaigns over the same
        // workloads (benchmark reruns, fleet shards in one process, the
        // resident daemon) skip mask synthesis entirely. The memo holds
        // `Arc`s, so sharing a hit costs one clone; determinism is
        // untouched because a cached build is value-identical to a fresh
        // one.
        let memo = workload_memo();
        let built: Mutex<HashMap<Fingerprint, Arc<Workload>>> = Mutex::new(HashMap::new());
        {
            let memo = memo.lock().expect("workload memo lock");
            let mut built = built.lock().expect("build lock");
            let mut k = 0;
            while k < keys.len() {
                if let Some(wl) = memo.get(&keys[k]) {
                    built.insert(keys[k], Arc::clone(wl));
                    keys.swap_remove(k);
                    key_cells.swap_remove(k);
                } else {
                    k += 1;
                }
            }
        }
        // The pool bound comes from the caller (all cores by default —
        // ROADMAP scheduler-headroom item — or the process's pinned
        // budget for spawned shard workers); builds never reach the
        // report, so the bound cannot affect results.
        let build_workers = build_workers.clamp(1, keys.len().max(1));
        let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let next_key = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..build_workers {
                s.spawn(|| loop {
                    let k = next_key.fetch_add(1, Ordering::Relaxed);
                    if k >= keys.len() {
                        break;
                    }
                    let cell = key_cells[k];
                    match cell.workload.build(cell.category, cell.seed) {
                        Ok(wl) => {
                            let wl = Arc::new(wl);
                            built
                                .lock()
                                .expect("build lock")
                                .insert(keys[k], Arc::clone(&wl));
                            let mut memo = memo.lock().expect("workload memo lock");
                            if memo.len() >= WORKLOAD_MEMO_CAP {
                                memo.clear();
                            }
                            memo.insert(keys[k], wl);
                        }
                        Err(e) => errors
                            .lock()
                            .expect("error lock")
                            .push(format!("{}: {e}", cell.workload.name())),
                    }
                });
            }
        });
        let mut errors = errors.into_inner().expect("error lock");
        if !errors.is_empty() {
            errors.sort();
            return Err(SweepError::Workload(errors.join("; ")));
        }
        let built = built.into_inner().expect("build lock");

        // Phase 3: simulate the batch units, any worker, any order.
        // Each worker keeps one `SimScratch` for its whole run, so the
        // per-tile scheduler loop allocates nothing at steady state.
        let done: Mutex<Vec<(usize, CellMetrics)>> = Mutex::new(Vec::with_capacity(missing.len()));
        let next_family = AtomicUsize::new(0);
        // Check every worker's scratch out before spawning so a fast
        // worker that finishes early can't park a scratch a slow-to-start
        // worker then steals (each worker must hold a distinct scratch).
        let scratches: Vec<SimScratch> = (0..workers).map(|_| pool.checkout()).collect();
        std::thread::scope(|s| {
            for mut scratch in scratches {
                let (units, families, fingerprints, built, twins, done, next_family) = (
                    &units,
                    &families,
                    &fingerprints,
                    &built,
                    &twins,
                    &done,
                    &next_family,
                );
                s.spawn(move || {
                    loop {
                        let f = next_family.fetch_add(1, Ordering::Relaxed);
                        if f >= families.len() {
                            break;
                        }
                        let family = &families[f];
                        for &u in family {
                            for &i in &units[u] {
                                observe(&CellEvent::Started {
                                    cell: &cells[i],
                                    fingerprint: fingerprints[i],
                                });
                            }
                        }
                        // Every unit of a family shares its seed-plane
                        // list (it's part of the family key), so one
                        // workload list serves all of them.
                        let unit0 = &units[family[0]];
                        let wls: Vec<Arc<Workload>> = unit0
                            .iter()
                            .map(|&i| Arc::clone(&built[&workload_key(&cells[i])]))
                            .collect();
                        let planes: Vec<&Workload> = wls.iter().map(Arc::as_ref).collect();
                        // Scoping the scratch to the group (workload,
                        // category, ordered seeds — *not* the
                        // architecture) shares every plane's tile grids
                        // and cached schedules across the whole family.
                        let lead = &cells[unit0[0]];
                        let mut h = Hasher::new();
                        h.str("griffin-batch-scope-v1")
                            .feed(&lead.workload)
                            .feed(&lead.category);
                        for &i in unit0 {
                            h.u64(cells[i].seed);
                        }
                        let token = h.finish();
                        scratch
                            .begin_reuse_scope((u128::from(token.0) << 64) | u128::from(token.1));
                        // Singleton families take the historical
                        // single-arch path; wider ones hand the family
                        // to one multi-window scheduling pass. Reports
                        // are bitwise identical either way (pinned by
                        // batch-equivalence tests).
                        let family_reports: Vec<Vec<griffin_core::accelerator::RunReport>> =
                            if family.len() == 1 {
                                vec![Accelerator::new(lead.arch.clone(), spec.sim)
                                    .run_batch(&planes, &mut scratch)]
                            } else {
                                let accel_objs: Vec<Accelerator> = family
                                    .iter()
                                    .map(|&u| {
                                        Accelerator::new(cells[units[u][0]].arch.clone(), spec.sim)
                                    })
                                    .collect();
                                let accels: Vec<&Accelerator> = accel_objs.iter().collect();
                                Accelerator::run_family_batch(&accels, &planes, &mut scratch)
                            };
                        for (&u, reports) in family.iter().zip(&family_reports) {
                            for (&i, report) in units[u].iter().zip(reports) {
                                let m = CellMetrics {
                                    speedup: report.speedup,
                                    cycles: report.network.cycles(),
                                    dense_cycles: report.network.dense_cycles(),
                                    power_mw: report.cost.power_mw(),
                                    area_mm2: report.cost.area_mm2(),
                                    tops_per_w: report.effective_tops_per_w,
                                    tops_per_mm2: report.effective_tops_per_mm2,
                                };
                                cache.insert(fingerprints[i], m);
                                // Stream completion for the simulated
                                // cell and every in-campaign twin it
                                // resolves.
                                for &twin in &twins[&fingerprints[i]] {
                                    observe(&CellEvent::Finished {
                                        cell: &cells[twin],
                                        fingerprint: fingerprints[twin],
                                        metrics: m,
                                        cached: twin != i,
                                    });
                                }
                                done.lock().expect("done lock").push((i, m));
                            }
                        }
                    }
                    pool.give_back(scratch);
                });
            }
        });
        for (i, m) in done.into_inner().expect("done lock") {
            for &twin in &twins[&fingerprints[i]] {
                metrics[twin] = Some(m);
            }
        }
    }

    // Assemble in input (grid) order — identical output for any worker
    // count.
    Ok(cells
        .iter()
        .zip(&fingerprints)
        .zip(metrics)
        .map(|((cell, fp), m)| CellRecord {
            index: cell.index,
            workload: cell.workload.name(),
            category: cell.category,
            arch: cell.arch.name.clone(),
            seed: cell.seed,
            fingerprint: fp.to_string(),
            metrics: m.expect("every cell resolved"),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_core::arch::ArchSpec;
    use griffin_sim::config::{Fidelity, SimConfig};

    fn small_spec() -> SweepSpec {
        SweepSpec::new("unit")
            .adhoc_layer("l0", 32, 256, 32, 1.0, 0.2)
            .adhoc_layer("l1", 16, 128, 64, 0.5, 0.5)
            .category(DnnCategory::B)
            .arch(ArchSpec::dense())
            .arch(ArchSpec::sparse_b_star())
            .arch(ArchSpec::griffin())
            .seeds([1, 2])
            .sim(SimConfig {
                fidelity: Fidelity::Sampled { tiles: 4, seed: 1 },
                ..SimConfig::default()
            })
    }

    #[test]
    fn campaign_covers_every_cell_in_order() {
        let cache = ResultCache::in_memory();
        let r = run_campaign(&small_spec(), &cache, 2).unwrap();
        assert_eq!(r.cells.len(), 12);
        for (i, c) in r.cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert!(c.metrics.speedup > 0.0);
        }
        assert_eq!(r.cache.misses, 12);
        assert_eq!(r.cache.stores, 12);
        assert_eq!(r.cache.hits, 0);
    }

    #[test]
    fn rerun_is_fully_cached() {
        let cache = ResultCache::in_memory();
        let first = run_campaign(&small_spec(), &cache, 3).unwrap();
        let second = run_campaign(&small_spec(), &cache, 3).unwrap();
        assert_eq!(second.cache.hits, 12);
        assert_eq!(second.cache.misses, 0);
        assert_eq!(first.cells, second.cells);
    }

    #[test]
    fn duplicate_cells_simulate_once_and_fan_out() {
        // A repeated seed duplicates every scenario; each distinct
        // fingerprint must be simulated (stored) once, with the result
        // shared by its twin cells.
        let spec = small_spec().seeds([1, 1]);
        let cache = ResultCache::in_memory();
        let r = run_campaign(&spec, &cache, 2).unwrap();
        assert_eq!(r.cells.len(), 12);
        assert_eq!(r.cache.stores, 6, "one simulation per distinct scenario");
        // Grid order is workload → category → seed → arch, so the twin
        // of each cell under the duplicated seed sits one arch-block
        // (3 cells) later inside the same workload block of 6.
        for block in r.cells.chunks(6) {
            let (first, second) = block.split_at(3);
            for (a, b) in first.iter().zip(second) {
                assert_eq!(a.metrics, b.metrics);
                assert_eq!(a.fingerprint, b.fingerprint);
            }
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        let cache = ResultCache::in_memory();
        let spec = SweepSpec::new("nothing");
        assert_eq!(run_campaign(&spec, &cache, 1), Err(SweepError::EmptySpec));
    }

    #[test]
    fn invalid_adhoc_workload_is_an_error() {
        let cache = ResultCache::in_memory();
        let spec = SweepSpec::new("bad")
            .adhoc_layer("zero", 0, 16, 16, 1.0, 1.0)
            .category(DnnCategory::Dense)
            .arch(ArchSpec::dense());
        match run_campaign(&spec, &cache, 2) {
            Err(SweepError::Workload(msg)) => assert!(msg.contains("zero")),
            other => panic!("expected workload error, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_subsets_recombine_into_the_full_campaign() {
        let spec = small_spec();
        let cells = spec.cells();
        let cache = ResultCache::in_memory();
        // Interleaved split: subsets are not contiguous grid ranges.
        let evens: Vec<Cell> = cells.iter().filter(|c| c.index % 2 == 0).cloned().collect();
        let odds: Vec<Cell> = cells.iter().filter(|c| c.index % 2 == 1).cloned().collect();
        let mut recs = run_cells(&spec, &evens, &cache, 2, &no_observer).unwrap();
        recs.extend(run_cells(&spec, &odds, &cache, 3, &no_observer).unwrap());
        recs.sort_by_key(|r| r.index);
        let full = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
        assert_eq!(recs, full.cells);
        // Empty subsets are fine.
        assert_eq!(run_cells(&spec, &[], &cache, 2, &no_observer), Ok(vec![]));
    }

    #[test]
    fn observer_streams_every_cell_exactly_once() {
        let spec = small_spec();
        let cache = ResultCache::in_memory();
        let started = AtomicUsize::new(0);
        let finished: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());
        run_cells(&spec, &spec.cells(), &cache, 3, &|ev| match ev {
            CellEvent::Started { .. } => {
                started.fetch_add(1, Ordering::Relaxed);
            }
            CellEvent::Finished { cell, cached, .. } => {
                finished.lock().unwrap().push((cell.index, *cached));
            }
        })
        .unwrap();
        let mut fin = finished.into_inner().unwrap();
        fin.sort_unstable();
        assert_eq!(started.load(Ordering::Relaxed), 12);
        assert_eq!(
            fin,
            (0..12).map(|i| (i, false)).collect::<Vec<_>>(),
            "cold run: every cell finishes uncached, exactly once"
        );

        // Warm rerun: all finishes are cached, nothing starts.
        let started2 = AtomicUsize::new(0);
        let cached2 = AtomicUsize::new(0);
        run_cells(&spec, &spec.cells(), &cache, 3, &|ev| match ev {
            CellEvent::Started { .. } => {
                started2.fetch_add(1, Ordering::Relaxed);
            }
            CellEvent::Finished { cached: true, .. } => {
                cached2.fetch_add(1, Ordering::Relaxed);
            }
            CellEvent::Finished { .. } => {}
        })
        .unwrap();
        assert_eq!(started2.load(Ordering::Relaxed), 0);
        assert_eq!(cached2.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn observer_marks_twin_cells_cached() {
        // A duplicated seed: 6 distinct scenarios, each with one twin.
        let spec = small_spec().seeds([1, 1]);
        let cache = ResultCache::in_memory();
        let fresh = AtomicUsize::new(0);
        let twinned = AtomicUsize::new(0);
        run_cells(&spec, &spec.cells(), &cache, 2, &|ev| {
            if let CellEvent::Finished { cached, .. } = ev {
                if *cached {
                    twinned.fetch_add(1, Ordering::Relaxed);
                } else {
                    fresh.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .unwrap();
        assert_eq!(fresh.load(Ordering::Relaxed), 6);
        assert_eq!(twinned.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn pooled_scratches_survive_campaigns_with_identical_results() {
        let spec = small_spec();
        let pool = ScratchPool::new();
        let cache = ResultCache::in_memory();
        let pooled =
            run_cells_pooled(&spec, &spec.cells(), &cache, 2, 2, &no_observer, &pool).unwrap();
        assert_eq!(pool.parked(), 2, "each worker parks its scratch");

        // A second cold campaign re-checks the same scratches out and
        // returns them — and its records are byte-identical to a
        // fresh-scratch run (a scratch carries capacity, not results).
        let cold = ResultCache::in_memory();
        let warm_scratch =
            run_cells_pooled(&spec, &spec.cells(), &cold, 2, 2, &no_observer, &pool).unwrap();
        assert_eq!(pool.parked(), 2);
        assert_eq!(pooled, warm_scratch);
        let fresh = run_campaign(&spec, &ResultCache::in_memory(), 2).unwrap();
        assert_eq!(fresh.cells, warm_scratch);

        // A fully cached campaign never touches the pool (no misses —
        // nothing simulates, so nothing checks out).
        run_cells_pooled(&spec, &spec.cells(), &cache, 2, 2, &no_observer, &pool).unwrap();
        assert_eq!(pool.parked(), 2);
    }

    #[test]
    fn batch_caps_and_worker_count_never_change_records() {
        let spec = small_spec();
        let cells = spec.cells();
        let pool = ScratchPool::new();
        // Caps (1, 1) are plane-at-a-time, arch-at-a-time execution —
        // the historical path.
        let unbatched = run_cells_capped(
            &spec,
            &cells,
            &ResultCache::in_memory(),
            1,
            1,
            &no_observer,
            &pool,
            1,
            1,
        )
        .unwrap();
        for cap in [1, 2, usize::MAX] {
            for arch_cap in [1, 2, usize::MAX] {
                for workers in [1, 2, 5] {
                    let batched = run_cells_capped(
                        &spec,
                        &cells,
                        &ResultCache::in_memory(),
                        workers,
                        2,
                        &no_observer,
                        &pool,
                        cap,
                        arch_cap,
                    )
                    .unwrap();
                    assert_eq!(
                        unbatched, batched,
                        "cap {cap}, arch cap {arch_cap}, {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn arch_family_batching_never_changes_records() {
        // A genuine single-sparse family (not the mixed-mode small_spec
        // archs): the family path hands all members to one multi-window
        // scheduling pass, which must be byte-identical to the
        // arch-at-a-time path at every cap combination.
        use crate::spec::ArchFamily;
        let spec = SweepSpec::new("family")
            .adhoc_layer("l0", 32, 256, 32, 1.0, 0.2)
            .category(DnnCategory::B)
            .family(ArchFamily::SparseB { max_fanin: 4 })
            .seeds([1, 2])
            .sim(SimConfig {
                fidelity: Fidelity::Sampled { tiles: 2, seed: 1 },
                ..SimConfig::default()
            });
        let cells = spec.cells();
        let pool = ScratchPool::new();
        let unbatched = run_cells_capped(
            &spec,
            &cells,
            &ResultCache::in_memory(),
            1,
            1,
            &no_observer,
            &pool,
            1,
            1,
        )
        .unwrap();
        for (cap, arch_cap, workers) in [
            (usize::MAX, 1, 2),
            (1, usize::MAX, 2),
            (usize::MAX, usize::MAX, 1),
            (usize::MAX, usize::MAX, 8),
            (2, 3, 8),
        ] {
            let batched = run_cells_capped(
                &spec,
                &cells,
                &ResultCache::in_memory(),
                workers,
                2,
                &no_observer,
                &pool,
                cap,
                arch_cap,
            )
            .unwrap();
            assert_eq!(
                unbatched, batched,
                "cap {cap}, arch cap {arch_cap}, {workers} workers"
            );
        }
    }

    #[test]
    fn dense_arch_reports_unit_speedup() {
        let cache = ResultCache::in_memory();
        let r = run_campaign(&small_spec(), &cache, 2).unwrap();
        for c in r.cells.iter().filter(|c| c.arch == "Baseline") {
            assert!((c.metrics.speedup - 1.0).abs() < 1e-9);
        }
    }
}
