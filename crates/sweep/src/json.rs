//! Dependency-free JSON reading and writing.
//!
//! The sweep engine serializes campaign reports and cache entries as
//! JSON without pulling in serde (the build environment is offline).
//! Numbers are written with Rust's shortest-round-trip float formatting,
//! so `parse(write(x)) == x` holds exactly for every `f64` the simulator
//! produces; integers that must survive beyond 2^53 (seeds) are written
//! as strings by the callers.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Parse or access error.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description with byte offset.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { msg: msg.into() })
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(entries: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(entries.into_iter().collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Required member lookup.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .map_or_else(|| err(format!("missing key `{key}`")), Ok)
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(v) => Ok(*v),
            _ => err("expected number"),
        }
    }

    /// Encodes an `f64` losslessly: finite values as numbers, the
    /// non-finite values (which JSON numbers cannot express) as the
    /// strings `"NaN"` / `"inf"` / `"-inf"`. Decode with
    /// [`Json::as_f64_lossless`].
    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else if v.is_nan() {
            Json::Str("NaN".into())
        } else if v > 0.0 {
            Json::Str("inf".into())
        } else {
            Json::Str("-inf".into())
        }
    }

    /// Decodes the encoding of [`Json::from_f64`].
    pub fn as_f64_lossless(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(v) => Ok(*v),
            Json::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                _ => err(format!("bad float `{s}`")),
            },
            _ => err("expected number"),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => err("expected string"),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            _ => err("expected array"),
        }
    }

    /// The value as a `u64`, accepting both numbers and decimal strings
    /// (the writer uses strings for full 64-bit precision).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Ok(*v as u64),
            Json::Str(s) => s.parse().map_err(|_| JsonError {
                msg: format!("bad u64 `{s}`"),
            }),
            _ => err("expected u64"),
        }
    }

    /// Serializes to compact JSON.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_num(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's float Display is shortest-round-trip; integers render
        // without a fraction, which JSON accepts.
        out.push_str(&v.to_string());
    } else {
        // JSON has no Inf/NaN; null is the conventional substitute.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii slice");
    match text.parse::<f64>() {
        Ok(v) => Ok(Json::Num(v)),
        Err(_) => err(format!("bad number `{text}` at byte {start}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or(JsonError {
                                msg: "bad \\u escape".into(),
                            })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            msg: format!("bad \\u{hex}"),
                        })?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return err("bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| JsonError {
                    msg: "invalid utf-8".into(),
                })?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return err(format!("expected key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for src in ["null", "true", "false", "0", "-1.5", "\"hi\"", "[]", "{}"] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.write()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for v in [0.1, 1.0 / 3.0, 2.5e-17, f64::MAX, 123456789.123456] {
            let j = Json::Num(v);
            let back = Json::parse(&j.write()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn nested_structures() {
        let src = r#"{"a": [1, 2, {"b": "x,y", "c": null}], "d": true}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.req("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.req("a").unwrap().as_arr().unwrap()[2]
                .req("b")
                .unwrap()
                .as_str()
                .unwrap(),
            "x,y"
        );
        assert_eq!(Json::parse(&v.write()).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" slash\\ newline\n tab\t unicode é control\u{1}";
        let j = Json::Str(s.to_string());
        assert_eq!(Json::parse(&j.write()).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn u64_precision_via_strings() {
        let big = u64::MAX - 1;
        let j = Json::Str(big.to_string());
        assert_eq!(j.as_u64().unwrap(), big);
        assert_eq!(Json::Num(42.0).as_u64().unwrap(), 42);
        assert!(Json::Num(0.5).as_u64().is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::Null.req("x").is_err());
    }

    #[test]
    fn nan_and_inf_write_as_null() {
        assert_eq!(Json::Num(f64::NAN).write(), "null");
        assert_eq!(Json::Num(f64::INFINITY).write(), "null");
    }
}
