//! Machine-readable campaign reports: dependency-free CSV and JSON
//! writers with matching parsers (used for round-trip tests and for
//! consuming earlier reports).
//!
//! Both formats are **deterministic functions of the cell list**:
//! wall-clock time, worker count and cache counters are deliberately
//! excluded so that re-running a campaign — with any worker count, hot
//! or cold cache — yields byte-identical files. Floats are written with
//! Rust's shortest-round-trip formatting, so `parse(write(r)) == r`
//! exactly.

use std::fmt;
use std::path::Path;

use griffin_core::category::DnnCategory;

use crate::cache::CellMetrics;
use crate::executor::{CampaignReport, CellRecord};
use crate::json::{Json, JsonError};

/// Report parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportError {
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "report error: {}", self.msg)
    }
}

impl std::error::Error for ReportError {}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError { msg: e.to_string() }
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, ReportError> {
    Err(ReportError { msg: msg.into() })
}

/// Short stable token for a category (used in CSV and JSON).
pub fn category_token(c: DnnCategory) -> &'static str {
    match c {
        DnnCategory::Dense => "dense",
        DnnCategory::A => "a",
        DnnCategory::B => "b",
        DnnCategory::AB => "ab",
    }
}

/// Parses [`category_token`] output (also accepts the display forms).
pub fn parse_category_token(s: &str) -> Option<DnnCategory> {
    match s.to_ascii_lowercase().as_str() {
        "dense" | "dnn.dense" => Some(DnnCategory::Dense),
        "a" | "dnn.a" => Some(DnnCategory::A),
        "b" | "dnn.b" => Some(DnnCategory::B),
        "ab" | "dnn.ab" => Some(DnnCategory::AB),
        _ => None,
    }
}

const CSV_HEADER: &str = "index,workload,category,arch,seed,fingerprint,speedup,cycles,\
                          dense_cycles,power_mw,area_mm2,tops_per_w,tops_per_mm2";

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes the campaign's cells as CSV (header + one row per cell).
pub fn to_csv(report: &CampaignReport) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for c in &report.cells {
        let m = &c.metrics;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.index,
            csv_field(&c.workload),
            category_token(c.category),
            csv_field(&c.arch),
            c.seed,
            c.fingerprint,
            m.speedup,
            m.cycles,
            m.dense_cycles,
            m.power_mw,
            m.area_mm2,
            m.tops_per_w,
            m.tops_per_mm2,
        ));
    }
    out
}

/// Splits one CSV record into fields, honouring quoting (a record may
/// span physical lines when a quoted field contains `\n`).
fn split_csv_line(line: &str) -> Result<Vec<String>, ReportError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    loop {
        match chars.next() {
            None => {
                if quoted {
                    return err("unterminated quote");
                }
                fields.push(cur);
                return Ok(fields);
            }
            Some('"') if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            Some('"') if cur.is_empty() => quoted = true,
            Some(',') if !quoted => {
                fields.push(std::mem::take(&mut cur));
            }
            Some(c) => cur.push(c),
        }
    }
}

/// Splits CSV text into records, keeping newlines that fall inside
/// quoted fields as part of their record (unlike `str::lines`).
fn split_csv_records(text: &str) -> Vec<&str> {
    let mut records = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0;
    let mut quoted = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => quoted = !quoted,
            b'\n' if !quoted => {
                let end = if i > start && bytes[i - 1] == b'\r' {
                    i - 1
                } else {
                    i
                };
                records.push(&text[start..end]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < text.len() {
        records.push(&text[start..]);
    }
    records
}

/// Parses the CSV produced by [`to_csv`] back into cell records.
///
/// # Errors
///
/// Returns [`ReportError`] on a missing/garbled header, wrong column
/// counts or unparsable values.
pub fn parse_csv(text: &str) -> Result<Vec<CellRecord>, ReportError> {
    let mut lines = split_csv_records(text).into_iter();
    match lines.next() {
        Some(h) if h == CSV_HEADER => {}
        other => return err(format!("bad header: {other:?}")),
    }
    let mut cells = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let f = split_csv_line(line)?;
        if f.len() != 13 {
            return err(format!(
                "line {}: expected 13 fields, got {}",
                lineno + 2,
                f.len()
            ));
        }
        let num = |i: usize| -> Result<f64, ReportError> {
            f[i].parse().map_err(|_| ReportError {
                msg: format!("line {}: bad number `{}`", lineno + 2, f[i]),
            })
        };
        cells.push(CellRecord {
            index: num(0)? as usize,
            workload: f[1].clone(),
            category: parse_category_token(&f[2]).ok_or_else(|| ReportError {
                msg: format!("bad category `{}`", f[2]),
            })?,
            arch: f[3].clone(),
            seed: f[4].parse().map_err(|_| ReportError {
                msg: format!("bad seed `{}`", f[4]),
            })?,
            fingerprint: f[5].clone(),
            metrics: CellMetrics {
                speedup: num(6)?,
                cycles: num(7)?,
                dense_cycles: f[8].parse().map_err(|_| ReportError {
                    msg: format!("bad dense_cycles `{}`", f[8]),
                })?,
                power_mw: num(9)?,
                area_mm2: num(10)?,
                tops_per_w: num(11)?,
                tops_per_mm2: num(12)?,
            },
        });
    }
    Ok(cells)
}

/// Serializes the whole campaign as a deterministic JSON document.
pub fn to_json(report: &CampaignReport) -> String {
    let cells: Vec<Json> = report
        .cells
        .iter()
        .map(|c| {
            let mut obj = match c.metrics.to_json() {
                Json::Obj(m) => m,
                _ => unreachable!("metrics serialize to an object"),
            };
            obj.insert("index".into(), Json::Num(c.index as f64));
            obj.insert("workload".into(), Json::Str(c.workload.clone()));
            obj.insert(
                "category".into(),
                Json::Str(category_token(c.category).into()),
            );
            obj.insert("arch".into(), Json::Str(c.arch.clone()));
            obj.insert("seed".into(), Json::Str(c.seed.to_string()));
            obj.insert("fingerprint".into(), Json::Str(c.fingerprint.clone()));
            Json::Obj(obj)
        })
        .collect();
    Json::obj([
        ("campaign".into(), Json::Str(report.campaign.clone())),
        ("format".into(), Json::Str("griffin-sweep-v1".into())),
        ("cells".into(), Json::Arr(cells)),
    ])
    .write()
}

/// Parses the JSON produced by [`to_json`]. The returned report has
/// zeroed cache/worker/elapsed fields (they are not serialized).
///
/// # Errors
///
/// Returns [`ReportError`] on malformed JSON or a wrong format tag.
pub fn parse_json(text: &str) -> Result<CampaignReport, ReportError> {
    let v = Json::parse(text)?;
    if v.req("format")?.as_str()? != "griffin-sweep-v1" {
        return err("unknown report format");
    }
    let cells = v
        .req("cells")?
        .as_arr()?
        .iter()
        .map(|c| -> Result<CellRecord, ReportError> {
            Ok(CellRecord {
                index: c.req("index")?.as_f64()? as usize,
                workload: c.req("workload")?.as_str()?.to_string(),
                category: parse_category_token(c.req("category")?.as_str()?).ok_or_else(|| {
                    ReportError {
                        msg: "bad category".into(),
                    }
                })?,
                arch: c.req("arch")?.as_str()?.to_string(),
                seed: c.req("seed")?.as_u64()?,
                fingerprint: c.req("fingerprint")?.as_str()?.to_string(),
                metrics: CellMetrics::from_json(c)?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignReport {
        campaign: v.req("campaign")?.as_str()?.to_string(),
        cells,
        cache: Default::default(),
        workers: 0,
        elapsed_ms: 0,
    })
}

/// Writes `contents` to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_file(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CampaignReport {
        let mk = |i: usize, arch: &str, speedup: f64| CellRecord {
            index: i,
            workload: "BERT (MNLI)".into(),
            category: DnnCategory::B,
            arch: arch.into(),
            seed: 42,
            fingerprint: format!("{:032x}", i + 1),
            metrics: CellMetrics {
                speedup,
                cycles: 1e6 / speedup,
                dense_cycles: 1_000_000,
                power_mw: 330.25,
                area_mm2: 0.974,
                tops_per_w: 10.0 * speedup / 3.0,
                tops_per_mm2: 8.0 + speedup,
            },
        };
        CampaignReport {
            campaign: "roundtrip".into(),
            // Arch names with commas exercise CSV quoting.
            cells: vec![mk(0, "Sparse.B(4,0,1),on", 2.5), mk(1, "Baseline", 1.0)],
            cache: Default::default(),
            workers: 4,
            elapsed_ms: 123,
        }
    }

    #[test]
    fn csv_roundtrip_is_exact() {
        let r = sample_report();
        let csv = to_csv(&r);
        let back = parse_csv(&csv).unwrap();
        assert_eq!(back, r.cells);
    }

    #[test]
    fn csv_quoting_handles_commas_and_quotes() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        let f = split_csv_line("\"a,b\",c,\"say \"\"hi\"\"\"").unwrap();
        assert_eq!(f, vec!["a,b", "c", "say \"hi\""]);
    }

    #[test]
    fn csv_roundtrip_survives_newlines_in_names() {
        let mut r = sample_report();
        r.cells[0].workload = "multi\nline, \"name\"".into();
        r.cells[1].arch = "trailing\r\nreturn".into();
        let csv = to_csv(&r);
        assert_eq!(parse_csv(&csv).unwrap(), r.cells);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let r = sample_report();
        let back = parse_json(&to_json(&r)).unwrap();
        assert_eq!(back.campaign, r.campaign);
        assert_eq!(back.cells, r.cells);
    }

    #[test]
    fn json_excludes_run_variant_fields() {
        let mut r = sample_report();
        let a = to_json(&r);
        r.workers = 64;
        r.elapsed_ms = 999_999;
        r.cache.hits = 1000;
        assert_eq!(to_json(&r), a, "report JSON depends only on cells");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_csv("nope\n1,2,3").is_err());
        assert!(parse_csv(&format!("{CSV_HEADER}\n1,2,3\n")).is_err());
        assert!(parse_json("{}").is_err());
        assert!(parse_json("{\"format\":\"other\",\"campaign\":\"x\",\"cells\":[]}").is_err());
    }

    #[test]
    fn category_tokens_roundtrip() {
        for c in DnnCategory::ALL {
            assert_eq!(parse_category_token(category_token(c)), Some(c));
        }
        assert_eq!(parse_category_token("DNN.AB"), Some(DnnCategory::AB));
        assert_eq!(parse_category_token("??"), None);
    }
}
