//! Prints dense-cycle counts vs Table IV for all six benchmarks.

use griffin_core::category::DnnCategory;
use griffin_sim::config::SimConfig;
use griffin_workloads::suite::{build_workload, Benchmark};

fn main() {
    let cfg = SimConfig::default();
    for b in Benchmark::ALL {
        let info = b.info();
        let wl = build_workload(b, DnnCategory::Dense, 1);
        let cycles = wl.dense_cycles(&cfg) as f64;
        println!(
            "{:12} measured {:>10.3e}  paper {:>8.1e}  ratio {:.2}",
            info.name,
            cycles,
            info.paper_dense_cycles,
            cycles / info.paper_dense_cycles
        );
    }
}
