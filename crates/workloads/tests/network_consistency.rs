//! Structural consistency checks over the six network layer tables.

use griffin_core::category::DnnCategory;
use griffin_workloads::layer::{total_macs, LayerKind};
use griffin_workloads::suite::{build_workload, Benchmark};

#[test]
fn every_layer_of_every_network_lowers_to_a_valid_gemm() {
    for b in Benchmark::ALL {
        for l in b.layers() {
            let (shape, reps, cin) = l
                .gemm()
                .unwrap_or_else(|e| panic!("{}/{}: invalid GEMM: {e}", b.info().name, l.name));
            assert!(shape.m > 0 && shape.k > 0 && shape.n > 0);
            assert!(reps >= 1, "{}: zero replicas", l.name);
            assert!(cin >= 1);
        }
    }
}

#[test]
fn conv_chains_have_consistent_channels() {
    // For the sequential nets, each conv's cin equals some previous
    // layer's cout (or the image). Full graph checking is overkill; we
    // verify AlexNet's strict chain.
    let layers = Benchmark::AlexNet.layers();
    let mut prev_out = 3usize; // RGB input
    for l in &layers {
        match l.kind {
            LayerKind::Conv { cin, cout, .. } => {
                assert_eq!(
                    cin, prev_out,
                    "{}: cin {} after cout {}",
                    l.name, cin, prev_out
                );
                prev_out = cout;
            }
            LayerKind::Fc {
                in_features,
                out_features,
                ..
            } => {
                // conv5 -> fc6 flattens 256x6x6.
                if l.name == "fc6" {
                    assert_eq!(in_features, 256 * 6 * 6);
                }
                prev_out = out_features;
            }
            LayerKind::MatMul { .. } => {}
        }
    }
    assert_eq!(prev_out, 1000, "classifier emits 1000 classes");
}

#[test]
fn mac_totals_match_published_model_sizes() {
    // (network, GMACs low, GMACs high) from the literature.
    let bands = [
        (Benchmark::AlexNet, 0.65e9, 0.78e9),
        (Benchmark::GoogleNet, 1.35e9, 1.65e9),
        (Benchmark::ResNet50, 3.7e9, 4.5e9),
        (Benchmark::InceptionV3, 5.0e9, 6.3e9),
        (Benchmark::MobileNetV2, 0.27e9, 0.35e9),
        (Benchmark::Bert, 5.4e9, 5.8e9),
    ];
    for (b, lo, hi) in bands {
        let macs = total_macs(&b.layers()) as f64;
        assert!(
            (lo..hi).contains(&macs),
            "{}: {macs:.3e} MACs",
            b.info().name
        );
    }
}

#[test]
fn category_masks_only_touch_the_right_operands() {
    for b in [Benchmark::GoogleNet, Benchmark::MobileNetV2] {
        let dense = build_workload(b, DnnCategory::Dense, 3);
        let only_a = build_workload(b, DnnCategory::A, 3);
        let only_b = build_workload(b, DnnCategory::B, 3);
        for ((d, a), bb) in dense.layers.iter().zip(&only_a.layers).zip(&only_b.layers) {
            assert_eq!(d.a_density(), 1.0);
            assert_eq!(d.b_density(), 1.0);
            assert_eq!(a.b_density(), 1.0, "DNN.A must not prune weights");
            assert_eq!(bb.a_density(), 1.0, "DNN.B must not sparsify activations");
        }
    }
}

#[test]
fn workload_layer_counts_match_tables() {
    assert_eq!(Benchmark::AlexNet.layers().len(), 8);
    assert_eq!(Benchmark::GoogleNet.layers().len(), 58);
    assert_eq!(Benchmark::ResNet50.layers().len(), 54);
    assert_eq!(Benchmark::Bert.layers().len(), 96);
    // MobileNetV2: stem + 17 blocks (2-3 convs each) + head + fc.
    let mb = Benchmark::MobileNetV2.layers().len();
    assert_eq!(mb, 1 + (2 + 16 * 3) + 1 + 1);
}

#[test]
fn depthwise_replica_counts_match_channel_counts() {
    for l in Benchmark::MobileNetV2.layers() {
        if let LayerKind::Conv {
            groups, cin, cout, ..
        } = l.kind
        {
            if groups > 1 {
                assert_eq!(groups, cin, "{}: depthwise groups == channels", l.name);
                assert_eq!(cin, cout);
                let (_, reps, _) = l.gemm().unwrap();
                assert_eq!(reps, groups);
            }
        }
    }
}
