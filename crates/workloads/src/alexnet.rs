//! AlexNet (Krizhevsky et al.) — the torchvision variant, 224×224 input.
//!
//! Table IV: (B, A) sparsity (89%, 53%), 57.3% top-1, dense latency
//! ≈ 1.0 × 10⁶ cycles on the paper's 1024-MAC core.

use crate::layer::LayerDef;

/// The AlexNet layer table.
pub fn layers() -> Vec<LayerDef> {
    vec![
        LayerDef::conv("conv1", 3, 224, 224, 64, 11, 11, 4, 2).with_dense_input(),
        // 55x55 -> maxpool 3/2 -> 27x27
        LayerDef::conv("conv2", 64, 27, 27, 192, 5, 5, 1, 2),
        // 27x27 -> maxpool 3/2 -> 13x13
        LayerDef::conv("conv3", 192, 13, 13, 384, 3, 3, 1, 1),
        LayerDef::conv("conv4", 384, 13, 13, 256, 3, 3, 1, 1),
        LayerDef::conv("conv5", 256, 13, 13, 256, 3, 3, 1, 1),
        // 13x13 -> maxpool 3/2 -> 6x6 -> flatten 9216
        LayerDef::fc("fc6", 9216, 4096),
        LayerDef::fc("fc7", 4096, 4096),
        LayerDef::fc("fc8", 4096, 1000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::total_macs;

    #[test]
    fn mac_count_is_alexnet_scale() {
        // AlexNet inference is ~0.71 GMACs.
        let macs = total_macs(&layers());
        assert!(
            (0.65e9..0.78e9).contains(&(macs as f64)),
            "AlexNet MACs {macs} out of expected band"
        );
    }

    #[test]
    fn first_layer_has_dense_input() {
        let l = layers();
        assert!(l[0].dense_input);
        assert!(!l[1].dense_input);
    }

    #[test]
    fn eight_weight_layers() {
        assert_eq!(layers().len(), 8);
    }
}
