//! BERT-base fine-tuned on MNLI, sequence length 64.
//!
//! Table IV: (B, A) sparsity (82%, 0%) — weights movement-pruned (Sanh et al., ref. 57),
//! activations dense (GeLU) — Dev/MM accuracy 81.0/81.4, dense latency
//! ≈ 5.3 × 10⁶ cycles.
//!
//! Every encoder layer contributes six weight GEMMs (Q, K, V, attention
//! output, FFN up, FFN down) and two activation-by-activation matmuls
//! per head (`Q·Kᵀ` and `scores·V`), which are never weight-pruned.

use crate::layer::{LayerDef, LayerKind};

/// Hidden size of BERT-base.
pub const HIDDEN: usize = 768;
/// FFN intermediate size.
pub const INTERMEDIATE: usize = 3072;
/// Number of encoder layers.
pub const LAYERS: usize = 12;
/// Number of attention heads.
pub const HEADS: usize = 12;
/// Evaluated sequence length (Table IV).
pub const SEQ_LEN: usize = 64;

fn proj(name: String, inf: usize, outf: usize) -> LayerDef {
    LayerDef {
        name,
        kind: LayerKind::Fc {
            in_features: inf,
            out_features: outf,
            batch: SEQ_LEN,
        },
        dense_input: false,
    }
}

/// The BERT-base encoder layer table at sequence length 64.
pub fn layers() -> Vec<LayerDef> {
    let head_dim = HIDDEN / HEADS;
    let mut v = Vec::new();
    for l in 0..LAYERS {
        let n = |p: &str| format!("enc{l}.{p}");
        v.push(proj(n("q"), HIDDEN, HIDDEN));
        v.push(proj(n("k"), HIDDEN, HIDDEN));
        v.push(proj(n("v"), HIDDEN, HIDDEN));
        v.push(LayerDef {
            name: n("scores"),
            kind: LayerKind::MatMul {
                m: SEQ_LEN,
                k: head_dim,
                n: SEQ_LEN,
                instances: HEADS,
            },
            dense_input: false,
        });
        v.push(LayerDef {
            name: n("context"),
            kind: LayerKind::MatMul {
                m: SEQ_LEN,
                k: SEQ_LEN,
                n: head_dim,
                instances: HEADS,
            },
            dense_input: false,
        });
        v.push(proj(n("attn_out"), HIDDEN, HIDDEN));
        v.push(proj(n("ffn_up"), HIDDEN, INTERMEDIATE));
        v.push(proj(n("ffn_down"), INTERMEDIATE, HIDDEN));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::total_macs;

    #[test]
    fn mac_count_matches_bert_base_at_seq64() {
        // Per layer: 4 x 64*768^2 + 2 x 64*768*3072 + 2 x 12 x 64*64*64.
        let per_layer: u64 = 4 * 64 * 768 * 768 + 2 * 64 * 768 * 3072 + 2 * 12 * 64 * 64 * 64;
        assert_eq!(total_macs(&layers()), per_layer * 12);
    }

    #[test]
    fn attention_matmuls_are_not_prunable() {
        let v = layers();
        let prunable = v.iter().filter(|l| l.weight_prunable()).count();
        let matmuls = v.iter().filter(|l| !l.weight_prunable()).count();
        assert_eq!(prunable, 6 * 12);
        assert_eq!(matmuls, 2 * 12);
    }

    #[test]
    fn dense_latency_is_five_million_cycles_scale() {
        use griffin_tensor::shape::CoreDims;
        let cycles: u64 = layers()
            .iter()
            .map(|l| {
                let (shape, reps, _) = l.gemm().unwrap();
                shape.dense_cycles(CoreDims::PAPER) * reps as u64
            })
            .sum();
        // Table IV: 5.3e6. Exact tiling gives ~5.4e6.
        assert!(
            (4.8e6..5.9e6).contains(&(cycles as f64)),
            "BERT dense cycles {cycles} out of Table IV band"
        );
    }
}
