//! Benchmark workloads for the Griffin reproduction (Table IV).
//!
//! The paper evaluates six networks — AlexNet, GoogleNet, ResNet-50,
//! InceptionV3, MobileNetV2 and BERT-base (MNLI, sequence length 64) —
//! with the (weight, activation) sparsity ratios of Table IV. This crate
//! provides:
//!
//! * [`layer`] — layer definitions and their lowering to blocked GEMM
//!   (im2col semantics, grouped/depthwise convolutions, attention
//!   matmuls),
//! * one module per network with the full layer table
//!   ([`alexnet`], [`googlenet`], [`resnet50`], [`inception_v3`],
//!   [`mobilenet_v2`], [`bert`]),
//! * [`suite`] — the Table IV metadata and workload builders that
//!   attach synthetic sparsity masks with the published densities,
//! * [`synth`] — small parameterized workloads for tests and examples.
//!
//! # Example
//!
//! ```
//! use griffin_workloads::suite::{build_workload, Benchmark};
//! use griffin_core::category::DnnCategory;
//!
//! let wl = build_workload(Benchmark::Bert, DnnCategory::B, 42);
//! assert_eq!(wl.name, "BERT (MNLI)");
//! assert!(!wl.layers.is_empty());
//! ```

pub mod alexnet;
pub mod bert;
pub mod googlenet;
pub mod inception_v3;
pub mod layer;
pub mod mobilenet_v2;
pub mod resnet50;
pub mod suite;
pub mod synth;

pub use layer::{LayerDef, LayerKind};
pub use suite::{build_workload, Benchmark, BenchmarkInfo};
