//! InceptionV3 (Szegedy et al.), 299×299 input.
//!
//! Table IV: (B, A) sparsity (79%, 46%), 75.1% top-1, dense latency
//! ≈ 6.9 × 10⁶ cycles.
//!
//! Layer table follows the torchvision `inception_v3` graph: stem,
//! 3× InceptionA (35×35), reduction, 4× InceptionB/7×7-factorized
//! (17×17), reduction, 2× InceptionC (8×8), classifier. Auxiliary head
//! excluded (inference).

use crate::layer::LayerDef;

fn conv(
    name: String,
    cin: usize,
    hw: usize,
    cout: usize,
    k: (usize, usize),
    stride: usize,
    pad: (usize, usize),
) -> LayerDef {
    // Asymmetric kernels (1x7 / 7x1) use asymmetric padding to keep the
    // resolution; LayerKind::Conv supports rectangular kernels and pads.
    LayerDef {
        name,
        kind: crate::layer::LayerKind::Conv {
            cin,
            hin: hw,
            win: hw,
            cout,
            r: k.0,
            s: k.1,
            stride,
            pad_h: pad.0,
            pad_w: pad.1,
            groups: 1,
        },
        dense_input: false,
    }
}

fn inception_a(v: &mut Vec<LayerDef>, name: &str, cin: usize, pool_proj: usize) {
    let hw = 35;
    v.push(conv(format!("{name}.1x1"), cin, hw, 64, (1, 1), 1, (0, 0)));
    v.push(conv(format!("{name}.5x5r"), cin, hw, 48, (1, 1), 1, (0, 0)));
    v.push(conv(format!("{name}.5x5"), 48, hw, 64, (5, 5), 1, (2, 2)));
    v.push(conv(
        format!("{name}.3x3dbl_1"),
        cin,
        hw,
        64,
        (1, 1),
        1,
        (0, 0),
    ));
    v.push(conv(
        format!("{name}.3x3dbl_2"),
        64,
        hw,
        96,
        (3, 3),
        1,
        (1, 1),
    ));
    v.push(conv(
        format!("{name}.3x3dbl_3"),
        96,
        hw,
        96,
        (3, 3),
        1,
        (1, 1),
    ));
    v.push(conv(
        format!("{name}.pool"),
        cin,
        hw,
        pool_proj,
        (1, 1),
        1,
        (0, 0),
    ));
}

fn inception_b(v: &mut Vec<LayerDef>, name: &str, c7: usize) {
    let (hw, cin) = (17, 768);
    v.push(conv(format!("{name}.1x1"), cin, hw, 192, (1, 1), 1, (0, 0)));
    v.push(conv(
        format!("{name}.7x7_1"),
        cin,
        hw,
        c7,
        (1, 1),
        1,
        (0, 0),
    ));
    v.push(conv(format!("{name}.7x7_2"), c7, hw, c7, (1, 7), 1, (0, 3)));
    v.push(conv(
        format!("{name}.7x7_3"),
        c7,
        hw,
        192,
        (7, 1),
        1,
        (3, 0),
    ));
    v.push(conv(
        format!("{name}.7x7dbl_1"),
        cin,
        hw,
        c7,
        (1, 1),
        1,
        (0, 0),
    ));
    v.push(conv(
        format!("{name}.7x7dbl_2"),
        c7,
        hw,
        c7,
        (7, 1),
        1,
        (3, 0),
    ));
    v.push(conv(
        format!("{name}.7x7dbl_3"),
        c7,
        hw,
        c7,
        (1, 7),
        1,
        (0, 3),
    ));
    v.push(conv(
        format!("{name}.7x7dbl_4"),
        c7,
        hw,
        c7,
        (7, 1),
        1,
        (3, 0),
    ));
    v.push(conv(
        format!("{name}.7x7dbl_5"),
        c7,
        hw,
        192,
        (1, 7),
        1,
        (0, 3),
    ));
    v.push(conv(
        format!("{name}.pool"),
        cin,
        hw,
        192,
        (1, 1),
        1,
        (0, 0),
    ));
}

fn inception_c(v: &mut Vec<LayerDef>, name: &str, cin: usize) {
    let hw = 8;
    v.push(conv(format!("{name}.1x1"), cin, hw, 320, (1, 1), 1, (0, 0)));
    v.push(conv(
        format!("{name}.3x3_1"),
        cin,
        hw,
        384,
        (1, 1),
        1,
        (0, 0),
    ));
    v.push(conv(
        format!("{name}.3x3_2a"),
        384,
        hw,
        384,
        (1, 3),
        1,
        (0, 1),
    ));
    v.push(conv(
        format!("{name}.3x3_2b"),
        384,
        hw,
        384,
        (3, 1),
        1,
        (1, 0),
    ));
    v.push(conv(
        format!("{name}.3x3dbl_1"),
        cin,
        hw,
        448,
        (1, 1),
        1,
        (0, 0),
    ));
    v.push(conv(
        format!("{name}.3x3dbl_2"),
        448,
        hw,
        384,
        (3, 3),
        1,
        (1, 1),
    ));
    v.push(conv(
        format!("{name}.3x3dbl_3a"),
        384,
        hw,
        384,
        (1, 3),
        1,
        (0, 1),
    ));
    v.push(conv(
        format!("{name}.3x3dbl_3b"),
        384,
        hw,
        384,
        (3, 1),
        1,
        (1, 0),
    ));
    v.push(conv(
        format!("{name}.pool"),
        cin,
        hw,
        192,
        (1, 1),
        1,
        (0, 0),
    ));
}

/// The InceptionV3 layer table.
pub fn layers() -> Vec<LayerDef> {
    let mut v = vec![
        LayerDef::conv("stem.conv1", 3, 299, 299, 32, 3, 3, 2, 0).with_dense_input(),
        LayerDef::conv("stem.conv2", 32, 149, 149, 32, 3, 3, 1, 0),
        LayerDef::conv("stem.conv3", 32, 147, 147, 64, 3, 3, 1, 1),
        // maxpool 3/2 -> 73x73
        LayerDef::conv("stem.conv4", 64, 73, 73, 80, 1, 1, 1, 0),
        LayerDef::conv("stem.conv5", 80, 73, 73, 192, 3, 3, 1, 0),
        // maxpool 3/2 -> 35x35
    ];
    inception_a(&mut v, "mixed5b", 192, 32);
    inception_a(&mut v, "mixed5c", 256, 64);
    inception_a(&mut v, "mixed5d", 288, 64);
    // Reduction (mixed6a): 35 -> 17.
    v.push(conv("mixed6a.3x3".into(), 288, 35, 384, (3, 3), 2, (0, 0)));
    v.push(conv(
        "mixed6a.3x3dbl_1".into(),
        288,
        35,
        64,
        (1, 1),
        1,
        (0, 0),
    ));
    v.push(conv(
        "mixed6a.3x3dbl_2".into(),
        64,
        35,
        96,
        (3, 3),
        1,
        (1, 1),
    ));
    v.push(conv(
        "mixed6a.3x3dbl_3".into(),
        96,
        35,
        96,
        (3, 3),
        2,
        (0, 0),
    ));
    inception_b(&mut v, "mixed6b", 128);
    inception_b(&mut v, "mixed6c", 160);
    inception_b(&mut v, "mixed6d", 160);
    inception_b(&mut v, "mixed6e", 192);
    // Reduction (mixed7a): 17 -> 8.
    v.push(conv(
        "mixed7a.3x3_1".into(),
        768,
        17,
        192,
        (1, 1),
        1,
        (0, 0),
    ));
    v.push(conv(
        "mixed7a.3x3_2".into(),
        192,
        17,
        320,
        (3, 3),
        2,
        (0, 0),
    ));
    v.push(conv(
        "mixed7a.7x7x3_1".into(),
        768,
        17,
        192,
        (1, 1),
        1,
        (0, 0),
    ));
    v.push(conv(
        "mixed7a.7x7x3_2".into(),
        192,
        17,
        192,
        (1, 7),
        1,
        (0, 3),
    ));
    v.push(conv(
        "mixed7a.7x7x3_3".into(),
        192,
        17,
        192,
        (7, 1),
        1,
        (3, 0),
    ));
    v.push(conv(
        "mixed7a.7x7x3_4".into(),
        192,
        17,
        192,
        (3, 3),
        2,
        (0, 0),
    ));
    inception_c(&mut v, "mixed7b", 1280);
    inception_c(&mut v, "mixed7c", 2048);
    v.push(LayerDef::fc("fc", 2048, 1000));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::total_macs;

    #[test]
    fn mac_count_is_inception_v3_scale() {
        // InceptionV3 inference is ~5.7 GMACs.
        let macs = total_macs(&layers());
        assert!(
            (5.0e9..6.3e9).contains(&(macs as f64)),
            "InceptionV3 MACs {macs} out of expected band"
        );
    }

    #[test]
    fn stem_resolutions() {
        let v = layers();
        assert_eq!(v[0].conv_output(), Some((149, 149)));
        assert_eq!(v[1].conv_output(), Some((147, 147)));
    }

    #[test]
    fn has_both_reductions() {
        let v = layers();
        let r1 = v.iter().find(|l| l.name == "mixed6a.3x3").unwrap();
        assert_eq!(r1.conv_output(), Some((17, 17)));
        let r2 = v.iter().find(|l| l.name == "mixed7a.3x3_2").unwrap();
        assert_eq!(r2.conv_output(), Some((8, 8)));
    }
}
