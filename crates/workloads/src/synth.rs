//! Small parameterized synthetic workloads for tests and examples.

use griffin_core::accelerator::Workload;
use griffin_core::category::DnnCategory;
use griffin_sim::layer::GemmLayer;
use griffin_tensor::error::TensorError;
use griffin_tensor::gen::TensorGen;
use griffin_tensor::shape::GemmShape;

/// Builds one synthetic GEMM layer with realistic channel-varied masks.
///
/// `b_density` / `a_density` are the nonzero fractions of the weight and
/// activation tensors (Table IV uses e.g. 0.19 / 0.57 for ResNet-50).
///
/// # Errors
///
/// Returns [`TensorError`] for zero dimensions.
///
/// ```
/// use griffin_workloads::synth::synthetic_layer;
/// let l = synthetic_layer(64, 256, 64, 0.2, 0.5, 1)?;
/// assert!(l.b_density() < 0.3);
/// # Ok::<(), griffin_tensor::TensorError>(())
/// ```
pub fn synthetic_layer(
    m: usize,
    k: usize,
    n: usize,
    b_density: f64,
    a_density: f64,
    seed: u64,
) -> Result<GemmLayer, TensorError> {
    let shape = GemmShape::new(m, k, n)?;
    let mut gen = TensorGen::seeded(seed);
    // Treat the whole K extent as one channel group of width min(k, 64).
    let cin = k.min(64);
    let a = if a_density >= 1.0 {
        griffin_tensor::mask::SparsityMask::ones(m, k)
    } else {
        gen.channel_minor_mask(m, k, a_density, cin, 0.6, false)
    };
    let b = if b_density >= 1.0 {
        griffin_tensor::mask::SparsityMask::ones(k, n)
    } else {
        gen.channel_minor_mask(k, n, b_density, cin, 0.8, true)
    };
    GemmLayer::new(shape, a, b)
}

/// Builds a synthetic multi-layer workload of the given category with
/// plausible layer shapes.
///
/// # Errors
///
/// Propagates shape validation errors (never for `layers ≥ 1`).
pub fn synthetic_workload(
    name: &str,
    category: DnnCategory,
    layers: usize,
    seed: u64,
) -> Result<Workload, TensorError> {
    let a_d = if category.a_sparse() { 0.45 } else { 1.0 };
    let b_d = if category.b_sparse() { 0.19 } else { 1.0 };
    let shapes = [
        (196, 1152, 256),
        (784, 576, 128),
        (49, 2304, 512),
        (64, 768, 768),
    ];
    let mut v = Vec::new();
    for i in 0..layers {
        let (m, k, n) = shapes[i % shapes.len()];
        v.push(synthetic_layer(
            m,
            k,
            n,
            b_d,
            a_d,
            seed.wrapping_add(i as u64),
        )?);
    }
    Ok(Workload::new(name, category, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_densities_are_respected() {
        let l = synthetic_layer(128, 512, 128, 0.2, 0.5, 1).unwrap();
        assert!((l.b_density() - 0.2).abs() < 0.06);
        assert!((l.a_density() - 0.5).abs() < 0.06);
    }

    #[test]
    fn dense_densities_shortcut_to_ones() {
        let l = synthetic_layer(16, 64, 16, 1.0, 1.0, 2).unwrap();
        assert_eq!(l.a_density(), 1.0);
        assert_eq!(l.b_density(), 1.0);
    }

    #[test]
    fn workload_category_controls_masks() {
        let b = synthetic_workload("b", DnnCategory::B, 2, 3).unwrap();
        assert!(b.layers[0].a_density() == 1.0 && b.layers[0].b_density() < 0.5);
        let a = synthetic_workload("a", DnnCategory::A, 2, 3).unwrap();
        assert!(a.layers[0].a_density() < 0.7 && a.layers[0].b_density() == 1.0);
    }

    #[test]
    fn workload_has_requested_layer_count() {
        let w = synthetic_workload("n", DnnCategory::AB, 5, 4).unwrap();
        assert_eq!(w.layers.len(), 5);
    }
}
