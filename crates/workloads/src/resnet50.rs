//! ResNet-50 (He et al.), 224×224 input.
//!
//! Table IV: (B, A) sparsity (81%, 43%), 76.1% top-1, dense latency
//! ≈ 4.8 × 10⁶ cycles.

use crate::layer::LayerDef;

/// Emits one bottleneck block: 1×1 reduce, 3×3, 1×1 expand, plus the
/// projection shortcut on the first block of a stage.
fn bottleneck(
    v: &mut Vec<LayerDef>,
    stage: usize,
    block: usize,
    cin: usize,
    width: usize,
    hw: usize,
    stride: usize,
) {
    let name = |part: &str| format!("conv{stage}_{block}.{part}");
    let cout = width * 4;
    // 1x1 reduce operates at the input resolution; the stride sits on
    // the 3x3 (torchvision style).
    v.push(LayerDef::conv(name("1x1a"), cin, hw, hw, width, 1, 1, 1, 0));
    v.push(LayerDef::conv(
        name("3x3"),
        width,
        hw,
        hw,
        width,
        3,
        3,
        stride,
        1,
    ));
    let hw_out = hw / stride;
    v.push(LayerDef::conv(
        name("1x1b"),
        width,
        hw_out,
        hw_out,
        cout,
        1,
        1,
        1,
        0,
    ));
    if block == 1 {
        v.push(LayerDef::conv(
            name("proj"),
            cin,
            hw,
            hw,
            cout,
            1,
            1,
            stride,
            0,
        ));
    }
}

/// The ResNet-50 layer table.
pub fn layers() -> Vec<LayerDef> {
    let mut v = vec![LayerDef::conv("conv1", 3, 224, 224, 64, 7, 7, 2, 3).with_dense_input()];
    // 112x112 -> maxpool 3/2 -> 56x56
    let stages: [(usize, usize, usize, usize); 4] = [
        // (stage id, blocks, width, input resolution)
        (2, 3, 64, 56),
        (3, 4, 128, 56),
        (4, 6, 256, 28),
        (5, 3, 512, 14),
    ];
    let mut cin = 64;
    for &(stage, blocks, width, hw_in) in &stages {
        for block in 1..=blocks {
            let stride = if stage > 2 && block == 1 { 2 } else { 1 };
            let hw = if block == 1 {
                hw_in
            } else {
                hw_in / if stage > 2 { 2 } else { 1 }
            };
            bottleneck(&mut v, stage, block, cin, width, hw, stride);
            cin = width * 4;
        }
    }
    v.push(LayerDef::fc("fc", 2048, 1000));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::total_macs;

    #[test]
    fn mac_count_is_resnet50_scale() {
        // ResNet-50 inference is ~4.1 GMACs.
        let macs = total_macs(&layers());
        assert!(
            (3.7e9..4.5e9).contains(&(macs as f64)),
            "ResNet-50 MACs {macs} out of expected band"
        );
    }

    #[test]
    fn has_53_conv_plus_fc() {
        // 1 stem + (3+4+6+3) blocks x 3 convs + 4 projections + 1 fc.
        let n = layers().len();
        assert_eq!(n, 1 + 16 * 3 + 4 + 1);
    }

    #[test]
    fn stage_resolutions_halve() {
        let v = layers();
        let c3_first = v.iter().find(|l| l.name == "conv3_1.3x3").unwrap();
        assert_eq!(c3_first.conv_output(), Some((28, 28)));
        let c5_last = v.iter().find(|l| l.name == "conv5_3.3x3").unwrap();
        assert_eq!(c5_last.conv_output(), Some((7, 7)));
    }
}
