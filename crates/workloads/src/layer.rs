//! Layer definitions and lowering to blocked GEMM.
//!
//! Following §II-A of the paper: a convolution with `Cin` input
//! channels, an `R × S` kernel and `Cout` output channels over an
//! `Hin × Win` feature map lowers (im2col) to a GEMM with
//! `M = Hout · Wout`, `K = (Cin / groups) · R · S`, `N = Cout / groups`,
//! executed once per group. Fully connected layers are `M = batch`,
//! `K = in_features`, `N = out_features`. Attention matmuls
//! (`Q·Kᵀ`, `scores·V`) are plain GEMMs whose "B" operand is itself an
//! activation tensor and therefore never weight-pruned.

use griffin_tensor::error::TensorError;
use griffin_tensor::shape::GemmShape;

/// The kind of a network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// A (possibly grouped) 2-D convolution.
    Conv {
        /// Input channels.
        cin: usize,
        /// Input feature-map height and width.
        hin: usize,
        /// Input feature-map width.
        win: usize,
        /// Output channels.
        cout: usize,
        /// Kernel height.
        r: usize,
        /// Kernel width.
        s: usize,
        /// Stride (same in both dimensions).
        stride: usize,
        /// Zero padding on top/bottom.
        pad_h: usize,
        /// Zero padding on left/right.
        pad_w: usize,
        /// Group count (`cin` for depthwise).
        groups: usize,
    },
    /// A fully connected layer on a batch of vectors.
    Fc {
        /// Input features (`K`).
        in_features: usize,
        /// Output features (`N`).
        out_features: usize,
        /// Batch size (`M`).
        batch: usize,
    },
    /// An activation-by-activation GEMM (attention score / context).
    /// Its B operand is *not* a weight tensor and is never pruned.
    MatMul {
        /// Rows of the product.
        m: usize,
        /// Reduction dimension.
        k: usize,
        /// Columns of the product.
        n: usize,
        /// Independent instances (e.g. attention heads).
        instances: usize,
    },
}

/// One named layer of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDef {
    /// Human-readable name (e.g. `"conv2_1.3x3"`).
    pub name: String,
    /// Structural definition.
    pub kind: LayerKind,
    /// Whether the layer's input activations come straight from the
    /// network input (images are dense regardless of ReLU).
    pub dense_input: bool,
}

impl LayerDef {
    /// Convenience constructor for a convolution.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: impl Into<String>,
        cin: usize,
        hin: usize,
        win: usize,
        cout: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        LayerDef {
            name: name.into(),
            kind: LayerKind::Conv {
                cin,
                hin,
                win,
                cout,
                r,
                s,
                stride,
                pad_h: pad,
                pad_w: pad,
                groups: 1,
            },
            dense_input: false,
        }
    }

    /// Convenience constructor for a depthwise convolution
    /// (`groups = cin = cout`).
    #[allow(clippy::too_many_arguments)]
    pub fn depthwise(
        name: impl Into<String>,
        channels: usize,
        hin: usize,
        win: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        LayerDef {
            name: name.into(),
            kind: LayerKind::Conv {
                cin: channels,
                hin,
                win,
                cout: channels,
                r,
                s,
                stride,
                pad_h: pad,
                pad_w: pad,
                groups: channels,
            },
            dense_input: false,
        }
    }

    /// Convenience constructor for a fully connected layer (batch 1).
    pub fn fc(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        LayerDef {
            name: name.into(),
            kind: LayerKind::Fc {
                in_features,
                out_features,
                batch: 1,
            },
            dense_input: false,
        }
    }

    /// Marks the layer as consuming the (dense) network input.
    pub fn with_dense_input(mut self) -> Self {
        self.dense_input = true;
        self
    }

    /// Output spatial dimensions of a convolution, `None` otherwise.
    pub fn conv_output(&self) -> Option<(usize, usize)> {
        match self.kind {
            LayerKind::Conv {
                hin,
                win,
                r,
                s,
                stride,
                pad_h,
                pad_w,
                ..
            } => {
                let hout = (hin + 2 * pad_h - r) / stride + 1;
                let wout = (win + 2 * pad_w - s) / stride + 1;
                Some((hout, wout))
            }
            _ => None,
        }
    }

    /// Lowers the layer to `(GEMM shape, replica count, Cin for
    /// channel-minor mask generation)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] if the configuration produces an empty
    /// GEMM (e.g. kernel larger than the padded input).
    pub fn gemm(&self) -> Result<(GemmShape, usize, usize), TensorError> {
        match self.kind {
            LayerKind::Conv {
                cin,
                cout,
                r,
                s,
                groups,
                ..
            } => {
                let (hout, wout) = self.conv_output().expect("conv layer");
                let cin_g = cin / groups.max(1);
                let shape = GemmShape::new(hout * wout, cin_g * r * s, cout / groups.max(1))?;
                Ok((shape, groups, cin_g))
            }
            LayerKind::Fc {
                in_features,
                out_features,
                batch,
            } => Ok((
                GemmShape::new(batch, in_features, out_features)?,
                1,
                in_features,
            )),
            LayerKind::MatMul { m, k, n, instances } => {
                Ok((GemmShape::new(m, k, n)?, instances, k))
            }
        }
    }

    /// Whether the layer's B operand is a prunable weight tensor.
    pub fn weight_prunable(&self) -> bool {
        !matches!(self.kind, LayerKind::MatMul { .. })
    }

    /// Multiply-accumulate operations of the layer (all replicas).
    pub fn macs(&self) -> u64 {
        let (shape, replicas, _) = self.gemm().expect("valid layer");
        shape.macs() as u64 * replicas as u64
    }
}

/// Total MACs of a network.
pub fn total_macs(layers: &[LayerDef]) -> u64 {
    layers.iter().map(LayerDef::macs).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_lowering_matches_im2col() {
        // AlexNet conv1: 3ch 224x224, 64 filters 11x11 stride 4 pad 2
        // -> 55x55 output, M = 3025, K = 363, N = 64.
        let l = LayerDef::conv("conv1", 3, 224, 224, 64, 11, 11, 4, 2);
        let (shape, reps, cin_g) = l.gemm().unwrap();
        assert_eq!((shape.m, shape.k, shape.n), (3025, 363, 64));
        assert_eq!(reps, 1);
        assert_eq!(cin_g, 3);
        assert_eq!(l.conv_output(), Some((55, 55)));
    }

    #[test]
    fn depthwise_lowering_replicates_per_channel() {
        let l = LayerDef::depthwise("dw", 32, 112, 112, 3, 3, 1, 1);
        let (shape, reps, cin_g) = l.gemm().unwrap();
        assert_eq!((shape.m, shape.k, shape.n), (112 * 112, 9, 1));
        assert_eq!(reps, 32);
        assert_eq!(cin_g, 1);
    }

    #[test]
    fn fc_lowering() {
        let l = LayerDef::fc("fc6", 9216, 4096);
        let (shape, reps, _) = l.gemm().unwrap();
        assert_eq!((shape.m, shape.k, shape.n), (1, 9216, 4096));
        assert_eq!(reps, 1);
    }

    #[test]
    fn matmul_is_not_weight_prunable() {
        let l = LayerDef {
            name: "attn".into(),
            kind: LayerKind::MatMul {
                m: 64,
                k: 64,
                n: 64,
                instances: 12,
            },
            dense_input: false,
        };
        assert!(!l.weight_prunable());
        assert!(LayerDef::fc("fc", 10, 10).weight_prunable());
        let (shape, reps, _) = l.gemm().unwrap();
        assert_eq!(shape.macs() * reps, 64 * 64 * 64 * 12);
    }

    #[test]
    fn strided_conv_output() {
        let l = LayerDef::conv("c", 64, 56, 56, 128, 3, 3, 2, 1);
        assert_eq!(l.conv_output(), Some((28, 28)));
    }

    #[test]
    fn macs_count_all_replicas() {
        let l = LayerDef::depthwise("dw", 8, 4, 4, 3, 3, 1, 1);
        assert_eq!(l.macs(), (16 * 9) as u64 * 8);
    }
}
