//! The Table IV benchmark suite: metadata and workload builders.
//!
//! Masks are synthetic but match the paper's published densities and
//! the structure of real pruned/ReLU tensors: per-channel log-normal
//! density variation in the channel-minor (NHWC) layout (see
//! [`griffin_tensor::gen::TensorGen::channel_minor_mask`] and the
//! substitution table in DESIGN.md). First-layer activations are dense
//! (images), and attention matmuls never have pruned B operands.

use griffin_core::accelerator::Workload;
use griffin_core::category::DnnCategory;
use griffin_sim::layer::GemmLayer;
use griffin_tensor::gen::TensorGen;
use griffin_tensor::mask::SparsityMask;

use crate::layer::LayerDef;
use crate::{alexnet, bert, googlenet, inception_v3, mobilenet_v2, resnet50};

/// Log-normal spread of per-channel weight densities.
const B_SPREAD: f64 = 0.8;
/// Log-normal spread of per-channel activation densities.
const A_SPREAD: f64 = 0.6;

/// The six benchmarks of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// AlexNet, Deep-Compression pruned.
    AlexNet,
    /// GoogleNet (Inception-v1).
    GoogleNet,
    /// ResNet-50.
    ResNet50,
    /// InceptionV3.
    InceptionV3,
    /// MobileNetV2 (RigL-pruned).
    MobileNetV2,
    /// BERT-base on MNLI, sequence length 64, movement-pruned.
    Bert,
}

impl Benchmark {
    /// All six benchmarks, in Table IV order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::AlexNet,
        Benchmark::GoogleNet,
        Benchmark::ResNet50,
        Benchmark::InceptionV3,
        Benchmark::MobileNetV2,
        Benchmark::Bert,
    ];

    /// Table IV metadata for this benchmark.
    pub fn info(&self) -> BenchmarkInfo {
        match self {
            Benchmark::AlexNet => BenchmarkInfo {
                name: "AlexNet",
                b_sparsity: 0.89,
                a_sparsity: 0.53,
                accuracy: "57.3% (top-1)",
                paper_dense_cycles: 1.0e6,
            },
            Benchmark::GoogleNet => BenchmarkInfo {
                name: "GoogleNet",
                b_sparsity: 0.82,
                a_sparsity: 0.37,
                accuracy: "68.2% (top-1)",
                paper_dense_cycles: 2.2e6,
            },
            Benchmark::ResNet50 => BenchmarkInfo {
                name: "ResNet50",
                b_sparsity: 0.81,
                a_sparsity: 0.43,
                accuracy: "76.1% (top-1)",
                paper_dense_cycles: 4.8e6,
            },
            Benchmark::InceptionV3 => BenchmarkInfo {
                name: "InceptionV3",
                b_sparsity: 0.79,
                a_sparsity: 0.46,
                accuracy: "75.1% (top-1)",
                paper_dense_cycles: 6.9e6,
            },
            Benchmark::MobileNetV2 => BenchmarkInfo {
                name: "MobileNetV2",
                b_sparsity: 0.81,
                a_sparsity: 0.52,
                accuracy: "67.5% (top-1)",
                paper_dense_cycles: 2.2e6,
            },
            Benchmark::Bert => BenchmarkInfo {
                name: "BERT (MNLI)",
                b_sparsity: 0.82,
                a_sparsity: 0.0,
                accuracy: "81.0% (Dev) / 81.4% (MM)",
                paper_dense_cycles: 5.3e6,
            },
        }
    }

    /// The layer table of this network.
    pub fn layers(&self) -> Vec<LayerDef> {
        match self {
            Benchmark::AlexNet => alexnet::layers(),
            Benchmark::GoogleNet => googlenet::layers(),
            Benchmark::ResNet50 => resnet50::layers(),
            Benchmark::InceptionV3 => inception_v3::layers(),
            Benchmark::MobileNetV2 => mobilenet_v2::layers(),
            Benchmark::Bert => bert::layers(),
        }
    }
}

/// Table IV metadata of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkInfo {
    /// Display name.
    pub name: &'static str,
    /// Weight sparsity ratio (fraction of zeros in B).
    pub b_sparsity: f64,
    /// Activation sparsity ratio (fraction of zeros in A).
    pub a_sparsity: f64,
    /// Published accuracy string.
    pub accuracy: &'static str,
    /// Dense latency reported in Table IV (cycles).
    pub paper_dense_cycles: f64,
}

impl BenchmarkInfo {
    /// Activation sparsity used when the network runs in an A-sparse
    /// *category*. Table IV's BERT row has 0% activation sparsity (GeLU),
    /// but Table I defines `DNN.A` / `DNN.AB` as **ReLU** transformers
    /// (MobileBERT-style); for those category experiments we substitute
    /// the typical ReLU-transformer activation sparsity of 50%
    /// (documented in DESIGN.md's substitution table).
    pub fn a_sparsity_in_category(&self) -> f64 {
        if self.a_sparsity == 0.0 {
            0.5
        } else {
            self.a_sparsity
        }
    }
}

/// Builds the simulation workload for one benchmark under one category
/// assumption (the paper's Table I execution modes). The same network
/// serves all four categories: `DNN.dense` keeps both operand sets
/// dense, `DNN.B` prunes weights only, `DNN.A` zeroes activations only
/// (ReLU), `DNN.AB` both. Seeded and deterministic.
pub fn build_workload(bench: Benchmark, category: DnnCategory, seed: u64) -> Workload {
    let info = bench.info();
    let mut gen = TensorGen::seeded(seed ^ (bench as u64) << 32);
    let mut layers = Vec::new();

    for def in bench.layers() {
        let (shape, replicas, cin) = def.gemm().expect("network tables are valid");

        let a_density = if category.a_sparse() && !def.dense_input {
            1.0 - info.a_sparsity_in_category()
        } else {
            1.0
        };
        let b_density = if category.b_sparse() && def.weight_prunable() {
            1.0 - info.b_sparsity
        } else {
            1.0
        };

        let a = if a_density >= 1.0 {
            SparsityMask::ones(shape.m, shape.k)
        } else {
            gen.channel_minor_mask(shape.m, shape.k, a_density, cin, A_SPREAD, false)
        };
        let b = if b_density >= 1.0 {
            SparsityMask::ones(shape.k, shape.n)
        } else {
            gen.channel_minor_mask(shape.k, shape.n, b_density, cin, B_SPREAD, true)
        };

        layers.push(
            GemmLayer::new(shape, a, b)
                .expect("masks are built from the same shape")
                .with_replicas(replicas),
        );
    }

    Workload::new(info.name, category, layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_sim::config::SimConfig;

    #[test]
    fn all_six_benchmarks_have_info() {
        for b in Benchmark::ALL {
            let i = b.info();
            assert!(!i.name.is_empty());
            assert!(i.b_sparsity > 0.7 && i.b_sparsity < 0.95);
            assert!(i.paper_dense_cycles >= 1.0e6);
        }
    }

    #[test]
    fn bert_is_dense_a_in_dnn_b_and_relu_a_in_dnn_ab() {
        // In its native Table IV setting (DNN.B: GeLU) BERT activations
        // are dense; in the DNN.A / DNN.AB *category* experiments the
        // ReLU-transformer substitution applies (Table I).
        let wl_b = build_workload(Benchmark::Bert, DnnCategory::B, 1);
        for l in &wl_b.layers {
            assert!((l.a_density() - 1.0).abs() < 1e-12);
        }
        let pruned = wl_b.layers.iter().filter(|l| l.b_density() < 0.5).count();
        assert_eq!(pruned, 72, "weight layers pruned, attention matmuls not");

        let wl_ab = build_workload(Benchmark::Bert, DnnCategory::AB, 1);
        let sparse_a = wl_ab.layers.iter().filter(|l| l.a_density() < 0.7).count();
        assert!(sparse_a > 60, "ReLU substitution sparsifies activations");
    }

    #[test]
    fn dense_category_builds_dense_masks() {
        let wl = build_workload(Benchmark::AlexNet, DnnCategory::Dense, 2);
        for l in &wl.layers {
            assert_eq!(l.a_density(), 1.0);
            assert_eq!(l.b_density(), 1.0);
        }
    }

    #[test]
    fn first_layer_input_is_dense_in_dnn_a() {
        let wl = build_workload(Benchmark::AlexNet, DnnCategory::A, 3);
        assert_eq!(wl.layers[0].a_density(), 1.0, "images are dense");
        assert!(wl.layers[1].a_density() < 0.6);
    }

    #[test]
    fn densities_land_near_table_iv() {
        let wl = build_workload(Benchmark::ResNet50, DnnCategory::AB, 4);
        let info = Benchmark::ResNet50.info();
        // Aggregate density over prunable layers should be close to
        // 1 - sparsity (per-channel variation preserves the mean).
        let (mut nnz, mut tot) = (0usize, 0usize);
        for l in &wl.layers {
            nnz += l.b.nnz();
            tot += l.b.rows() * l.b.cols();
        }
        let d = nnz as f64 / tot as f64;
        assert!(
            (d - (1.0 - info.b_sparsity)).abs() < 0.05,
            "B density {d} vs target {}",
            1.0 - info.b_sparsity
        );
    }

    #[test]
    fn workload_dense_cycles_match_table_iv_scale() {
        let cfg = SimConfig::default();
        for (b, lo, hi) in [
            (Benchmark::AlexNet, 0.7e6, 1.3e6),
            (Benchmark::Bert, 4.6e6, 6.0e6),
        ] {
            let wl = build_workload(b, DnnCategory::Dense, 5);
            let cycles = wl.dense_cycles(&cfg) as f64;
            assert!(
                (lo..hi).contains(&cycles),
                "{}: dense cycles {cycles} outside [{lo}, {hi}]",
                b.info().name
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = build_workload(Benchmark::GoogleNet, DnnCategory::B, 7);
        let b = build_workload(Benchmark::GoogleNet, DnnCategory::B, 7);
        assert_eq!(a.layers.len(), b.layers.len());
        for (x, y) in a.layers.iter().zip(&b.layers) {
            assert_eq!(x.b, y.b);
        }
    }
}
