//! MobileNetV2 (Sandler et al.), 224×224 input.
//!
//! Table IV: (B, A) sparsity (81%, 52%) (pruned via RigL, ref. 16), 67.5%
//! top-1, dense latency ≈ 2.2 × 10⁶ cycles.
//!
//! MobileNetV2's inverted-residual blocks are dominated by depthwise
//! convolutions, which map terribly onto a `(16,16,4)` GEMM core
//! (`K = 9`, `N = 1` per group) — that is why the paper's dense latency
//! is ~7× the raw MAC count would suggest, and our lowering reproduces
//! exactly that effect.

use crate::layer::LayerDef;

/// One inverted-residual block: expand 1×1 → depthwise 3×3 → project
/// 1×1. The first block (t = 1) has no expansion layer.
fn block(
    v: &mut Vec<LayerDef>,
    name: &str,
    cin: usize,
    cout: usize,
    hw: usize,
    t: usize,
    stride: usize,
) {
    let hidden = cin * t;
    if t != 1 {
        v.push(LayerDef::conv(
            format!("{name}.expand"),
            cin,
            hw,
            hw,
            hidden,
            1,
            1,
            1,
            0,
        ));
    }
    v.push(LayerDef::depthwise(
        format!("{name}.dw"),
        hidden,
        hw,
        hw,
        3,
        3,
        stride,
        1,
    ));
    let hw_out = hw / stride;
    v.push(LayerDef::conv(
        format!("{name}.project"),
        hidden,
        hw_out,
        hw_out,
        cout,
        1,
        1,
        1,
        0,
    ));
}

/// The MobileNetV2 layer table (width multiplier 1.0).
pub fn layers() -> Vec<LayerDef> {
    let mut v = vec![LayerDef::conv("stem", 3, 224, 224, 32, 3, 3, 2, 1).with_dense_input()];
    // Inverted residual settings: (expansion t, channels c, repeats n,
    // stride s) — Table 2 of the MobileNetV2 paper.
    let settings: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut cin = 32;
    let mut hw = 112;
    for (i, &(t, c, n, s)) in settings.iter().enumerate() {
        for j in 0..n {
            let stride = if j == 0 { s } else { 1 };
            block(
                &mut v,
                &format!("ir{}_{}", i + 1, j + 1),
                cin,
                c,
                hw,
                t,
                stride,
            );
            hw /= stride;
            cin = c;
        }
    }
    v.push(LayerDef::conv("head", 320, 7, 7, 1280, 1, 1, 1, 0));
    v.push(LayerDef::fc("fc", 1280, 1000));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{total_macs, LayerKind};

    #[test]
    fn mac_count_is_mobilenet_v2_scale() {
        // MobileNetV2 inference is ~0.3 GMACs.
        let macs = total_macs(&layers());
        assert!(
            (0.27e9..0.35e9).contains(&(macs as f64)),
            "MobileNetV2 MACs {macs} out of expected band"
        );
    }

    #[test]
    fn depthwise_blocks_are_grouped() {
        let dws: Vec<_> = layers()
            .into_iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv { groups, .. } if groups > 1))
            .collect();
        assert_eq!(dws.len(), 17, "one depthwise per inverted residual");
        for dw in dws {
            let (shape, reps, _) = dw.gemm().unwrap();
            assert_eq!(shape.k, 9);
            assert_eq!(shape.n, 1);
            assert!(reps >= 16);
        }
    }

    #[test]
    fn final_resolution_is_seven() {
        let v = layers();
        let last_dw = v.iter().rev().find(|l| l.name.ends_with(".dw")).unwrap();
        assert_eq!(last_dw.conv_output(), Some((7, 7)));
    }
}
