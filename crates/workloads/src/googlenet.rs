//! GoogleNet / Inception-v1 (Szegedy et al.), 224×224 input.
//!
//! Table IV: (B, A) sparsity (82%, 37%), 68.2% top-1, dense latency
//! ≈ 2.2 × 10⁶ cycles.

use crate::layer::LayerDef;

/// Branch widths of one inception module:
/// `(n1x1, n3x3_reduce, n3x3, n5x5_reduce, n5x5, pool_proj)`.
struct Inception {
    name: &'static str,
    hw: usize,
    cin: usize,
    b: [usize; 6],
}

fn inception(m: &Inception) -> Vec<LayerDef> {
    let &Inception {
        name,
        hw,
        cin,
        b: [n1, n3r, n3, n5r, n5, pp],
    } = m;
    vec![
        LayerDef::conv(format!("{name}.1x1"), cin, hw, hw, n1, 1, 1, 1, 0),
        LayerDef::conv(format!("{name}.3x3r"), cin, hw, hw, n3r, 1, 1, 1, 0),
        LayerDef::conv(format!("{name}.3x3"), n3r, hw, hw, n3, 3, 3, 1, 1),
        LayerDef::conv(format!("{name}.5x5r"), cin, hw, hw, n5r, 1, 1, 1, 0),
        LayerDef::conv(format!("{name}.5x5"), n5r, hw, hw, n5, 5, 5, 1, 2),
        LayerDef::conv(format!("{name}.pool_proj"), cin, hw, hw, pp, 1, 1, 1, 0),
    ]
}

/// The GoogleNet layer table (auxiliary classifiers excluded, as in
/// inference deployments).
pub fn layers() -> Vec<LayerDef> {
    let mut v = vec![
        LayerDef::conv("conv1", 3, 224, 224, 64, 7, 7, 2, 3).with_dense_input(),
        // 112x112 -> pool -> 56x56
        LayerDef::conv("conv2.red", 64, 56, 56, 64, 1, 1, 1, 0),
        LayerDef::conv("conv2", 64, 56, 56, 192, 3, 3, 1, 1),
        // pool -> 28x28
    ];
    let modules = [
        Inception {
            name: "3a",
            hw: 28,
            cin: 192,
            b: [64, 96, 128, 16, 32, 32],
        },
        Inception {
            name: "3b",
            hw: 28,
            cin: 256,
            b: [128, 128, 192, 32, 96, 64],
        },
        // pool -> 14x14
        Inception {
            name: "4a",
            hw: 14,
            cin: 480,
            b: [192, 96, 208, 16, 48, 64],
        },
        Inception {
            name: "4b",
            hw: 14,
            cin: 512,
            b: [160, 112, 224, 24, 64, 64],
        },
        Inception {
            name: "4c",
            hw: 14,
            cin: 512,
            b: [128, 128, 256, 24, 64, 64],
        },
        Inception {
            name: "4d",
            hw: 14,
            cin: 512,
            b: [112, 144, 288, 32, 64, 64],
        },
        Inception {
            name: "4e",
            hw: 14,
            cin: 528,
            b: [256, 160, 320, 32, 128, 128],
        },
        // pool -> 7x7
        Inception {
            name: "5a",
            hw: 7,
            cin: 832,
            b: [256, 160, 320, 32, 128, 128],
        },
        Inception {
            name: "5b",
            hw: 7,
            cin: 832,
            b: [384, 192, 384, 48, 128, 128],
        },
    ];
    for m in &modules {
        v.extend(inception(m));
    }
    v.push(LayerDef::fc("fc", 1024, 1000));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::total_macs;

    #[test]
    fn mac_count_is_googlenet_scale() {
        // GoogleNet inference is ~1.5 GMACs.
        let macs = total_macs(&layers());
        assert!(
            (1.35e9..1.65e9).contains(&(macs as f64)),
            "GoogleNet MACs {macs} out of expected band"
        );
    }

    #[test]
    fn module_output_channels_are_consistent() {
        // 3a outputs 64+128+32+32 = 256, which is 3b's cin.
        let m3a = [64, 96, 128, 16, 32, 32];
        assert_eq!(m3a[0] + m3a[2] + m3a[4] + m3a[5], 256);
    }

    #[test]
    fn layer_count() {
        // 3 stem + 9 modules x 6 + 1 fc = 58.
        assert_eq!(layers().len(), 58);
    }
}
