//! The campaign journal: crash-safe resume proof.
//!
//! A fleet campaign appends one JSON line per completed cell to
//! `journal.jsonl` next to its caches. The first line is a header
//! carrying the campaign's spec fingerprint and cell count; `--resume`
//! re-opens the file, verifies the header matches the *current* plan
//! (refusing to resume a different grid), and restores the completed
//! set so finished cells are never re-entered into a shard's work list.
//!
//! The file is append-only and written through a single coordinator, so
//! interruption can only lose or truncate the final line; loading
//! therefore tolerates a partial trailing line (and nothing else). Cell
//! results themselves live in the per-shard caches — the journal is the
//! index that proves which grid they belong to and which cells are done.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use griffin_sweep::fingerprint::Fingerprint;
use griffin_sweep::json::Json;
use griffin_sweep::scenario::ScenarioProvenance;

/// Format tag of the header line.
pub const JOURNAL_FORMAT: &str = "griffin-fleet-journal/1";

/// Identity of the campaign a journal belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Campaign name (informational; identity is the fingerprint).
    pub campaign: String,
    /// Stable grid identity ([`crate::plan::spec_fingerprint`]).
    pub spec_fp: Fingerprint,
    /// Total grid cells.
    pub cells: usize,
    /// Scenario provenance of the campaign, when it was launched from a
    /// scenario file. Informational — resume matches on the grid
    /// identity only, so journals written before the scenario subsystem
    /// (or by token-based runs of the same grid) still resume.
    pub scenario: Option<ScenarioProvenance>,
}

impl JournalHeader {
    /// Whether two headers describe the same campaign grid (the resume
    /// criterion: name, spec fingerprint and cell count — scenario
    /// provenance is deliberately excluded).
    pub fn same_grid(&self, other: &JournalHeader) -> bool {
        self.campaign == other.campaign
            && self.spec_fp == other.spec_fp
            && self.cells == other.cells
    }

    fn to_line(&self) -> String {
        let mut entries = vec![
            ("format".into(), Json::Str(JOURNAL_FORMAT.into())),
            ("campaign".into(), Json::Str(self.campaign.clone())),
            ("spec_fp".into(), Json::Str(self.spec_fp.to_string())),
            ("cells".into(), Json::Num(self.cells as f64)),
        ];
        if let Some(s) = &self.scenario {
            entries.push(("scenario_file".into(), Json::Str(s.file.clone())));
            entries.push(("scenario_fp".into(), Json::Str(s.fp.to_string())));
        }
        Json::obj(entries).write()
    }

    fn parse_line(line: &str) -> Result<JournalHeader, JournalError> {
        let v = Json::parse(line).map_err(|e| JournalError::Corrupt(e.to_string()))?;
        let fmt_tag = v
            .req("format")
            .and_then(|x| x.as_str())
            .map_err(|e| JournalError::Corrupt(e.to_string()))?;
        if fmt_tag != JOURNAL_FORMAT {
            return Err(JournalError::Corrupt(format!(
                "unknown journal format `{fmt_tag}`"
            )));
        }
        let fp_str = v
            .req("spec_fp")
            .and_then(|x| x.as_str())
            .map_err(|e| JournalError::Corrupt(e.to_string()))?;
        let spec_fp = Fingerprint::parse(fp_str)
            .ok_or_else(|| JournalError::Corrupt(format!("bad spec_fp `{fp_str}`")))?;
        let cells = v
            .req("cells")
            .and_then(|x| x.as_f64())
            .map_err(|e| JournalError::Corrupt(e.to_string()))?;
        let scenario = match (v.get("scenario_file"), v.get("scenario_fp")) {
            (None, None) => None,
            (Some(file), Some(fp)) => {
                let file = file
                    .as_str()
                    .map_err(|e| JournalError::Corrupt(e.to_string()))?
                    .to_string();
                let fp_str = fp
                    .as_str()
                    .map_err(|e| JournalError::Corrupt(e.to_string()))?;
                let fp = Fingerprint::parse(fp_str)
                    .ok_or_else(|| JournalError::Corrupt(format!("bad scenario_fp `{fp_str}`")))?;
                Some(ScenarioProvenance { file, fp })
            }
            _ => {
                return Err(JournalError::Corrupt(
                    "scenario_file and scenario_fp must appear together".into(),
                ))
            }
        };
        Ok(JournalHeader {
            campaign: v
                .req("campaign")
                .and_then(|x| x.as_str())
                .map_err(|e| JournalError::Corrupt(e.to_string()))?
                .to_string(),
            spec_fp,
            cells: cells as usize,
            scenario,
        })
    }
}

/// Journal failure.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The journal belongs to a different campaign grid.
    Mismatch {
        /// Identity recorded in the journal.
        found: Box<JournalHeader>,
        /// Identity of the plan being resumed.
        expected: Box<JournalHeader>,
    },
    /// The journal is unreadable beyond simple truncation.
    Corrupt(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Mismatch { found, expected } => write!(
                f,
                "journal belongs to a different campaign: found `{}` ({} cells, spec {}), \
                 expected `{}` ({} cells, spec {})",
                found.campaign,
                found.cells,
                found.spec_fp,
                expected.campaign,
                expected.cells,
                expected.spec_fp
            ),
            JournalError::Corrupt(msg) => write!(f, "journal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// An open, append-mode campaign journal.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    completed: BTreeMap<usize, Fingerprint>,
}

fn entry_line(cell: usize, fp: Fingerprint) -> String {
    Json::obj([
        ("cell".into(), Json::Num(cell as f64)),
        ("fp".into(), Json::Str(fp.to_string())),
    ])
    .write()
}

fn parse_entry(line: &str) -> Option<(usize, Fingerprint)> {
    let v = Json::parse(line).ok()?;
    let cell = v.req("cell").ok()?.as_f64().ok()?;
    if cell < 0.0 || cell.fract() != 0.0 {
        return None;
    }
    let fp = Fingerprint::parse(v.req("fp").ok()?.as_str().ok()?)?;
    Some((cell as usize, fp))
}

impl Journal {
    /// Starts a fresh journal at `path` (truncating any previous one)
    /// with an empty completed set.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>, header: &JournalHeader) -> Result<Journal, JournalError> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(&path)?;
        crate::jsonl::append_line(&mut file, &header.to_line())?;
        file.sync_data()?;
        Ok(Journal {
            file,
            path: path.as_ref().to_path_buf(),
            completed: BTreeMap::new(),
        })
    }

    /// What a read of a journal file yields: the validated completed
    /// set, the byte length of the cleanly-terminated valid prefix, the
    /// file length, and — when the final line was complete JSON missing
    /// only its `\n` (a crash between an entry's bytes and its newline)
    /// — that accepted-but-unterminated entry.
    #[allow(clippy::type_complexity)]
    fn load(
        path: impl AsRef<Path>,
        expected: &JournalHeader,
    ) -> Result<
        (
            BTreeMap<usize, Fingerprint>,
            usize,
            usize,
            Option<(usize, Fingerprint)>,
        ),
        JournalError,
    > {
        let text = std::fs::read_to_string(&path)?;
        // The torn-tail rule lives in `tail`: every byte of `clean`
        // belongs to a terminated line, `partial` is an interrupted
        // append (shared with the event-stream watcher).
        let (clean, partial) = crate::tail::split_partial_tail(&text);
        let mut segments = clean
            .split_inclusive('\n')
            .map(|s| (s, true))
            .chain((!partial.is_empty()).then_some((partial, false)));
        let Some((header_seg, _)) = segments.next() else {
            return Err(JournalError::Corrupt("empty journal".into()));
        };
        let found = JournalHeader::parse_line(header_seg.trim_end())?;
        if !found.same_grid(expected) {
            return Err(JournalError::Mismatch {
                found: Box::new(found),
                expected: Box::new(expected.clone()),
            });
        }
        let mut completed = BTreeMap::new();
        let mut valid_len = header_seg.len();
        let mut tail_entry = None;
        for (seg, terminated) in segments {
            let line = seg.trim_end();
            if line.is_empty() {
                valid_len += seg.len();
                continue;
            }
            let Some((cell, fp)) = parse_entry(line) else {
                break; // truncated tail from an interrupted append
            };
            if cell >= expected.cells {
                return Err(JournalError::Corrupt(format!(
                    "cell {cell} out of range (grid has {} cells)",
                    expected.cells
                )));
            }
            // Duplicate lines happen legitimately (a retried shard
            // replays a cell whose completion event was lost); they
            // dedupe by fingerprint. The same cell under two *different*
            // fingerprints can only mean corruption — two grids wrote
            // into one journal.
            if let Some(prev) = completed.insert(cell, fp) {
                if prev != fp {
                    return Err(JournalError::Corrupt(format!(
                        "cell {cell} journaled with two fingerprints ({prev} and {fp})"
                    )));
                }
            }
            if !terminated {
                // A complete entry missing only its newline (a crash
                // between the bytes and the `\n`) still counts; resume
                // rewrites it whole.
                tail_entry = Some((cell, fp));
                break;
            }
            valid_len += seg.len();
        }
        Ok((completed, valid_len, text.len(), tail_entry))
    }

    /// Re-opens an existing journal for resume: verifies the header
    /// matches `expected` and loads the completed-cell set. A partial
    /// trailing line (an interrupted append) is ignored and truncated
    /// away; loading stops at the first malformed line, treating
    /// everything after it as unwritten. The caller must be the sole
    /// writer (the coordinator) — resume repairs the file tail, unlike
    /// the strictly read-only [`Journal::peek_completed`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Mismatch`] when the journal records a different
    /// grid, [`JournalError::Corrupt`] when even the header is
    /// unreadable, and [`JournalError::Io`] on filesystem failures.
    pub fn resume(
        path: impl AsRef<Path>,
        expected: &JournalHeader,
    ) -> Result<Journal, JournalError> {
        let (completed, valid_len, total_len, tail_entry) = Self::load(&path, expected)?;
        // Drop anything after the cleanly-terminated prefix — a garbage
        // tail, or the one unterminated final entry (rewritten whole
        // below) — so the next append starts on a fresh line instead of
        // gluing onto a partial one.
        if valid_len < total_len {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(valid_len as u64)?;
        }
        let mut file = std::fs::OpenOptions::new().append(true).open(&path)?;
        if let Some((cell, fp)) = tail_entry {
            crate::jsonl::append_line(&mut file, &entry_line(cell, fp))?;
        }
        Ok(Journal {
            file,
            path: path.as_ref().to_path_buf(),
            completed,
        })
    }

    /// Opens a journal: [`Journal::resume`] when `resume` is set and the
    /// file exists, otherwise a fresh [`Journal::create`].
    ///
    /// # Errors
    ///
    /// See [`Journal::create`] / [`Journal::resume`].
    pub fn open(
        path: impl AsRef<Path>,
        header: &JournalHeader,
        resume: bool,
    ) -> Result<Journal, JournalError> {
        if resume && path.as_ref().exists() {
            Journal::resume(path, header)
        } else {
            Journal::create(path, header)
        }
    }

    /// Records a completed cell (idempotent) and flushes the line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, and refuses (with
    /// [`io::ErrorKind::InvalidData`], journal untouched) a cell that
    /// is already journaled under a *different* fingerprint — the same
    /// corruption the resume path rejects must not be accepted, and
    /// hidden, at write time.
    pub fn append(&mut self, cell: usize, fp: Fingerprint) -> io::Result<()> {
        match self.completed.insert(cell, fp) {
            None => crate::jsonl::append_line(&mut self.file, &entry_line(cell, fp)),
            Some(prev) if prev == fp => Ok(()), // already journaled (twin / cached replay)
            Some(prev) => {
                self.completed.insert(cell, prev); // keep the journaled truth
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("cell {cell} is journaled as {prev}; refusing to record {fp}"),
                ))
            }
        }
    }

    /// The completed cells (grid index → scenario fingerprint).
    pub fn completed(&self) -> &BTreeMap<usize, Fingerprint> {
        &self.completed
    }

    /// Whether a cell is journaled as complete.
    pub fn is_completed(&self, cell: usize) -> bool {
        self.completed.contains_key(&cell)
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fault-injection support: writes a torn, newline-less half entry,
    /// simulating a coordinator crash between an append's bytes and its
    /// newline. The journal must not be appended to afterwards — the
    /// injecting coordinator aborts the campaign, and the next
    /// `--resume` truncates the torn tail away.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn tear_tail_for_fault(&mut self) -> io::Result<()> {
        write!(self.file, "{{\"cell\":")
    }

    /// Reads the completed set of a journal **without writing to the
    /// file at all** — what shard workers use to skip finished cells
    /// while the coordinator keeps sole write ownership (a concurrent
    /// worker must never repair the tail the coordinator is appending
    /// to; a torn in-flight entry simply doesn't count yet, and the
    /// worker's redundant run of that cell is a cache hit).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Journal::resume`].
    pub fn peek_completed(
        path: impl AsRef<Path>,
        expected: &JournalHeader,
    ) -> Result<BTreeMap<usize, Fingerprint>, JournalError> {
        Ok(Journal::load(&path, expected)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            campaign: "t".into(),
            spec_fp: Fingerprint(0xAB, 0xCD),
            cells: 10,
            scenario: None,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "griffin-fleet-journal-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn create_append_resume_roundtrip() {
        let path = tmp("roundtrip");
        {
            let mut j = Journal::create(&path, &header()).unwrap();
            j.append(3, Fingerprint(3, 3)).unwrap();
            j.append(7, Fingerprint(7, 7)).unwrap();
            j.append(3, Fingerprint(3, 3)).unwrap(); // idempotent
        }
        let j = Journal::resume(&path, &header()).unwrap();
        assert_eq!(
            j.completed().iter().map(|(&c, _)| c).collect::<Vec<_>>(),
            vec![3, 7]
        );
        // A conflicting re-append is refused without touching either
        // the file or the in-memory truth.
        let mut j = j;
        let err = j.append(3, Fingerprint(9, 9)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(j.completed()[&3], Fingerprint(3, 3));
        drop(j);
        let j = Journal::resume(&path, &header()).unwrap();
        assert_eq!(j.completed()[&3], Fingerprint(3, 3));
        assert!(j.is_completed(7));
        assert!(!j.is_completed(4));
        // The idempotent append wrote exactly one line for cell 3.
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines, 3, "header + two entries");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_tolerates_a_truncated_tail() {
        let path = tmp("truncated");
        {
            let mut j = Journal::create(&path, &header()).unwrap();
            j.append(1, Fingerprint(1, 1)).unwrap();
        }
        // Simulate an interrupted append: a partial final line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"cell\":2,\"fp\":\"00");
        std::fs::write(&path, &text).unwrap();
        let mut j = Journal::resume(&path, &header()).unwrap();
        assert_eq!(j.completed().len(), 1, "partial line ignored");
        // Appending after a resume keeps the file loadable.
        j.append(5, Fingerprint(5, 5)).unwrap();
        drop(j);
        let j = Journal::resume(&path, &header()).unwrap();
        assert!(j.is_completed(5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_terminates_a_newline_less_final_entry() {
        // A crash between an entry's bytes and its newline leaves a
        // complete-but-unterminated last line; resume must keep the
        // entry *and* not glue the next append onto it.
        let path = tmp("no-newline");
        drop(Journal::create(&path, &header()).unwrap());
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&entry_line(4, Fingerprint(4, 4))); // no '\n'
        std::fs::write(&path, &text).unwrap();
        let mut j = Journal::resume(&path, &header()).unwrap();
        assert!(j.is_completed(4), "unterminated entry still counts");
        j.append(6, Fingerprint(6, 6)).unwrap();
        drop(j);
        let j = Journal::resume(&path, &header()).unwrap();
        assert!(j.is_completed(4) && j.is_completed(6));
        assert_eq!(j.completed().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_a_different_grid() {
        let path = tmp("mismatch");
        drop(Journal::create(&path, &header()).unwrap());
        let other = JournalHeader {
            spec_fp: Fingerprint(0xFF, 0xEE),
            ..header()
        };
        match Journal::resume(&path, &other) {
            Err(JournalError::Mismatch { found, expected }) => {
                assert_eq!(found.spec_fp, Fingerprint(0xAB, 0xCD));
                assert_eq!(expected.spec_fp, Fingerprint(0xFF, 0xEE));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_cells_and_bad_headers_are_corrupt() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            Journal::resume(&path, &header()),
            Err(JournalError::Corrupt(_))
        ));
        let mut text = header().to_line();
        text.push_str("\n{\"cell\":99,\"fp\":\"00000000000000ab00000000000000cd\"}\n");
        std::fs::write(&path, &text).unwrap();
        assert!(matches!(
            Journal::resume(&path, &header()),
            Err(JournalError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interleaved_retried_shard_writes_resume_cleanly() {
        // A retried shard's appends interleave arbitrarily with the
        // surviving shards' — completion order is no order at all. The
        // journal must restore the union regardless.
        let path = tmp("interleaved");
        {
            let mut j = Journal::create(&path, &header()).unwrap();
            // shard A: 0, 4; shard B: 1; shard A dies; retry of A
            // interleaves with B finishing.
            for cell in [0, 4, 1, 5, 2, 8, 3] {
                j.append(cell, Fingerprint(cell as u64, cell as u64))
                    .unwrap();
            }
        }
        let j = Journal::resume(&path, &header()).unwrap();
        assert_eq!(
            j.completed().keys().copied().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5, 8]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_entries_dedupe_by_fingerprint() {
        // Resume-after-retry can replay a cell whose completion event
        // was lost with the dead worker: the duplicate line (same cell,
        // same fingerprint) is one completion, not two — and a raw
        // duplicate *file line* (bypassing the idempotent append) must
        // behave identically.
        let path = tmp("dup");
        drop(Journal::create(&path, &header()).unwrap());
        let mut text = std::fs::read_to_string(&path).unwrap();
        let line = entry_line(6, Fingerprint(6, 6));
        text.push_str(&format!(
            "{line}\n{}\n{line}\n",
            entry_line(2, Fingerprint(2, 2))
        ));
        std::fs::write(&path, &text).unwrap();
        let j = Journal::resume(&path, &header()).unwrap();
        assert_eq!(j.completed().len(), 2);
        assert_eq!(j.completed()[&6], Fingerprint(6, 6));

        // The same cell under a *different* fingerprint is corruption.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(&format!("{}\n", entry_line(6, Fingerprint(9, 9))));
        std::fs::write(&path, &text).unwrap();
        match Journal::resume(&path, &header()) {
            Err(JournalError::Corrupt(msg)) => {
                assert!(msg.contains("two fingerprints"), "{msg}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_cell_count_mismatch_is_a_mismatch_not_a_crash() {
        // Same campaign name and spec fingerprint but a different cell
        // count (a hand-edited or stale header) must be refused as a
        // mismatch — the count is part of the journal's identity.
        let path = tmp("cell-count");
        drop(Journal::create(&path, &header()).unwrap());
        let other = JournalHeader {
            cells: 11,
            ..header()
        };
        match Journal::resume(&path, &other) {
            Err(JournalError::Mismatch { found, expected }) => {
                assert_eq!(found.cells, 10);
                assert_eq!(expected.cells, 11);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_from_fault_injection_resumes() {
        let path = tmp("torn");
        {
            let mut j = Journal::create(&path, &header()).unwrap();
            j.append(1, Fingerprint(1, 1)).unwrap();
            j.tear_tail_for_fault().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.ends_with('\n'), "the tail is torn");
        let mut j = Journal::resume(&path, &header()).unwrap();
        assert_eq!(j.completed().len(), 1);
        j.append(2, Fingerprint(2, 2)).unwrap();
        drop(j);
        let j = Journal::resume(&path, &header()).unwrap();
        assert!(j.is_completed(1) && j.is_completed(2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scenario_provenance_roundtrips_and_never_blocks_resume() {
        let with_prov = JournalHeader {
            scenario: Some(ScenarioProvenance {
                file: "fig5-bert-b.toml".into(),
                fp: Fingerprint(0x11, 0x22),
            }),
            ..header()
        };
        // The header line carries the provenance and parses back.
        let line = with_prov.to_line();
        assert!(line.contains("fig5-bert-b.toml"), "{line}");
        assert_eq!(JournalHeader::parse_line(&line).unwrap(), with_prov);

        // A journal created by a scenario run resumes under a token run
        // of the same grid, and vice versa: provenance is informational.
        let path = tmp("prov");
        drop(Journal::create(&path, &with_prov).unwrap());
        assert!(Journal::resume(&path, &header()).is_ok());
        drop(Journal::create(&path, &header()).unwrap());
        assert!(Journal::resume(&path, &with_prov).is_ok());

        // A different *grid* is still refused, provenance or not.
        let other_grid = JournalHeader {
            spec_fp: Fingerprint(0xFF, 0xEE),
            ..with_prov.clone()
        };
        assert!(matches!(
            Journal::resume(&path, &other_grid),
            Err(JournalError::Mismatch { .. })
        ));

        // Half-present provenance keys are corruption.
        let torn = line.replace(",\"scenario_fp\":\"00000000000000110000000000000022\"", "");
        assert!(matches!(
            JournalHeader::parse_line(&torn),
            Err(JournalError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_respects_the_resume_flag() {
        let path = tmp("open");
        {
            let mut j = Journal::create(&path, &header()).unwrap();
            j.append(2, Fingerprint(2, 2)).unwrap();
        }
        let j = Journal::open(&path, &header(), true).unwrap();
        assert_eq!(j.completed().len(), 1);
        drop(j);
        // Without --resume, an existing journal is restarted fresh.
        let j = Journal::open(&path, &header(), false).unwrap();
        assert!(j.completed().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
