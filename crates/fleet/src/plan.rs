//! Deterministic shard planning.
//!
//! A fleet campaign splits one [`SweepSpec`] grid across N shards. The
//! partition is **content-addressed**: a cell's shard is a function of
//! its stable 128-bit fingerprint only, never of its grid position — so
//! reordering a spec's axes, resuming with a different shard count, or
//! regenerating the plan on another machine always routes the same
//! scenario to a predictable place, and per-shard caches stay reusable
//! across plan changes.
//!
//! The plan also computes the campaign's **spec fingerprint** — a hash
//! over the name and the ordered cell-fingerprint list — which the
//! journal persists and every shard worker verifies, so a resume or a
//! subprocess running a *different* grid is rejected instead of quietly
//! merging alien results.

use griffin_sweep::fingerprint::{Fingerprint, Hasher};
use griffin_sweep::spec::{Cell, SweepSpec};

/// Why a plan could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// `shards` was zero.
    ZeroShards,
    /// The spec has an empty axis (no cells to shard).
    EmptySpec,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroShards => write!(f, "shard count must be at least 1"),
            PlanError::EmptySpec => write!(f, "sweep spec has an empty axis"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Hashes the grid identity while yielding each cell with its own
/// fingerprint — the single source of truth behind both
/// [`spec_fingerprint`] and [`ShardPlan::new`], so the journal /
/// `--expect-fp` handshake can never diverge from the planner.
fn fingerprint_cells(spec: &SweepSpec) -> (Fingerprint, Vec<(Cell, Fingerprint)>) {
    let mut h = Hasher::new();
    h.str("griffin-fleet-spec-v1").str(&spec.name);
    let cells = spec.cells();
    h.usize(cells.len());
    let pairs = cells
        .into_iter()
        .map(|c| {
            let fp = c.fingerprint(&spec.sim);
            h.u64(fp.0).u64(fp.1);
            (c, fp)
        })
        .collect();
    (h.finish(), pairs)
}

/// The stable identity of a whole campaign grid: name, cell count, and
/// every cell fingerprint in deterministic grid order. Two specs share
/// a spec fingerprint exactly when they would produce byte-identical
/// reports, which is the invariant resume and shard workers check.
pub fn spec_fingerprint(spec: &SweepSpec) -> Fingerprint {
    fingerprint_cells(spec).0
}

/// The shard a fingerprint belongs to, for a given shard count.
pub fn shard_of(fp: Fingerprint, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((fp.0 ^ fp.1) % shards as u64) as usize
}

/// The home host for a shard, for a given host count. Keyed on the
/// campaign's spec fingerprint plus the shard index, so the assignment
/// is stable across resumes and machines (the same property
/// [`shard_of`] gives cells) but re-shuffles when the grid itself
/// changes — no host keeps a privileged position between campaigns.
pub fn host_of(spec_fp: Fingerprint, shard: usize, hosts: usize) -> usize {
    debug_assert!(hosts > 0);
    let mut h = Hasher::new();
    h.str("griffin-fleet-host-v1")
        .u64(spec_fp.0)
        .u64(spec_fp.1)
        .usize(shard);
    let fp = h.finish();
    // FNV's low bits are weak modulo small powers of two; avalanche the
    // 128-bit state down to 64 well-mixed bits before reducing.
    let mut x = fp.0 ^ fp.1.rotate_left(31);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    (x % hosts as u64) as usize
}

/// A deterministic partition of a campaign grid into shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Stable identity of the planned grid (see [`spec_fingerprint`]).
    pub spec_fp: Fingerprint,
    /// Shard count the plan was built for.
    pub shards: usize,
    /// Per-shard cell lists, each ascending by grid index. Shards may be
    /// empty (fingerprints are uniform but not perfectly balanced, and
    /// small grids can have fewer cells than shards).
    pub cells: Vec<Vec<Cell>>,
}

impl ShardPlan {
    /// Plans `spec` across `shards` shards.
    ///
    /// # Errors
    ///
    /// [`PlanError::ZeroShards`] / [`PlanError::EmptySpec`].
    pub fn new(spec: &SweepSpec, shards: usize) -> Result<ShardPlan, PlanError> {
        if shards == 0 {
            return Err(PlanError::ZeroShards);
        }
        if !spec.is_runnable() {
            return Err(PlanError::EmptySpec);
        }
        let mut cells: Vec<Vec<Cell>> = vec![Vec::new(); shards];
        let (spec_fp, pairs) = fingerprint_cells(spec);
        for (c, fp) in pairs {
            cells[shard_of(fp, shards)].push(c);
        }
        Ok(ShardPlan {
            spec_fp,
            shards,
            cells,
        })
    }

    /// Total planned cells across all shards.
    pub fn cell_count(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }
}

/// The subset of `cells` not yet completed, in input (grid) order —
/// what a shard attempt actually has left to run. Used by the
/// coordinator for fresh runs, resumes, and post-failure re-queues
/// alike, so every path computes a shard's work list the same way.
pub fn remaining_cells(cells: &[Cell], is_done: impl Fn(usize) -> bool) -> Vec<Cell> {
    cells
        .iter()
        .filter(|c| !is_done(c.index))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_core::arch::ArchSpec;
    use griffin_core::category::DnnCategory;
    use std::collections::BTreeSet;

    fn spec() -> SweepSpec {
        SweepSpec::new("plan")
            .adhoc_layer("l0", 32, 256, 32, 1.0, 0.2)
            .adhoc_layer("l1", 16, 128, 64, 0.5, 0.5)
            .category(DnnCategory::B)
            .category(DnnCategory::Dense)
            .arch(ArchSpec::dense())
            .arch(ArchSpec::sparse_b_star())
            .arch(ArchSpec::griffin())
            .seeds([1, 2])
    }

    #[test]
    fn plan_partitions_the_grid_completely_and_disjointly() {
        let s = spec();
        let plan = ShardPlan::new(&s, 4).unwrap();
        assert_eq!(plan.shards, 4);
        assert_eq!(plan.cell_count(), s.cell_count());
        let mut seen = BTreeSet::new();
        for shard in &plan.cells {
            // Ascending grid order within each shard.
            for pair in shard.windows(2) {
                assert!(pair[0].index < pair[1].index);
            }
            for c in shard {
                assert!(seen.insert(c.index), "cell {} in two shards", c.index);
            }
        }
        assert_eq!(seen.len(), s.cell_count());
    }

    #[test]
    fn assignment_is_stable_under_axis_reordering() {
        let a = spec();
        // Same cells, axes spelled in a different order: every cell must
        // land on the same shard, because assignment keys on content.
        let b = SweepSpec::new("plan")
            .adhoc_layer("l1", 16, 128, 64, 0.5, 0.5)
            .adhoc_layer("l0", 32, 256, 32, 1.0, 0.2)
            .category(DnnCategory::Dense)
            .category(DnnCategory::B)
            .arch(ArchSpec::griffin())
            .arch(ArchSpec::dense())
            .arch(ArchSpec::sparse_b_star())
            .seeds([2, 1]);
        for shards in [1, 2, 3, 7] {
            let pa = ShardPlan::new(&a, shards).unwrap();
            let pb = ShardPlan::new(&b, shards).unwrap();
            for shard in 0..shards {
                let fa: BTreeSet<_> = pa.cells[shard]
                    .iter()
                    .map(|c| c.fingerprint(&a.sim))
                    .collect();
                let fb: BTreeSet<_> = pb.cells[shard]
                    .iter()
                    .map(|c| c.fingerprint(&b.sim))
                    .collect();
                assert_eq!(fa, fb, "shard {shard} of {shards} diverged");
            }
        }
    }

    #[test]
    fn spec_fingerprint_tracks_report_identity() {
        let base = spec_fingerprint(&spec());
        assert_eq!(base, spec_fingerprint(&spec()), "deterministic");
        assert_eq!(
            base,
            ShardPlan::new(&spec(), 3).unwrap().spec_fp,
            "plan computes the same identity"
        );
        // Anything that changes the report changes the identity: the
        // name (serialized in JSON), a seed, the grid order.
        let renamed = SweepSpec {
            name: "other".into(),
            ..spec()
        };
        assert_ne!(base, spec_fingerprint(&renamed));
        assert_ne!(base, spec_fingerprint(&spec().seeds([1, 3])));
        let reordered = SweepSpec {
            seeds: vec![2, 1],
            ..spec()
        };
        assert_ne!(base, spec_fingerprint(&reordered));
    }

    #[test]
    fn host_assignment_is_deterministic_and_in_range() {
        let fp = spec_fingerprint(&spec());
        for hosts in [1, 2, 3, 7] {
            for shard in 0..16 {
                let h = host_of(fp, shard, hosts);
                assert!(h < hosts);
                assert_eq!(h, host_of(fp, shard, hosts), "stable");
            }
        }
        // One host takes everything.
        assert!((0..16).all(|s| host_of(fp, s, 1) == 0));
        // A different grid reshuffles at least one of 16 shards across
        // 4 hosts (overwhelmingly likely for any real hash).
        let other = spec_fingerprint(&spec().seeds([1, 3]));
        assert!((0..16).any(|s| host_of(fp, s, 4) != host_of(other, s, 4)));
    }

    #[test]
    fn degenerate_plans_are_rejected_or_padded() {
        assert_eq!(ShardPlan::new(&spec(), 0), Err(PlanError::ZeroShards));
        assert_eq!(
            ShardPlan::new(&SweepSpec::new("empty"), 2),
            Err(PlanError::EmptySpec)
        );
        // More shards than cells: valid, some shards are simply empty.
        let s = spec();
        let plan = ShardPlan::new(&s, 1000).unwrap();
        assert_eq!(plan.cell_count(), s.cell_count());
        assert!(plan.cells.iter().any(Vec::is_empty));
    }
}
