//! The fleet coordinator: drives a sharded campaign end to end.
//!
//! A fleet run owns one state directory:
//!
//! ```text
//! <dir>/journal.jsonl   append-only resume journal (coordinator-owned)
//! <dir>/shard-<i>/      per-shard result cache (one writer each)
//! <dir>/merged/         fingerprint union of every shard cache
//! ```
//!
//! Shards execute either **in-process** ([`run_fleet`], sequential
//! shards over the executor's worker pool) or as **subprocesses**
//! ([`run_fleet_spawned`], one `griffin-cli shard-worker` per shard,
//! concurrent, JSONL events over stdout). Both modes stream the same
//! event schema, append the same journal, and end the same way: shard
//! caches are unioned with [`merge_dirs`] (conflicts abort), and the
//! final report is assembled by replaying the whole grid against the
//! merged cache — which is what makes fleet reports **byte-identical**
//! to a single-process [`run_campaign`] of the same spec, regardless of
//! shard count, scheduling order, interruption or resume history.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use griffin_sweep::cache::{merge_dirs, ResultCache};
use griffin_sweep::executor::{
    default_workers, run_campaign, run_cells_bounded, CampaignReport, CellEvent, SweepError,
};
use griffin_sweep::fingerprint::Fingerprint;
use griffin_sweep::spec::{Cell, SweepSpec};

use crate::events::{Event, EventSink, JsonlSink};
use crate::journal::{Journal, JournalError, JournalHeader};
use crate::plan::{PlanError, ShardPlan};

/// Configuration of a fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard count (≥ 1).
    pub shards: usize,
    /// Simulation worker threads (per shard run, and for the final
    /// assembly pass).
    pub workers: usize,
    /// Fleet state directory (journal, shard caches, merged cache).
    pub dir: PathBuf,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Emit a heartbeat every this many cell completions per shard
    /// (0 disables heartbeats).
    pub heartbeat_every: usize,
}

impl FleetConfig {
    /// A config with the default worker count and heartbeat cadence.
    pub fn new(dir: impl Into<PathBuf>, shards: usize) -> Self {
        FleetConfig {
            shards,
            workers: griffin_sweep::executor::default_workers(),
            dir: dir.into(),
            resume: false,
            heartbeat_every: 32,
        }
    }
}

/// Fleet campaign failure.
#[derive(Debug)]
pub enum FleetError {
    /// The shard plan could not be constructed.
    Plan(PlanError),
    /// The journal could not be opened, verified or appended.
    Journal(JournalError),
    /// Filesystem or event-stream failure.
    Io(std::io::Error),
    /// The underlying sweep executor failed.
    Sweep(SweepError),
    /// A shard's plan fingerprint did not match the coordinator's.
    SpecFingerprint {
        /// Fingerprint the coordinator expects.
        expected: Fingerprint,
        /// Fingerprint this worker computed.
        found: Fingerprint,
    },
    /// The cache merge found entries with the same fingerprint but
    /// different content (the listed fingerprints).
    MergeConflicts(Vec<String>),
    /// A shard-worker subprocess failed or broke protocol.
    Worker {
        /// Shard index of the failing worker.
        shard: usize,
        /// What went wrong.
        msg: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Plan(e) => write!(f, "{e}"),
            FleetError::Journal(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "fleet i/o error: {e}"),
            FleetError::Sweep(e) => write!(f, "{e}"),
            FleetError::SpecFingerprint { expected, found } => write!(
                f,
                "shard spec fingerprint mismatch: expected {expected}, got {found} \
                 (the worker is running a different campaign grid)"
            ),
            FleetError::MergeConflicts(fps) => write!(
                f,
                "cache merge found {} conflicting fingerprint(s): {} \
                 (same scenario, different results — caches are corrupt)",
                fps.len(),
                fps.join(", ")
            ),
            FleetError::Worker { shard, msg } => write!(f, "shard {shard} worker failed: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<PlanError> for FleetError {
    fn from(e: PlanError) -> Self {
        FleetError::Plan(e)
    }
}

impl From<JournalError> for FleetError {
    fn from(e: JournalError) -> Self {
        FleetError::Journal(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<SweepError> for FleetError {
    fn from(e: SweepError) -> Self {
        FleetError::Sweep(e)
    }
}

/// The journal's location inside a fleet directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.jsonl")
}

/// One shard's cache directory inside a fleet directory.
pub fn shard_cache_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

/// The merged cache directory inside a fleet directory.
pub fn merged_cache_dir(dir: &Path) -> PathBuf {
    dir.join("merged")
}

/// The default event-stream path inside a fleet directory.
pub fn default_events_path(dir: &Path) -> PathBuf {
    dir.join("events.jsonl")
}

/// The journal header a spec/plan pair implies.
fn plan_header(spec: &SweepSpec, plan: &ShardPlan) -> JournalHeader {
    JournalHeader {
        campaign: spec.name.clone(),
        spec_fp: plan.spec_fp,
        cells: plan.cell_count(),
    }
}

/// Sink + journal behind one lock: events and journal appends from
/// worker threads serialize through it, and the first failure parks
/// here to abort the run.
struct Shared<'a> {
    sink: &'a mut dyn EventSink,
    journal: Option<&'a mut Journal>,
    err: Option<FleetError>,
}

impl Shared<'_> {
    fn emit(&mut self, ev: &Event) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.sink.emit(ev) {
            self.err = Some(FleetError::Io(e));
        }
    }

    fn record_done(&mut self, cell: usize, fp: Fingerprint) {
        if self.err.is_some() {
            return;
        }
        if let Some(j) = self.journal.as_deref_mut() {
            if let Err(e) = j.append(cell, fp) {
                self.err = Some(FleetError::Io(e));
            }
        }
    }

    fn take_err(&mut self) -> Result<(), FleetError> {
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Executes one shard's remaining cells against its cache, streaming
/// events (and journaling completions when a journal is attached).
/// `build_workers` bounds the executor's phase-2 build pool: the whole
/// machine for the in-process coordinator, the worker's pinned thread
/// budget for spawned shards (N concurrent siblings share the cores).
#[allow(clippy::too_many_arguments)]
fn run_shard_cells(
    spec: &SweepSpec,
    shard: usize,
    todo: &[Cell],
    planned: usize,
    cache: &ResultCache,
    workers: usize,
    build_workers: usize,
    heartbeat_every: usize,
    shared: &Mutex<Shared<'_>>,
) -> Result<(), FleetError> {
    let start = Instant::now();
    let skipped = planned - todo.len();
    shared.lock().expect("fleet lock").emit(&Event::ShardStart {
        shard,
        cells: planned,
        skipped,
    });
    let stats0 = cache.stats();
    let done = AtomicUsize::new(0);
    let observe = |ev: &CellEvent<'_>| {
        let mut g = shared.lock().expect("fleet lock");
        match ev {
            CellEvent::Started { cell, fingerprint } => g.emit(&Event::CellStart {
                shard,
                cell: cell.index,
                fp: *fingerprint,
            }),
            CellEvent::Finished {
                cell,
                fingerprint,
                metrics,
                cached,
            } => {
                g.emit(&Event::CellDone {
                    shard,
                    cell: cell.index,
                    fp: *fingerprint,
                    cached: *cached,
                    metrics: *metrics,
                });
                g.record_done(cell.index, *fingerprint);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if heartbeat_every > 0 && d.is_multiple_of(heartbeat_every) {
                    g.emit(&Event::Heartbeat {
                        shard,
                        done: d,
                        total: todo.len(),
                    });
                }
            }
        }
    };
    run_cells_bounded(spec, todo, cache, workers, build_workers, &observe)?;
    let mut g = shared.lock().expect("fleet lock");
    g.take_err()?;
    let stats = cache.stats();
    g.emit(&Event::ShardDone {
        shard,
        simulated: (stats.stores - stats0.stores) as usize,
        cached: (stats.hits - stats0.hits) as usize,
        elapsed_ms: start.elapsed().as_millis() as u64,
    });
    g.take_err()
}

/// Every existing `shard-*` cache directory under `dir`, sorted — not
/// just the current plan's shards, so a resume with a different shard
/// count still merges results produced under the old partitioning.
fn existing_shard_dirs(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut v = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let is_shard = name.to_str().is_some_and(|n| n.starts_with("shard-"));
        if is_shard && entry.file_type()?.is_dir() {
            v.push(entry.path());
        }
    }
    v.sort();
    Ok(v)
}

/// Merges shard caches and assembles the final deterministic report.
fn finalize(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    sink: &mut dyn EventSink,
    start: Instant,
) -> Result<CampaignReport, FleetError> {
    let sources = existing_shard_dirs(&cfg.dir)?;
    let merged_dir = merged_cache_dir(&cfg.dir);
    let mr = merge_dirs(&merged_dir, &sources)?;
    sink.emit(&Event::MergeDone {
        sources: sources.len(),
        merged: mr.merged,
        identical: mr.identical,
        conflicts: mr.conflicts.len() as u64,
    })?;
    if !mr.conflicts.is_empty() {
        return Err(FleetError::MergeConflicts(mr.conflicts));
    }
    // Replaying the full grid against the merged cache yields the same
    // record list a single-process run produces — and re-simulates any
    // cell whose cached result went missing, so the report is always
    // complete. Its cache counters describe this assembly pass (hits ≈
    // every fleet-computed cell).
    let cache = ResultCache::at_dir(&merged_dir)?;
    let mut report = run_campaign(spec, &cache, cfg.workers)?;
    report.workers = cfg.workers;
    report.elapsed_ms = start.elapsed().as_millis();
    sink.emit(&Event::CampaignDone {
        cells: report.cells.len(),
        elapsed_ms: report.elapsed_ms as u64,
    })?;
    Ok(report)
}

/// Runs a sharded campaign **in-process**: shards execute sequentially,
/// each over the executor's worker pool, with completions streamed to
/// `sink` and journaled for resume. See the module docs for the state
/// layout and the byte-identity guarantee.
///
/// # Errors
///
/// [`FleetError`] on plan/journal/merge/executor failures; a sink write
/// failure aborts the campaign (already-journaled cells resume).
pub fn run_fleet(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    sink: &mut dyn EventSink,
) -> Result<CampaignReport, FleetError> {
    let start = Instant::now();
    let plan = ShardPlan::new(spec, cfg.shards)?;
    std::fs::create_dir_all(&cfg.dir)?;
    let mut journal = Journal::open(
        journal_path(&cfg.dir),
        &plan_header(spec, &plan),
        cfg.resume,
    )?;
    let resumed = journal.completed().len();
    sink.emit(&Event::CampaignStart {
        campaign: spec.name.clone(),
        spec_fp: plan.spec_fp,
        cells: plan.cell_count(),
        shards: plan.shards,
        resumed,
    })?;

    for (shard, shard_cells) in plan.cells.iter().enumerate() {
        let todo: Vec<Cell> = shard_cells
            .iter()
            .filter(|c| !journal.is_completed(c.index))
            .cloned()
            .collect();
        let cache = ResultCache::at_dir(shard_cache_dir(&cfg.dir, shard))?;
        let shared = Mutex::new(Shared {
            sink,
            journal: Some(&mut journal),
            err: None,
        });
        run_shard_cells(
            spec,
            shard,
            &todo,
            shard_cells.len(),
            &cache,
            cfg.workers,
            // In-process: this is the machine's only campaign process,
            // so builds use every core as plain `sweep` does.
            cfg.workers.max(default_workers()),
            cfg.heartbeat_every,
            &shared,
        )?;
    }
    finalize(spec, cfg, sink, start)
}

/// What the coordinator tells the CLI about one shard-worker launch.
#[derive(Debug, Clone)]
pub struct WorkerSpawn {
    /// Shard index the worker must execute.
    pub shard: usize,
    /// Shard count of the plan.
    pub shards: usize,
    /// The worker's private cache directory.
    pub cache_dir: PathBuf,
    /// The journal to consult (read-only) for completed cells.
    pub journal: PathBuf,
    /// The plan fingerprint the worker must verify.
    pub expect_fp: Fingerprint,
}

/// Runs a sharded campaign by **spawning one subprocess per shard**
/// (concurrently), consuming each worker's JSONL event stream from its
/// stdout: events are validated, re-emitted into `sink`, and `cell_done`
/// lines drive the coordinator-owned journal. `make_command` turns a
/// [`WorkerSpawn`] into the `griffin-cli shard-worker …` invocation (or
/// any protocol-compatible program); stdout is piped, stderr inherits.
///
/// # Errors
///
/// As [`run_fleet`], plus [`FleetError::Worker`] when a subprocess
/// exits unsuccessfully, emits garbage, or never reports `shard_done`.
pub fn run_fleet_spawned(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    make_command: &dyn Fn(&WorkerSpawn) -> Command,
    sink: &mut dyn EventSink,
) -> Result<CampaignReport, FleetError> {
    let start = Instant::now();
    let plan = ShardPlan::new(spec, cfg.shards)?;
    std::fs::create_dir_all(&cfg.dir)?;
    let mut journal = Journal::open(
        journal_path(&cfg.dir),
        &plan_header(spec, &plan),
        cfg.resume,
    )?;
    let resumed = journal.completed().len();
    sink.emit(&Event::CampaignStart {
        campaign: spec.name.clone(),
        spec_fp: plan.spec_fp,
        cells: plan.cell_count(),
        shards: plan.shards,
        resumed,
    })?;

    // Decide per shard: anything left to do? Empty shards are reported
    // locally instead of paying a process spawn.
    let mut children = Vec::new();
    for (shard, shard_cells) in plan.cells.iter().enumerate() {
        let remaining = shard_cells
            .iter()
            .filter(|c| !journal.is_completed(c.index))
            .count();
        if remaining == 0 {
            sink.emit(&Event::ShardStart {
                shard,
                cells: shard_cells.len(),
                skipped: shard_cells.len(),
            })?;
            sink.emit(&Event::ShardDone {
                shard,
                simulated: 0,
                cached: 0,
                elapsed_ms: 0,
            })?;
            continue;
        }
        let info = WorkerSpawn {
            shard,
            shards: plan.shards,
            cache_dir: shard_cache_dir(&cfg.dir, shard),
            journal: journal_path(&cfg.dir),
            expect_fp: plan.spec_fp,
        };
        let mut cmd = make_command(&info);
        cmd.stdin(Stdio::null()).stdout(Stdio::piped());
        let child = cmd.spawn().map_err(|e| FleetError::Worker {
            shard,
            msg: format!("spawn failed: {e}"),
        })?;
        children.push((shard, child));
    }

    let shared = Mutex::new(Shared {
        sink,
        journal: Some(&mut journal),
        err: None,
    });
    let results: Vec<Result<(), FleetError>> = std::thread::scope(|s| {
        let handles: Vec<_> = children
            .iter_mut()
            .map(|(shard, child)| {
                let shard = *shard;
                let stdout = child.stdout.take().expect("stdout was piped");
                let shared = &shared;
                let cells = plan.cell_count();
                s.spawn(move || consume_worker_stream(shard, cells, stdout, shared))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker reader thread"))
            .collect()
    });
    let mut first_err: Option<FleetError> = shared
        .into_inner()
        .expect("fleet lock")
        .err
        .take()
        .or(results.into_iter().find_map(Result::err));
    for (shard, child) in &mut children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                first_err.get_or_insert(FleetError::Worker {
                    shard: *shard,
                    msg: format!("exited with {status}"),
                });
            }
            Err(e) => {
                first_err.get_or_insert(FleetError::Worker {
                    shard: *shard,
                    msg: format!("wait failed: {e}"),
                });
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    finalize(spec, cfg, sink, start)
}

/// Reads one worker's JSONL stream, validating shard provenance and
/// cell range, forwarding events and journaling completions.
fn consume_worker_stream(
    shard: usize,
    cells: usize,
    stdout: impl std::io::Read,
    shared: &Mutex<Shared<'_>>,
) -> Result<(), FleetError> {
    let mut saw_done = false;
    for line in std::io::BufReader::new(stdout).lines() {
        let line = line.map_err(|e| FleetError::Worker {
            shard,
            msg: format!("stream read failed: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::parse_line(&line).map_err(|e| FleetError::Worker {
            shard,
            msg: format!("bad event line: {e}"),
        })?;
        let claimed = match &ev {
            Event::ShardStart { shard, .. }
            | Event::CellStart { shard, .. }
            | Event::CellDone { shard, .. }
            | Event::Heartbeat { shard, .. }
            | Event::ShardDone { shard, .. } => *shard,
            other => {
                return Err(FleetError::Worker {
                    shard,
                    msg: format!("campaign-level event from a worker: {:?}", other),
                })
            }
        };
        if claimed != shard {
            return Err(FleetError::Worker {
                shard,
                msg: format!("event claims shard {claimed}"),
            });
        }
        if let Event::CellDone { cell, .. } | Event::CellStart { cell, .. } = &ev {
            // Never journal (or forward) an out-of-range index: a bad
            // entry would make every future resume of this state dir
            // fail the journal's range check.
            if *cell >= cells {
                return Err(FleetError::Worker {
                    shard,
                    msg: format!("cell {cell} out of range (grid has {cells} cells)"),
                });
            }
        }
        let mut g = shared.lock().expect("fleet lock");
        if let Event::CellDone { cell, fp, .. } = &ev {
            g.record_done(*cell, *fp);
        }
        if let Event::ShardDone { .. } = &ev {
            saw_done = true;
        }
        g.emit(&ev);
        g.take_err()?;
    }
    if !saw_done {
        return Err(FleetError::Worker {
            shard,
            msg: "stream ended before shard_done".into(),
        });
    }
    Ok(())
}

/// Configuration of one shard-worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Shard count of the plan.
    pub shards: usize,
    /// This worker's shard index.
    pub shard: usize,
    /// Plan fingerprint to verify against (reject a mismatched grid).
    pub expect_fp: Option<Fingerprint>,
    /// Journal to consult (read-only) for completed cells.
    pub journal: Option<PathBuf>,
    /// This worker's cache directory.
    pub cache_dir: PathBuf,
    /// Simulation worker threads.
    pub workers: usize,
    /// Heartbeat cadence in cell completions (0 disables).
    pub heartbeat_every: usize,
}

/// Runs one shard of a campaign and streams its events to `out` — the
/// body of `griffin-cli shard-worker`, also callable in-process for
/// tests. The worker recomputes the plan from the spec, verifies it
/// against `expect_fp`, skips journal-completed cells, and writes
/// results only to its own cache directory (the journal stays
/// coordinator-owned).
///
/// # Errors
///
/// [`FleetError::SpecFingerprint`] when the recomputed plan does not
/// match `expect_fp`; otherwise as [`run_fleet`].
pub fn run_shard_worker(
    spec: &SweepSpec,
    cfg: &WorkerConfig,
    out: impl Write + Send,
) -> Result<(), FleetError> {
    let plan = ShardPlan::new(spec, cfg.shards)?;
    if let Some(expected) = cfg.expect_fp {
        if plan.spec_fp != expected {
            return Err(FleetError::SpecFingerprint {
                expected,
                found: plan.spec_fp,
            });
        }
    }
    let shard_cells = plan.cells.get(cfg.shard).ok_or(FleetError::Worker {
        shard: cfg.shard,
        msg: format!("shard index out of range (plan has {})", plan.shards),
    })?;
    let completed = match &cfg.journal {
        Some(path) if path.exists() => Journal::peek_completed(path, &plan_header(spec, &plan))?,
        _ => Default::default(),
    };
    let todo: Vec<Cell> = shard_cells
        .iter()
        .filter(|c| !completed.contains_key(&c.index))
        .cloned()
        .collect();
    let cache = ResultCache::at_dir(&cfg.cache_dir)?;
    let mut sink = JsonlSink::new(out);
    let shared = Mutex::new(Shared {
        sink: &mut sink,
        journal: None,
        err: None,
    });
    run_shard_cells(
        spec,
        cfg.shard,
        &todo,
        shard_cells.len(),
        &cache,
        cfg.workers,
        // A spawned worker shares the machine with its sibling shards:
        // builds stay inside the pinned thread budget too.
        cfg.workers,
        cfg.heartbeat_every,
        &shared,
    )
}
