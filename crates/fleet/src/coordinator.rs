//! The fleet coordinator: drives a sharded campaign end to end.
//!
//! A fleet run owns one state directory:
//!
//! ```text
//! <dir>/journal.jsonl   append-only resume journal (coordinator-owned)
//! <dir>/shard-<i>/      per-shard result cache (one writer each)
//! <dir>/merged/         fingerprint union of every shard cache
//! ```
//!
//! Shards execute either **in-process** ([`run_fleet`], sequential
//! shards over the executor's worker pool) or as **subprocesses**
//! ([`run_fleet_spawned`], one `griffin-cli shard-worker` per shard,
//! concurrent, JSONL events over stdout). Both modes stream the same
//! event schema, append the same journal, and end the same way: shard
//! caches are unioned with [`merge_dirs`] (conflicts abort), and the
//! final report is assembled by replaying the whole grid against the
//! merged cache — which is what makes fleet reports **byte-identical**
//! to a single-process [`run_campaign`] of the same spec, regardless of
//! shard count, scheduling order, interruption, retries or resume
//! history.
//!
//! # Fault tolerance
//!
//! A campaign survives the death of its workers. When a shard attempt
//! fails — the subprocess exits abnormally, breaks protocol, or (with
//! [`FleetConfig::heartbeat_timeout_ms`]) goes silent past the liveness
//! deadline and is killed — the coordinator emits `shard_failed`,
//! re-queues the shard's remaining (non-journaled) cells, emits
//! `cells_requeued` + `shard_retried`, and launches a fresh attempt
//! (the respawn skips everything already journaled, so work is never
//! repeated). Attempts are bounded by [`FleetConfig::max_shard_retries`];
//! exhaustion fails the campaign cleanly, and **every** exit path —
//! success or any failure — ends the event stream with exactly one
//! terminal event (`campaign_done` / `campaign_failed`).
//!
//! Recovery paths are exercised deterministically through
//! [`fault::FaultPlan`](crate::fault::FaultPlan): the in-process
//! coordinator consults [`FleetConfig::fault`] directly, spawned
//! workers arm their own faults from the inherited
//! [`GRIFFIN_FAULT`](crate::fault::FAULT_ENV) environment (gated by the
//! attempt number the coordinator exports per respawn).
//!
//! Respawns back off exponentially ([`retry_backoff_ms`], deterministic
//! jitter) instead of hammering a struggling machine, and an external
//! abort flag ([`FleetConfig::abort`] — the CLI's SIGINT handler)
//! drains workers and ends the stream with a terminal `campaign_failed`
//! while leaving the journal resumable.
//!
//! # Multi-host fleets
//!
//! [`run_fleet_hosted`] runs the spawned mode across several machines:
//! each shard is planned onto a home host fingerprint-stably
//! ([`host_of`](crate::plan::host_of)), workers launch through an
//! [`ExecTransport`] per host, and shard events carry the host label. A
//! host whose launches or workers keep failing
//! ([`FleetConfig::host_failure_limit`] consecutive failures, while
//! other hosts survive) is declared **lost** (`host_lost`): its pending
//! shards re-queue onto the surviving hosts, and the campaign only
//! fails when every host is gone. Remote shard caches are pulled back
//! after each successful worker and verified (a torn pull is re-pulled
//! once; what remains torn is healed by the merge and re-simulated by
//! the final replay — byte identity never depends on a clean pull).

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use griffin_sweep::cache::{merge_dirs, scan_dir, ResultCache};
use griffin_sweep::executor::{
    default_workers, run_campaign, run_cells_pooled, CampaignReport, CellEvent, ScratchPool,
    SweepError,
};
use griffin_sweep::fingerprint::{Fingerprint, Hasher};
use griffin_sweep::scenario::ScenarioProvenance;
use griffin_sweep::spec::{Cell, SweepSpec};

use crate::events::{Event, EventSink, JsonlSink};
use crate::fault::{self, AttemptGate, Fault, FaultPlan};
use crate::journal::{Journal, JournalError, JournalHeader};
use crate::plan::{host_of, remaining_cells, PlanError, ShardPlan};
use crate::transport::{ExecTransport, LocalExec, WorkerInvocation};

/// Configuration of a fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard count (≥ 1).
    pub shards: usize,
    /// Simulation worker threads (per shard run, and for the final
    /// assembly pass).
    pub workers: usize,
    /// Fleet state directory (journal, shard caches, merged cache).
    pub dir: PathBuf,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Emit a heartbeat every this many cell completions per shard
    /// (0 disables heartbeats).
    pub heartbeat_every: usize,
    /// How many times a failed shard is retried before the campaign
    /// gives up (0 = a single attempt, no retries).
    pub max_shard_retries: usize,
    /// Liveness deadline for spawned workers: a worker that emits no
    /// event for this many milliseconds is declared dead, killed, and
    /// retried. 0 disables the watchdog. Must comfortably exceed the
    /// worst-case single-cell simulation time — completions are the
    /// liveness signal.
    pub heartbeat_timeout_ms: u64,
    /// Base of the bounded exponential backoff before a shard respawn:
    /// attempt `n` waits `base << min(n-1, 6)` ms plus a deterministic
    /// jitter of up to `base / 4` ms seeded from (shard, attempt) — see
    /// [`retry_backoff_ms`]. 0 disables backoff (tests).
    pub retry_backoff_ms: u64,
    /// Consecutive failures on one host before it is declared lost and
    /// its shards re-queue onto surviving hosts (multi-host fleets
    /// only; a host is never declared lost while it is the last one).
    pub host_failure_limit: usize,
    /// External abort flag (the CLI's SIGINT handler sets it): the
    /// coordinator stops launching work, kills running workers, and
    /// fails the campaign with [`FleetError::Interrupted`] — journal
    /// intact, stream closed by a terminal `campaign_failed`.
    pub abort: Option<Arc<AtomicBool>>,
    /// Deterministic fault injection for chaos tests (see
    /// [`crate::fault`]). `None` in production.
    pub fault: Option<FaultPlan>,
    /// Scenario provenance of the campaign, recorded in the journal
    /// header and the `campaign_start` event when the campaign was
    /// launched from a scenario file. Informational — it never affects
    /// planning, sharding, or resume matching.
    pub scenario: Option<ScenarioProvenance>,
    /// Warm result cache shared across campaigns by a resident driver
    /// (the serve daemon). When set, the **in-process** coordinator runs
    /// every shard against this cache instead of per-shard `shard-<i>/`
    /// directories, and the final report replays the grid against it
    /// directly — no merge step. Spawned/hosted fleets ignore it (their
    /// workers are separate processes with private caches).
    pub shared_cache: Option<Arc<ResultCache>>,
    /// Scratch pool shared across campaigns by a resident driver:
    /// in-process shard workers check their simulation scratches out of
    /// it, so buffer capacity and matching-scope tile grids survive
    /// from one campaign to the next. `None` (one-shot runs) makes each
    /// worker build a fresh scratch, as ever.
    pub scratch_pool: Option<Arc<ScratchPool>>,
}

impl FleetConfig {
    /// A config with the default worker count, heartbeat cadence and
    /// retry budget, and no watchdog or fault plan.
    pub fn new(dir: impl Into<PathBuf>, shards: usize) -> Self {
        FleetConfig {
            shards,
            workers: griffin_sweep::executor::default_workers(),
            dir: dir.into(),
            resume: false,
            heartbeat_every: 32,
            max_shard_retries: 2,
            heartbeat_timeout_ms: 0,
            retry_backoff_ms: 250,
            host_failure_limit: 2,
            abort: None,
            fault: None,
            scenario: None,
            shared_cache: None,
            scratch_pool: None,
        }
    }

    /// Whether the external abort flag is raised.
    fn abort_requested(&self) -> bool {
        self.abort
            .as_ref()
            .is_some_and(|a| a.load(Ordering::Relaxed))
    }
}

/// Fleet campaign failure.
#[derive(Debug)]
pub enum FleetError {
    /// The shard plan could not be constructed.
    Plan(PlanError),
    /// The journal could not be opened, verified or appended.
    Journal(JournalError),
    /// Filesystem or event-stream failure.
    Io(std::io::Error),
    /// The underlying sweep executor failed.
    Sweep(SweepError),
    /// A shard's plan fingerprint did not match the coordinator's.
    SpecFingerprint {
        /// Fingerprint the coordinator expects.
        expected: Fingerprint,
        /// Fingerprint this worker computed.
        found: Fingerprint,
    },
    /// The cache merge found entries with the same fingerprint but
    /// different content (the listed fingerprints).
    MergeConflicts(Vec<String>),
    /// A shard-worker subprocess failed or broke protocol.
    Worker {
        /// Shard index of the failing worker.
        shard: usize,
        /// What went wrong.
        msg: String,
    },
    /// A shard kept failing until [`FleetConfig::max_shard_retries`]
    /// was exhausted.
    ShardExhausted {
        /// Shard index that gave up.
        shard: usize,
        /// Attempts made (retries + 1).
        attempts: usize,
        /// The final attempt's failure.
        msg: String,
    },
    /// A [`FaultPlan`] fault fired (chaos tests only).
    Injected(Fault),
    /// The campaign was already aborted by an earlier failure on
    /// another shard (reported alongside the root cause).
    Aborted,
    /// The external abort flag ([`FleetConfig::abort`]) was raised —
    /// typically the CLI's SIGINT handler. The journal stays resumable.
    Interrupted,
    /// Every host of a multi-host fleet was declared lost.
    HostsExhausted {
        /// Total hosts the fleet started with.
        hosts: usize,
    },
    /// A shard cache directory exists but cannot be read — permissions,
    /// a file squatting on the name — so the merge would silently drop
    /// its results.
    ShardDirUnreadable {
        /// The unreadable directory.
        dir: PathBuf,
        /// The underlying probe failure.
        err: std::io::Error,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Plan(e) => write!(f, "{e}"),
            FleetError::Journal(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "fleet i/o error: {e}"),
            FleetError::Sweep(e) => write!(f, "{e}"),
            FleetError::SpecFingerprint { expected, found } => write!(
                f,
                "shard spec fingerprint mismatch: expected {expected}, got {found} \
                 (the worker is running a different campaign grid)"
            ),
            FleetError::MergeConflicts(fps) => write!(
                f,
                "cache merge found {} conflicting fingerprint(s): {} \
                 (same scenario, different results — caches are corrupt)",
                fps.len(),
                fps.join(", ")
            ),
            FleetError::Worker { shard, msg } => write!(f, "shard {shard} worker failed: {msg}"),
            FleetError::ShardExhausted {
                shard,
                attempts,
                msg,
            } => write!(
                f,
                "shard {shard} failed {attempts} attempt(s), retries exhausted: {msg}"
            ),
            FleetError::Injected(fault) => write!(f, "fault injected: {fault}"),
            FleetError::Aborted => write!(f, "campaign aborted by an earlier failure"),
            FleetError::Interrupted => write!(
                f,
                "campaign aborted by interrupt (journal intact; rerun with --resume)"
            ),
            FleetError::HostsExhausted { hosts } => {
                write!(
                    f,
                    "all {hosts} fleet host(s) lost; no machine left to run shards"
                )
            }
            FleetError::ShardDirUnreadable { dir, err } => write!(
                f,
                "shard cache dir `{}` is unreadable ({err}); merging would drop its results",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<PlanError> for FleetError {
    fn from(e: PlanError) -> Self {
        FleetError::Plan(e)
    }
}

impl From<JournalError> for FleetError {
    fn from(e: JournalError) -> Self {
        FleetError::Journal(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<SweepError> for FleetError {
    fn from(e: SweepError) -> Self {
        FleetError::Sweep(e)
    }
}

/// Is a new attempt worth launching after this failure? Worker deaths
/// (real or injected) are transient; everything else — plan, journal,
/// sink, spec mismatches, coordinator-side faults — is deterministic
/// and would fail identically again.
fn retryable(e: &FleetError) -> bool {
    matches!(
        e,
        FleetError::Worker { .. } | FleetError::Injected(Fault::Kill { .. } | Fault::Stall { .. })
    )
}

/// The backoff before launching attempt `attempt` of a shard (0 for the
/// first attempt, which is not a retry): bounded exponential growth
/// over [`FleetConfig::retry_backoff_ms`] plus a deterministic jitter
/// seeded from (shard, attempt) — retries de-synchronize across shards
/// without a random source, so chaos tests can assert the exact
/// schedule.
pub fn retry_backoff_ms(shard: usize, attempt: usize, base_ms: u64) -> u64 {
    if base_ms == 0 || attempt == 0 {
        return 0;
    }
    let exp = base_ms << (attempt - 1).min(6) as u32;
    let mut h = Hasher::new();
    h.str("griffin-fleet-backoff-v1")
        .usize(shard)
        .usize(attempt);
    exp + h.finish().0 % (base_ms / 4).max(1)
}

/// Sleeps `ms` in small increments, bailing out with
/// [`FleetError::Interrupted`] the moment the abort flag is raised — a
/// backoff must never delay a requested shutdown.
fn sleep_backoff(ms: u64, abort: Option<&AtomicBool>) -> Result<(), FleetError> {
    let deadline = Instant::now() + Duration::from_millis(ms);
    loop {
        if abort.is_some_and(|a| a.load(Ordering::Relaxed)) {
            return Err(FleetError::Interrupted);
        }
        let now = Instant::now();
        if now >= deadline {
            return Ok(());
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(25)));
    }
}

/// The journal's location inside a fleet directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.jsonl")
}

/// One shard's cache directory inside a fleet directory.
pub fn shard_cache_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

/// The merged cache directory inside a fleet directory.
pub fn merged_cache_dir(dir: &Path) -> PathBuf {
    dir.join("merged")
}

/// The default event-stream path inside a fleet directory.
pub fn default_events_path(dir: &Path) -> PathBuf {
    dir.join("events.jsonl")
}

/// The journal header a spec/plan pair implies (plus the provenance of
/// the scenario the campaign came from, when it came from one).
fn plan_header(
    spec: &SweepSpec,
    plan: &ShardPlan,
    scenario: Option<&ScenarioProvenance>,
) -> JournalHeader {
    JournalHeader {
        campaign: spec.name.clone(),
        spec_fp: plan.spec_fp,
        cells: plan.cell_count(),
        scenario: scenario.cloned(),
    }
}

/// Sink + journal behind one lock: events and journal appends from
/// worker threads serialize through it, and the first coordinator-side
/// failure parks here to abort the run (`failed` stays set after the
/// error is taken, so late threads stop emitting and report
/// [`FleetError::Aborted`] instead of carrying on against a broken
/// sink or journal).
struct Shared<'a> {
    sink: &'a mut dyn EventSink,
    journal: Option<&'a mut Journal>,
    err: Option<FleetError>,
    failed: bool,
    /// Journal appends so far (campaign-wide), driving the
    /// truncate-journal fault point.
    appends: usize,
    truncate_journal_after: Option<usize>,
}

impl<'a> Shared<'a> {
    fn new(
        sink: &'a mut dyn EventSink,
        journal: Option<&'a mut Journal>,
        appends: usize,
        truncate_journal_after: Option<usize>,
    ) -> Self {
        Shared {
            sink,
            journal,
            err: None,
            failed: false,
            appends,
            truncate_journal_after,
        }
    }

    fn set_err(&mut self, e: FleetError) {
        self.err = Some(e);
        self.failed = true;
    }

    fn emit(&mut self, ev: &Event) {
        if self.failed {
            return;
        }
        if let Err(e) = self.sink.emit(ev) {
            self.set_err(FleetError::Io(e));
        }
    }

    fn record_done(&mut self, cell: usize, fp: Fingerprint) {
        if self.failed {
            return;
        }
        let Some(j) = self.journal.as_deref_mut() else {
            return;
        };
        if let Err(e) = j.append(cell, fp) {
            self.set_err(FleetError::Io(e));
            return;
        }
        self.appends += 1;
        if self.truncate_journal_after == Some(self.appends) {
            // Simulated coordinator crash mid-append: tear the tail and
            // abort (the fault is coordinator-side, so no retry).
            let _ = j.tear_tail_for_fault();
            self.set_err(FleetError::Injected(Fault::TruncateJournal {
                after: self.appends,
            }));
        }
    }

    /// Whether a cell is journaled as complete (false without a journal).
    fn is_done(&self, cell: usize) -> bool {
        self.journal
            .as_deref()
            .is_some_and(|j| j.is_completed(cell))
    }

    fn take_err(&mut self) -> Result<(), FleetError> {
        match self.err.take() {
            Some(e) => Err(e),
            None if self.failed => Err(FleetError::Aborted),
            None => Ok(()),
        }
    }
}

/// Executes one shard's cells against its cache, streaming events (and
/// journaling completions when a journal is attached). `planned` /
/// `skipped` describe the full shard for `shard_start` (with fault
/// truncation, `todo` can be shorter than `planned - skipped`);
/// `emit_done` is cleared when a fault will kill this attempt before
/// its `shard_done`. `build_workers` bounds the executor's phase-2
/// build pool: the whole machine for the in-process coordinator, the
/// worker's pinned thread budget for spawned shards (N concurrent
/// siblings share the cores). `pool` is the resident driver's warm
/// scratch pool, when one exists (`None` = fresh scratches).
#[allow(clippy::too_many_arguments)]
fn run_shard_cells(
    spec: &SweepSpec,
    shard: usize,
    todo: &[Cell],
    planned: usize,
    skipped: usize,
    cache: &ResultCache,
    workers: usize,
    build_workers: usize,
    heartbeat_every: usize,
    shared: &Mutex<Shared<'_>>,
    emit_done: bool,
    pool: Option<&ScratchPool>,
) -> Result<(), FleetError> {
    let start = Instant::now();
    shared.lock().expect("fleet lock").emit(&Event::ShardStart {
        shard,
        cells: planned,
        skipped,
        // Host labels are the coordinator's knowledge, stamped on the
        // consumer side: a worker does not know which machine it is.
        host: None,
    });
    let stats0 = cache.stats();
    let done = AtomicUsize::new(0);
    let cached_hits = AtomicUsize::new(0);
    let observe = |ev: &CellEvent<'_>| {
        let mut g = shared.lock().expect("fleet lock");
        match ev {
            CellEvent::Started { cell, fingerprint } => g.emit(&Event::CellStart {
                shard,
                cell: cell.index,
                fp: *fingerprint,
            }),
            CellEvent::Finished {
                cell,
                fingerprint,
                metrics,
                cached,
            } => {
                g.emit(&Event::CellDone {
                    shard,
                    cell: cell.index,
                    fp: *fingerprint,
                    cached: *cached,
                    metrics: *metrics,
                });
                g.record_done(cell.index, *fingerprint);
                if *cached {
                    cached_hits.fetch_add(1, Ordering::Relaxed);
                }
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if heartbeat_every > 0 && d.is_multiple_of(heartbeat_every) {
                    g.emit(&Event::Heartbeat {
                        shard,
                        done: d,
                        total: todo.len(),
                        elapsed_ms: start.elapsed().as_millis() as u64,
                        cached: cached_hits.load(Ordering::Relaxed),
                    });
                }
            }
        }
    };
    let throwaway = ScratchPool::new();
    run_cells_pooled(
        spec,
        todo,
        cache,
        workers,
        build_workers,
        &observe,
        pool.unwrap_or(&throwaway),
    )?;
    let mut g = shared.lock().expect("fleet lock");
    g.take_err()?;
    if emit_done {
        let stats = cache.stats();
        g.emit(&Event::ShardDone {
            shard,
            simulated: (stats.stores - stats0.stores) as usize,
            cached: (stats.hits - stats0.hits) as usize,
            elapsed_ms: start.elapsed().as_millis() as u64,
            host: None,
        });
    }
    g.take_err()
}

/// Every existing `shard-*` cache directory under `dir`, sorted — not
/// just the current plan's shards, so a resume with a different shard
/// count still merges results produced under the old partitioning.
fn existing_shard_dirs(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut v = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let is_shard = name.to_str().is_some_and(|n| n.starts_with("shard-"));
        if is_shard && entry.file_type()?.is_dir() {
            v.push(entry.path());
        }
    }
    v.sort();
    Ok(v)
}

/// Probes every shard cache source for readability before the merge.
/// An unreadable directory — permissions stripped, a file squatting on
/// the name — would otherwise surface as an opaque io error halfway
/// through [`merge_dirs`] (or worse, silently contribute nothing);
/// here it becomes a typed [`FleetError::ShardDirUnreadable`] naming
/// the directory.
pub fn verify_shard_sources(sources: &[PathBuf]) -> Result<(), FleetError> {
    for dir in sources {
        let probe = std::fs::read_dir(dir).and_then(|entries| {
            for e in entries {
                e?;
            }
            Ok(())
        });
        if let Err(err) = probe {
            return Err(FleetError::ShardDirUnreadable {
                dir: dir.clone(),
                err,
            });
        }
    }
    Ok(())
}

/// Merges shard caches and assembles the final deterministic report.
fn finalize(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    sink: &mut dyn EventSink,
    start: Instant,
) -> Result<CampaignReport, FleetError> {
    if let Some(shared) = &cfg.shared_cache {
        // A resident driver's shards all wrote into one warm cache —
        // there are no shard directories and nothing to merge. Replaying
        // the grid against it yields the same record list a standalone
        // single-process run produces (the byte-identity guarantee is
        // the replay, not the merge).
        let mut report = run_campaign(spec, shared, cfg.workers)?;
        report.workers = cfg.workers;
        report.elapsed_ms = start.elapsed().as_millis();
        sink.emit(&Event::CampaignDone {
            cells: report.cells.len(),
            elapsed_ms: report.elapsed_ms as u64,
        })?;
        return Ok(report);
    }
    let sources = existing_shard_dirs(&cfg.dir)?;
    verify_shard_sources(&sources)?;
    let merged_dir = merged_cache_dir(&cfg.dir);
    let mr = merge_dirs(&merged_dir, &sources)?;
    sink.emit(&Event::MergeDone {
        sources: sources.len(),
        merged: mr.merged,
        identical: mr.identical,
        healed: mr.healed,
        conflicts: mr.conflicts.len() as u64,
    })?;
    if !mr.conflicts.is_empty() {
        return Err(FleetError::MergeConflicts(mr.conflicts));
    }
    // Replaying the full grid against the merged cache yields the same
    // record list a single-process run produces — and re-simulates any
    // cell whose cached result went missing (or was torn by a dying
    // worker), so the report is always complete. Its cache counters
    // describe this assembly pass (hits ≈ every fleet-computed cell).
    let cache = ResultCache::at_dir(&merged_dir)?;
    let mut report = run_campaign(spec, &cache, cfg.workers)?;
    report.workers = cfg.workers;
    report.elapsed_ms = start.elapsed().as_millis();
    sink.emit(&Event::CampaignDone {
        cells: report.cells.len(),
        elapsed_ms: report.elapsed_ms as u64,
    })?;
    Ok(report)
}

/// Guarantees the terminal-event invariant: any failure, from any exit
/// path, closes the stream with `campaign_failed` (best-effort — the
/// sink itself may be what broke). Success already ended with
/// `campaign_done` inside [`finalize`].
fn finish_with_terminal(
    sink: &mut dyn EventSink,
    result: Result<CampaignReport, FleetError>,
) -> Result<CampaignReport, FleetError> {
    if let Err(e) = &result {
        let _ = sink.emit(&Event::CampaignFailed { msg: e.to_string() });
    }
    result
}

/// Emits the failure lifecycle for one dead shard attempt and decides
/// whether to retry. Returns the next attempt number, or the error to
/// abort with. `requeued` is the shard's remaining non-journaled cell
/// count at the moment of death; `backoff_ms` is the wait the caller
/// will impose before the respawn (announced on `shard_retried` so
/// observers can account for the quiet period). `hosts` carries the
/// (failed, next) host labels in multi-host fleets, `(None, None)`
/// otherwise.
#[allow(clippy::too_many_arguments)]
fn shard_failure(
    shard: usize,
    attempt: usize,
    max_retries: usize,
    requeued: usize,
    backoff_ms: u64,
    hosts: (Option<String>, Option<String>),
    e: FleetError,
    emit: &mut dyn FnMut(&Event),
) -> Result<usize, FleetError> {
    let can_retry = retryable(&e) && attempt < max_retries;
    emit(&Event::ShardFailed {
        shard,
        attempt,
        msg: e.to_string(),
        host: hosts.0,
    });
    if !can_retry {
        return Err(if retryable(&e) {
            FleetError::ShardExhausted {
                shard,
                attempts: attempt + 1,
                msg: e.to_string(),
            }
        } else {
            e
        });
    }
    emit(&Event::CellsRequeued {
        shard,
        cells: requeued,
    });
    emit(&Event::ShardRetried {
        shard,
        attempt: attempt + 1,
        backoff_ms,
        host: hosts.1,
    });
    Ok(attempt + 1)
}

/// Runs a sharded campaign **in-process**: shards execute sequentially,
/// each over the executor's worker pool, with completions streamed to
/// `sink`, journaled for resume, and failed shard attempts retried up
/// to [`FleetConfig::max_shard_retries`] (the re-queue skips journaled
/// cells). See the module docs for the state layout, the byte-identity
/// guarantee and the fault-tolerance model.
///
/// # Errors
///
/// [`FleetError`] on plan/journal/merge/executor failures; a sink write
/// failure aborts the campaign (already-journaled cells resume). Every
/// failure still terminates the stream with `campaign_failed`.
pub fn run_fleet(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    sink: &mut dyn EventSink,
) -> Result<CampaignReport, FleetError> {
    let result = run_fleet_inner(spec, cfg, sink);
    finish_with_terminal(sink, result)
}

fn run_fleet_inner(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    sink: &mut dyn EventSink,
) -> Result<CampaignReport, FleetError> {
    let start = Instant::now();
    let plan = ShardPlan::new(spec, cfg.shards)?;
    std::fs::create_dir_all(&cfg.dir)?;
    let mut journal = Journal::open(
        journal_path(&cfg.dir),
        &plan_header(spec, &plan, cfg.scenario.as_ref()),
        cfg.resume,
    )?;
    let resumed = journal.completed().len();
    sink.emit(&Event::CampaignStart {
        campaign: spec.name.clone(),
        spec_fp: plan.spec_fp,
        cells: plan.cell_count(),
        shards: plan.shards,
        resumed,
        scenario: cfg.scenario.clone(),
    })?;
    let fault = cfg.fault.as_ref();
    let truncate_after = fault.and_then(FaultPlan::journal_truncate_after);
    let mut appends = 0usize;

    for (shard, shard_cells) in plan.cells.iter().enumerate() {
        let cache_dir = shard_cache_dir(&cfg.dir, shard);
        let local_cache;
        let cache: &ResultCache = match &cfg.shared_cache {
            Some(shared) => shared,
            None => {
                local_cache = ResultCache::at_dir(&cache_dir)?;
                &local_cache
            }
        };
        let mut attempt = 0usize;
        loop {
            if cfg.abort_requested() {
                return Err(FleetError::Interrupted);
            }
            let full_todo = remaining_cells(shard_cells, |i| journal.is_completed(i));
            let skipped = shard_cells.len() - full_todo.len();
            // In-process, a stall cannot "go silent" without hanging
            // the whole campaign, so it degrades to a kill: the
            // liveness-timeout path proper is exercised in spawn mode.
            let die = fault.and_then(|f| {
                f.kill_after(shard, attempt)
                    .or_else(|| f.stall_after(shard, attempt))
            });
            let mut todo = full_todo;
            if let Some(k) = die {
                todo.truncate(k);
            }
            let shared = Mutex::new(Shared::new(
                sink,
                Some(&mut journal),
                appends,
                truncate_after,
            ));
            let run = run_shard_cells(
                spec,
                shard,
                &todo,
                shard_cells.len(),
                skipped,
                cache,
                cfg.workers,
                // In-process: this is the machine's only campaign
                // process, so builds use every core as plain `sweep`
                // does.
                cfg.workers.max(default_workers()),
                cfg.heartbeat_every,
                &shared,
                die.is_none(),
                cfg.scratch_pool.as_deref(),
            );
            appends = shared.into_inner().expect("fleet lock").appends;
            let attempt_result = run.and_then(|()| {
                if fault.is_some_and(|f| f.corrupts_cache(shard, attempt)) {
                    fault::corrupt_shard_cache(&cache_dir)?;
                }
                match die {
                    Some(after) => Err(FleetError::Injected(Fault::Kill {
                        shard,
                        after,
                        attempt: AttemptGate::Only(attempt),
                    })),
                    None => Ok(()),
                }
            });
            match attempt_result {
                Ok(()) => break,
                Err(e) => {
                    let requeued = shard_cells
                        .iter()
                        .filter(|c| !journal.is_completed(c.index))
                        .count();
                    let backoff = retry_backoff_ms(shard, attempt + 1, cfg.retry_backoff_ms);
                    let mut sink_err = None;
                    attempt = shard_failure(
                        shard,
                        attempt,
                        cfg.max_shard_retries,
                        requeued,
                        backoff,
                        (None, None),
                        e,
                        &mut |ev| {
                            if sink_err.is_none() {
                                sink_err = sink.emit(ev).err();
                            }
                        },
                    )?;
                    if let Some(e) = sink_err {
                        return Err(FleetError::Io(e));
                    }
                    sleep_backoff(backoff, cfg.abort.as_deref())?;
                }
            }
        }
    }
    finalize(spec, cfg, sink, start)
}

/// What the coordinator tells the CLI about one shard-worker launch.
#[derive(Debug, Clone)]
pub struct WorkerSpawn {
    /// Shard index the worker must execute.
    pub shard: usize,
    /// Shard count of the plan.
    pub shards: usize,
    /// The worker's private cache directory.
    pub cache_dir: PathBuf,
    /// The journal to consult (read-only) for completed cells.
    pub journal: PathBuf,
    /// The plan fingerprint the worker must verify.
    pub expect_fp: Fingerprint,
    /// Attempt number of this launch (0 = first; also exported to the
    /// subprocess via [`fault::ATTEMPT_ENV`]).
    pub attempt: usize,
}

/// How the coordinator turns a [`WorkerSpawn`] into something a
/// transport can launch: the legacy [`Command`]-building callback of
/// [`run_fleet_spawned`], or the transport-agnostic
/// [`WorkerInvocation`] callback of [`run_fleet_hosted`].
enum WorkerLauncher<'a> {
    Command(&'a (dyn Fn(&WorkerSpawn) -> Command + Sync)),
    Invocation(&'a (dyn Fn(&WorkerSpawn) -> WorkerInvocation + Sync)),
}

impl WorkerLauncher<'_> {
    fn invocation(&self, w: &WorkerSpawn) -> WorkerInvocation {
        match self {
            WorkerLauncher::Command(f) => WorkerInvocation::from_command(&f(w)),
            WorkerLauncher::Invocation(f) => f(w),
        }
    }
}

/// What [`HostBoard::note_failure`] reports when a failure crossed the
/// host-loss threshold.
struct HostLoss {
    host: String,
    /// Shards that were pending on the host when it was lost (they
    /// re-queue onto survivors on their next retry).
    moved: usize,
}

/// Shard→host bookkeeping for one campaign: which host each shard is
/// currently assigned to, which hosts are lost, and how close each is
/// to being declared so. `named = false` (the single-machine
/// [`run_fleet_spawned`] path) suppresses host labels and host events
/// entirely — streams look exactly as they did before transports.
struct HostBoard<'t> {
    transports: &'t [Box<dyn ExecTransport>],
    named: bool,
    spec_fp: Fingerprint,
    state: Mutex<BoardState>,
}

struct BoardState {
    lost: Vec<bool>,
    /// Consecutive failures per host (any shard), reset on any success.
    consecutive: Vec<usize>,
    /// Shards currently assigned per host.
    pending: Vec<usize>,
    /// Hosts that already emitted `host_retired` (once per host).
    retired: Vec<bool>,
    /// Current host index per shard.
    current: Vec<Option<usize>>,
}

impl<'t> HostBoard<'t> {
    fn new(
        transports: &'t [Box<dyn ExecTransport>],
        named: bool,
        spec_fp: Fingerprint,
        shards: usize,
    ) -> Self {
        let n = transports.len();
        HostBoard {
            transports,
            named,
            spec_fp,
            state: Mutex::new(BoardState {
                lost: vec![false; n],
                consecutive: vec![0; n],
                pending: vec![0; n],
                retired: vec![false; n],
                current: vec![None; shards],
            }),
        }
    }

    fn transport(&self, host: usize) -> &dyn ExecTransport {
        self.transports[host].as_ref()
    }

    /// The host label stamped on events — `None` for anonymous
    /// single-machine fleets.
    fn label(&self, host: usize) -> Option<String> {
        self.named.then(|| self.transports[host].host().to_string())
    }

    /// Assigns (or re-confirms) the shard's host: its fingerprint-stable
    /// home host, or — walking forward deterministically — the first
    /// surviving host after it.
    ///
    /// # Errors
    ///
    /// [`FleetError::HostsExhausted`] when every host is lost.
    fn assign(&self, shard: usize) -> Result<usize, FleetError> {
        let n = self.transports.len();
        let mut s = self.state.lock().expect("host board");
        let home = host_of(self.spec_fp, shard, n);
        let Some(idx) = (0..n).map(|o| (home + o) % n).find(|&i| !s.lost[i]) else {
            return Err(FleetError::HostsExhausted { hosts: n });
        };
        if s.current[shard] != Some(idx) {
            if let Some(old) = s.current[shard] {
                s.pending[old] -= 1;
            }
            s.pending[idx] += 1;
            s.current[shard] = Some(idx);
        }
        Ok(idx)
    }

    /// Records one failed attempt on `host`. Crossing
    /// `failure_limit` consecutive failures — while at least one other
    /// host survives — declares the host lost and reports what moved.
    fn note_failure(&self, host: usize, failure_limit: usize) -> Option<HostLoss> {
        let mut s = self.state.lock().expect("host board");
        s.consecutive[host] += 1;
        let live = s.lost.iter().filter(|l| !**l).count();
        let crossed = self.named
            && !s.lost[host]
            && failure_limit > 0
            && s.consecutive[host] >= failure_limit
            && live > 1;
        if !crossed {
            return None;
        }
        s.lost[host] = true;
        Some(HostLoss {
            host: self.transports[host].host().to_string(),
            moved: s.pending[host],
        })
    }

    /// Records the shard's successful completion; returns the host's
    /// name when this was its last pending shard (to emit
    /// `host_retired`, once per host).
    fn complete(&self, shard: usize) -> Option<String> {
        let mut s = self.state.lock().expect("host board");
        let host = s.current[shard]?;
        s.consecutive[host] = 0;
        s.pending[host] -= 1;
        let retire = self.named && !s.lost[host] && s.pending[host] == 0 && !s.retired[host];
        if !retire {
            return None;
        }
        s.retired[host] = true;
        Some(self.transports[host].host().to_string())
    }
}

/// Runs a sharded campaign by **spawning one subprocess per shard**
/// (concurrently), consuming each worker's JSONL event stream from its
/// stdout: events are validated, re-emitted into `sink`, and `cell_done`
/// lines drive the coordinator-owned journal. A worker that dies —
/// abnormal exit, protocol break, or silence past
/// [`FleetConfig::heartbeat_timeout_ms`] (the watchdog kills it) — has
/// its remaining cells re-queued onto a respawned worker (after the
/// [`retry_backoff_ms`] wait), up to [`FleetConfig::max_shard_retries`]
/// attempts per shard. `make_command` turns a [`WorkerSpawn`] into the
/// `griffin-cli shard-worker …` invocation (or any protocol-compatible
/// program); stdout is piped, stderr inherits, and the coordinator
/// exports the attempt number via [`fault::ATTEMPT_ENV`].
///
/// This is the single-machine entry point: it routes through the same
/// transport machinery as [`run_fleet_hosted`] over one anonymous
/// [`LocalExec`], so its event streams carry no host labels.
///
/// # Errors
///
/// As [`run_fleet`], plus [`FleetError::Worker`] /
/// [`FleetError::ShardExhausted`] when a shard keeps failing. Every
/// failure still terminates the stream with `campaign_failed`.
pub fn run_fleet_spawned(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    make_command: &(dyn Fn(&WorkerSpawn) -> Command + Sync),
    sink: &mut dyn EventSink,
) -> Result<CampaignReport, FleetError> {
    let transports: [Box<dyn ExecTransport>; 1] = [Box::new(LocalExec::default())];
    let launcher = WorkerLauncher::Command(make_command);
    let result = run_fleet_transports_inner(spec, cfg, &transports, false, &launcher, sink);
    finish_with_terminal(sink, result)
}

/// Runs a sharded campaign across a **multi-host fleet**: one
/// [`ExecTransport`] per machine, shards planned onto home hosts
/// fingerprint-stably ([`host_of`](crate::plan::host_of)), shard events
/// stamped with host labels, and `host_lost` / `host_retired` tracking
/// per-machine liveness. A host that keeps failing
/// ([`FleetConfig::host_failure_limit`] consecutive failures while
/// others survive) is declared lost and its shards re-queue onto the
/// surviving hosts; remote shard caches are pulled back and verified
/// after each successful worker. `make_invocation` builds the
/// transport-agnostic worker command line.
///
/// # Errors
///
/// As [`run_fleet_spawned`], plus [`FleetError::HostsExhausted`] when
/// every host is lost (or `transports` is empty). Every failure still
/// terminates the stream with `campaign_failed`.
pub fn run_fleet_hosted(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    transports: &[Box<dyn ExecTransport>],
    make_invocation: &(dyn Fn(&WorkerSpawn) -> WorkerInvocation + Sync),
    sink: &mut dyn EventSink,
) -> Result<CampaignReport, FleetError> {
    let launcher = WorkerLauncher::Invocation(make_invocation);
    let result = run_fleet_transports_inner(spec, cfg, transports, true, &launcher, sink);
    finish_with_terminal(sink, result)
}

fn run_fleet_transports_inner(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    transports: &[Box<dyn ExecTransport>],
    named: bool,
    launcher: &WorkerLauncher<'_>,
    sink: &mut dyn EventSink,
) -> Result<CampaignReport, FleetError> {
    let start = Instant::now();
    if transports.is_empty() {
        return Err(FleetError::HostsExhausted { hosts: 0 });
    }
    let plan = ShardPlan::new(spec, cfg.shards)?;
    std::fs::create_dir_all(&cfg.dir)?;
    let mut journal = Journal::open(
        journal_path(&cfg.dir),
        &plan_header(spec, &plan, cfg.scenario.as_ref()),
        cfg.resume,
    )?;
    let resumed = journal.completed().len();
    sink.emit(&Event::CampaignStart {
        campaign: spec.name.clone(),
        spec_fp: plan.spec_fp,
        cells: plan.cell_count(),
        shards: plan.shards,
        resumed,
        scenario: cfg.scenario.clone(),
    })?;
    let truncate_after = cfg
        .fault
        .as_ref()
        .and_then(FaultPlan::journal_truncate_after);

    let board = HostBoard::new(transports, named, plan.spec_fp, cfg.shards);
    let shared = Mutex::new(Shared::new(sink, Some(&mut journal), 0, truncate_after));
    let results: Vec<Result<(), FleetError>> = std::thread::scope(|s| {
        let shared = &shared;
        let plan = &plan;
        let board = &board;
        let handles: Vec<_> = plan
            .cells
            .iter()
            .enumerate()
            .map(|(shard, shard_cells)| {
                s.spawn(move || {
                    drive_spawned_shard(shard, shard_cells, plan, cfg, launcher, board, shared)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard driver thread"))
            .collect()
    });
    // Prefer a root-cause error over the `Aborted` echoes other
    // drivers report once the campaign is already going down.
    let shared = shared.into_inner().expect("fleet lock");
    let mut errs: Vec<FleetError> = shared
        .err
        .into_iter()
        .chain(results.into_iter().filter_map(Result::err))
        .collect();
    if !errs.is_empty() {
        let pos = errs
            .iter()
            .position(|e| !matches!(e, FleetError::Aborted))
            .unwrap_or(0);
        return Err(errs.swap_remove(pos));
    }
    if cfg.abort_requested() {
        // The interrupt landed after the last worker drained but before
        // the merge: still a clean abort, not a completed campaign.
        return Err(FleetError::Interrupted);
    }
    finalize(spec, cfg, sink, start)
}

/// Owns one shard's lifecycle in spawn mode: assign a host, launch a
/// worker through its transport, consume its stream, and retry — with
/// backoff, possibly on another host — until the shard completes or
/// the retry budget / host pool is spent.
fn drive_spawned_shard(
    shard: usize,
    shard_cells: &[Cell],
    plan: &ShardPlan,
    cfg: &FleetConfig,
    launcher: &WorkerLauncher<'_>,
    board: &HostBoard<'_>,
    shared: &Mutex<Shared<'_>>,
) -> Result<(), FleetError> {
    let mut attempt = 0usize;
    loop {
        if cfg.abort_requested() {
            return Err(FleetError::Interrupted);
        }
        // (Re-)assign every iteration: the host may have been declared
        // lost by a sibling shard while this one slept in backoff.
        let host = board.assign(shard)?;
        let label = board.label(host);
        let res = spawn_worker_attempt(
            shard,
            shard_cells,
            plan,
            attempt,
            cfg,
            launcher,
            board.transport(host),
            label.as_deref(),
            shared,
        );
        match res {
            Ok(()) => {
                let retired = board.complete(shard);
                let mut g = shared.lock().expect("fleet lock");
                if let Some(host) = retired {
                    g.emit(&Event::HostRetired { host });
                }
                return g.take_err();
            }
            // An interrupt is a shutdown, not a shard failure: no
            // failure lifecycle, no host accounting.
            Err(FleetError::Interrupted) => return Err(FleetError::Interrupted),
            Err(e) => {
                let loss = board.note_failure(host, cfg.host_failure_limit);
                let mut g = shared.lock().expect("fleet lock");
                let requeued = shard_cells.iter().filter(|c| !g.is_done(c.index)).count();
                let can_retry = retryable(&e) && attempt < cfg.max_shard_retries;
                g.emit(&Event::ShardFailed {
                    shard,
                    attempt,
                    msg: e.to_string(),
                    host: label,
                });
                if let Some(loss) = loss {
                    g.emit(&Event::HostLost {
                        host: loss.host,
                        shards: loss.moved,
                    });
                }
                if !can_retry {
                    // The root cause outranks any sink trouble while
                    // reporting it.
                    let _ = g.take_err();
                    return Err(if retryable(&e) {
                        FleetError::ShardExhausted {
                            shard,
                            attempts: attempt + 1,
                            msg: e.to_string(),
                        }
                    } else {
                        e
                    });
                }
                // Re-queue onto the (possibly different) next host.
                let next = match board.assign(shard) {
                    Ok(h) => h,
                    Err(err) => {
                        let _ = g.take_err();
                        return Err(err);
                    }
                };
                let backoff = retry_backoff_ms(shard, attempt + 1, cfg.retry_backoff_ms);
                g.emit(&Event::CellsRequeued {
                    shard,
                    cells: requeued,
                });
                g.emit(&Event::ShardRetried {
                    shard,
                    attempt: attempt + 1,
                    backoff_ms: backoff,
                    host: board.label(next),
                });
                g.take_err()?;
                drop(g);
                sleep_backoff(backoff, cfg.abort.as_deref())?;
                attempt += 1;
            }
        }
    }
}

/// Launches and fully consumes one worker attempt for one shard,
/// through `transport`. A shard with nothing left to do (journal caught
/// up — including after a predecessor attempt journaled everything but
/// died before `shard_done`) is reported locally without paying a
/// process spawn or a cache pull (the final replay re-simulates
/// anything a never-pulled cache would have contributed).
#[allow(clippy::too_many_arguments)]
fn spawn_worker_attempt(
    shard: usize,
    shard_cells: &[Cell],
    plan: &ShardPlan,
    attempt: usize,
    cfg: &FleetConfig,
    launcher: &WorkerLauncher<'_>,
    transport: &dyn ExecTransport,
    host: Option<&str>,
    shared: &Mutex<Shared<'_>>,
) -> Result<(), FleetError> {
    {
        let mut g = shared.lock().expect("fleet lock");
        let remaining = shard_cells.iter().filter(|c| !g.is_done(c.index)).count();
        if remaining == 0 {
            g.emit(&Event::ShardStart {
                shard,
                cells: shard_cells.len(),
                skipped: shard_cells.len(),
                host: host.map(str::to_string),
            });
            g.emit(&Event::ShardDone {
                shard,
                simulated: 0,
                cached: 0,
                elapsed_ms: 0,
                host: host.map(str::to_string),
            });
            return g.take_err();
        }
        g.take_err()?;
    }
    let info = WorkerSpawn {
        shard,
        shards: plan.shards,
        cache_dir: shard_cache_dir(&cfg.dir, shard),
        journal: journal_path(&cfg.dir),
        expect_fp: plan.spec_fp,
        attempt,
    };
    let host_tag = host.map(|h| format!(" on host `{h}`")).unwrap_or_default();
    let mut inv = launcher.invocation(&info);
    inv.env
        .push((fault::ATTEMPT_ENV.to_string(), attempt.to_string()));
    let mut handle = transport
        .spawn(&info, &inv)
        .map_err(|e| FleetError::Worker {
            shard,
            msg: format!("spawn failed{host_tag}: {e}"),
        })?;
    let stdout = match handle.take_stdout() {
        Some(s) => s,
        None => {
            let _ = handle.kill();
            let _ = handle.wait();
            return Err(FleetError::Worker {
                shard,
                msg: format!("transport produced no stdout{host_tag}"),
            });
        }
    };

    // Liveness watchdog: any stream line is a proof of life; a worker
    // silent past the deadline is killed (its reader then sees EOF and
    // reports the death, which routes into the retry path). The same
    // poll loop watches the abort flag, so an interrupt kills running
    // workers instead of waiting them out.
    let handle = Mutex::new(handle);
    let t0 = Instant::now();
    let last_event_ms = AtomicU64::new(0);
    let reader_done = AtomicBool::new(false);
    let timed_out = AtomicBool::new(false);
    let abort_killed = AtomicBool::new(false);
    let stream_res = std::thread::scope(|ws| {
        if cfg.heartbeat_timeout_ms > 0 || cfg.abort.is_some() {
            ws.spawn(|| {
                let poll = Duration::from_millis(if cfg.heartbeat_timeout_ms > 0 {
                    (cfg.heartbeat_timeout_ms / 8).clamp(10, 250)
                } else {
                    50
                });
                loop {
                    std::thread::sleep(poll);
                    if reader_done.load(Ordering::Acquire) {
                        break;
                    }
                    if cfg.abort_requested() {
                        abort_killed.store(true, Ordering::Release);
                        let _ = handle.lock().expect("worker handle").kill();
                        break;
                    }
                    if cfg.heartbeat_timeout_ms > 0 {
                        let now = t0.elapsed().as_millis() as u64;
                        let last = last_event_ms.load(Ordering::Acquire);
                        if now.saturating_sub(last) > cfg.heartbeat_timeout_ms {
                            timed_out.store(true, Ordering::Release);
                            let _ = handle.lock().expect("worker handle").kill();
                            break;
                        }
                    }
                }
            });
        }
        let r = consume_worker_stream(shard, plan.cell_count(), stdout, host, shared, &|| {
            last_event_ms.store(t0.elapsed().as_millis() as u64, Ordering::Release);
        });
        reader_done.store(true, Ordering::Release);
        r
    });
    let mut handle = handle.into_inner().expect("worker handle");
    if stream_res.is_err() {
        // Protocol break with the process possibly still alive: reap it
        // before reporting, or the retry races a zombie writer.
        let _ = handle.kill();
    }
    let status = handle.wait();
    // The watchdog verdict only explains an attempt that actually
    // failed: a worker that got its final burst out and exited cleanly
    // in the same instant the watchdog fired still succeeded (the kill
    // landed on an already-finished process).
    let outcome = stream_res.and(match status {
        Ok(st) if st.success() => Ok(()),
        Ok(st) => Err(FleetError::Worker {
            shard,
            msg: format!("exited with {st}{host_tag}"),
        }),
        Err(e) => Err(FleetError::Worker {
            shard,
            msg: format!("wait failed{host_tag}: {e}"),
        }),
    });
    match outcome {
        // A failure while draining for an interrupt *is* the interrupt:
        // the kill was ours.
        Err(_) if abort_killed.load(Ordering::Acquire) || cfg.abort_requested() => {
            Err(FleetError::Interrupted)
        }
        Err(_) if timed_out.load(Ordering::Acquire) => Err(FleetError::Worker {
            shard,
            msg: format!(
                "no events for over {} ms (heartbeat timeout); worker killed{host_tag}",
                cfg.heartbeat_timeout_ms
            ),
        }),
        Err(e) => Err(e),
        Ok(()) => pull_shard_cache(shard, &info, transport, &host_tag),
    }
}

/// Pulls a remote shard cache back and verifies the copy. A failed
/// pull is retried once, then fails the attempt (burning a shard retry,
/// which also feeds host-failure accounting). A pulled copy containing
/// torn entries is re-pulled once and then **accepted** either way:
/// the merge heals torn entries where it can and the final replay
/// re-simulates anything still missing, so verification limits damage
/// but never gates correctness.
fn pull_shard_cache(
    shard: usize,
    info: &WorkerSpawn,
    transport: &dyn ExecTransport,
    host_tag: &str,
) -> Result<(), FleetError> {
    let pulled = match transport.pull_cache(info) {
        Ok(p) => p,
        Err(first) => transport.pull_cache(info).map_err(|e| FleetError::Worker {
            shard,
            msg: format!("cache pull failed twice{host_tag}: {first}; then: {e}"),
        })?,
    };
    if !pulled {
        return Ok(());
    }
    let scan = scan_dir(&info.cache_dir)?;
    if scan.torn > 0 {
        let _ = transport.pull_cache(info);
    }
    Ok(())
}

/// Reads one worker's JSONL stream, validating shard provenance and
/// cell range, forwarding events and journaling completions. `host` is
/// stamped onto the shard lifecycle events — the worker doesn't know
/// which machine it runs on; the coordinator does. `tick` is called
/// once per stream line (the liveness signal for the watchdog).
fn consume_worker_stream(
    shard: usize,
    cells: usize,
    stdout: impl std::io::Read,
    host: Option<&str>,
    shared: &Mutex<Shared<'_>>,
    tick: &(dyn Fn() + Sync),
) -> Result<(), FleetError> {
    let mut saw_done = false;
    for line in std::io::BufReader::new(stdout).lines() {
        let line = line.map_err(|e| FleetError::Worker {
            shard,
            msg: format!("stream read failed: {e}"),
        })?;
        tick();
        if line.trim().is_empty() {
            continue;
        }
        let mut ev = Event::parse_line(&line).map_err(|e| FleetError::Worker {
            shard,
            msg: format!("bad event line: {e}"),
        })?;
        if let Some(h) = host {
            match &mut ev {
                Event::ShardStart { host: eh, .. } | Event::ShardDone { host: eh, .. } => {
                    *eh = Some(h.to_string());
                }
                _ => {}
            }
        }
        let claimed = match &ev {
            Event::ShardStart { shard, .. }
            | Event::CellStart { shard, .. }
            | Event::CellDone { shard, .. }
            | Event::Heartbeat { shard, .. }
            | Event::ShardDone { shard, .. } => *shard,
            other => {
                return Err(FleetError::Worker {
                    shard,
                    msg: format!("campaign-level event from a worker: {:?}", other),
                })
            }
        };
        if claimed != shard {
            return Err(FleetError::Worker {
                shard,
                msg: format!("event claims shard {claimed}"),
            });
        }
        if let Event::CellDone { cell, .. } | Event::CellStart { cell, .. } = &ev {
            // Never journal (or forward) an out-of-range index: a bad
            // entry would make every future resume of this state dir
            // fail the journal's range check.
            if *cell >= cells {
                return Err(FleetError::Worker {
                    shard,
                    msg: format!("cell {cell} out of range (grid has {cells} cells)"),
                });
            }
        }
        let mut g = shared.lock().expect("fleet lock");
        if let Event::CellDone { cell, fp, .. } = &ev {
            g.record_done(*cell, *fp);
        }
        if let Event::ShardDone { .. } = &ev {
            saw_done = true;
        }
        g.emit(&ev);
        g.take_err()?;
    }
    if !saw_done {
        return Err(FleetError::Worker {
            shard,
            msg: "stream ended before shard_done".into(),
        });
    }
    Ok(())
}

/// Configuration of one shard-worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Shard count of the plan.
    pub shards: usize,
    /// This worker's shard index.
    pub shard: usize,
    /// Plan fingerprint to verify against (reject a mismatched grid).
    pub expect_fp: Option<Fingerprint>,
    /// Journal to consult (read-only) for completed cells.
    pub journal: Option<PathBuf>,
    /// This worker's cache directory.
    pub cache_dir: PathBuf,
    /// Simulation worker threads.
    pub workers: usize,
    /// Heartbeat cadence in cell completions (0 disables).
    pub heartbeat_every: usize,
    /// Fault plan to arm (chaos tests; the CLI reads
    /// [`fault::FAULT_ENV`]).
    pub fault: Option<FaultPlan>,
    /// Attempt number this launch is (gates the fault plan; the CLI
    /// reads [`fault::ATTEMPT_ENV`]).
    pub attempt: usize,
}

/// Runs one shard of a campaign and streams its events to `out` — the
/// body of `griffin-cli shard-worker`, also callable in-process for
/// tests. The worker recomputes the plan from the spec, verifies it
/// against `expect_fp`, skips journal-completed cells, and writes
/// results only to its own cache directory (the journal stays
/// coordinator-owned).
///
/// An armed [`WorkerConfig::fault`] matching this shard and attempt
/// makes the worker die on schedule: its work list is truncated to the
/// fault's `after` count (so the journaled set at death is
/// deterministic), `shard_done` is suppressed, the cache is torn when
/// the plan says so, and [`FleetError::Injected`] comes back for the
/// caller to turn into an abrupt exit (kill) or silence (stall).
///
/// # Errors
///
/// [`FleetError::SpecFingerprint`] when the recomputed plan does not
/// match `expect_fp`; [`FleetError::Injected`] when a fault fired;
/// otherwise as [`run_fleet`].
pub fn run_shard_worker(
    spec: &SweepSpec,
    cfg: &WorkerConfig,
    out: impl Write + Send,
) -> Result<(), FleetError> {
    let plan = ShardPlan::new(spec, cfg.shards)?;
    if let Some(expected) = cfg.expect_fp {
        if plan.spec_fp != expected {
            return Err(FleetError::SpecFingerprint {
                expected,
                found: plan.spec_fp,
            });
        }
    }
    let shard_cells = plan.cells.get(cfg.shard).ok_or(FleetError::Worker {
        shard: cfg.shard,
        msg: format!("shard index out of range (plan has {})", plan.shards),
    })?;
    let completed = match &cfg.journal {
        Some(path) if path.exists() => {
            Journal::peek_completed(path, &plan_header(spec, &plan, None))?
        }
        _ => Default::default(),
    };
    let full_todo = remaining_cells(shard_cells, |i| completed.contains_key(&i));
    let skipped = shard_cells.len() - full_todo.len();
    let fault_plan = cfg.fault.as_ref();
    let kill = fault_plan.and_then(|f| f.kill_after(cfg.shard, cfg.attempt));
    let stall = fault_plan.and_then(|f| f.stall_after(cfg.shard, cfg.attempt));
    let die = kill.or(stall);
    let mut todo = full_todo;
    if let Some(k) = die {
        todo.truncate(k);
    }
    let cache = ResultCache::at_dir(&cfg.cache_dir)?;
    let mut sink = JsonlSink::new(out);
    let shared = Mutex::new(Shared::new(&mut sink, None, 0, None));
    run_shard_cells(
        spec,
        cfg.shard,
        &todo,
        shard_cells.len(),
        skipped,
        &cache,
        cfg.workers,
        // A spawned worker shares the machine with its sibling shards:
        // builds stay inside the pinned thread budget too.
        cfg.workers,
        cfg.heartbeat_every,
        &shared,
        die.is_none(),
        None,
    )?;
    if fault_plan.is_some_and(|f| f.corrupts_cache(cfg.shard, cfg.attempt)) {
        fault::corrupt_shard_cache(&cfg.cache_dir)?;
    }
    let gate = AttemptGate::Only(cfg.attempt);
    match die {
        Some(after) if kill.is_some() => Err(FleetError::Injected(Fault::Kill {
            shard: cfg.shard,
            after,
            attempt: gate,
        })),
        Some(after) => Err(FleetError::Injected(Fault::Stall {
            shard: cfg.shard,
            after,
            attempt: gate,
        })),
        None => Ok(()),
    }
}
