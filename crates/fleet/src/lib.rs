//! Sharded campaign orchestration for the Griffin sweep engine.
//!
//! `griffin-sweep` executes one campaign on one machine; this crate
//! scales that to a **fleet**: the grid is deterministically partitioned
//! into shards by cell fingerprint, shards run in-process or as
//! subprocesses with an append-only JSONL event stream, completions are
//! journaled for crash-safe resume, and per-shard caches are unioned by
//! fingerprint into a merged cache from which the final report is
//! assembled — **byte-identical** to a single-process sweep of the same
//! spec.
//!
//! Campaigns are **fault-tolerant**: a worker that dies or goes silent
//! past the heartbeat timeout has its remaining cells re-queued onto a
//! respawned worker (bounded by
//! [`FleetConfig::max_shard_retries`](coordinator::FleetConfig)), and
//! every recovery path is exercised deterministically through
//! [`fault::FaultPlan`].
//!
//! * [`plan`] — content-addressed shard partitioning and the campaign
//!   spec fingerprint that guards resume and worker handshakes,
//! * [`events`] — the JSONL event schema, sinks, and the worker stdout
//!   protocol,
//! * [`journal`] — the append-only completed-cell journal behind
//!   `--resume`,
//! * [`jsonl`] — the one-record-one-write line framing every
//!   append-only stream (events, journal, serve wire) goes through,
//! * [`tail`] — the truncation-tolerant line-tail rule shared by the
//!   journal loader and live event-stream consumers,
//! * [`coordinator`] — the in-process and subprocess campaign drivers
//!   plus the shard-worker entry point,
//! * [`transport`] — how workers are launched on a machine
//!   ([`LocalExec`](transport::LocalExec) subprocesses,
//!   [`SshExec`](transport::SshExec) remote workers, and the
//!   fault-enacting [`ChaosExec`](transport::ChaosExec) decorator
//!   behind multi-host chaos tests),
//! * [`fault`] — deterministic fault injection (worker kill/stall,
//!   host partition/refusal, cache and journal corruption) for chaos
//!   tests.
//!
//! # Example
//!
//! ```
//! use griffin_fleet::coordinator::{run_fleet, FleetConfig};
//! use griffin_fleet::events::NullSink;
//! use griffin_sweep::executor::run_campaign;
//! use griffin_sweep::report::to_csv;
//! use griffin_sweep::cache::ResultCache;
//! use griffin_sweep::spec::SweepSpec;
//! use griffin_core::arch::ArchSpec;
//! use griffin_core::category::DnnCategory;
//!
//! let spec = SweepSpec::new("demo")
//!     .adhoc_layer("gemm", 32, 256, 32, 1.0, 0.2)
//!     .category(DnnCategory::B)
//!     .archs([ArchSpec::dense(), ArchSpec::sparse_b_star()])
//!     .seeds([1, 2]);
//!
//! let dir = std::env::temp_dir().join(format!("fleet-doc-{}", std::process::id()));
//! let fleet = run_fleet(&spec, &FleetConfig::new(&dir, 2), &mut NullSink).unwrap();
//! let single = run_campaign(&spec, &ResultCache::in_memory(), 1).unwrap();
//! assert_eq!(to_csv(&fleet), to_csv(&single)); // byte-identical
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod coordinator;
pub mod events;
pub mod fault;
pub mod journal;
pub mod jsonl;
pub mod plan;
pub mod tail;
pub mod transport;

pub use coordinator::{
    default_events_path, journal_path, merged_cache_dir, retry_backoff_ms, run_fleet,
    run_fleet_hosted, run_fleet_spawned, run_shard_worker, shard_cache_dir, verify_shard_sources,
    FleetConfig, FleetError, WorkerConfig, WorkerSpawn,
};
pub use events::{Event, EventError, EventSink, JsonlSink, NullSink, EVENTS_FORMAT};
pub use fault::{AttemptGate, Fault, FaultError, FaultPlan, ATTEMPT_ENV, FAULT_ENV};
pub use journal::{Journal, JournalError, JournalHeader, JOURNAL_FORMAT};
pub use plan::{host_of, remaining_cells, shard_of, spec_fingerprint, PlanError, ShardPlan};
pub use tail::{complete_lines, split_partial_tail, TailCursor, TailPoll};
pub use transport::{ChaosExec, ExecTransport, LocalExec, SshExec, WorkerHandle, WorkerInvocation};
