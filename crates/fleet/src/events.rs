//! The append-only JSONL campaign event stream.
//!
//! Every line is one self-contained JSON object with an `"ev"`
//! discriminant, so long campaigns can be tailed into dashboards while
//! they run and partially-written streams stay parseable up to the last
//! complete line. The same encoding is the wire protocol between a
//! `shard-worker` subprocess (stdout) and the fleet coordinator, which
//! validates and re-emits worker events into the campaign stream.
//!
//! Schema (`griffin-fleet-events/3`):
//!
//! | `ev`              | fields                                                      |
//! |-------------------|-------------------------------------------------------------|
//! | `campaign_start`  | `format`, `campaign`, `spec_fp`, `cells`, `shards`, `resumed`, `scenario_file`?, `scenario_fp`? |
//! | `shard_start`     | `shard`, `cells`, `skipped`, `host`?                        |
//! | `cell_start`      | `shard`, `cell`, `fp`                                       |
//! | `cell_done`       | `shard`, `cell`, `fp`, `cached`, `metrics{…}`               |
//! | `heartbeat`       | `shard`, `done`, `total`, `elapsed_ms`, `cached`            |
//! | `shard_done`      | `shard`, `simulated`, `cached`, `elapsed_ms`, `host`?       |
//! | `shard_failed`    | `shard`, `attempt`, `msg`, `host`?                          |
//! | `cells_requeued`  | `shard`, `cells`                                            |
//! | `shard_retried`   | `shard`, `attempt`, `backoff_ms`, `host`?                   |
//! | `host_lost`       | `host`, `shards`                                            |
//! | `host_retired`    | `host`                                                      |
//! | `merge_done`      | `sources`, `merged`, `identical`, `healed`, `conflicts`     |
//! | `campaign_done`   | `cells`, `elapsed_ms`                                       |
//! | `campaign_failed` | `msg`                                                       |
//!
//! Cell indices are grid positions (`usize` as JSON numbers);
//! fingerprints are 32-digit hex strings; `metrics` is the same object
//! the result cache stores ([`CellMetrics::to_json`]). Event *order* is
//! only meaningful per shard — shards interleave arbitrarily.
//!
//! **Versioning.** `campaign_start` carries the schema tag in `format`;
//! v2 added the shard-failure lifecycle (`shard_failed` →
//! `cells_requeued` → `shard_retried`), the terminal `campaign_failed`,
//! and `merge_done.healed`. v1 streams (no `format` field, no v2
//! events) still parse; consumers must tolerate unknown *fields*
//! inside known events (they are ignored), and a stream always ends
//! with exactly one terminal event — `campaign_done` on success,
//! `campaign_failed` on any abort. The optional scenario provenance
//! pair (`scenario_file` + `scenario_fp`) on `campaign_start` rides on
//! that unknown-field tolerance: campaigns launched from a scenario
//! file carry it, token-built campaigns and older streams don't. The
//! `heartbeat` enrichment (`elapsed_ms` + `cached`, letting a live
//! watcher track throughput and the warm/cold split without replaying
//! `cell_done` history) rides on it the same way: streams written
//! before it parse with both fields as 0.
//!
//! v3 is the multi-host schema: shard lifecycle events gain an
//! **additive** `host` field (absent on single-host streams, stamped by
//! the coordinator when a fleet runs over named transports),
//! `shard_retried` gains `backoff_ms` (the deterministic respawn
//! backoff the coordinator slept before this attempt), and two host
//! lifecycle events arrive — `host_lost` (a machine was declared dead;
//! its pending shards re-queue onto survivors) and `host_retired` (a
//! machine finished everything assigned to it). v1/v2 streams parse
//! with `host` absent and `backoff_ms` 0.

use std::io::{self, Write};

use griffin_sweep::cache::CellMetrics;
use griffin_sweep::fingerprint::Fingerprint;
use griffin_sweep::json::Json;
use griffin_sweep::scenario::ScenarioProvenance;

/// Current schema tag, written into every `campaign_start` line.
pub const EVENTS_FORMAT: &str = "griffin-fleet-events/3";

/// The v2 schema tag (failure lifecycle, terminal events); streams
/// carrying it still parse.
pub const EVENTS_FORMAT_V2: &str = "griffin-fleet-events/2";

/// The original schema tag; streams carrying it (or no `format` at all)
/// still parse.
pub const EVENTS_FORMAT_V1: &str = "griffin-fleet-events/1";

/// One line of the campaign event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The coordinator accepted a plan and (possibly resumed) journal.
    CampaignStart {
        /// Campaign name from the spec.
        campaign: String,
        /// Stable grid identity ([`crate::plan::spec_fingerprint`]).
        spec_fp: Fingerprint,
        /// Total grid cells.
        cells: usize,
        /// Shard count.
        shards: usize,
        /// Cells restored from the journal (0 on a fresh run).
        resumed: usize,
        /// Scenario provenance (`scenario_file` + `scenario_fp` on the
        /// wire) when the campaign was launched from a scenario file;
        /// absent for token-built campaigns and pre-scenario streams.
        scenario: Option<ScenarioProvenance>,
    },
    /// A shard began executing.
    ShardStart {
        /// Shard index.
        shard: usize,
        /// Cells planned onto this shard.
        cells: usize,
        /// Cells skipped as journal-completed.
        skipped: usize,
        /// Host the shard runs on (v3; absent on single-host streams).
        host: Option<String>,
    },
    /// A worker thread began simulating a cell (cache misses only).
    CellStart {
        /// Shard index.
        shard: usize,
        /// Grid index of the cell.
        cell: usize,
        /// Scenario fingerprint.
        fp: Fingerprint,
    },
    /// A cell's metrics became available.
    CellDone {
        /// Shard index.
        shard: usize,
        /// Grid index of the cell.
        cell: usize,
        /// Scenario fingerprint.
        fp: Fingerprint,
        /// Served from cache / in-campaign dedup rather than simulated.
        cached: bool,
        /// The simulation results.
        metrics: CellMetrics,
    },
    /// Periodic per-shard liveness signal (every
    /// [`FleetConfig::heartbeat_every`](crate::coordinator::FleetConfig)
    /// completions).
    Heartbeat {
        /// Shard index.
        shard: usize,
        /// Cells finished so far on this shard (this run).
        done: usize,
        /// Cells this shard set out to run (this run).
        total: usize,
        /// Wall-clock milliseconds since this shard run started
        /// (additive field; absent in older streams, parsed as 0).
        elapsed_ms: u64,
        /// Of `done`, the cells served from cache / in-campaign dedup
        /// (additive field; absent in older streams, parsed as 0).
        cached: usize,
    },
    /// A shard finished executing.
    ShardDone {
        /// Shard index.
        shard: usize,
        /// Cells freshly simulated by this shard run.
        simulated: usize,
        /// Cells served from cache / dedup by this shard run.
        cached: usize,
        /// Wall-clock milliseconds of the shard run.
        elapsed_ms: u64,
        /// Host the shard ran on (v3; absent on single-host streams).
        host: Option<String>,
    },
    /// A shard attempt died: the worker exited abnormally, broke
    /// protocol, or went silent past the heartbeat timeout (v2).
    ShardFailed {
        /// Shard index.
        shard: usize,
        /// The attempt that failed (0 = first launch).
        attempt: usize,
        /// Human-readable cause.
        msg: String,
        /// Host the attempt ran on (v3; absent on single-host streams).
        host: Option<String>,
    },
    /// A dead shard's remaining (non-journaled) cells were put back on
    /// the queue for the next attempt (v2).
    CellsRequeued {
        /// Shard index.
        shard: usize,
        /// Cells re-queued.
        cells: usize,
    },
    /// A failed shard is being retried (v2). `attempt` is the attempt
    /// about to run; follows `shard_failed` + `cells_requeued`.
    ShardRetried {
        /// Shard index.
        shard: usize,
        /// Attempt number about to run (≥ 1).
        attempt: usize,
        /// Deterministic respawn backoff slept before this attempt, in
        /// milliseconds (v3; 0 in older streams). See
        /// [`retry_backoff_ms`](crate::coordinator::retry_backoff_ms).
        backoff_ms: u64,
        /// Host the retry is assigned to (v3; absent on single-host
        /// streams) — after a `host_lost` this names the inheritor.
        host: Option<String>,
    },
    /// A host was declared lost (v3): its workers kept dying or going
    /// silent past the per-host failure limit, so the coordinator stops
    /// scheduling on it and re-queues its pending shards onto the
    /// surviving hosts.
    HostLost {
        /// The lost host's name.
        host: String,
        /// Shards pending on the host at the moment of loss (the work
        /// the survivors inherit).
        shards: usize,
    },
    /// A host finished every shard assigned to it (v3).
    HostRetired {
        /// The retiring host's name.
        host: String,
    },
    /// Per-shard caches were unioned into the merged cache.
    MergeDone {
        /// Source directories considered.
        sources: usize,
        /// Entries copied into the merged cache.
        merged: u64,
        /// Entries already present with identical content.
        identical: u64,
        /// Torn destination entries overwritten with good source
        /// content (v2; absent in v1 streams, parsed as 0).
        healed: u64,
        /// Conflicting fingerprints (non-zero aborts the campaign).
        conflicts: u64,
    },
    /// The final report was assembled.
    CampaignDone {
        /// Total grid cells reported.
        cells: usize,
        /// Wall-clock milliseconds of the whole fleet run.
        elapsed_ms: u64,
    },
    /// The campaign aborted (v2). Terminal — every stream ends with
    /// either this or `campaign_done`, on every exit path.
    CampaignFailed {
        /// Human-readable cause.
        msg: String,
    },
}

/// Event decode error.
#[derive(Debug, Clone, PartialEq)]
pub struct EventError {
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for EventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event error: {}", self.msg)
    }
}

impl std::error::Error for EventError {}

fn fail<T>(msg: impl Into<String>) -> Result<T, EventError> {
    Err(EventError { msg: msg.into() })
}

fn get_usize(v: &Json, key: &str) -> Result<usize, EventError> {
    let n = v
        .req(key)
        .and_then(|x| x.as_f64())
        .map_err(|e| EventError { msg: e.to_string() })?;
    if n < 0.0 || n.fract() != 0.0 {
        return fail(format!("bad count `{key}`"));
    }
    Ok(n as usize)
}

/// Like [`get_usize`] but tolerating an absent key — fields added in
/// v2 that v1 streams don't carry.
fn get_usize_or(v: &Json, key: &str, default: usize) -> Result<usize, EventError> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => get_usize(v, key),
    }
}

fn get_str(v: &Json, key: &str) -> Result<String, EventError> {
    Ok(v.req(key)
        .and_then(|x| x.as_str())
        .map_err(|e| EventError { msg: e.to_string() })?
        .to_string())
}

/// An optional string field — the v3 `host` stamp, absent in older
/// streams and on single-host fleets.
fn get_opt_str(v: &Json, key: &str) -> Result<Option<String>, EventError> {
    match v.get(key) {
        None => Ok(None),
        Some(_) => get_str(v, key).map(Some),
    }
}

fn get_fp(v: &Json, key: &str) -> Result<Fingerprint, EventError> {
    let s = v
        .req(key)
        .and_then(|x| x.as_str())
        .map_err(|e| EventError { msg: e.to_string() })?;
    Fingerprint::parse(s).map_or_else(|| fail(format!("bad fingerprint `{s}`")), Ok)
}

impl Event {
    /// Serializes to the JSON object of one stream line.
    pub fn to_json(&self) -> Json {
        let num = |n: usize| Json::Num(n as f64);
        match self {
            Event::CampaignStart {
                campaign,
                spec_fp,
                cells,
                shards,
                resumed,
                scenario,
            } => {
                let mut entries = vec![
                    ("ev".into(), Json::Str("campaign_start".into())),
                    ("format".into(), Json::Str(EVENTS_FORMAT.into())),
                    ("campaign".into(), Json::Str(campaign.clone())),
                    ("spec_fp".into(), Json::Str(spec_fp.to_string())),
                    ("cells".into(), num(*cells)),
                    ("shards".into(), num(*shards)),
                    ("resumed".into(), num(*resumed)),
                ];
                if let Some(s) = scenario {
                    entries.push(("scenario_file".into(), Json::Str(s.file.clone())));
                    entries.push(("scenario_fp".into(), Json::Str(s.fp.to_string())));
                }
                Json::obj(entries)
            }
            Event::ShardStart {
                shard,
                cells,
                skipped,
                host,
            } => {
                let mut entries = vec![
                    ("ev".into(), Json::Str("shard_start".into())),
                    ("shard".into(), num(*shard)),
                    ("cells".into(), num(*cells)),
                    ("skipped".into(), num(*skipped)),
                ];
                if let Some(h) = host {
                    entries.push(("host".into(), Json::Str(h.clone())));
                }
                Json::obj(entries)
            }
            Event::CellStart { shard, cell, fp } => Json::obj([
                ("ev".into(), Json::Str("cell_start".into())),
                ("shard".into(), num(*shard)),
                ("cell".into(), num(*cell)),
                ("fp".into(), Json::Str(fp.to_string())),
            ]),
            Event::CellDone {
                shard,
                cell,
                fp,
                cached,
                metrics,
            } => Json::obj([
                ("ev".into(), Json::Str("cell_done".into())),
                ("shard".into(), num(*shard)),
                ("cell".into(), num(*cell)),
                ("fp".into(), Json::Str(fp.to_string())),
                ("cached".into(), Json::Bool(*cached)),
                ("metrics".into(), metrics.to_json()),
            ]),
            Event::Heartbeat {
                shard,
                done,
                total,
                elapsed_ms,
                cached,
            } => Json::obj([
                ("ev".into(), Json::Str("heartbeat".into())),
                ("shard".into(), num(*shard)),
                ("done".into(), num(*done)),
                ("total".into(), num(*total)),
                ("elapsed_ms".into(), num(*elapsed_ms as usize)),
                ("cached".into(), num(*cached)),
            ]),
            Event::ShardDone {
                shard,
                simulated,
                cached,
                elapsed_ms,
                host,
            } => {
                let mut entries = vec![
                    ("ev".into(), Json::Str("shard_done".into())),
                    ("shard".into(), num(*shard)),
                    ("simulated".into(), num(*simulated)),
                    ("cached".into(), num(*cached)),
                    ("elapsed_ms".into(), num(*elapsed_ms as usize)),
                ];
                if let Some(h) = host {
                    entries.push(("host".into(), Json::Str(h.clone())));
                }
                Json::obj(entries)
            }
            Event::ShardFailed {
                shard,
                attempt,
                msg,
                host,
            } => {
                let mut entries = vec![
                    ("ev".into(), Json::Str("shard_failed".into())),
                    ("shard".into(), num(*shard)),
                    ("attempt".into(), num(*attempt)),
                    ("msg".into(), Json::Str(msg.clone())),
                ];
                if let Some(h) = host {
                    entries.push(("host".into(), Json::Str(h.clone())));
                }
                Json::obj(entries)
            }
            Event::CellsRequeued { shard, cells } => Json::obj([
                ("ev".into(), Json::Str("cells_requeued".into())),
                ("shard".into(), num(*shard)),
                ("cells".into(), num(*cells)),
            ]),
            Event::ShardRetried {
                shard,
                attempt,
                backoff_ms,
                host,
            } => {
                let mut entries = vec![
                    ("ev".into(), Json::Str("shard_retried".into())),
                    ("shard".into(), num(*shard)),
                    ("attempt".into(), num(*attempt)),
                    ("backoff_ms".into(), num(*backoff_ms as usize)),
                ];
                if let Some(h) = host {
                    entries.push(("host".into(), Json::Str(h.clone())));
                }
                Json::obj(entries)
            }
            Event::HostLost { host, shards } => Json::obj([
                ("ev".into(), Json::Str("host_lost".into())),
                ("host".into(), Json::Str(host.clone())),
                ("shards".into(), num(*shards)),
            ]),
            Event::HostRetired { host } => Json::obj([
                ("ev".into(), Json::Str("host_retired".into())),
                ("host".into(), Json::Str(host.clone())),
            ]),
            Event::MergeDone {
                sources,
                merged,
                identical,
                healed,
                conflicts,
            } => Json::obj([
                ("ev".into(), Json::Str("merge_done".into())),
                ("sources".into(), num(*sources)),
                ("merged".into(), num(*merged as usize)),
                ("identical".into(), num(*identical as usize)),
                ("healed".into(), num(*healed as usize)),
                ("conflicts".into(), num(*conflicts as usize)),
            ]),
            Event::CampaignDone { cells, elapsed_ms } => Json::obj([
                ("ev".into(), Json::Str("campaign_done".into())),
                ("cells".into(), num(*cells)),
                ("elapsed_ms".into(), num(*elapsed_ms as usize)),
            ]),
            Event::CampaignFailed { msg } => Json::obj([
                ("ev".into(), Json::Str("campaign_failed".into())),
                ("msg".into(), Json::Str(msg.clone())),
            ]),
        }
    }

    /// One stream line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().write()
    }

    /// Parses one stream line.
    ///
    /// # Errors
    ///
    /// [`EventError`] on malformed JSON or an unknown/incomplete event.
    pub fn parse_line(line: &str) -> Result<Event, EventError> {
        let v = Json::parse(line).map_err(|e| EventError { msg: e.to_string() })?;
        let ev = v
            .req("ev")
            .and_then(|x| x.as_str())
            .map_err(|e| EventError { msg: e.to_string() })?;
        match ev {
            "campaign_start" => {
                // `format` is absent in v1 streams; any *known* tag is
                // accepted, an unknown one is a stream we must not
                // silently misread.
                if let Some(tag) = v.get("format") {
                    let tag = tag
                        .as_str()
                        .map_err(|e| EventError { msg: e.to_string() })?;
                    if tag != EVENTS_FORMAT && tag != EVENTS_FORMAT_V2 && tag != EVENTS_FORMAT_V1 {
                        return fail(format!("unknown event-stream format `{tag}`"));
                    }
                }
                let scenario = match (v.get("scenario_file"), v.get("scenario_fp")) {
                    (None, None) => None,
                    (Some(_), Some(_)) => Some(ScenarioProvenance {
                        file: get_str(&v, "scenario_file")?,
                        fp: get_fp(&v, "scenario_fp")?,
                    }),
                    _ => return fail("scenario_file and scenario_fp must appear together"),
                };
                Ok(Event::CampaignStart {
                    campaign: get_str(&v, "campaign")?,
                    spec_fp: get_fp(&v, "spec_fp")?,
                    cells: get_usize(&v, "cells")?,
                    shards: get_usize(&v, "shards")?,
                    resumed: get_usize(&v, "resumed")?,
                    scenario,
                })
            }
            "shard_start" => Ok(Event::ShardStart {
                shard: get_usize(&v, "shard")?,
                cells: get_usize(&v, "cells")?,
                skipped: get_usize(&v, "skipped")?,
                host: get_opt_str(&v, "host")?,
            }),
            "cell_start" => Ok(Event::CellStart {
                shard: get_usize(&v, "shard")?,
                cell: get_usize(&v, "cell")?,
                fp: get_fp(&v, "fp")?,
            }),
            "cell_done" => Ok(Event::CellDone {
                shard: get_usize(&v, "shard")?,
                cell: get_usize(&v, "cell")?,
                fp: get_fp(&v, "fp")?,
                cached: match v
                    .req("cached")
                    .map_err(|e| EventError { msg: e.to_string() })?
                {
                    Json::Bool(b) => *b,
                    _ => return fail("bad `cached`"),
                },
                metrics: CellMetrics::from_json(
                    v.req("metrics")
                        .map_err(|e| EventError { msg: e.to_string() })?,
                )
                .map_err(|e| EventError { msg: e.to_string() })?,
            }),
            "heartbeat" => Ok(Event::Heartbeat {
                shard: get_usize(&v, "shard")?,
                done: get_usize(&v, "done")?,
                total: get_usize(&v, "total")?,
                elapsed_ms: get_usize_or(&v, "elapsed_ms", 0)? as u64,
                cached: get_usize_or(&v, "cached", 0)?,
            }),
            "shard_done" => Ok(Event::ShardDone {
                shard: get_usize(&v, "shard")?,
                simulated: get_usize(&v, "simulated")?,
                cached: get_usize(&v, "cached")?,
                elapsed_ms: get_usize(&v, "elapsed_ms")? as u64,
                host: get_opt_str(&v, "host")?,
            }),
            "shard_failed" => Ok(Event::ShardFailed {
                shard: get_usize(&v, "shard")?,
                attempt: get_usize(&v, "attempt")?,
                msg: get_str(&v, "msg")?,
                host: get_opt_str(&v, "host")?,
            }),
            "cells_requeued" => Ok(Event::CellsRequeued {
                shard: get_usize(&v, "shard")?,
                cells: get_usize(&v, "cells")?,
            }),
            "shard_retried" => Ok(Event::ShardRetried {
                shard: get_usize(&v, "shard")?,
                attempt: get_usize(&v, "attempt")?,
                backoff_ms: get_usize_or(&v, "backoff_ms", 0)? as u64,
                host: get_opt_str(&v, "host")?,
            }),
            "host_lost" => Ok(Event::HostLost {
                host: get_str(&v, "host")?,
                shards: get_usize(&v, "shards")?,
            }),
            "host_retired" => Ok(Event::HostRetired {
                host: get_str(&v, "host")?,
            }),
            "merge_done" => Ok(Event::MergeDone {
                sources: get_usize(&v, "sources")?,
                merged: get_usize(&v, "merged")? as u64,
                identical: get_usize(&v, "identical")? as u64,
                healed: get_usize_or(&v, "healed", 0)? as u64,
                conflicts: get_usize(&v, "conflicts")? as u64,
            }),
            "campaign_done" => Ok(Event::CampaignDone {
                cells: get_usize(&v, "cells")?,
                elapsed_ms: get_usize(&v, "elapsed_ms")? as u64,
            }),
            "campaign_failed" => Ok(Event::CampaignFailed {
                msg: get_str(&v, "msg")?,
            }),
            other => fail(format!("unknown event `{other}`")),
        }
    }
}

/// A consumer of the campaign event stream.
pub trait EventSink: Send {
    /// Delivers one event. Errors abort the campaign (a broken stream
    /// means the consumer — a pipe, a dashboard file — is gone).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn emit(&mut self, ev: &Event) -> io::Result<()>;
}

/// Writes events as JSON lines, flushing after each line so consumers
/// tailing the stream see completed cells immediately.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    w: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer (a file opened for append, a pipe, stdout).
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&mut self, ev: &Event) -> io::Result<()> {
        crate::jsonl::append_line(&mut self.w, &ev.to_line())
    }
}

/// Discards every event (drivers that only want the final report).
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _: &Event) -> io::Result<()> {
        Ok(())
    }
}

/// Deterministic sample-event construction shared by the schema
/// property tests here and the consumer-side (`griffin-watch`) model
/// property tests — one generator, so every stream consumer is
/// exercised against the exact same variant coverage. Not a public API.
#[doc(hidden)]
pub mod sample {
    use super::Event;
    use griffin_sweep::cache::CellMetrics;
    use griffin_sweep::fingerprint::Fingerprint;

    /// Deterministic metrics from two draws; `special` selects a
    /// non-finite float injection (JSON numbers cannot express them, so
    /// they stress the lossless float encoding).
    pub fn metrics_from(a: u64, b: u64, special: u64) -> CellMetrics {
        let f = |x: u64| (x % 1_000_000) as f64 / 7.0;
        let mut m = CellMetrics {
            speedup: f(a ^ 1),
            cycles: f(a ^ 2),
            dense_cycles: a,
            power_mw: f(b ^ 3),
            area_mm2: f(b ^ 4),
            tops_per_w: f(a ^ b),
            tops_per_mm2: f(b ^ 5),
        };
        match special % 4 {
            1 => m.tops_per_w = f64::NAN,
            2 => m.tops_per_mm2 = f64::INFINITY,
            3 => m.power_mw = f64::NEG_INFINITY,
            _ => {}
        }
        m
    }

    /// One event of each schema variant (`variant % 14`), fields
    /// derived from the draws. Strings mix in characters that need
    /// JSON escaping; `flag` toggles the optional v3 `host` stamp on
    /// shard lifecycle events, so both shapes stay covered.
    pub fn build_event(variant: usize, a: u64, b: u64, flag: bool, special: u64) -> Event {
        let s = |tag: &str| format!("{tag}-\"{a}\"\n\\{b}");
        let n = |x: u64| (x % 100_000) as usize;
        let host = |tag: &str| flag.then(|| format!("{tag}-{}", b % 4));
        match variant % 14 {
            0 => Event::CampaignStart {
                campaign: s("camp"),
                spec_fp: Fingerprint(a, b),
                cells: n(a),
                shards: n(b) + 1,
                resumed: n(a ^ b),
                // The optional provenance pair exercises both shapes.
                scenario: flag.then(|| griffin_sweep::scenario::ScenarioProvenance {
                    file: s("scenario"),
                    fp: Fingerprint(b ^ 7, a ^ 9),
                }),
            },
            1 => Event::ShardStart {
                shard: n(a),
                cells: n(b),
                skipped: n(a ^ 1),
                host: host("h"),
            },
            2 => Event::CellStart {
                shard: n(a),
                cell: n(b),
                fp: Fingerprint(b, a),
            },
            3 => Event::CellDone {
                shard: n(a),
                cell: n(b),
                fp: Fingerprint(a, a),
                cached: flag,
                metrics: metrics_from(a, b, special),
            },
            4 => Event::Heartbeat {
                shard: n(a),
                done: n(b),
                total: n(b) + n(a),
                elapsed_ms: a % 1_000_000_000,
                cached: n(a ^ 3),
            },
            5 => Event::ShardDone {
                shard: n(a),
                simulated: n(b),
                cached: n(a ^ 2),
                elapsed_ms: b % 1_000_000_000,
                host: host("h"),
            },
            6 => Event::ShardFailed {
                shard: n(a),
                attempt: n(b) % 16,
                msg: s("worker exited"),
                host: host("h"),
            },
            7 => Event::CellsRequeued {
                shard: n(a),
                cells: n(b),
            },
            8 => Event::ShardRetried {
                shard: n(a),
                attempt: n(b) % 16 + 1,
                backoff_ms: a % 60_000,
                host: host("h"),
            },
            9 => Event::MergeDone {
                sources: n(a),
                merged: b % 1_000_000,
                identical: a % 1_000_000,
                healed: (a ^ b) % 100,
                conflicts: u64::from(flag),
            },
            10 => Event::CampaignDone {
                cells: n(a),
                elapsed_ms: b % 1_000_000_000,
            },
            11 => Event::HostLost {
                host: s("ssh-host"),
                shards: n(b) % 64,
            },
            12 => Event::HostRetired {
                host: s("ssh-host"),
            },
            _ => Event::CampaignFailed { msg: s("gave up") },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> CellMetrics {
        CellMetrics {
            speedup: 2.5,
            cycles: 400.0,
            dense_cycles: 1000,
            power_mw: 331.0,
            area_mm2: 0.97,
            tops_per_w: 24.5,
            tops_per_mm2: 8.25,
        }
    }

    #[test]
    fn every_event_roundtrips_through_its_line() {
        let events = [
            Event::CampaignStart {
                campaign: "sweep-synth-b".into(),
                spec_fp: Fingerprint(1, 2),
                cells: 40,
                shards: 4,
                resumed: 7,
                scenario: None,
            },
            Event::CampaignStart {
                campaign: "sweep-synth-b".into(),
                spec_fp: Fingerprint(1, 2),
                cells: 40,
                shards: 4,
                resumed: 0,
                scenario: Some(ScenarioProvenance {
                    file: "ci-smoke.toml".into(),
                    fp: Fingerprint(3, 4),
                }),
            },
            Event::ShardStart {
                shard: 2,
                cells: 10,
                skipped: 3,
                host: None,
            },
            Event::ShardStart {
                shard: 2,
                cells: 10,
                skipped: 3,
                host: Some("web-02".into()),
            },
            Event::CellStart {
                shard: 2,
                cell: 17,
                fp: Fingerprint(3, 4),
            },
            Event::CellDone {
                shard: 2,
                cell: 17,
                fp: Fingerprint(3, 4),
                cached: false,
                metrics: metrics(),
            },
            Event::Heartbeat {
                shard: 2,
                done: 5,
                total: 7,
                elapsed_ms: 210,
                cached: 2,
            },
            Event::ShardDone {
                shard: 2,
                simulated: 6,
                cached: 1,
                elapsed_ms: 1234,
                host: Some("local".into()),
            },
            Event::ShardFailed {
                shard: 2,
                attempt: 0,
                msg: "worker exited with code 3 (\"killed\")".into(),
                host: Some("web-02".into()),
            },
            Event::CellsRequeued { shard: 2, cells: 4 },
            Event::ShardRetried {
                shard: 2,
                attempt: 1,
                backoff_ms: 375,
                host: None,
            },
            Event::ShardRetried {
                shard: 2,
                attempt: 2,
                backoff_ms: 0,
                host: Some("web-03".into()),
            },
            Event::HostLost {
                host: "web-02".into(),
                shards: 3,
            },
            Event::HostRetired {
                host: "web-03".into(),
            },
            Event::MergeDone {
                sources: 4,
                merged: 33,
                identical: 7,
                healed: 1,
                conflicts: 0,
            },
            Event::CampaignDone {
                cells: 40,
                elapsed_ms: 9999,
            },
            Event::CampaignFailed {
                msg: "shard 2 worker failed: retries exhausted".into(),
            },
        ];
        for ev in events {
            let line = ev.to_line();
            assert!(!line.contains('\n'), "one event, one line");
            assert_eq!(Event::parse_line(&line), Ok(ev.clone()), "{line}");
        }
    }

    #[test]
    fn degenerate_metrics_survive_the_stream() {
        let ev = Event::CellDone {
            shard: 0,
            cell: 1,
            fp: Fingerprint(5, 6),
            cached: true,
            metrics: CellMetrics {
                tops_per_w: f64::NAN,
                tops_per_mm2: f64::INFINITY,
                ..metrics()
            },
        };
        let back = Event::parse_line(&ev.to_line()).unwrap();
        let Event::CellDone { metrics: m, .. } = back else {
            panic!("wrong event");
        };
        assert!(m.tops_per_w.is_nan());
        assert_eq!(m.tops_per_mm2, f64::INFINITY);
    }

    #[test]
    fn garbage_lines_are_rejected() {
        assert!(Event::parse_line("").is_err());
        assert!(Event::parse_line("not json").is_err());
        assert!(Event::parse_line("{}").is_err());
        assert!(Event::parse_line("{\"ev\":\"warp_drive\"}").is_err());
        assert!(Event::parse_line("{\"ev\":\"heartbeat\",\"shard\":0}").is_err());
        assert!(
            Event::parse_line("{\"ev\":\"cell_start\",\"shard\":0,\"cell\":1,\"fp\":\"xy\"}")
                .is_err()
        );
        assert!(Event::parse_line("{\"ev\":\"shard_failed\",\"shard\":0}").is_err());
        assert!(Event::parse_line("{\"ev\":\"campaign_failed\"}").is_err());
        assert!(Event::parse_line("{\"ev\":\"host_lost\",\"shards\":2}").is_err());
        assert!(Event::parse_line("{\"ev\":\"host_retired\"}").is_err());
    }

    #[test]
    fn v1_lines_still_parse_and_unknown_formats_are_refused() {
        // A v1 campaign_start has no `format` field.
        let v1 = "{\"campaign\":\"old\",\"cells\":4,\"ev\":\"campaign_start\",\
                  \"resumed\":0,\"shards\":2,\
                  \"spec_fp\":\"00000000000000010000000000000002\"}";
        let ev = Event::parse_line(v1).unwrap();
        assert!(matches!(ev, Event::CampaignStart { cells: 4, .. }));
        // An explicit v1 tag is fine; an unknown tag is not.
        let tagged = v1.replace(
            "\"campaign\":\"old\"",
            "\"campaign\":\"old\",\"format\":\"griffin-fleet-events/1\"",
        );
        assert!(Event::parse_line(&tagged).is_ok());
        // A v2 tag (pre-host schema) is also still accepted.
        let v2 = tagged.replace("events/1", "events/2");
        assert!(Event::parse_line(&v2).is_ok());
        let future = tagged.replace("events/1", "events/99");
        assert!(Event::parse_line(&future).is_err());
        // A v2 shard_retried has no backoff_ms/host: parsed as 0/None.
        let retried = "{\"attempt\":1,\"ev\":\"shard_retried\",\"shard\":4}";
        assert_eq!(
            Event::parse_line(retried),
            Ok(Event::ShardRetried {
                shard: 4,
                attempt: 1,
                backoff_ms: 0,
                host: None,
            })
        );
        // A pre-enrichment heartbeat has no elapsed_ms/cached: parsed
        // as 0.
        let hb = "{\"done\":5,\"ev\":\"heartbeat\",\"shard\":1,\"total\":9}";
        assert_eq!(
            Event::parse_line(hb),
            Ok(Event::Heartbeat {
                shard: 1,
                done: 5,
                total: 9,
                elapsed_ms: 0,
                cached: 0,
            })
        );
        // A v1 merge_done has no `healed` field: parsed as 0.
        let merge =
            "{\"conflicts\":0,\"ev\":\"merge_done\",\"identical\":1,\"merged\":2,\"sources\":3}";
        assert_eq!(
            Event::parse_line(merge),
            Ok(Event::MergeDone {
                sources: 3,
                merged: 2,
                identical: 1,
                healed: 0,
                conflicts: 0,
            })
        );
    }

    #[test]
    fn jsonl_sink_writes_one_flushed_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&Event::Heartbeat {
            shard: 1,
            done: 2,
            total: 3,
            elapsed_ms: 0,
            cached: 0,
        })
        .unwrap();
        sink.emit(&Event::CampaignDone {
            cells: 3,
            elapsed_ms: 1,
        })
        .unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(text.ends_with('\n'));
        for l in lines {
            Event::parse_line(l).unwrap();
        }
    }
}
