//! Exec transports: how the coordinator launches shard workers on a
//! machine — its own or someone else's.
//!
//! The worker protocol is already transport-agnostic: a shard worker is
//! any process that speaks the JSONL event schema on stdout and writes
//! results into a shard cache directory. [`ExecTransport`] captures the
//! four things the coordinator needs from a machine:
//!
//! 1. **spawn** a worker from a [`WorkerInvocation`] (program + args +
//!    env) and hand back a [`WorkerHandle`],
//! 2. **stream** its stdout ([`WorkerHandle::take_stdout`]),
//! 3. **kill** it when the watchdog or an abort says so,
//! 4. **pull back** its shard cache directory for the merge step.
//!
//! Three implementations ship:
//!
//! * [`LocalExec`] — today's behavior: a plain subprocess, the cache is
//!   already local so the pull is a no-op.
//! * [`SshExec`] — plain `ssh`/`scp` command assembly: the worker runs
//!   remotely (env passed via `env(1)` on the remote side), declared
//!   files (the scenario file) are shipped **by content** before the
//!   first launch, and the shard cache is pulled back with `scp -r`.
//!   The `scenario_fp` / `--expect-fp` handshake already guards content
//!   drift: a remote machine running a different grid is rejected by
//!   the worker itself. Both programs are overridable, which is also
//!   how the test suite drives this path without a network.
//! * [`ChaosExec`] — a deterministic decorator enacting the host faults
//!   of a [`FaultPlan`] (`partition`, `refuse-spawn`, `fail-pull`,
//!   `corrupt-pull`): it severs streams, refuses launches, and tears
//!   pulled caches exactly where the plan says, so "losing a machine"
//!   is a reproducible test fixture rather than an outage.
//!
//! A transport is **one host**; a multi-host fleet is a slice of them,
//! with shards assigned fingerprint-stably by
//! [`host_of`](crate::plan::host_of).

use std::io::{self, BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::coordinator::WorkerSpawn;
use crate::fault::{corrupt_shard_cache, FaultPlan};

/// A worker launch, transport-agnostically: program, arguments, and
/// environment overrides. [`LocalExec`] turns it into a subprocess
/// directly; [`SshExec`] assembles it into a remote shell command.
#[derive(Debug, Clone, Default)]
pub struct WorkerInvocation {
    /// Program to execute.
    pub program: String,
    /// Arguments, in order.
    pub args: Vec<String>,
    /// Environment variables set on top of the inherited environment.
    pub env: Vec<(String, String)>,
}

impl WorkerInvocation {
    /// An invocation of `program` with `args`.
    pub fn new(program: impl Into<String>, args: Vec<String>) -> Self {
        WorkerInvocation {
            program: program.into(),
            args,
            env: Vec::new(),
        }
    }

    /// Captures an assembled [`Command`] (program, args, and its
    /// explicitly-set env) — the compatibility bridge from the
    /// `make_command` callback API.
    pub fn from_command(cmd: &Command) -> Self {
        WorkerInvocation {
            program: cmd.get_program().to_string_lossy().into_owned(),
            args: cmd
                .get_args()
                .map(|a| a.to_string_lossy().into_owned())
                .collect(),
            env: cmd
                .get_envs()
                .filter_map(|(k, v)| {
                    v.map(|v| {
                        (
                            k.to_string_lossy().into_owned(),
                            v.to_string_lossy().into_owned(),
                        )
                    })
                })
                .collect(),
        }
    }

    /// The local [`Command`] this invocation describes.
    pub fn to_command(&self) -> Command {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args);
        for (k, v) in &self.env {
            cmd.env(k, v);
        }
        cmd
    }
}

/// A launched worker: its stdout stream and its lifecycle.
pub trait WorkerHandle: Send {
    /// The worker's stdout, taken exactly once.
    fn take_stdout(&mut self) -> Option<Box<dyn Read + Send>>;
    /// Kills the worker (watchdog timeout, abort, protocol break).
    fn kill(&mut self) -> io::Result<()>;
    /// Waits for the worker to exit.
    fn wait(&mut self) -> io::Result<ExitStatus>;
}

/// How the coordinator reaches one host. `host()` is the name shards
/// are planned against and events are stamped with.
pub trait ExecTransport: Send + Sync {
    /// The host's name (event label and fault-plan key).
    fn host(&self) -> &str;

    /// Launches a worker. The coordinator has already folded the
    /// attempt number into `inv.env`.
    ///
    /// # Errors
    ///
    /// The launch failure (an unreachable host, a missing binary) —
    /// retryable from the coordinator's point of view.
    fn spawn(&self, w: &WorkerSpawn, inv: &WorkerInvocation) -> io::Result<Box<dyn WorkerHandle>>;

    /// Makes the shard cache directory named by `w.cache_dir` available
    /// locally after a successful worker run. Returns `true` when bytes
    /// actually moved (the coordinator then verifies the pulled copy),
    /// `false` when the cache was local all along.
    ///
    /// # Errors
    ///
    /// The transfer failure — retryable (the coordinator re-pulls, then
    /// re-runs the shard).
    fn pull_cache(&self, w: &WorkerSpawn) -> io::Result<bool>;
}

/// A plain local subprocess handle.
struct LocalHandle {
    child: Child,
}

impl WorkerHandle for LocalHandle {
    fn take_stdout(&mut self) -> Option<Box<dyn Read + Send>> {
        self.child
            .stdout
            .take()
            .map(|s| Box::new(s) as Box<dyn Read + Send>)
    }

    fn kill(&mut self) -> io::Result<()> {
        self.child.kill()
    }

    fn wait(&mut self) -> io::Result<ExitStatus> {
        self.child.wait()
    }
}

/// Runs workers as local subprocesses — the single-machine fleet,
/// routed through the same trait every other transport uses.
#[derive(Debug, Clone)]
pub struct LocalExec {
    host: String,
}

impl LocalExec {
    /// A local transport labeled `host` (the label multi-"host" smoke
    /// tests and dashboards see; `local` by convention).
    pub fn new(host: impl Into<String>) -> Self {
        LocalExec { host: host.into() }
    }
}

impl Default for LocalExec {
    fn default() -> Self {
        LocalExec::new("local")
    }
}

impl ExecTransport for LocalExec {
    fn host(&self) -> &str {
        &self.host
    }

    fn spawn(&self, _w: &WorkerSpawn, inv: &WorkerInvocation) -> io::Result<Box<dyn WorkerHandle>> {
        let mut cmd = inv.to_command();
        cmd.stdin(Stdio::null()).stdout(Stdio::piped());
        Ok(Box::new(LocalHandle {
            child: cmd.spawn()?,
        }))
    }

    fn pull_cache(&self, _w: &WorkerSpawn) -> io::Result<bool> {
        Ok(false)
    }
}

/// Quotes one word for a POSIX shell (the remote side of `ssh`).
fn shell_quote(s: &str) -> String {
    if !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'/' | b'=' | b':' | b',')
        })
    {
        return s.to_string();
    }
    format!("'{}'", s.replace('\'', "'\\''"))
}

/// Runs a command to completion, mapping failure (spawn error or
/// nonzero exit) into an [`io::Error`] carrying the command's stderr.
fn run_checked(mut cmd: Command, what: &str) -> io::Result<()> {
    let out = cmd
        .stdin(Stdio::null())
        .output()
        .map_err(|e| io::Error::new(e.kind(), format!("{what}: {e}")))?;
    if out.status.success() {
        return Ok(());
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    Err(io::Error::other(format!(
        "{what} failed ({}): {}",
        out.status,
        stderr.trim()
    )))
}

/// Runs workers on a remote machine over plain `ssh`, pulling shard
/// caches back with `scp`. Paths are mirrored: the worker uses the same
/// absolute fleet paths remotely that the coordinator uses locally.
/// The journal is intentionally **not** shipped — a remote worker that
/// cannot see it simply re-runs journaled cells, and the merge/replay
/// pipeline deduplicates identical results; correctness never depends
/// on the skip optimization.
#[derive(Debug, Clone)]
pub struct SshExec {
    /// `[user@]host` exactly as handed to the ssh program.
    host: String,
    ssh: String,
    scp: String,
    /// Files shipped by content to the same remote path before the
    /// first launch (the scenario file; `--expect-fp` guards drift).
    ship: Vec<PathBuf>,
    shipped: std::sync::Arc<AtomicBool>,
}

impl SshExec {
    /// A transport reaching `host` via the system `ssh`/`scp`.
    pub fn new(host: impl Into<String>) -> Self {
        SshExec {
            host: host.into(),
            ssh: "ssh".into(),
            scp: "scp".into(),
            ship: Vec::new(),
            shipped: Default::default(),
        }
    }

    /// Overrides the `ssh` and `scp` programs (tests substitute fakes;
    /// deployments substitute wrappers carrying `-i`/`-o` options).
    pub fn with_programs(mut self, ssh: impl Into<String>, scp: impl Into<String>) -> Self {
        self.ssh = ssh.into();
        self.scp = scp.into();
        self
    }

    /// Adds a file shipped by content to the remote host (same absolute
    /// path) before the first worker launch.
    pub fn with_shipped_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.ship.push(path.into());
        self
    }

    /// The remote shell command line for an invocation.
    fn remote_command(&self, inv: &WorkerInvocation) -> String {
        let mut words: Vec<String> = Vec::new();
        if !inv.env.is_empty() {
            words.push("env".into());
            for (k, v) in &inv.env {
                words.push(shell_quote(&format!("{k}={v}")));
            }
        }
        words.push(shell_quote(&inv.program));
        words.extend(inv.args.iter().map(|a| shell_quote(a)));
        words.join(" ")
    }

    /// Ships the declared files (once per transport instance).
    fn ensure_shipped(&self) -> io::Result<()> {
        if self.ship.is_empty() || self.shipped.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        for path in &self.ship {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                let mut mkdir = Command::new(&self.ssh);
                mkdir.arg(&self.host).arg(format!(
                    "mkdir -p {}",
                    shell_quote(&parent.display().to_string())
                ));
                run_checked(mkdir, &format!("ship mkdir on `{}`", self.host))?;
            }
            let mut scp = Command::new(&self.scp);
            scp.arg("-q")
                .arg(path)
                .arg(format!("{}:{}", self.host, path.display()));
            run_checked(
                scp,
                &format!("ship `{}` to `{}`", path.display(), self.host),
            )?;
        }
        Ok(())
    }
}

impl ExecTransport for SshExec {
    fn host(&self) -> &str {
        &self.host
    }

    fn spawn(&self, _w: &WorkerSpawn, inv: &WorkerInvocation) -> io::Result<Box<dyn WorkerHandle>> {
        self.ensure_shipped()?;
        let mut cmd = Command::new(&self.ssh);
        cmd.arg(&self.host)
            .arg(self.remote_command(inv))
            .stdin(Stdio::null())
            .stdout(Stdio::piped());
        Ok(Box::new(LocalHandle {
            child: cmd.spawn()?,
        }))
    }

    fn pull_cache(&self, w: &WorkerSpawn) -> io::Result<bool> {
        // A fresh local copy every pull: a retried pull must not blend
        // torn bytes from the previous one.
        if w.cache_dir.exists() {
            std::fs::remove_dir_all(&w.cache_dir)?;
        }
        if let Some(parent) = w.cache_dir.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut scp = Command::new(&self.scp);
        scp.arg("-qr")
            .arg(format!("{}:{}", self.host, w.cache_dir.display()))
            .arg(&w.cache_dir);
        run_checked(
            scp,
            &format!("pull shard {} cache from `{}`", w.shard, self.host),
        )?;
        Ok(true)
    }
}

/// Marker substring of a `cell_done` stream line.
const CELL_DONE_MARK: &[u8] = b"\"ev\":\"cell_done\"";

/// A stdout stream that is severed — EOF, mid-protocol — once it has
/// let a fixed number of `cell_done` lines through: what a network
/// partition looks like from the coordinator's chair.
struct PartitionedStdout {
    inner: BufReader<Box<dyn Read + Send>>,
    /// `cell_done` lines still allowed through.
    remaining: usize,
    severed: bool,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for PartitionedStdout {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.pos < self.buf.len() {
                let n = (self.buf.len() - self.pos).min(out.len());
                out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            if self.severed {
                return Ok(0);
            }
            self.buf.clear();
            self.pos = 0;
            let mut line = Vec::new();
            if self.inner.read_until(b'\n', &mut line)? == 0 {
                return Ok(0);
            }
            let is_done = line
                .windows(CELL_DONE_MARK.len())
                .any(|w| w == CELL_DONE_MARK);
            if is_done {
                if self.remaining == 0 {
                    self.severed = true;
                    return Ok(0);
                }
                self.remaining -= 1;
            }
            self.buf = line;
        }
    }
}

/// A handle whose stdout is partition-gated.
struct ChaosHandle {
    inner: Box<dyn WorkerHandle>,
    partition_after: Option<usize>,
}

impl WorkerHandle for ChaosHandle {
    fn take_stdout(&mut self) -> Option<Box<dyn Read + Send>> {
        let stdout = self.inner.take_stdout()?;
        Some(match self.partition_after {
            Some(after) => Box::new(PartitionedStdout {
                inner: BufReader::new(stdout),
                remaining: after,
                severed: false,
                buf: Vec::new(),
                pos: 0,
            }),
            None => stdout,
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        self.inner.kill()
    }

    fn wait(&mut self) -> io::Result<ExitStatus> {
        self.inner.wait()
    }
}

/// Wraps any transport and enacts the host faults of a [`FaultPlan`]
/// deterministically: launches are refused, streams are severed after
/// an exact `cell_done` count, and cache pulls fail or arrive torn —
/// all keyed by (host, attempt), so a chaos run replays identically.
pub struct ChaosExec<T> {
    inner: T,
    plan: FaultPlan,
}

impl<T: ExecTransport> ChaosExec<T> {
    /// Decorates `inner` with the host faults of `plan` (the shard
    /// faults in the plan are ignored here — workers enact those
    /// themselves).
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        ChaosExec { inner, plan }
    }
}

impl<T: ExecTransport> ExecTransport for ChaosExec<T> {
    fn host(&self) -> &str {
        self.inner.host()
    }

    fn spawn(&self, w: &WorkerSpawn, inv: &WorkerInvocation) -> io::Result<Box<dyn WorkerHandle>> {
        if self.plan.refuses_spawn(self.host(), w.attempt) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("fault injected: host `{}` refuses the spawn", self.host()),
            ));
        }
        let handle = self.inner.spawn(w, inv)?;
        Ok(Box::new(ChaosHandle {
            inner: handle,
            partition_after: self.plan.partition_after(self.host(), w.attempt),
        }))
    }

    fn pull_cache(&self, w: &WorkerSpawn) -> io::Result<bool> {
        if self.plan.fails_pull(self.host(), w.attempt) {
            return Err(io::Error::other(format!(
                "fault injected: cache pull from host `{}` failed",
                self.host()
            )));
        }
        let pulled = self.inner.pull_cache(w)?;
        if self.plan.corrupts_pull(self.host(), w.attempt) {
            // The pull "succeeded" but the copy died mid-transfer: the
            // local cache is torn the same way a dying writer tears it.
            corrupt_shard_cache(&w.cache_dir)?;
            return Ok(true);
        }
        Ok(pulled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_quote_passes_safe_words_and_wraps_the_rest() {
        assert_eq!(shell_quote("abc-1_2.ok/x:y=z,w"), "abc-1_2.ok/x:y=z,w");
        assert_eq!(shell_quote(""), "''");
        assert_eq!(shell_quote("a b"), "'a b'");
        assert_eq!(shell_quote("it's"), "'it'\\''s'");
        assert_eq!(shell_quote("$(rm -rf /)"), "'$(rm -rf /)'");
    }

    #[test]
    fn invocation_roundtrips_through_a_command() {
        let mut inv = WorkerInvocation::new("prog", vec!["a".into(), "b c".into()]);
        inv.env.push(("K".into(), "v 1".into()));
        let back = WorkerInvocation::from_command(&inv.to_command());
        assert_eq!(back.program, "prog");
        assert_eq!(back.args, vec!["a".to_string(), "b c".to_string()]);
        assert_eq!(back.env, vec![("K".to_string(), "v 1".to_string())]);
    }

    #[test]
    fn ssh_remote_command_is_quoted_and_env_prefixed() {
        let t = SshExec::new("user@h1");
        let mut inv = WorkerInvocation::new(
            "/bin/griffin-cli",
            vec!["shard-worker".into(), "a b".into()],
        );
        inv.env.push(("GRIFFIN_FLEET_ATTEMPT".into(), "1".into()));
        assert_eq!(
            t.remote_command(&inv),
            "env GRIFFIN_FLEET_ATTEMPT=1 /bin/griffin-cli shard-worker 'a b'"
        );
        assert_eq!(t.host(), "user@h1");
    }

    #[test]
    fn partitioned_stdout_severs_after_the_allowed_cell_dones() {
        let lines = concat!(
            "{\"ev\":\"shard_start\",\"shard\":0}\n",
            "{\"ev\":\"cell_done\",\"cell\":1}\n",
            "{\"ev\":\"heartbeat\",\"shard\":0}\n",
            "{\"ev\":\"cell_done\",\"cell\":2}\n",
            "{\"ev\":\"shard_done\",\"shard\":0}\n",
        );
        let gate = |after: usize| PartitionedStdout {
            inner: BufReader::new(Box::new(lines.as_bytes()) as Box<dyn Read + Send>),
            remaining: after,
            severed: false,
            buf: Vec::new(),
            pos: 0,
        };
        let mut out = String::new();
        gate(1).read_to_string(&mut out).unwrap();
        assert!(out.ends_with("\"heartbeat\",\"shard\":0}\n"), "{out}");
        assert_eq!(out.matches("cell_done").count(), 1);

        let mut all = String::new();
        gate(9).read_to_string(&mut all).unwrap();
        assert_eq!(all, lines, "a generous gate passes everything");

        let mut none = String::new();
        gate(0).read_to_string(&mut none).unwrap();
        assert_eq!(
            none, "{\"ev\":\"shard_start\",\"shard\":0}\n",
            "after=0 severs at the first completion"
        );
    }
}
