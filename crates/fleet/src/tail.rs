//! Truncation-tolerant line tailing over append-only JSONL files.
//!
//! Both fleet stream formats — the journal and the campaign event
//! stream — are appended one `\n`-terminated JSON line at a time, so an
//! interruption can only leave a *partial trailing line*. This module
//! is the one place that rule is implemented: [`split_partial_tail`]
//! separates a buffer's cleanly-terminated prefix from its torn tail
//! (used by [`crate::journal`] when loading, and by one-shot stream
//! readers), and [`TailCursor`] turns the same rule into an incremental
//! follower for live consumers (`fleet watch`) — a torn tail is simply
//! *not yet* a line, and is yielded whole once its remaining bytes (and
//! newline) arrive.
//!
//! The cursor also survives the one legal non-append transition: a
//! fresh campaign truncating and rewriting the stream file. A shrink is
//! reported as [`TailPoll::truncated`] so the consumer can reset its
//! state before folding the new stream from the top.

use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Splits a buffer at its final newline: the cleanly-terminated prefix
/// (every byte of it belongs to a complete line) and the partial
/// trailing line — an interrupted append — which is empty exactly when
/// the buffer ends on `\n`. `text == prefix ⧺ partial` always holds.
pub fn split_partial_tail(text: &str) -> (&str, &str) {
    match text.rfind('\n') {
        Some(i) => text.split_at(i + 1),
        None => ("", text),
    }
}

/// The complete lines of a buffer, torn tail excluded — the one-shot
/// (non-follow) read of an event stream. Lines are trimmed of their
/// terminators; empty lines are skipped.
pub fn complete_lines(text: &str) -> impl Iterator<Item = &str> {
    let (clean, _) = split_partial_tail(text);
    clean
        .split_inclusive('\n')
        .map(str::trim_end)
        .filter(|l| !l.is_empty())
}

/// What one [`TailCursor::poll`] observed.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TailPoll {
    /// New complete lines since the previous poll (terminators
    /// stripped, empty lines skipped).
    pub lines: Vec<String>,
    /// The file shrank (a fresh campaign truncated the stream): the
    /// cursor restarted from byte 0, and `lines` already holds the new
    /// stream's first complete lines. Consumers must reset their fold.
    pub truncated: bool,
}

/// An incremental follower of an append-only line stream.
///
/// Each [`poll`](TailCursor::poll) reads whatever bytes the producer
/// has appended since the last one and yields only *complete* lines; a
/// partial trailing line (a torn in-flight append, or a flush that
/// landed mid-line) is buffered and completed by a later poll. A
/// missing file yields no lines — the producer simply hasn't started
/// yet — and a shrunken file resets the cursor (see [`TailPoll`]).
#[derive(Debug)]
pub struct TailCursor {
    path: PathBuf,
    offset: u64,
    pending: Vec<u8>,
}

impl TailCursor {
    /// A cursor at the start of `path` (which need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        TailCursor {
            path: path.into(),
            offset: 0,
            pending: Vec::new(),
        }
    }

    /// The followed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads everything appended since the last poll.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the file not existing
    /// (which is an empty poll, not an error).
    pub fn poll(&mut self) -> io::Result<TailPoll> {
        let mut out = TailPoll::default();
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            // The stream was rewritten from scratch; start over.
            self.offset = 0;
            self.pending.clear();
            out.truncated = true;
        }
        if len == self.offset {
            return Ok(out);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let read = file
            .take(len - self.offset)
            .read_to_end(&mut self.pending)?;
        self.offset += read as u64;
        // Drain every complete line; keep the torn tail pending.
        let cut = match self.pending.iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => return Ok(out),
        };
        for raw in self.pending[..cut].split_inclusive(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(raw);
            let line = line.trim_end();
            if !line.is_empty() {
                out.lines.push(line.to_string());
            }
        }
        self.pending.drain(..cut);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "griffin-fleet-tail-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn split_partial_tail_covers_every_shape() {
        assert_eq!(split_partial_tail(""), ("", ""));
        assert_eq!(split_partial_tail("a\nb\n"), ("a\nb\n", ""));
        assert_eq!(split_partial_tail("a\nb\ntorn"), ("a\nb\n", "torn"));
        assert_eq!(split_partial_tail("torn"), ("", "torn"));
        let (clean, partial) = split_partial_tail("x\n{\"cell\":");
        assert_eq!(format!("{clean}{partial}"), "x\n{\"cell\":");
    }

    #[test]
    fn complete_lines_skips_the_torn_tail_and_blanks() {
        let text = "one\n\ntwo\r\nthree";
        assert_eq!(complete_lines(text).collect::<Vec<_>>(), ["one", "two"]);
        assert_eq!(complete_lines("").count(), 0);
        assert_eq!(complete_lines("no newline").count(), 0);
    }

    #[test]
    fn cursor_yields_lines_incrementally_and_completes_torn_tails() {
        let path = tmp("incremental");
        let _ = std::fs::remove_file(&path);
        let mut cur = TailCursor::new(&path);
        // Missing file: an empty poll, not an error.
        assert_eq!(cur.poll().unwrap(), TailPoll::default());

        let mut f = std::fs::File::create(&path).unwrap();
        write!(f, "alpha\nbra").unwrap();
        f.flush().unwrap();
        let p = cur.poll().unwrap();
        assert_eq!(p.lines, ["alpha"], "torn tail held back");
        assert!(!p.truncated);

        write!(f, "vo\ncharlie\n").unwrap();
        f.flush().unwrap();
        let p = cur.poll().unwrap();
        assert_eq!(p.lines, ["bravo", "charlie"], "tail completed whole");

        // Nothing new: empty poll.
        assert_eq!(cur.poll().unwrap(), TailPoll::default());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cursor_resets_on_truncation() {
        let path = tmp("truncate");
        std::fs::write(&path, "old-1\nold-2\nold-3\n").unwrap();
        let mut cur = TailCursor::new(&path);
        assert_eq!(cur.poll().unwrap().lines.len(), 3);

        // A fresh campaign rewrites the stream shorter.
        std::fs::write(&path, "new-1\n").unwrap();
        let p = cur.poll().unwrap();
        assert!(p.truncated, "shrink must be reported");
        assert_eq!(p.lines, ["new-1"], "new stream read from the top");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cursor_and_journal_agree_on_a_torn_final_line() {
        // The pin required by the shared-tail refactor: on the same
        // torn file, the journal's loader and the tail cursor must make
        // the same call — complete lines count, the torn tail does not.
        use crate::journal::{Journal, JournalHeader};
        use griffin_sweep::fingerprint::Fingerprint;

        let path = tmp("agree");
        let header = JournalHeader {
            campaign: "t".into(),
            spec_fp: Fingerprint(1, 2),
            cells: 8,
            scenario: None,
        };
        drop(Journal::create(&path, &header).unwrap());
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"cell\":3,\"fp\":\"00000000000000030000000000000003\"}\n");
        text.push_str("{\"cell\":5,\"fp\":\"00000000000000"); // torn mid-append
        std::fs::write(&path, &text).unwrap();

        let mut cur = TailCursor::new(&path);
        let lines = cur.poll().unwrap().lines;
        assert_eq!(lines.len(), 2, "header + one complete entry");

        let completed = Journal::peek_completed(&path, &header).unwrap();
        assert_eq!(
            completed.keys().copied().collect::<Vec<_>>(),
            vec![3],
            "journal accepts exactly the complete entries the cursor yields"
        );
        assert_eq!(
            completed.len(),
            lines.len() - 1,
            "identical torn-line verdict"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
