//! Deterministic fault injection for fleet campaigns.
//!
//! Long sharded campaigns must survive worker death — and that claim is
//! only testable if failures can be *injected* at precise, reproducible
//! points and the recovery replayed deterministically. A [`FaultPlan`]
//! is a small list of [`Fault`]s, each naming a shard, a trigger point
//! (a completed-cell count) and an attempt gate, threaded through both
//! coordinators:
//!
//! * **in-process** ([`run_fleet`](crate::coordinator::run_fleet)) —
//!   the coordinator consults the plan directly
//!   ([`FleetConfig::fault`](crate::coordinator::FleetConfig));
//! * **spawned** ([`run_fleet_spawned`](crate::coordinator::run_fleet_spawned))
//!   — shard-worker subprocesses inherit the [`FAULT_ENV`]
//!   (`GRIFFIN_FAULT`) environment variable and arm their own faults;
//!   the coordinator tells each respawn its attempt number via
//!   [`ATTEMPT_ENV`], so a fault gated on `attempt=0` fires exactly
//!   once and the retry recovers.
//!
//! The plan has a compact textual form (what the env var carries),
//! faults separated by `;`:
//!
//! ```text
//! kill:shard=1:after=2            worker 1 dies after 2 completions (attempt 0)
//! stall:shard=0:after=1:attempt=any  worker 0 hangs silently on every attempt
//! corrupt-cache:shard=2           shard 2's cache is torn mid-write
//! truncate-journal:after=3        the journal loses its tail mid-append
//! ```
//!
//! Multi-host campaigns add **host faults**, keyed by host name and
//! enacted by the [`ChaosExec`](crate::transport::ChaosExec) transport
//! wrapper rather than by the worker process (a partitioned *machine*
//! cannot run its own fault code):
//!
//! ```text
//! partition:host=h1:after=1          h1's stream is severed after 1 cell_done
//! partition:host=h1:after=1:attempt=any   …on every attempt (a dead machine)
//! refuse-spawn:host=h1:attempts=2    the first 2 launches on h1 fail outright
//! fail-pull:host=h1                  pulling h1's shard cache back fails (attempt 0)
//! corrupt-pull:host=h1               the pulled cache arrives torn (attempt 0)
//! ```
//!
//! Determinism: "after N completions" is implemented by *truncating the
//! shard's work list* to its first N remaining cells (grid order), so
//! the set of journaled cells at the moment of death is a pure function
//! of the plan — no racing a concurrent executor.

use std::fmt;
use std::io;
use std::path::Path;

/// Environment variable carrying a [`FaultPlan`] in its textual form.
/// Spawned shard workers inherit it from the coordinator's environment.
pub const FAULT_ENV: &str = "GRIFFIN_FAULT";

/// Environment variable the coordinator sets on each spawned worker:
/// the shard's attempt number (0 on the first launch, incremented per
/// retry). Gates faults so an injected death is not re-injected forever.
pub const ATTEMPT_ENV: &str = "GRIFFIN_FLEET_ATTEMPT";

/// Which shard attempts a fault fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptGate {
    /// Fire only on this attempt number (default: attempt 0 — the fault
    /// happens once, the retry runs clean).
    Only(usize),
    /// Fire on every attempt below this bound (`attempts=N` in the
    /// textual form) — "refuse respawns for N attempts".
    Under(usize),
    /// Fire on every attempt (drives the retries-exhausted path).
    Any,
}

impl AttemptGate {
    /// Whether the gate admits `attempt`.
    pub fn admits(self, attempt: usize) -> bool {
        match self {
            AttemptGate::Only(a) => a == attempt,
            AttemptGate::Under(n) => attempt < n,
            AttemptGate::Any => true,
        }
    }
}

/// One injectable failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker for `shard` dies abruptly after completing (and
    /// streaming) `after` of its remaining cells: no `shard_done`, a
    /// torn final protocol line, a nonzero exit. Exercises the
    /// coordinator's retry path.
    Kill {
        /// Shard whose worker dies.
        shard: usize,
        /// Remaining-cell completions before death.
        after: usize,
        /// Attempt gate.
        attempt: AttemptGate,
    },
    /// The worker for `shard` goes silent after `after` completions —
    /// the process stays alive but emits nothing (delayed/lost
    /// heartbeats). Exercises the coordinator's heartbeat-timeout
    /// liveness detection; spawn mode only (the in-process coordinator
    /// treats it as [`Fault::Kill`], since an in-process shard cannot
    /// hang without hanging the campaign).
    Stall {
        /// Shard whose worker stalls.
        shard: usize,
        /// Remaining-cell completions before the silence.
        after: usize,
        /// Attempt gate.
        attempt: AttemptGate,
    },
    /// The shard's cache directory is torn as if the worker died
    /// mid-write: its newest entry is truncated and a partial `.tmp`
    /// file is left behind (see [`corrupt_shard_cache`]). Exercises the
    /// merge's invalid-entry skip and the final replay's re-simulation.
    CorruptCache {
        /// Shard whose cache is torn.
        shard: usize,
        /// Attempt gate.
        attempt: AttemptGate,
    },
    /// The coordinator "crashes" mid-append: after the `after`-th
    /// journal append (campaign-wide), a torn, newline-less half entry
    /// is written and the campaign aborts with a terminal
    /// `campaign_failed`. Exercises `--resume`'s truncation tolerance.
    TruncateJournal {
        /// Campaign-wide journal appends before the torn write.
        after: usize,
    },
}

/// What a [`HostFault`] does to its host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFaultKind {
    /// The network path to the host drops mid-stream: the worker's
    /// stdout is severed after `after` `cell_done` lines have come
    /// through (the coordinator sees EOF before `shard_done`, exactly
    /// like a connection reset). Enacted by
    /// [`ChaosExec`](crate::transport::ChaosExec).
    Partition {
        /// `cell_done` lines let through before the cut.
        after: usize,
    },
    /// Launching a worker on the host fails outright (an unreachable
    /// machine refusing the exec). Usually gated `attempts=N` — the
    /// host refuses its first N launches, then recovers.
    RefuseSpawn,
    /// Pulling the shard cache back from the host fails.
    FailPull,
    /// The pulled shard cache arrives torn, as if the copy died
    /// mid-transfer ([`corrupt_shard_cache`] is applied to the local
    /// copy).
    CorruptPull,
}

/// One injectable **host** failure: a [`HostFaultKind`] aimed at a host
/// name, gated by attempt. Enacted transport-side (see
/// [`crate::transport::ChaosExec`]), never by the worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFault {
    /// Host name the fault targets (matched against the transport's
    /// host label).
    pub host: String,
    /// What happens.
    pub kind: HostFaultKind,
    /// Attempt gate (per shard attempt on that host).
    pub attempt: AttemptGate,
}

/// Fault-plan parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan error: {}", self.msg)
    }
}

impl std::error::Error for FaultError {}

fn fail<T>(msg: impl Into<String>) -> Result<T, FaultError> {
    Err(FaultError { msg: msg.into() })
}

/// Canonical `:attempt=…` / `:attempts=…` suffix of a gate (empty for
/// the default gate, attempt 0).
fn write_gate(f: &mut fmt::Formatter<'_>, g: AttemptGate) -> fmt::Result {
    match g {
        AttemptGate::Only(0) => Ok(()),
        AttemptGate::Only(a) => write!(f, ":attempt={a}"),
        AttemptGate::Under(n) => write!(f, ":attempts={n}"),
        AttemptGate::Any => write!(f, ":attempt=any"),
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gate = write_gate;
        match *self {
            Fault::Kill {
                shard,
                after,
                attempt,
            } => {
                write!(f, "kill:shard={shard}:after={after}")?;
                gate(f, attempt)
            }
            Fault::Stall {
                shard,
                after,
                attempt,
            } => {
                write!(f, "stall:shard={shard}:after={after}")?;
                gate(f, attempt)
            }
            Fault::CorruptCache { shard, attempt } => {
                write!(f, "corrupt-cache:shard={shard}")?;
                gate(f, attempt)
            }
            Fault::TruncateJournal { after } => write!(f, "truncate-journal:after={after}"),
        }
    }
}

impl fmt::Display for HostFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            HostFaultKind::Partition { after } => {
                write!(f, "partition:host={}:after={after}", self.host)?;
            }
            HostFaultKind::RefuseSpawn => write!(f, "refuse-spawn:host={}", self.host)?,
            HostFaultKind::FailPull => write!(f, "fail-pull:host={}", self.host)?,
            HostFaultKind::CorruptPull => write!(f, "corrupt-pull:host={}", self.host)?,
        }
        write_gate(f, self.attempt)
    }
}

/// A deterministic list of faults to inject into one campaign.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The shard/journal faults, in plan order.
    pub faults: Vec<Fault>,
    /// The host faults, in plan order (enacted by
    /// [`crate::transport::ChaosExec`]).
    pub hosts: Vec<HostFault>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, ";")
            }
        };
        for fault in &self.faults {
            sep(f)?;
            write!(f, "{fault}")?;
        }
        for fault in &self.hosts {
            sep(f)?;
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// `key=value` fields of one fault clause, after the kind token.
#[derive(Default)]
struct Fields {
    shard: Option<usize>,
    host: Option<String>,
    after: Option<usize>,
    attempt: Option<AttemptGate>,
}

impl Fields {
    fn parse(parts: &mut std::str::Split<'_, char>, kind: &str) -> Result<Fields, FaultError> {
        let mut f = Fields::default();
        for part in parts {
            let Some((key, value)) = part.split_once('=') else {
                return fail(format!("`{kind}`: expected key=value, got `{part}`"));
            };
            let num = || -> Result<usize, FaultError> {
                value.parse().map_err(|_| FaultError {
                    msg: format!("`{kind}`: bad number `{value}` for `{key}`"),
                })
            };
            match key {
                "shard" => f.shard = Some(num()?),
                "host" if !value.is_empty() => f.host = Some(value.to_string()),
                "host" => return fail(format!("`{kind}`: empty host name")),
                "after" => f.after = Some(num()?),
                "attempt" if value == "any" => f.attempt = Some(AttemptGate::Any),
                "attempt" => f.attempt = Some(AttemptGate::Only(num()?)),
                "attempts" => f.attempt = Some(AttemptGate::Under(num()?)),
                other => return fail(format!("`{kind}`: unknown field `{other}`")),
            }
        }
        Ok(f)
    }

    fn shard(&self, kind: &str) -> Result<usize, FaultError> {
        self.shard
            .map_or_else(|| fail(format!("`{kind}` needs shard=N")), Ok)
    }

    fn host(&self, kind: &str) -> Result<String, FaultError> {
        self.host
            .clone()
            .map_or_else(|| fail(format!("`{kind}` needs host=NAME")), Ok)
    }

    fn after(&self, kind: &str) -> Result<usize, FaultError> {
        self.after
            .map_or_else(|| fail(format!("`{kind}` needs after=N")), Ok)
    }

    fn gate(&self) -> AttemptGate {
        self.attempt.unwrap_or(AttemptGate::Only(0))
    }
}

impl FaultPlan {
    /// Parses the textual form (see the module docs). `delay-heartbeats`
    /// is accepted as an alias of `stall`.
    ///
    /// # Errors
    ///
    /// [`FaultError`] on an unknown fault kind, a malformed field, or a
    /// missing required field.
    pub fn parse(s: &str) -> Result<FaultPlan, FaultError> {
        let mut faults = Vec::new();
        let mut hosts = Vec::new();
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let kind = parts.next().expect("split yields at least one part");
            let f = Fields::parse(&mut parts, kind)?;
            let host_kind = match kind {
                "partition" => Some(HostFaultKind::Partition {
                    after: f.after(kind)?,
                }),
                "refuse-spawn" => Some(HostFaultKind::RefuseSpawn),
                "fail-pull" => Some(HostFaultKind::FailPull),
                "corrupt-pull" => Some(HostFaultKind::CorruptPull),
                _ => None,
            };
            if let Some(hk) = host_kind {
                hosts.push(HostFault {
                    host: f.host(kind)?,
                    kind: hk,
                    attempt: f.gate(),
                });
                continue;
            }
            faults.push(match kind {
                "kill" => Fault::Kill {
                    shard: f.shard(kind)?,
                    after: f.after(kind)?,
                    attempt: f.gate(),
                },
                "stall" | "delay-heartbeats" => Fault::Stall {
                    shard: f.shard(kind)?,
                    after: f.after(kind)?,
                    attempt: f.gate(),
                },
                "corrupt-cache" => Fault::CorruptCache {
                    shard: f.shard(kind)?,
                    attempt: f.gate(),
                },
                "truncate-journal" => Fault::TruncateJournal {
                    after: f.after(kind)?,
                },
                other => return fail(format!("unknown fault `{other}`")),
            });
        }
        if faults.is_empty() && hosts.is_empty() {
            return fail("empty fault plan");
        }
        Ok(FaultPlan { faults, hosts })
    }

    /// Completions before a [`Fault::Kill`] matching (`shard`,
    /// `attempt`) fires, if any.
    pub fn kill_after(&self, shard: usize, attempt: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match *f {
            Fault::Kill {
                shard: s,
                after,
                attempt: g,
            } if s == shard && g.admits(attempt) => Some(after),
            _ => None,
        })
    }

    /// Completions before a [`Fault::Stall`] matching (`shard`,
    /// `attempt`) fires, if any.
    pub fn stall_after(&self, shard: usize, attempt: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match *f {
            Fault::Stall {
                shard: s,
                after,
                attempt: g,
            } if s == shard && g.admits(attempt) => Some(after),
            _ => None,
        })
    }

    /// Whether a [`Fault::CorruptCache`] matches (`shard`, `attempt`).
    pub fn corrupts_cache(&self, shard: usize, attempt: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(*f, Fault::CorruptCache { shard: s, attempt: g }
                if s == shard && g.admits(attempt))
        })
    }

    /// Campaign-wide journal appends before a [`Fault::TruncateJournal`]
    /// fires, if any.
    pub fn journal_truncate_after(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match *f {
            Fault::TruncateJournal { after } => Some(after),
            _ => None,
        })
    }

    /// Whether the plan carries any host fault (so the CLI knows to wrap
    /// transports in [`crate::transport::ChaosExec`]).
    pub fn has_host_faults(&self) -> bool {
        !self.hosts.is_empty()
    }

    /// `cell_done` lines let through before a
    /// [`HostFaultKind::Partition`] severs `host`'s stream on `attempt`,
    /// if any.
    pub fn partition_after(&self, host: &str, attempt: usize) -> Option<usize> {
        self.hosts.iter().find_map(|f| match f.kind {
            HostFaultKind::Partition { after } if f.host == host && f.attempt.admits(attempt) => {
                Some(after)
            }
            _ => None,
        })
    }

    /// Whether a [`HostFaultKind::RefuseSpawn`] matches (`host`,
    /// `attempt`).
    pub fn refuses_spawn(&self, host: &str, attempt: usize) -> bool {
        self.host_fault_matches(HostFaultKind::RefuseSpawn, host, attempt)
    }

    /// Whether a [`HostFaultKind::FailPull`] matches (`host`,
    /// `attempt`).
    pub fn fails_pull(&self, host: &str, attempt: usize) -> bool {
        self.host_fault_matches(HostFaultKind::FailPull, host, attempt)
    }

    /// Whether a [`HostFaultKind::CorruptPull`] matches (`host`,
    /// `attempt`).
    pub fn corrupts_pull(&self, host: &str, attempt: usize) -> bool {
        self.host_fault_matches(HostFaultKind::CorruptPull, host, attempt)
    }

    fn host_fault_matches(&self, kind: HostFaultKind, host: &str, attempt: usize) -> bool {
        self.hosts
            .iter()
            .any(|f| f.kind == kind && f.host == host && f.attempt.admits(attempt))
    }
}

/// Reads a [`FaultPlan`] from [`FAULT_ENV`] (`None` when unset/blank).
///
/// # Errors
///
/// [`FaultError`] when the variable is set but unparsable — a typoed
/// chaos experiment must fail loudly, not silently run a clean
/// campaign.
pub fn plan_from_env() -> Result<Option<FaultPlan>, FaultError> {
    match std::env::var(FAULT_ENV) {
        Ok(s) if !s.trim().is_empty() => FaultPlan::parse(&s).map(Some),
        _ => Ok(None),
    }
}

/// Reads the attempt number from [`ATTEMPT_ENV`] (0 when unset — a
/// worker launched outside a retrying coordinator is on its first
/// attempt).
pub fn attempt_from_env() -> usize {
    std::env::var(ATTEMPT_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Tears a shard cache directory the way a worker killed mid-write
/// would: the lexicographically last `.json` entry is truncated to half
/// its bytes (an unparsable torn rename target) and a partial
/// `fault.tmp.0.0` temp file is left behind. Recovery is the normal
/// pipeline: `merge_dirs` skips both, and the final replay re-simulates
/// whatever the torn entry held.
///
/// # Errors
///
/// Propagates filesystem errors; a missing or empty directory only gets
/// the stray temp file.
pub fn corrupt_shard_cache(dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    if let Some(victim) = entries.last() {
        let len = std::fs::metadata(victim)?.len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(victim)?
            .set_len(len / 2)?;
    }
    std::fs::write(dir.join("fault.tmp.0.0"), "{\"speedup\":")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_roundtrip_through_their_textual_form() {
        let plans = [
            "kill:shard=1:after=2",
            "stall:shard=0:after=1:attempt=any",
            "kill:shard=3:after=0:attempt=2",
            "corrupt-cache:shard=2",
            "truncate-journal:after=3",
            "kill:shard=1:after=2;corrupt-cache:shard=1;truncate-journal:after=9",
            "partition:host=h1:after=1",
            "partition:host=web-02:after=0:attempt=any",
            "refuse-spawn:host=h1:attempts=2",
            "fail-pull:host=h0;corrupt-pull:host=h1:attempt=1",
            "kill:shard=1:after=2;partition:host=h1:after=1",
        ];
        for text in plans {
            let plan = FaultPlan::parse(text).unwrap();
            assert_eq!(plan.to_string(), text, "canonical form is stable");
            assert_eq!(FaultPlan::parse(&plan.to_string()), Ok(plan));
        }
        // The alias parses to the canonical `stall` spelling.
        let alias = FaultPlan::parse("delay-heartbeats:shard=1:after=0").unwrap();
        assert_eq!(alias.to_string(), "stall:shard=1:after=0");
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "",
            "  ;  ",
            "warp-core-breach:shard=1",
            "kill:shard=1",                    // missing after
            "kill:after=2",                    // missing shard
            "kill:shard=x:after=2",            // bad number
            "kill:shard=1:after=2:zap",        // not key=value
            "kill:shard=1:after=2:k=v",        // unknown field
            "truncate-journal:shard=1",        // missing after
            "corrupt-cache:attempt=any",       // missing shard
            "partition:shard=1:after=2",       // host faults need host=
            "partition:host=h1",               // missing after
            "refuse-spawn:host=",              // empty host
            "fail-pull:attempts=2",            // missing host
            "corrupt-pull:host=h1:attempts=x", // bad attempts bound
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn queries_respect_shard_and_attempt_gates() {
        let plan =
            FaultPlan::parse("kill:shard=1:after=2;stall:shard=0:after=1:attempt=any").unwrap();
        assert_eq!(plan.kill_after(1, 0), Some(2), "default gate is attempt 0");
        assert_eq!(plan.kill_after(1, 1), None, "retry runs clean");
        assert_eq!(plan.kill_after(0, 0), None, "wrong shard");
        assert_eq!(
            plan.stall_after(0, 5),
            Some(1),
            "`any` admits every attempt"
        );
        assert!(!plan.corrupts_cache(1, 0));
        assert_eq!(plan.journal_truncate_after(), None);

        let plan = FaultPlan::parse("corrupt-cache:shard=2;truncate-journal:after=7").unwrap();
        assert!(plan.corrupts_cache(2, 0));
        assert!(!plan.corrupts_cache(2, 1));
        assert_eq!(plan.journal_truncate_after(), Some(7));
        assert!(!plan.has_host_faults());
    }

    #[test]
    fn host_fault_queries_respect_host_and_attempt_gates() {
        let plan = FaultPlan::parse(
            "partition:host=h1:after=1:attempt=any;refuse-spawn:host=h0:attempts=2;\
             fail-pull:host=h1;corrupt-pull:host=h0:attempt=1",
        )
        .unwrap();
        assert!(plan.has_host_faults());
        assert_eq!(plan.partition_after("h1", 0), Some(1));
        assert_eq!(plan.partition_after("h1", 7), Some(1), "any gate");
        assert_eq!(plan.partition_after("h0", 0), None, "wrong host");
        assert!(plan.refuses_spawn("h0", 0), "attempts=2 admits 0");
        assert!(plan.refuses_spawn("h0", 1), "attempts=2 admits 1");
        assert!(!plan.refuses_spawn("h0", 2), "recovered on attempt 2");
        assert!(plan.fails_pull("h1", 0), "default gate is attempt 0");
        assert!(!plan.fails_pull("h1", 1));
        assert!(plan.corrupts_pull("h0", 1));
        assert!(!plan.corrupts_pull("h0", 0));
        // Shard-fault queries ignore a host-only plan entirely.
        let hosts_only = FaultPlan::parse("partition:host=h1:after=0").unwrap();
        assert_eq!(hosts_only.kill_after(0, 0), None);
        assert_eq!(hosts_only.journal_truncate_after(), None);
    }

    #[test]
    fn corrupt_shard_cache_tears_the_newest_entry_and_drops_a_tmp() {
        let dir = std::env::temp_dir().join(format!(
            "griffin-fault-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("aaaa.json"), "{\"ok\":1}").unwrap();
        std::fs::write(dir.join("zzzz.json"), "{\"ok\":2,\"pad\":\"xxxx\"}").unwrap();
        corrupt_shard_cache(&dir).unwrap();
        let torn = std::fs::read_to_string(dir.join("zzzz.json")).unwrap();
        assert!(torn.len() < "{\"ok\":2,\"pad\":\"xxxx\"}".len());
        assert_eq!(
            std::fs::read_to_string(dir.join("aaaa.json")).unwrap(),
            "{\"ok\":1}",
            "only the lexicographically last entry is torn"
        );
        assert!(dir.join("fault.tmp.0.0").exists());
        // An empty (or missing) cache dir still gets the stray tmp.
        let empty = dir.join("nested");
        corrupt_shard_cache(&empty).unwrap();
        assert!(empty.join("fault.tmp.0.0").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
